//! Quickstart: boot a 1-fault-tolerant virtual machine and watch it run.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a scenario (the paper's §3 prototype: two simulated
//! HP 9000/720-class processors, a shared disk, a 10 Mbps coordination
//! LAN) around a console workload, runs it, and prints what the
//! *environment* saw plus the replica-coordination bookkeeping.

use hvft::core::scenario::Scenario;
use hvft::guest::workload::Hello;

fn main() {
    // 1. Pick a workload: the unmodified mini-kernel plus a user
    //    program that prints to the console, waits a few timer ticks,
    //    and exits. (Any registered workload works — try
    //    `workload_named("sieve")`.)
    let workload = Hello {
        message: "hello from a replicated VM!\n".into(),
        wait_ticks: 3,
        ..Default::default()
    };

    // 2. Configure through the builder. The defaults are the paper's
    //    prototype; every knob (protocol variant, backups, loss,
    //    failure injection…) is a validated method away.
    let scenario = Scenario::builder()
        .workload(workload)
        .build()
        .expect("the default configuration is valid");
    println!(
        "scenario: {} (epoch length {} instructions, protocol {:?})",
        scenario.label(),
        scenario.config().hv.epoch_len,
        scenario.config().protocol,
    );

    // 3. Run to completion.
    let report = scenario.run();

    // 4. Report.
    println!();
    println!("console output ------------------------------------------");
    print!("{}", String::from_utf8_lossy(&report.console));
    println!("---------------------------------------------------------");
    println!("workload exit      : {:?}", report.exit);
    println!(
        "completion time    : {} (simulated)",
        report.completion_time
    );
    println!("epochs compared    : {}", report.lockstep_compared);
    println!(
        "lockstep           : {}",
        if report.lockstep_clean {
            "clean — replicas identical at every epoch boundary"
        } else {
            "DIVERGED"
        }
    );
    println!(
        "messages           : {} from primary, {} from backup",
        report.messages_per_replica[0], report.messages_per_replica[1]
    );
    println!(
        "simulated insns    : {} at the primary's hypervisor (nsim)",
        report.primary_stats.simulated
    );
    assert!(report.exit.is_clean_exit());
    assert!(report.lockstep_clean);
}
