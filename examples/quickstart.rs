//! Quickstart: boot a 1-fault-tolerant virtual machine and watch it run.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a guest image (mini-OS + a console program), runs it under the
//! replicated hypervisors, and prints what the *environment* saw plus
//! the replica-coordination bookkeeping.

use hvft::core::{FtConfig, FtSystem, RunEnd};
use hvft::guest::{build_image, hello_source, KernelConfig};

fn main() {
    // 1. Build the guest image: the unmodified mini-kernel plus a user
    //    program that prints to the console, waits a couple of timer
    //    ticks, and exits.
    let kernel = KernelConfig {
        tick_period_us: 1000,
        tick_work: 4,
        ..KernelConfig::default()
    };
    let image = build_image(&kernel, &hello_source("hello from a replicated VM!\n", 3))
        .expect("guest image assembles");
    println!(
        "guest image: {} bytes, entry {:#x}",
        image.size(),
        image.entry
    );

    // 2. Configure the fault-tolerant system: two simulated HP 9000/720-
    //    class processors, a shared disk, and a 10 Mbps coordination LAN
    //    — the paper's §3 prototype.
    let config = FtConfig::default();
    println!(
        "epoch length: {} instructions, protocol: {:?}",
        config.hv.epoch_len, config.protocol
    );

    // 3. Run to completion.
    let mut system = FtSystem::new(&image, config);
    let result = system.run();

    // 4. Report.
    println!();
    println!("console output ------------------------------------------");
    print!("{}", String::from_utf8_lossy(&result.console_output));
    println!("---------------------------------------------------------");
    match result.outcome {
        RunEnd::Exit { code } => println!("workload exit code : {code}"),
        other => println!("workload ended     : {other:?}"),
    }
    println!(
        "completion time    : {} (simulated)",
        result.completion_time
    );
    println!("epochs compared    : {}", result.lockstep.compared());
    println!(
        "lockstep           : {}",
        if result.lockstep.is_clean() {
            "clean — replicas identical at every epoch boundary"
        } else {
            "DIVERGED"
        }
    );
    println!(
        "messages           : {} from primary, {} from backup",
        result.messages_per_replica[0], result.messages_per_replica[1]
    );
    println!(
        "simulated insns    : {} at the primary's hypervisor (nsim)",
        result.primary_stats.simulated
    );
    assert!(result.lockstep.is_clean());
}
