//! Run any registered workload by name — the scenario API's CLI face.
//!
//! ```text
//! cargo run --release --example run_workload            # sweep them all
//! cargo run --release --example run_workload -- sieve   # just one
//! ```
//!
//! Every guest in `hvft-guest`'s workload registry runs through the
//! identical builder-configured pipeline: bare baseline first (the
//! paper's `RT`), then the replicated system (`N′`), printing the
//! normalized performance and coordination bookkeeping for each.

use hvft::core::scenario::Scenario;
use hvft::guest::workload::names;

fn run_one(name: &str) {
    let bare = Scenario::builder()
        .workload_named(name)
        .bare()
        .build()
        .unwrap_or_else(|e| panic!("{name} (bare): {e}"))
        .run();
    let ft = Scenario::builder()
        .workload_named(name)
        .functional_cost()
        .build()
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .run();
    assert!(
        bare.exit.is_clean_exit() && ft.exit.is_clean_exit(),
        "{name}: bare {:?}, replicated {:?}",
        bare.exit,
        ft.exit
    );
    assert_eq!(
        bare.exit.code(),
        ft.exit.code(),
        "{name}: replication must not change the checksum"
    );
    assert!(ft.lockstep_clean, "{name}: lockstep divergence");
    println!(
        "{name:>10}: checksum {:#010x} | bare {} | replicated {} | {} epochs, {} msgs",
        bare.exit.code().expect("clean exit"),
        bare.completion_time,
        ft.completion_time,
        ft.epochs,
        ft.messages_per_replica.iter().sum::<u64>(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<String> = if args.is_empty() { names() } else { args };
    println!("registered workloads: {}\n", names().join(", "));
    for name in &selected {
        run_one(name);
    }
    println!("\nevery workload ran bare and replicated with identical checksums ✓");
}
