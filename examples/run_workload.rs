//! Run any registered workload by name — the scenario API's CLI face.
//!
//! ```text
//! cargo run --release --example run_workload                 # sweep them all
//! cargo run --release --example run_workload -- sieve        # just one
//! cargo run --release --example run_workload -- --tier=jit   # pick the engine
//! ```
//!
//! Every guest in `hvft-guest`'s workload registry runs through the
//! identical builder-configured pipeline: bare baseline first (the
//! paper's `RT`), then the replicated system (`N′`), printing the
//! normalized performance, coordination bookkeeping and the execution-
//! tier breakdown (instructions retired per engine, superblocks
//! compiled, invalidations) for each.

use hvft::core::scenario::{ExecStats, ExecTier, Scenario};
use hvft::guest::workload::names;

fn tier_summary(x: &ExecStats) -> String {
    let mut parts = Vec::new();
    for (label, n) in [
        ("step", x.step_retired),
        ("block", x.block_retired),
        ("jit", x.jit_retired),
    ] {
        if n > 0 {
            parts.push(format!("{label} {n}"));
        }
    }
    if x.superblocks_compiled > 0 {
        parts.push(format!(
            "{} superblocks ({} cross-page), {} invalidations ({} secondary)",
            x.superblocks_compiled,
            x.cross_page_superblocks,
            x.jit_invalidations,
            x.jit_invalidations_secondary
        ));
    }
    let ret_total = x.ret_cache_hits + x.ret_cache_misses;
    if ret_total > 0 {
        parts.push(format!(
            "ret-cache {}/{} ({:.1}% hit)",
            x.ret_cache_hits,
            ret_total,
            100.0 * x.ret_cache_hits as f64 / ret_total as f64
        ));
    }
    if parts.is_empty() {
        "idle".to_owned()
    } else {
        parts.join(", ")
    }
}

fn run_one(name: &str, tier: ExecTier) {
    let bare = Scenario::builder()
        .workload_named(name)
        .bare()
        .exec_tier(tier)
        .build()
        .unwrap_or_else(|e| panic!("{name} (bare): {e}"))
        .run();
    let ft = Scenario::builder()
        .workload_named(name)
        .functional_cost()
        .exec_tier(tier)
        .build()
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .run();
    assert!(
        bare.exit.is_clean_exit() && ft.exit.is_clean_exit(),
        "{name}: bare {:?}, replicated {:?}",
        bare.exit,
        ft.exit
    );
    assert_eq!(
        bare.exit.code(),
        ft.exit.code(),
        "{name}: replication must not change the checksum"
    );
    assert!(ft.lockstep_clean, "{name}: lockstep divergence");
    println!(
        "{name:>10}: checksum {:#010x} | bare {} | replicated {} | {} epochs, {} msgs",
        bare.exit.code().expect("clean exit"),
        bare.completion_time,
        ft.completion_time,
        ft.epochs,
        ft.messages_per_replica.iter().sum::<u64>(),
    );
    println!(
        "{:>10}  tiers: bare [{}] | primary [{}]",
        "",
        tier_summary(&bare.exec_stats()),
        tier_summary(&ft.exec_stats()),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tier = ExecTier::default();
    let mut selected = Vec::new();
    for a in args {
        if let Some(t) = a.strip_prefix("--tier=") {
            tier = t.parse().unwrap_or_else(|e| panic!("{e}"));
        } else {
            selected.push(a);
        }
    }
    if selected.is_empty() {
        selected = names();
    }
    println!("registered workloads: {}", names().join(", "));
    println!("execution tier: {tier}\n");
    for name in &selected {
        run_one(name, tier);
    }
    println!("\nevery workload ran bare and replicated with identical checksums ✓");
}
