//! A machine-room cluster on every core — with a bit-identity proof.
//!
//! ```text
//! cargo run --release --example parallel_cluster
//! ```
//!
//! Six replicated VMs (CPU-, I/O- and console-bound mixes, one with an
//! injected primary failstop, all over one contended 10 Mbps Ethernet)
//! are run twice: once on the strict sequential schedule, once with
//! guest execution spread across worker threads under conservative
//! synchronization (`Parallelism::Threads`). The executor never
//! speculates — every shared-medium effect commits in exact global-time
//! order — so the two runs must agree on *everything* the reports can
//! express. The example hashes both report sets and asserts the digests
//! are equal; CI runs it as the parallel-determinism gate.
//!
//! The wall-clock times printed at the end are the point of the
//! feature; the equal digests are the license to use it.

use hvft::core::scenario::{ClusterScenario, Parallelism, Protocol, RunReport, Scenario};
use hvft::guest::workload::{Dhrystone, Hello, IoBench};
use hvft::guest::{IoMode, KernelConfig};
use hvft::net::link::LinkSpec;
use hvft::sim::time::{SimDuration, SimTime};
use std::time::Instant;

const SHARDS: usize = 6;

fn build_cluster() -> ClusterScenario {
    let mut cluster = ClusterScenario::new(LinkSpec::ethernet_10mbps(), 77);
    for i in 0..SHARDS {
        // Six shards contending for one wire can delay a frame past the
        // default detection timeout, so every shard's detector gets the
        // same generous margin the lossy-LAN example uses — detection
        // must dominate queueing, or contention forges suspicions.
        let b = Scenario::builder()
            .functional_cost()
            .seed(77 + i as u64)
            .detector_timeout(SimDuration::from_millis(300));
        let b = match i % 3 {
            0 => b
                .workload(Dhrystone {
                    iters: 2_500,
                    syscall_every: 7,
                    kernel: KernelConfig {
                        tick_period_us: 2000,
                        tick_work: 2,
                        ..KernelConfig::default()
                    },
                })
                .protocol(Protocol::Old),
            1 => b
                .workload(IoBench {
                    ops: 4,
                    mode: IoMode::Write,
                    num_blocks: 16,
                    seed: 5,
                    ..Default::default()
                })
                .protocol(Protocol::New),
            _ => b.workload(Hello {
                message: "hello from a parallel cluster\n".into(),
                wait_ticks: 2,
                kernel: KernelConfig::default(),
            }),
        };
        // Shard 1 loses its primary mid-run: failover must be
        // schedule-invariant too.
        let b = if i == 1 {
            b.backups(2).fail_primary_at(SimTime::from_nanos(2_000_000))
        } else {
            b
        };
        cluster
            .add(b.build().expect("valid shard scenario"))
            .expect("replicated shard");
    }
    cluster
}

/// FNV-1a over everything the reports can express, so "bit-identical"
/// is one number.
fn digest(reports: &[RunReport]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for r in reports {
        eat(format!(
            "{}|{:?}|{}|{:?}|{:?}|{}|{}|{:?}|{:?}|{}|{}|{:?}|{}|{:?}",
            r.label,
            r.exit,
            r.completion_time,
            r.console,
            r.console_hosts,
            r.epochs,
            r.retired,
            r.failovers,
            r.messages_per_replica,
            r.frames_retransmitted,
            r.frames_suppressed,
            r.op_latencies,
            r.lockstep_compared,
            r.disk_log,
        )
        .as_bytes());
    }
    h
}

fn main() {
    // HVFT_THREADS forces an exact worker count (CI pins 4 so the
    // determinism gate exercises intra-shard replica slots even on a
    // small runner); otherwise, at least two workers even on a
    // single-core box — the machine decides the speedup, the digests
    // decide the correctness.
    let threads = match std::env::var("HVFT_THREADS") {
        Ok(v) => v
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("HVFT_THREADS must be a worker count, got {v:?}"))
            .max(1),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(2, SHARDS),
    };

    println!("=== sequential schedule ===");
    let t0 = Instant::now();
    let mut sequential = build_cluster();
    sequential.parallelism(Parallelism::Sequential);
    let seq_reports = sequential.run();
    let seq_wall = t0.elapsed();
    for (i, r) in seq_reports.iter().enumerate() {
        println!(
            "  shard {i} ({}): {:?} after {} ({} failovers)",
            r.label,
            r.exit,
            r.completion_time,
            r.failovers.len(),
        );
    }

    println!("\n=== same cluster, {threads} worker threads ===");
    let t0 = Instant::now();
    let mut parallel = build_cluster();
    parallel.parallelism(Parallelism::Threads(threads));
    let par_reports = parallel.run();
    let par_wall = t0.elapsed();

    let seq_digest = digest(&seq_reports);
    let par_digest = digest(&par_reports);
    println!("  sequential digest: {seq_digest:#018x}  ({seq_wall:?})");
    println!("  parallel digest:   {par_digest:#018x}  ({par_wall:?})");
    assert_eq!(
        seq_digest, par_digest,
        "parallel execution must be bit-identical to the sequential schedule"
    );
    assert!(
        seq_reports.iter().all(|r| r.exit.is_clean_exit()),
        "every shard must finish cleanly"
    );
    assert_eq!(
        seq_reports[1].failovers.len(),
        1,
        "the injected failstop must promote exactly once — in both modes"
    );
    println!(
        "\nidentical digests across schedules — conservative sync holds ✓ \
         (sequential {seq_wall:?} vs {threads}-thread {par_wall:?})"
    );
}
