//! Epoch-length tuning: the paper's central performance trade-off.
//!
//! ```text
//! cargo run --release --example epoch_tuning
//! ```
//!
//! Short epochs deliver interrupts promptly but pay boundary overhead
//! often; long epochs amortize the overhead but delay interrupts
//! (§4: "Epoch length was our paramount concern"). This example sweeps
//! the epoch length for a small CPU-bound workload, prints the measured
//! normalized performance next to the paper's analytic model, and shows
//! the interrupt-delay side of the trade-off.

use hvft::core::scenario::Scenario;
use hvft::guest::workload::Dhrystone;
use hvft::guest::KernelConfig;
use hvft::model::cpu::NpcModel;

fn workload() -> Dhrystone {
    Dhrystone {
        iters: 40_000,
        syscall_every: 0,
        kernel: KernelConfig {
            tick_period_us: 10_000,
            tick_work: 158,
            ..KernelConfig::default()
        },
    }
}

fn main() {
    // Bare-hardware baseline (the paper's RT).
    let bare = Scenario::builder()
        .workload(workload())
        .bare()
        .disk_blocks(64)
        .build()
        .expect("valid scenario")
        .run();
    println!(
        "bare hardware RT = {} for {} instructions\n",
        bare.completion_time, bare.retired
    );

    let paper = NpcModel::paper();
    println!("| epoch length | NP measured | NPC(EL) paper model | interrupt delay bound |");
    println!("|-------------:|------------:|--------------------:|----------------------:|");
    for el in [1024u32, 2048, 4096, 8192, 16384, 32768, 131_072, 385_000] {
        let r = Scenario::builder()
            .workload(workload())
            .epoch_len(el)
            .lockstep(false)
            .build()
            .expect("valid scenario")
            .run();
        let np = r.completion_time.as_nanos() as f64 / bare.completion_time.as_nanos() as f64;
        // An interrupt buffered at the start of an epoch waits out the
        // whole epoch: EL × 0.02 µs.
        let delay_us = el as f64 * 0.02;
        println!(
            "| {el:>12} | {np:>11.2} | {:>19.2} | {delay_us:>19.0} µs |",
            paper.np(el as u64)
        );
    }
    println!();
    println!("The knee of the curve is why the paper runs epochs as long as the");
    println!("OS tolerates: HP-UX's clock maintenance bounds EL at 385 000, where");
    println!("the model predicts NP = 1.24 — replica coordination itself costs");
    println!("only ~6% there; the rest is instruction-simulation overhead.");
}
