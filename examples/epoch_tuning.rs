//! Epoch-length tuning: the paper's central performance trade-off.
//!
//! ```text
//! cargo run --release --example epoch_tuning
//! ```
//!
//! Short epochs deliver interrupts promptly but pay boundary overhead
//! often; long epochs amortize the overhead but delay interrupts
//! (§4: "Epoch length was our paramount concern"). This example sweeps
//! the epoch length for a small CPU-bound workload, prints the measured
//! normalized performance next to the paper's analytic model, and shows
//! the interrupt-delay side of the trade-off.

use hvft::core::{FtConfig, FtSystem, ProtocolVariant};
use hvft::guest::{build_image, dhrystone_source, KernelConfig};
use hvft::hypervisor::bare::BareHost;
use hvft::hypervisor::cost::CostModel;
use hvft::model::cpu::NpcModel;

fn main() {
    let kernel = KernelConfig {
        tick_period_us: 10_000,
        tick_work: 158,
        ..KernelConfig::default()
    };
    let image = build_image(&kernel, &dhrystone_source(40_000, 0)).expect("guest image assembles");

    // Bare-hardware baseline (the paper's RT).
    let mut bare = BareHost::new(
        &image,
        CostModel::hp9000_720(),
        hvft::guest::layout::RAM_BYTES,
        64,
        0,
    );
    let bare_run = bare.run(1_000_000_000);
    println!(
        "bare hardware RT = {} for {} instructions\n",
        bare_run.time, bare_run.retired
    );

    let paper = NpcModel::paper();
    println!("| epoch length | NP measured | NPC(EL) paper model | interrupt delay bound |");
    println!("|-------------:|------------:|--------------------:|----------------------:|");
    for el in [1024u32, 2048, 4096, 8192, 16384, 32768, 131_072, 385_000] {
        let mut cfg = FtConfig {
            protocol: ProtocolVariant::Old,
            lockstep_check: false,
            ..FtConfig::default()
        };
        cfg.hv.epoch_len = el;
        let mut sys = FtSystem::new(&image, cfg);
        let r = sys.run();
        let np = r.completion_time.as_nanos() as f64 / bare_run.time.as_nanos() as f64;
        // An interrupt buffered at the start of an epoch waits out the
        // whole epoch: EL × 0.02 µs.
        let delay_us = el as f64 * 0.02;
        println!(
            "| {el:>12} | {np:>11.2} | {:>19.2} | {delay_us:>19.0} µs |",
            paper.np(el as u64)
        );
    }
    println!();
    println!("The knee of the curve is why the paper runs epochs as long as the");
    println!("OS tolerates: HP-UX's clock maintenance bounds EL at 385 000, where");
    println!("the model predicts NP = 1.24 — replica coordination itself costs");
    println!("only ~6% there; the rest is instruction-simulation overhead.");
}
