//! Reintegration demo: failstop a backup, repair it, and survive a
//! second failover that only the repaired replica can cover.
//!
//! ```text
//! cargo run --release --example rejoin
//! ```
//!
//! The paper's §5 notes that a repaired processor must be reintegrated
//! by "copying the state of the primary" before the system tolerates
//! further failures. This example walks the whole arc on a 3-replica
//! chain (t = 2):
//!
//! 1. backup 2 failstops — coverage drops from t = 2 to t = 1;
//! 2. the repaired processor rejoins the LAN; at its next epoch
//!    boundary the acting primary snapshots its whole state and streams
//!    it over in bounded chunks, and replica 2 resumes as a live
//!    backup — coverage is back to t = 2;
//! 3. the primary failstops — backup 1 promotes (first failover);
//! 4. the new primary failstops too — the *reintegrated* replica 2
//!    promotes (second failover) and carries the workload to
//!    completion. Without step 2 the chain would be exhausted here.
//!
//! The punchline stays the paper's: the console stream and exit
//! checksum are bit-identical to an undisturbed run.

use hvft::core::scenario::{Scenario, ScenarioBuilder};
use hvft::guest::workload::Dhrystone;
use hvft::net::link::LinkSpec;
use hvft::sim::time::{SimDuration, SimTime};

fn base() -> ScenarioBuilder {
    // The timeline below interleaves kills, repairs and detections
    // inside one run, so the detector must resolve failures fast
    // relative to the workload: 2 ms detection against a ~80 ms run,
    // with heartbeats (every detector_timeout/16) covering the primary's
    // boundary stall while the ~266 KB state transfer drains (~14 ms on
    // the 155 Mbps link).
    Scenario::builder()
        .workload(Dhrystone {
            iters: 40_000,
            syscall_every: 9,
            ..Default::default()
        })
        .backups(2)
        .functional_cost()
        .link(LinkSpec::atm_155mbps())
        .retransmit(SimDuration::from_micros(500))
        .detector_timeout(SimDuration::from_millis(2))
}

fn main() {
    // Reference run: no failures, to learn the duration and checksum.
    let reference = base().build().expect("valid scenario").run();
    let ref_code = reference.exit.code().expect("reference run exits");
    let t = reference.completion_time;
    println!("reference     : {t} simulated, checksum {ref_code:#010x}");

    let kill_backup = SimTime::ZERO + t / 8;
    let rejoin_at = SimTime::ZERO + t / 4;
    let kill_first = SimTime::ZERO + (t / 8) * 5;
    let kill_second = SimTime::ZERO + (t / 8) * 6;

    let report = base()
        .fail_replica_at(kill_backup, 2)
        .rejoin_replica_at(rejoin_at, 2)
        .fail_primary_at(kill_first)
        .fail_primary_at(kill_second)
        .build()
        .expect("valid scenario")
        .run();

    println!("t0 {kill_backup}: backup 2 failstopped (coverage t=2 -> t=1)");
    let rejoined = *report
        .reintegrations
        .first()
        .expect("the repaired replica must reintegrate");
    assert_eq!(rejoined.replica, 2);
    println!(
        "t1 {rejoin_at}: replica 2 repaired; reintegrated at {} from the epoch-{} \
         snapshot ({} bytes transferred) — coverage restored",
        rejoined.at, rejoined.epoch, rejoined.bytes
    );
    assert_eq!(
        report.failovers.len(),
        2,
        "both primary failstops must be survived, got {:?}",
        report.failovers
    );
    println!(
        "t2 {kill_first}: primary failstopped; backup 1 promoted at {}",
        report.failovers[0].at
    );
    println!(
        "t3 {kill_second}: new primary failstopped; reintegrated replica 2 \
         promoted at {}",
        report.failovers[1].at
    );

    let code = report.exit.code().unwrap_or_else(|| {
        panic!("run ended {:?}", report.exit);
    });
    assert_eq!(code, ref_code, "reintegration must stay transparent");
    assert_eq!(report.console, reference.console, "console must match");
    assert!(report.lockstep_clean, "replicas must never diverge");
    assert_eq!(report.state_transfer_bytes, rejoined.bytes);
    println!(
        "workload      : checksum {code:#010x}, console and lockstep identical \
         to the undisturbed run ✓"
    );
    println!(
        "wire          : {} state-transfer bytes, {} frames re-sent",
        report.state_transfer_bytes, report.frames_retransmitted
    );
}
