//! Failover demo: kill the primary mid-disk-write and watch the backup
//! take over without the environment noticing.
//!
//! ```text
//! cargo run --release --example failover_demo
//! ```
//!
//! Demonstrates the paper's §2.2 machinery: the backup promotes itself
//! (P6), synthesizes an *uncertain* interrupt for outstanding I/O (P7),
//! the replayed driver retries, and the disk's operation log remains
//! consistent with what one single processor could have produced.

use hvft::core::{FailureSpec, FtConfig, FtSystem, RunEnd};
use hvft::devices::check_single_processor_consistency;
use hvft::guest::{build_image, io_bench_source, IoMode, KernelConfig};
use hvft::sim::time::SimTime;

fn main() {
    let image = build_image(
        &KernelConfig::default(),
        &io_bench_source(8, IoMode::Write, 64, 3),
    )
    .expect("guest image assembles");

    // Reference run: no failure, to learn the total duration and the
    // reference checksum.
    let mut reference = FtSystem::new(&image, FtConfig::default());
    let ref_result = reference.run();
    let ref_code = match ref_result.outcome {
        RunEnd::Exit { code } => code,
        other => panic!("reference run ended {other:?}"),
    };
    println!(
        "reference run : {} simulated, checksum {ref_code:#010x}",
        ref_result.completion_time
    );

    // Failure run: kill the primary squarely in the middle of the I/O
    // phase (very likely mid-operation: each write occupies ~26 ms).
    let fail_at = SimTime::from_nanos(ref_result.completion_time.as_nanos() / 2);
    let config = FtConfig {
        failure: FailureSpec::At(fail_at),
        ..FtConfig::default()
    };
    let mut system = FtSystem::new(&image, config);
    let result = system.run();

    println!("failure       : primary killed at {fail_at}");
    let info = *result
        .failovers
        .first()
        .expect("backup must have promoted itself");
    println!(
        "failover      : backup promoted at {} (failover epoch {}, P7 uncertain synthesized: {})",
        info.at, info.epoch, info.uncertain_synthesized
    );
    match result.outcome {
        RunEnd::Exit { code } => {
            println!("workload      : completed with checksum {code:#010x}");
            assert_eq!(code, ref_code, "failover must be checksum-transparent");
            println!("transparency  : checksum identical to the failure-free run ✓");
        }
        other => panic!("run ended {other:?}"),
    }
    println!("driver retries: {}", result.guest_retries);

    // The two-generals resolution: the environment may see repeated
    // commands, but only ones a transient device fault could also have
    // produced.
    match check_single_processor_consistency(&result.disk_log) {
        Ok(()) => println!(
            "environment   : disk log of {} operations is single-processor consistent ✓",
            result.disk_log.len()
        ),
        Err(e) => panic!("environment saw an anomaly: {e}"),
    }
    let hosts: Vec<u8> = result.disk_log.iter().map(|e| e.host).collect();
    println!("issuing hosts : {hosts:?} (0 = failed primary, 1 = promoted backup)");
}
