//! Failover demo: kill the primary mid-disk-write and watch the backup
//! take over without the environment noticing.
//!
//! ```text
//! cargo run --release --example failover_demo
//! ```
//!
//! Demonstrates the paper's §2.2 machinery: the backup promotes itself
//! (P6), synthesizes an *uncertain* interrupt for outstanding I/O (P7),
//! the replayed driver retries, and the disk's operation log remains
//! consistent with what one single processor could have produced.

use hvft::core::scenario::Scenario;
use hvft::devices::check_single_processor_consistency;
use hvft::guest::workload::IoBench;
use hvft::guest::IoMode;
use hvft::sim::time::SimTime;

fn workload() -> IoBench {
    IoBench {
        ops: 8,
        mode: IoMode::Write,
        num_blocks: 64,
        seed: 3,
        ..Default::default()
    }
}

fn main() {
    // Reference run: no failure, to learn the total duration and the
    // reference checksum.
    let reference = Scenario::builder()
        .workload(workload())
        .disk_blocks(64)
        .build()
        .expect("valid scenario")
        .run();
    let ref_code = reference.exit.code().expect("reference run exits");
    println!(
        "reference run : {} simulated, checksum {ref_code:#010x}",
        reference.completion_time
    );

    // Failure run: kill the primary squarely in the middle of the I/O
    // phase (very likely mid-operation: each write occupies ~26 ms).
    let fail_at = SimTime::ZERO + reference.completion_time / 2;
    let report = Scenario::builder()
        .workload(workload())
        .disk_blocks(64)
        .fail_primary_at(fail_at)
        .build()
        .expect("valid scenario")
        .run();

    println!("failure       : primary killed at {fail_at}");
    let info = *report
        .failovers
        .first()
        .expect("backup must have promoted itself");
    println!(
        "failover      : backup promoted at {} (failover epoch {}, P7 uncertain synthesized: {})",
        info.at, info.epoch, info.uncertain_synthesized
    );
    let code = report.exit.code().unwrap_or_else(|| {
        panic!("run ended {:?}", report.exit);
    });
    println!("workload      : completed with checksum {code:#010x}");
    assert_eq!(code, ref_code, "failover must be checksum-transparent");
    println!("transparency  : checksum identical to the failure-free run ✓");
    println!("driver retries: {}", report.guest_retries);

    // The two-generals resolution: the environment may see repeated
    // commands, but only ones a transient device fault could also have
    // produced.
    match check_single_processor_consistency(&report.disk_log) {
        Ok(()) => println!(
            "environment   : disk log of {} operations is single-processor consistent ✓",
            report.disk_log.len()
        ),
        Err(e) => panic!("environment saw an anomaly: {e}"),
    }
    let hosts: Vec<u8> = report.disk_log.iter().map(|e| e.host).collect();
    println!("issuing hosts : {hosts:?} (0 = failed primary, 1 = promoted backup)");
}
