//! The t-fault-tolerant generalization: a chain of replicas surviving
//! multiple successive primary failures.
//!
//! ```text
//! cargo run --release --example t_fault_chain
//! ```
//!
//! §2 of the paper: "n processors implement a system that can tolerate
//! n−1 faults … generalization to t-fault-tolerant virtual machines is
//! straightforward." This example runs 1 primary + 3 backups, kills the
//! acting primary three separate times, and shows the last survivor
//! finishing the workload with the reference result.

use hvft::core::chain::{ChainEnd, TChain};
use hvft::guest::{build_image, dhrystone_source, KernelConfig};
use hvft::hypervisor::cost::CostModel;
use hvft::hypervisor::hvguest::HvConfig;

fn main() {
    let kernel = KernelConfig {
        tick_period_us: 1000,
        tick_work: 2,
        ..KernelConfig::default()
    };
    let image = build_image(&kernel, &dhrystone_source(4_000, 8)).expect("image assembles");
    let hv = HvConfig {
        epoch_len: 1024,
        ..HvConfig::default()
    };

    // Reference: no failures.
    let mut reference = TChain::new(&image, 3, CostModel::functional(), hv);
    let ref_result = reference.run(&[], 1_000_000);
    let ref_code = match ref_result.end {
        ChainEnd::Exit { code } => code,
        other => panic!("reference chain ended {other:?}"),
    };
    println!(
        "reference: 4 replicas, {} epochs, exit code {ref_code:#010x}, no failures",
        ref_result.epochs
    );

    // Adversarial: kill the acting primary at epochs 5, 20 and 40.
    let mut chain = TChain::new(&image, 3, CostModel::functional(), hv);
    let result = chain.run(&[5, 20, 40], 1_000_000);
    println!(
        "with failures at epochs 5/20/40: {} primaries failstopped, {} replica(s) left",
        result.failures,
        chain.live()
    );
    match result.end {
        ChainEnd::Exit { code } => {
            println!("survivor exit code: {code:#010x}");
            assert_eq!(
                code, ref_code,
                "the 4th replica must produce the reference result"
            );
            println!("t-fault transparency: identical to the failure-free run ✓");
        }
        other => panic!("chain ended {other:?}"),
    }

    // One failure too many: the chain is exhausted, as the model demands
    // (t-fault tolerance means t faults, not t+1).
    let mut doomed = TChain::new(&image, 3, CostModel::functional(), hv);
    let r = doomed.run(&[1, 2, 3, 4], 1_000_000);
    assert_eq!(r.end, ChainEnd::Exhausted);
    println!("4 failures against t = 3: chain exhausted, exactly as specified ✓");
}
