//! The t-fault-tolerant generalization: a chain of replicas surviving
//! multiple successive primary failures.
//!
//! ```text
//! cargo run --release --example t_fault_chain
//! ```
//!
//! §2 of the paper: "n processors implement a system that can tolerate
//! n−1 faults … generalization to t-fault-tolerant virtual machines is
//! straightforward." This example runs 1 primary + 3 backups through
//! the chain driver, kills the acting primary three separate times, and
//! shows the last survivor finishing the workload with the reference
//! result.

use hvft::core::scenario::{ExitStatus, Scenario, ScenarioBuilder};
use hvft::guest::workload::Dhrystone;
use hvft::guest::KernelConfig;

fn base() -> ScenarioBuilder {
    Scenario::builder()
        .workload(Dhrystone {
            iters: 4_000,
            syscall_every: 8,
            kernel: KernelConfig {
                tick_period_us: 1000,
                tick_work: 2,
                ..KernelConfig::default()
            },
        })
        .chain()
        .backups(3)
        .functional_cost()
        .epoch_len(1024)
}

fn main() {
    // Reference: no failures.
    let reference = base().build().expect("valid scenario").run();
    let ref_code = reference.exit.code().expect("reference chain exits");
    println!(
        "reference: 4 replicas, {} epochs, exit code {ref_code:#010x}, no failures",
        reference.epochs
    );

    // Adversarial: kill the acting primary at epochs 5, 20 and 40.
    let report = base()
        .fail_primary_at_epoch(5)
        .fail_primary_at_epoch(20)
        .fail_primary_at_epoch(40)
        .build()
        .expect("valid scenario")
        .run();
    println!(
        "with failures at epochs 5/20/40: {} primaries failstopped",
        report.failovers.len(),
    );
    let code = report
        .exit
        .code()
        .unwrap_or_else(|| panic!("chain ended {:?}", report.exit));
    println!("survivor exit code: {code:#010x}");
    assert_eq!(
        code, ref_code,
        "the 4th replica must produce the reference result"
    );
    println!("t-fault transparency: identical to the failure-free run ✓");

    // One failure too many: the chain is exhausted, as the model demands
    // (t-fault tolerance means t faults, not t+1).
    let doomed = base()
        .fail_primary_at_epoch(1)
        .fail_primary_at_epoch(2)
        .fail_primary_at_epoch(3)
        .fail_primary_at_epoch(4)
        .build()
        .expect("valid scenario")
        .run();
    assert_eq!(doomed.exit, ExitStatus::Exhausted);
    println!("4 failures against t = 3: chain exhausted, exactly as specified ✓");
}
