//! The TLB surprise: why the hypervisor must manage the TLB.
//!
//! ```text
//! cargo run --release --example divergence
//! ```
//!
//! The paper's authors (and several HP engineers) were surprised to find
//! the HP 9000/720 violates the Ordinary Instruction Assumption: its TLB
//! replacement is **non-deterministic**, and since TLB misses are handled
//! by software, replicas fed identical instruction streams can diverge
//! (§3.2). This example runs the replicated system both ways:
//!
//! 1. guest-managed TLB on hardware with random replacement → the
//!    lockstep checker reports divergence;
//! 2. hypervisor-managed TLB (the paper's fix) → clean lockstep on the
//!    very same hardware.

use hvft::core::scenario::{RunReport, Scenario};
use hvft::guest::workload::Dhrystone;

fn run(tlb_managed: bool) -> RunReport {
    Scenario::builder()
        .workload(Dhrystone {
            iters: 3_000,
            syscall_every: 0,
            ..Default::default()
        })
        .functional_cost()
        .tlb_managed(tlb_managed)
        .tlb_slots(4) // a tiny TLB keeps the replacement policy busy
        .build()
        .expect("valid scenario")
        .run()
}

fn main() {
    println!("Both replicas boot the identical image in the identical state.");
    println!("The machines' TLBs use RANDOM replacement with different seeds —");
    println!("the non-determinism is real hardware behaviour, invisible to the");
    println!("VM state, and the protocols must survive it.\n");

    println!("== 1. TLB managed by the guest kernel (no hypervisor takeover) ==");
    let broken = run(false);
    println!("epochs compared : {}", broken.lockstep_compared);
    if broken.lockstep_clean {
        println!("(no divergence this time — rerun with another seed)");
    } else {
        println!("DIVERGED — replica state hashes differ at an epoch boundary");
    }

    println!();
    println!("== 2. TLB managed by the hypervisor (the paper's §3.2 fix) ==");
    let fixed = run(true);
    println!("epochs compared : {}", fixed.lockstep_compared);
    println!(
        "lockstep        : {}",
        if fixed.lockstep_clean {
            "clean — misses serviced invisibly, replicas identical ✓"
        } else {
            "diverged!?"
        }
    );
    assert!(fixed.lockstep_clean);
    assert!(
        !broken.lockstep_clean,
        "expected divergence with unmanaged TLBs"
    );
    println!();
    println!("The hypervisor intercepts TLB-miss traps, walks the guest page");
    println!("table itself and inserts the entry, so the guest never observes");
    println!("which entries the hardware evicted. Strictly speaking the virtual");
    println!("machine now differs from the real ISA — but in a way no correct");
    println!("guest can detect (the paper's own caveat).");
}
