//! The §4.2 disk workloads under replication, with transient-fault
//! injection exercising the IO1/IO2 device contract.
//!
//! ```text
//! cargo run --release --example disk_workload
//! ```
//!
//! Runs the random-block write benchmark with a disk that occasionally
//! reports *uncertain* outcomes (SCSI `CHECK_CONDITION`), shows the
//! guest driver's retries flowing through the replicated system, and
//! reports per-operation latency — the paper's 26 ms → 27.8 ms write
//! comparison.

use hvft::core::{FtConfig, FtSystem, RunEnd};
use hvft::devices::check_single_processor_consistency;
use hvft::guest::{build_image, io_bench_source, IoMode, KernelConfig};
use hvft::hypervisor::bare::BareHost;
use hvft::hypervisor::cost::CostModel;

fn main() {
    let ops = 12;
    let image = build_image(
        &KernelConfig::default(),
        &io_bench_source(ops, IoMode::Write, 64, 11),
    )
    .expect("image assembles");

    // Bare-hardware baseline.
    let mut bare = BareHost::new(
        &image,
        CostModel::hp9000_720(),
        hvft::guest::layout::RAM_BYTES,
        64,
        0,
    );
    let bare_run = bare.run(5_000_000_000);
    println!("bare hardware  : {} for {ops} writes", bare_run.time);

    // Replicated, with 15% transient uncertainty injected at the disk.
    let cfg = FtConfig {
        disk_fault_prob: 0.15,
        seed: 9,
        ..FtConfig::default()
    };
    let mut sys = FtSystem::new(&image, cfg);
    let r = sys.run();
    match r.outcome {
        RunEnd::Exit { .. } => {}
        other => panic!("run ended {other:?}"),
    }
    println!("replicated     : {} ({}x bare)", r.completion_time, {
        let np = r.completion_time.as_nanos() as f64 / bare_run.time.as_nanos() as f64;
        format!("{np:.2}")
    });
    println!(
        "driver retries : {} (uncertain outcomes, IO2)",
        r.guest_retries
    );
    println!(
        "disk log       : {} operations for {ops} logical writes",
        r.disk_log.len()
    );

    if !r.op_latencies.is_empty() {
        let mean_ns: u64 =
            r.op_latencies.iter().map(|d| d.as_nanos()).sum::<u64>() / r.op_latencies.len() as u64;
        println!(
            "op latency     : mean {:.1} ms under FT (paper: 26 ms bare → 27.8 ms replicated)",
            mean_ns as f64 / 1e6
        );
    }

    check_single_processor_consistency(&r.disk_log).expect("environment consistency");
    println!("environment    : log is single-processor consistent ✓");
    assert!(
        r.lockstep.is_clean(),
        "retries must replay identically at the backup"
    );
    println!(
        "lockstep       : clean across {} epochs ✓",
        r.lockstep.compared()
    );
}
