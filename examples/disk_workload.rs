//! The §4.2 disk workloads under replication, with transient-fault
//! injection exercising the IO1/IO2 device contract.
//!
//! ```text
//! cargo run --release --example disk_workload
//! ```
//!
//! Runs the random-block write benchmark with a disk that occasionally
//! reports *uncertain* outcomes (SCSI `CHECK_CONDITION`), shows the
//! guest driver's retries flowing through the replicated system, and
//! reports per-operation latency — the paper's 26 ms → 27.8 ms write
//! comparison — straight from the report's timing histogram.

use hvft::core::scenario::Scenario;
use hvft::devices::check_single_processor_consistency;
use hvft::guest::workload::IoBench;
use hvft::guest::IoMode;

fn workload(ops: u32) -> IoBench {
    IoBench {
        ops,
        mode: IoMode::Write,
        num_blocks: 64,
        seed: 11,
        ..Default::default()
    }
}

fn main() {
    let ops = 12;

    // Bare-hardware baseline — same workload, bare driver.
    let bare = Scenario::builder()
        .workload(workload(ops))
        .bare()
        .disk_blocks(64)
        .build()
        .expect("valid scenario")
        .run();
    println!("bare hardware  : {} for {ops} writes", bare.completion_time);

    // Replicated, with 15% transient uncertainty injected at the disk.
    let report = Scenario::builder()
        .workload(workload(ops))
        .disk_blocks(64)
        .disk_fault_prob(0.15)
        .seed(9)
        .build()
        .expect("valid scenario")
        .run();
    assert!(report.exit.is_clean_exit(), "{:?}", report.exit);
    let np = report.completion_time.as_nanos() as f64 / bare.completion_time.as_nanos() as f64;
    println!(
        "replicated     : {} ({np:.2}x bare)",
        report.completion_time
    );
    println!(
        "driver retries : {} (uncertain outcomes, IO2)",
        report.guest_retries
    );
    println!(
        "disk log       : {} operations for {ops} logical writes",
        report.disk_log.len()
    );

    let hist = &report.op_latency_hist;
    if hist.total() > 0 {
        let mean_ns: u64 = report
            .op_latencies
            .iter()
            .map(|d| d.as_nanos())
            .sum::<u64>()
            / report.op_latencies.len() as u64;
        println!(
            "op latency     : mean {:.1} ms, p90 <= {} over {} ops (paper: 26 ms bare -> 27.8 ms replicated)",
            mean_ns as f64 / 1e6,
            hist.quantile(0.9).expect("nonempty histogram"),
            hist.total(),
        );
    }

    check_single_processor_consistency(&report.disk_log).expect("environment consistency");
    println!("environment    : log is single-processor consistent ✓");
    assert!(
        report.lockstep_clean,
        "retries must replay identically at the backup"
    );
    println!(
        "lockstep       : clean across {} epochs ✓",
        report.lockstep_compared
    );
}
