//! Three fault-tolerant systems on one lossy Ethernet — the §4.3
//! scenario at machine-room scale.
//!
//! ```text
//! cargo run --release --example lossy_lan
//! ```
//!
//! Where the other examples give each primary/backup pair a private,
//! perfect network, this one runs a small machine room: three
//! independent replicated VMs (a CPU-bound dhrystone, a disk-write
//! benchmark, and a console workload) share a single 10 Mbps Ethernet
//! that *loses one message in five*. The link-level ack/retransmission
//! layer (`hvft-net::reliable`) recovers every drop below the protocol,
//! a failstop is injected into the disk shard's primary for good
//! measure, and the punchline is the paper's: the environment cannot
//! tell. Every shard's exit code and console stream is bit-identical
//! to the same cluster run over a lossless wire.

use hvft::core::cluster::FtCluster;
use hvft::core::{FailureSpec, FtConfig, FtRunResult, ProtocolVariant};
use hvft::guest::{
    build_image, dhrystone_source, hello_source, io_bench_source, IoMode, KernelConfig,
};
use hvft::hypervisor::cost::CostModel;
use hvft::net::link::LinkSpec;
use hvft::sim::time::{SimDuration, SimTime};

const LOSS: f64 = 0.2;

fn shard_cfg(protocol: ProtocolVariant, seed: u64, loss: f64) -> FtConfig {
    FtConfig {
        cost: CostModel::functional(),
        backups: 1,
        protocol,
        seed,
        loss_prob: loss,
        retransmit: Some(SimDuration::from_millis(5)),
        // Detection must dominate worst-case retransmission gaps
        // (head-only bursts, backoff capped at 4 × rto).
        detector_timeout: SimDuration::from_millis(300),
        ..FtConfig::default()
    }
}

fn run_cluster(loss: f64, fail_disk_shard_at: Option<SimTime>) -> (Vec<FtRunResult>, u64, u64) {
    let kernel = KernelConfig {
        tick_period_us: 2000,
        tick_work: 2,
        ..KernelConfig::default()
    };
    let images = [
        build_image(&kernel, &dhrystone_source(1_500, 7)).expect("dhrystone image"),
        build_image(
            &KernelConfig::default(),
            &io_bench_source(3, IoMode::Write, 16, 5),
        )
        .expect("io image"),
        build_image(
            &KernelConfig::default(),
            &hello_source("hello from a lossy LAN\n", 2),
        )
        .expect("hello image"),
    ];
    // The protocol variant each workload is run under in the paper's
    // evaluation: §2 (boundary ack-wait) for the streaming CPU shard,
    // the §4.3 revision (I/O-gated acks) for the disk and console
    // shards, whose round trips self-clock them.
    let variants = [
        ProtocolVariant::Old,
        ProtocolVariant::New,
        ProtocolVariant::New,
    ];
    let mut cluster = FtCluster::new(LinkSpec::ethernet_10mbps(), 42);
    for (i, image) in images.iter().enumerate() {
        let mut cfg = shard_cfg(variants[i], 42 + i as u64, loss);
        if i == 1 {
            if let Some(at) = fail_disk_shard_at {
                cfg.failure = FailureSpec::At(at);
            }
        }
        cluster.add_system(image, cfg);
    }
    let results = cluster.run();
    let stats = cluster.lan_stats();
    let retx = results.iter().map(|r| r.frames_retransmitted).sum();
    (results, stats.dropped, retx)
}

fn main() {
    let kill_at = Some(SimTime::from_nanos(2_000_000));

    println!("=== reference: same cluster, lossless wire ===");
    let (clean, clean_drops, _) = run_cluster(0.0, kill_at);
    for (i, r) in clean.iter().enumerate() {
        println!(
            "  shard {i}: {:?} after {} ({} failovers, console {:?})",
            r.outcome,
            r.completion_time,
            r.failovers.len(),
            String::from_utf8_lossy(&r.console_output),
        );
    }
    assert_eq!(clean_drops, 0);

    println!("\n=== same cluster, {}% message loss ===", LOSS * 100.0);
    let (lossy, drops, retx) = run_cluster(LOSS, kill_at);
    for (i, r) in lossy.iter().enumerate() {
        println!(
            "  shard {i}: {:?} after {} ({} failovers, {} frames re-sent, {} dups suppressed)",
            r.outcome,
            r.completion_time,
            r.failovers.len(),
            r.frames_retransmitted,
            r.frames_suppressed,
        );
    }
    println!("\nmedium dropped {drops} frames; retransmission re-sent {retx}");
    assert!(drops > 0, "the lossy wire must actually lose traffic");
    assert!(retx > 0, "recovery must actually happen");

    // The paper's claim, cluster-wide: the environment cannot tell.
    for (i, (c, l)) in clean.iter().zip(lossy.iter()).enumerate() {
        assert_eq!(
            format!("{:?}", c.outcome),
            format!("{:?}", l.outcome),
            "shard {i}: exit codes must match"
        );
        assert_eq!(
            c.console_output, l.console_output,
            "shard {i}: console streams must match"
        );
    }
    assert_eq!(
        lossy[1].failovers.len(),
        1,
        "the injected failstop must cause exactly one promotion"
    );
    println!(
        "\nevery shard's exit code and console stream is identical to the \
         lossless run — the environment cannot tell ✓"
    );
}
