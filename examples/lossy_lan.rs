//! Three fault-tolerant systems on one lossy Ethernet — the §4.3
//! scenario at machine-room scale.
//!
//! ```text
//! cargo run --release --example lossy_lan
//! ```
//!
//! Where the other examples give each primary/backup pair a private,
//! perfect network, this one runs a small machine room: three
//! independent replicated VMs (a CPU-bound dhrystone, a disk-write
//! benchmark, and a console workload) share a single 10 Mbps Ethernet
//! that *loses one message in five*. The link-level ack/retransmission
//! layer (`hvft-net::reliable`) recovers every drop below the protocol,
//! a failstop is injected into the disk shard's primary for good
//! measure, and the punchline is the paper's: the environment cannot
//! tell. Every shard's exit code and console stream is bit-identical
//! to the same cluster run over a lossless wire.

use hvft::core::scenario::{ClusterScenario, Protocol, RunReport, Scenario};
use hvft::guest::workload::{Dhrystone, Hello, IoBench};
use hvft::guest::{IoMode, KernelConfig};
use hvft::net::link::LinkSpec;
use hvft::sim::time::{SimDuration, SimTime};

const LOSS: f64 = 0.2;

fn run_cluster(loss: f64, fail_disk_shard_at: Option<SimTime>) -> Vec<RunReport> {
    // The protocol variant each workload is run under in the paper's
    // evaluation: §2 (boundary ack-wait) for the streaming CPU shard,
    // the §4.3 revision (I/O-gated acks) for the disk and console
    // shards, whose round trips self-clock them.
    let mut cluster = ClusterScenario::new(LinkSpec::ethernet_10mbps(), 42);
    for i in 0..3usize {
        let mut b = Scenario::builder().functional_cost().seed(42 + i as u64);
        b = match i {
            0 => b
                .workload(Dhrystone {
                    iters: 1_500,
                    syscall_every: 7,
                    kernel: KernelConfig {
                        tick_period_us: 2000,
                        tick_work: 2,
                        ..KernelConfig::default()
                    },
                })
                .protocol(Protocol::Old),
            1 => b
                .workload(IoBench {
                    ops: 3,
                    mode: IoMode::Write,
                    num_blocks: 16,
                    seed: 5,
                    ..Default::default()
                })
                .protocol(Protocol::New),
            _ => b
                .workload(Hello {
                    message: "hello from a lossy LAN\n".into(),
                    wait_ticks: 2,
                    kernel: KernelConfig::default(),
                })
                .protocol(Protocol::New),
        };
        // The reliable layer and detection margins run on BOTH sides of
        // the comparison, so the lossless reference differs from the
        // lossy run in the loss draws alone. Detection must dominate
        // worst-case retransmission gaps (head-only bursts, backoff
        // capped at 4 × rto).
        b = b
            .retransmit(SimDuration::from_millis(5))
            .detector_timeout(SimDuration::from_millis(300));
        if loss > 0.0 {
            b = b.lossy(loss);
        }
        if i == 1 {
            if let Some(at) = fail_disk_shard_at {
                b = b.fail_primary_at(at);
            }
        }
        cluster
            .add(b.build().expect("valid shard scenario"))
            .expect("replicated shard");
    }
    cluster.run()
}

fn main() {
    let kill_at = Some(SimTime::from_nanos(2_000_000));

    println!("=== reference: same cluster, lossless wire ===");
    let clean = run_cluster(0.0, kill_at);
    for (i, r) in clean.iter().enumerate() {
        println!(
            "  shard {i} ({}): {:?} after {} ({} failovers, console {:?})",
            r.label,
            r.exit,
            r.completion_time,
            r.failovers.len(),
            String::from_utf8_lossy(&r.console),
        );
    }

    println!("\n=== same cluster, {}% message loss ===", LOSS * 100.0);
    let lossy = run_cluster(LOSS, kill_at);
    let retx: u64 = lossy.iter().map(|r| r.frames_retransmitted).sum();
    for (i, r) in lossy.iter().enumerate() {
        println!(
            "  shard {i}: {:?} after {} ({} failovers, {} frames re-sent, {} dups suppressed)",
            r.exit,
            r.completion_time,
            r.failovers.len(),
            r.frames_retransmitted,
            r.frames_suppressed,
        );
    }
    println!("\nretransmission re-sent {retx} frames");
    assert!(retx > 0, "recovery must actually happen");

    // The paper's claim, cluster-wide: the environment cannot tell.
    for (i, (c, l)) in clean.iter().zip(lossy.iter()).enumerate() {
        assert_eq!(c.exit, l.exit, "shard {i}: exit codes must match");
        assert_eq!(
            c.console, l.console,
            "shard {i}: console streams must match"
        );
    }
    assert_eq!(
        lossy[1].failovers.len(),
        1,
        "the injected failstop must cause exactly one promotion"
    );
    println!(
        "\nevery shard's exit code and console stream is identical to the \
         lossless run — the environment cannot tell ✓"
    );
}
