//! A 3-replica fault-tolerant VM surviving two cascading primary
//! failures — in the full DES, with realistic link latency, watched
//! live by a run observer.
//!
//! ```text
//! cargo run --release --example t_fault_des
//! ```
//!
//! Where `t_fault_chain` demonstrates the t-fault generalization at the
//! protocol level (round-synchronous, abstract links), this example
//! runs it through the same machinery as the paper's prototype: one
//! primary and two ordered backups on a 10 Mbps Ethernet, per-epoch
//! `[Tme]`/`[end]` broadcasts with per-backup acknowledgments,
//! rank-scaled timeout failure detectors, and a shared console. The
//! original primary is killed mid-run; its successor is killed a little
//! later; the last survivor finishes the workload with the reference
//! checksum. An [`Observer`] hooked into the run reports the failover
//! timeline and per-replica message traffic as it happens.

use hvft::core::observer::Observer;
use hvft::core::scenario::{Scenario, ScenarioBuilder};
use hvft::core::system::FailoverInfo;
use hvft::guest::workload::Dhrystone;
use hvft::guest::KernelConfig;
use hvft::sim::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

fn base() -> ScenarioBuilder {
    Scenario::builder()
        .workload(Dhrystone {
            iters: 4_000,
            syscall_every: 8,
            kernel: KernelConfig {
                tick_period_us: 2000,
                tick_work: 3,
                ..KernelConfig::default()
            },
        })
        .functional_cost()
        .backups(2)
        // Snappy detection keeps the demo short; the rank scaling
        // (backup k waits k x this) is what matters for correctness.
        .detector_timeout(SimDuration::from_micros(800))
        .epoch_len(4096)
}

/// Prints the protocol's milestone events as they happen and counts
/// per-replica traffic — a run observer replacing ad-hoc counters.
/// State is shared with `main` so it can be read after the run.
#[derive(Clone, Default)]
struct Timeline(Rc<RefCell<[u64; 3]>>);

impl Observer for Timeline {
    fn failover(&mut self, info: &FailoverInfo) {
        println!(
            "  [observer] P6 promotion at {} (failover epoch {}{})",
            info.at,
            info.epoch,
            if info.uncertain_synthesized {
                ", P7 synthesized an uncertain interrupt"
            } else {
                ""
            }
        );
    }
    fn message_sent(&mut self, from: usize, _to: usize, _bytes: usize, _at: SimTime) {
        self.0.borrow_mut()[from] += 1;
    }
}

fn main() {
    // Reference: the failure-free 3-replica run.
    let reference = base().build().expect("valid scenario").run();
    let ref_code = reference.exit.code().expect("reference run exits");
    println!(
        "reference: 3 replicas over Ethernet, exit {ref_code:#010x} at {} ({} epoch hashes compared, clean: {})",
        reference.completion_time, reference.lockstep_compared, reference.lockstep_clean,
    );

    // Adversarial: kill the acting primary twice.
    let total = reference.completion_time.as_nanos();
    let t1 = total / 3;
    let t2 = t1 + 2_000_000 + total / 4;
    println!("\nfailure schedule: kill primary at {t1} ns, kill its successor at {t2} ns");
    let scenario = base()
        .fail_primary_at(SimTime::from_nanos(t1))
        .fail_primary_at(SimTime::from_nanos(t2))
        .build()
        .expect("valid scenario");
    let timeline = Timeline::default();
    let mut runner = scenario.runner();
    runner.add_observer(Box::new(timeline.clone()));
    let report = runner.run();

    println!(
        "\n{} failovers: {:?}",
        report.failovers.len(),
        report
            .failovers
            .iter()
            .map(|f| (f.at, f.epoch))
            .collect::<Vec<_>>()
    );
    let code = report
        .exit
        .code()
        .unwrap_or_else(|| panic!("run ended {:?}", report.exit));
    assert_eq!(
        code, ref_code,
        "the last survivor must produce the reference checksum"
    );
    println!("survivor exit code: {code:#010x} — identical to the failure-free run ✓");
    assert_eq!(
        report.failovers.len(),
        2,
        "both kills must cause promotions"
    );
    assert!(
        report.lockstep_clean,
        "lockstep hashes must stay clean across promotions"
    );
    println!(
        "lockstep: {} comparisons across the cascade, all clean ✓",
        report.lockstep_compared
    );
    println!(
        "messages sent per replica: {:?}",
        report.messages_per_replica
    );
    // The observer's count agrees with the driver's own counters.
    let observed: u64 = timeline.0.borrow().iter().sum();
    assert_eq!(
        observed,
        report.messages_per_replica.iter().sum::<u64>(),
        "observer and driver traffic counters must agree"
    );
    println!("observer counted the same {observed} frames the driver reports ✓");
    println!(
        "completed at {} (vs {} failure-free) — the environment saw one logical processor",
        report.completion_time, reference.completion_time
    );
}
