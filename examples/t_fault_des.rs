//! A 3-replica fault-tolerant VM surviving two cascading primary
//! failures — in the full DES, with realistic link latency.
//!
//! ```text
//! cargo run --release --example t_fault_des
//! ```
//!
//! Where `t_fault_chain` demonstrates the t-fault generalization at the
//! protocol level (round-synchronous, abstract links), this example
//! runs it through the same machinery as the paper's prototype: one
//! primary and two ordered backups on a 10 Mbps Ethernet, per-epoch
//! `[Tme]`/`[end]` broadcasts with per-backup acknowledgments,
//! rank-scaled timeout failure detectors, and a shared console. The
//! original primary is killed mid-run; its successor is killed a little
//! later; the last survivor finishes the workload with the reference
//! checksum and clean lockstep hashes across every compared epoch.

use hvft::core::{FailureSpec, FtConfig, FtSystem, RunEnd};
use hvft::guest::{build_image, dhrystone_source, KernelConfig};
use hvft::hypervisor::cost::CostModel;
use hvft::sim::time::{SimDuration, SimTime};

fn config() -> FtConfig {
    let mut cfg = FtConfig {
        cost: CostModel::functional(),
        backups: 2,
        // Snappy detection keeps the demo short; the rank scaling
        // (backup k waits k x this) is what matters for correctness.
        detector_timeout: SimDuration::from_micros(800),
        ..FtConfig::default()
    };
    cfg.hv.epoch_len = 4096;
    cfg
}

fn main() {
    let kernel = KernelConfig {
        tick_period_us: 2000,
        tick_work: 3,
        ..KernelConfig::default()
    };
    let image = build_image(&kernel, &dhrystone_source(4_000, 8)).expect("image assembles");

    // Reference: the failure-free 3-replica run.
    let mut reference = FtSystem::new(&image, config());
    let ref_result = reference.run();
    let ref_code = match ref_result.outcome {
        RunEnd::Exit { code } => code,
        other => panic!("reference run ended {other:?}"),
    };
    println!(
        "reference: 3 replicas over Ethernet, exit {ref_code:#010x} at {} ({} epoch hashes compared, clean: {})",
        ref_result.completion_time,
        ref_result.lockstep.compared(),
        ref_result.lockstep.is_clean(),
    );

    // Adversarial: kill the acting primary twice.
    let total = ref_result.completion_time.as_nanos();
    let t1 = total / 3;
    let t2 = t1 + 2_000_000 + total / 4;
    let mut cfg = config();
    cfg.failure = FailureSpec::At(SimTime::from_nanos(t1));
    let mut sys = FtSystem::new(&image, cfg);
    sys.schedule_failure(SimTime::from_nanos(t2));
    sys.tracer_mut().set_enabled(true);
    let result = sys.run();

    println!("\nfailure schedule: kill primary at {t1} ns, kill its successor at {t2} ns");
    for line in sys.tracer_mut().render() {
        println!("  {line}");
    }
    println!(
        "\n{} failovers: {:?}",
        result.failovers.len(),
        result
            .failovers
            .iter()
            .map(|f| (f.at, f.epoch))
            .collect::<Vec<_>>()
    );
    match result.outcome {
        RunEnd::Exit { code } => {
            assert_eq!(
                code, ref_code,
                "the last survivor must produce the reference checksum"
            );
            println!("survivor exit code: {code:#010x} — identical to the failure-free run ✓");
        }
        other => panic!("run ended {other:?}"),
    }
    assert_eq!(
        result.failovers.len(),
        2,
        "both kills must cause promotions"
    );
    assert!(
        result.lockstep.is_clean(),
        "lockstep hashes must stay clean across promotions: {:?}",
        result.lockstep.divergences()
    );
    println!(
        "lockstep: {} comparisons across the cascade, all clean ✓",
        result.lockstep.compared()
    );
    println!(
        "messages sent per replica: {:?}",
        result.messages_per_replica
    );
    println!(
        "completed at {} (vs {} failure-free) — the environment saw one logical processor",
        result.completion_time, ref_result.completion_time
    );
}
