//! End-to-end integration tests through the umbrella crate's public
//! API — every run configured through the `Scenario` builder.

use hvft::core::scenario::{Runner, Scenario, ScenarioBuilder};
use hvft::devices::check_single_processor_consistency;
use hvft::guest::workload::{Dhrystone, Hello, IoBench};
use hvft::guest::{IoMode, KernelConfig};
use hvft::net::link::LinkSpec;
use hvft::sim::time::{SimDuration, SimTime};

fn io_workload(ops: u32, mode: IoMode, num_blocks: u32, seed: u32) -> IoBench {
    IoBench {
        ops,
        mode,
        num_blocks,
        seed,
        ..Default::default()
    }
}

#[test]
fn the_full_stack_holds_together() {
    // Assemble a guest with every subsystem in play: timer ticks, user
    // mode, syscalls, console output, and disk I/O — then run it bare
    // and replicated and compare the guest-visible world.
    let workload = IoBench {
        ops: 4,
        mode: IoMode::Write,
        num_blocks: 32,
        seed: 5,
        kernel: KernelConfig {
            tick_period_us: 2000,
            tick_work: 5,
            ..KernelConfig::default()
        },
    };
    let bare = Scenario::builder()
        .workload(workload)
        .bare()
        .disk_blocks(32)
        .build()
        .unwrap()
        .run();
    let bare_code = bare.exit.code().expect("bare run exits");

    let r = Scenario::builder()
        .workload(workload)
        .functional_cost()
        .disk_blocks(32)
        .build()
        .unwrap()
        .run();
    assert_eq!(r.exit.code(), Some(bare_code));
    assert!(r.lockstep_clean);
    check_single_processor_consistency(&r.disk_log).unwrap();
}

#[test]
fn replicated_disk_state_matches_bare_disk_state() {
    let workload = io_workload(5, IoMode::Write, 16, 2);
    let run = |builder: ScenarioBuilder| -> Runner {
        let mut runner = builder
            .workload(workload)
            .disk_blocks(16)
            .build()
            .unwrap()
            .runner();
        runner.run();
        runner
    };
    let mut bare = run(Scenario::builder().bare());
    let mut ft = run(Scenario::builder().functional_cost());

    // Every block either matches or was never written by this workload.
    let bare_disk = &mut bare.bare_mut().expect("bare runner").disk;
    let ft_disk = ft.ft_mut().expect("replicated runner").disk_mut();
    for b in 0..16 {
        assert_eq!(
            bare_disk.peek_block(b),
            ft_disk.peek_block(b),
            "block {b} differs between bare and replicated runs"
        );
    }
}

#[test]
fn failover_mid_read_preserves_data_flow() {
    let workload = io_workload(4, IoMode::Read, 16, 9);
    let scenario = |fail_at: Option<SimTime>| {
        let mut b = Scenario::builder()
            .workload(workload)
            .functional_cost()
            .disk_blocks(16);
        if let Some(at) = fail_at {
            b = b.fail_primary_at(at);
        }
        b.build().unwrap()
    };
    // Prefill so the checksum is non-trivial.
    let prefill = |runner: &mut Runner| {
        let pattern: Vec<u8> = (0..hvft::devices::BLOCK_SIZE)
            .map(|i| ((i * 7) % 251) as u8)
            .collect();
        let disk = runner.ft_mut().expect("replicated runner").disk_mut();
        for b in 0..16 {
            disk.poke_block(b, &pattern);
        }
    };
    let mut probe = scenario(None).runner();
    prefill(&mut probe);
    let pr = probe.run();
    let ref_code = pr.exit.code().expect("probe run exits");

    // Kill during the read phase.
    let mut runner = scenario(Some(SimTime::ZERO + pr.completion_time * 2 / 3)).runner();
    prefill(&mut runner);
    let r = runner.run();
    assert!(!r.failovers.is_empty());
    assert_eq!(
        r.exit.code(),
        Some(ref_code),
        "read data must survive failover"
    );
    check_single_processor_consistency(&r.disk_log).unwrap();
}

#[test]
fn both_protocol_variants_survive_failover() {
    use hvft::core::ProtocolVariant;
    let workload = io_workload(3, IoMode::Write, 16, 4);
    let mut probe = Scenario::builder()
        .workload(workload)
        .functional_cost()
        .disk_blocks(16)
        .build()
        .unwrap()
        .runner();
    let pr = probe.run();
    let ref_code = pr.exit.code().expect("probe run exits");
    for protocol in [ProtocolVariant::Old, ProtocolVariant::New] {
        let mut runner = Scenario::builder()
            .workload(workload)
            .functional_cost()
            .disk_blocks(16)
            .protocol(protocol)
            .fail_primary_at(SimTime::ZERO + pr.completion_time / 2)
            .build()
            .unwrap()
            .runner();
        let r = runner.run();
        assert!(!r.failovers.is_empty(), "{protocol:?}: no failover");
        assert_eq!(r.exit.code(), Some(ref_code), "{protocol:?}");
        check_single_processor_consistency(&r.disk_log)
            .unwrap_or_else(|e| panic!("{protocol:?}: {e}"));
        // The strongest environment check: the medium ends up in exactly
        // the state the failure-free run produced.
        let probe_disk = probe.ft_mut().expect("replicated").disk_mut();
        let run_disk = runner.ft_mut().expect("replicated").disk_mut();
        for b in 0..16 {
            assert_eq!(
                probe_disk.peek_block(b),
                run_disk.peek_block(b),
                "{protocol:?}: block {b} differs from failure-free run"
            );
        }
    }
}

#[test]
fn atm_link_beats_ethernet_under_real_costs() {
    let workload = Dhrystone {
        iters: 10_000,
        syscall_every: 0,
        kernel: KernelConfig {
            tick_period_us: 10_000,
            tick_work: 20,
            ..KernelConfig::default()
        },
    };
    let run = |link: LinkSpec| {
        Scenario::builder()
            .workload(workload)
            .link(link)
            .lockstep(false)
            .epoch_len(1024)
            .build()
            .unwrap()
            .run()
            .completion_time
    };
    let eth = run(LinkSpec::ethernet_10mbps());
    let atm = run(LinkSpec::atm_155mbps());
    assert!(atm < eth, "ATM {atm} must beat Ethernet {eth}");
}

#[test]
fn console_transparency_under_failover_subsequence() {
    let msg = "the quick brown fox jumps over the lazy dog";
    let workload = Hello {
        message: msg.into(),
        wait_ticks: 2,
        kernel: KernelConfig {
            tick_period_us: 500,
            tick_work: 0,
            ..KernelConfig::default()
        },
    };
    let total = Scenario::builder()
        .workload(workload.clone())
        .functional_cost()
        .build()
        .unwrap()
        .run()
        .completion_time;

    for frac in [4u64, 2, 1] {
        let r = Scenario::builder()
            .workload(workload.clone())
            .functional_cost()
            .fail_primary_at(SimTime::from_nanos(total.as_nanos() * frac / 5))
            .build()
            .unwrap()
            .run();
        assert_eq!(r.exit.code(), Some(42), "{:?}", r.exit);
        let out = String::from_utf8_lossy(&r.console).into_owned();
        // In-order subsequence (fire-and-forget output may lose bytes in
        // the failover epoch, but never reorders or invents them).
        let mut it = msg.chars();
        assert!(
            out.chars().all(|c| it.any(|m| m == c)),
            "output is not a subsequence: {out:?}"
        );
    }
}

#[test]
fn detector_timeout_scales_run_length() {
    // A larger detector timeout delays promotion but changes nothing
    // else.
    let workload = Dhrystone {
        iters: 2_000,
        syscall_every: 0,
        kernel: KernelConfig::default(),
    };
    let pr = Scenario::builder()
        .workload(workload)
        .functional_cost()
        .build()
        .unwrap()
        .run();
    let ref_code = pr.exit.code().expect("probe run exits");

    let mut ends = Vec::new();
    for timeout_ms in [10u64, 40] {
        let r = Scenario::builder()
            .workload(workload)
            .functional_cost()
            .fail_primary_at(SimTime::ZERO + pr.completion_time / 2)
            .detector_timeout(SimDuration::from_millis(timeout_ms))
            .build()
            .unwrap()
            .run();
        assert_eq!(r.exit.code(), Some(ref_code));
        ends.push(r.completion_time);
    }
    assert!(
        ends[0] < ends[1],
        "longer timeout must delay completion: {ends:?}"
    );
}
