//! End-to-end integration tests through the umbrella crate's public API.

use hvft::core::{FailureSpec, FtConfig, FtSystem, ProtocolVariant, RunEnd};
use hvft::devices::check_single_processor_consistency;
use hvft::guest::{
    build_image, dhrystone_source, hello_source, io_bench_source, IoMode, KernelConfig,
};
use hvft::hypervisor::bare::{BareExit, BareHost};
use hvft::hypervisor::cost::CostModel;
use hvft::net::link::LinkSpec;
use hvft::sim::time::{SimDuration, SimTime};

fn fast() -> FtConfig {
    FtConfig {
        cost: CostModel::functional(),
        ..FtConfig::default()
    }
}

#[test]
fn the_full_stack_holds_together() {
    // Assemble a guest with every subsystem in play: timer ticks, user
    // mode, syscalls, console output, and disk I/O — then run it bare
    // and replicated and compare the guest-visible world.
    let kernel = KernelConfig {
        tick_period_us: 2000,
        tick_work: 5,
        ..KernelConfig::default()
    };
    let image = build_image(&kernel, &io_bench_source(4, IoMode::Write, 32, 5)).unwrap();

    let mut bare = BareHost::new(
        &image,
        CostModel::hp9000_720(),
        hvft::guest::layout::RAM_BYTES,
        32,
        0,
    );
    let bare_result = bare.run(2_000_000_000);
    let bare_code = match bare_result.exit {
        BareExit::Halted { code } => code.unwrap(),
        other => panic!("{other:?}"),
    };

    let mut sys = FtSystem::new(&image, fast());
    let r = sys.run();
    match r.outcome {
        RunEnd::Exit { code } => assert_eq!(code, bare_code),
        other => panic!("{other:?}"),
    }
    assert!(r.lockstep.is_clean());
    // The shared disk holds the same final state the bare run produced
    // on its private disk: compare the blocks the workload wrote.
    for e in &r.disk_log {
        let ft_block = sys.guest_mem_u32(0, hvft::guest::layout::DMA_BUF);
        let _ = (e, ft_block); // block-level comparison below
    }
    check_single_processor_consistency(&r.disk_log).unwrap();
}

#[test]
fn replicated_disk_state_matches_bare_disk_state() {
    let image = build_image(
        &KernelConfig::default(),
        &io_bench_source(5, IoMode::Write, 16, 2),
    )
    .unwrap();

    let mut bare = BareHost::new(
        &image,
        CostModel::hp9000_720(),
        hvft::guest::layout::RAM_BYTES,
        16,
        0,
    );
    let br = bare.run(2_000_000_000);
    assert!(matches!(br.exit, BareExit::Halted { .. }));

    let mut sys = FtSystem::new(&image, fast());
    let r = sys.run();
    assert!(matches!(r.outcome, RunEnd::Exit { .. }));

    // Every block either matches or was never written by this workload.
    for b in 0..16 {
        assert_eq!(
            bare.disk.peek_block(b),
            sys.disk_mut().peek_block(b),
            "block {b} differs between bare and replicated runs"
        );
    }
}

#[test]
fn failover_mid_read_preserves_data_flow() {
    let image = build_image(
        &KernelConfig::default(),
        &io_bench_source(4, IoMode::Read, 16, 9),
    )
    .unwrap();
    // Prefill so the checksum is non-trivial.
    let mk = |sys: &mut FtSystem| {
        let pattern: Vec<u8> = (0..hvft::devices::BLOCK_SIZE)
            .map(|i| ((i * 7) % 251) as u8)
            .collect();
        for b in 0..16 {
            sys.disk_mut().poke_block(b, &pattern);
        }
    };
    let mut probe = FtSystem::new(&image, fast());
    mk(&mut probe);
    let pr = probe.run();
    let ref_code = match pr.outcome {
        RunEnd::Exit { code } => code,
        other => panic!("{other:?}"),
    };

    // Kill during the read phase.
    let mut cfg = fast();
    cfg.failure = FailureSpec::At(SimTime::from_nanos(pr.completion_time.as_nanos() * 2 / 3));
    let mut sys = FtSystem::new(&image, cfg);
    mk(&mut sys);
    let r = sys.run();
    assert!(!r.failovers.is_empty());
    match r.outcome {
        RunEnd::Exit { code } => assert_eq!(code, ref_code, "read data must survive failover"),
        other => panic!("{other:?}"),
    }
    check_single_processor_consistency(&r.disk_log).unwrap();
}

#[test]
fn both_protocol_variants_survive_failover() {
    let image = build_image(
        &KernelConfig::default(),
        &io_bench_source(3, IoMode::Write, 16, 4),
    )
    .unwrap();
    let mut probe = FtSystem::new(&image, fast());
    let pr = probe.run();
    let ref_code = match pr.outcome {
        RunEnd::Exit { code } => code,
        other => panic!("{other:?}"),
    };
    for protocol in [ProtocolVariant::Old, ProtocolVariant::New] {
        let mut cfg = fast();
        cfg.protocol = protocol;
        cfg.failure = FailureSpec::At(SimTime::from_nanos(pr.completion_time.as_nanos() / 2));
        let mut sys = FtSystem::new(&image, cfg);
        let r = sys.run();
        assert!(!r.failovers.is_empty(), "{protocol:?}: no failover");
        match r.outcome {
            RunEnd::Exit { code } => assert_eq!(code, ref_code, "{protocol:?}"),
            other => panic!("{protocol:?}: {other:?}"),
        }
        check_single_processor_consistency(&r.disk_log)
            .unwrap_or_else(|e| panic!("{protocol:?}: {e}"));
        // The strongest environment check: the medium ends up in exactly
        // the state the failure-free run produced.
        for b in 0..16 {
            assert_eq!(
                probe.disk_mut().peek_block(b),
                sys.disk_mut().peek_block(b),
                "{protocol:?}: block {b} differs from failure-free run"
            );
        }
    }
}

#[test]
fn atm_link_beats_ethernet_under_real_costs() {
    let kernel = KernelConfig {
        tick_period_us: 10_000,
        tick_work: 20,
        ..KernelConfig::default()
    };
    let image = build_image(&kernel, &dhrystone_source(10_000, 0)).unwrap();
    let run = |link: LinkSpec| {
        let mut cfg = FtConfig {
            link,
            lockstep_check: false,
            ..FtConfig::default()
        };
        cfg.hv.epoch_len = 1024;
        let mut sys = FtSystem::new(&image, cfg);
        sys.run().completion_time
    };
    let eth = run(LinkSpec::ethernet_10mbps());
    let atm = run(LinkSpec::atm_155mbps());
    assert!(atm < eth, "ATM {atm} must beat Ethernet {eth}");
}

#[test]
fn console_transparency_under_failover_subsequence() {
    let msg = "the quick brown fox jumps over the lazy dog";
    let kernel = KernelConfig {
        tick_period_us: 500,
        tick_work: 0,
        ..KernelConfig::default()
    };
    let image = build_image(&kernel, &hello_source(msg, 2)).unwrap();
    let mut probe = FtSystem::new(&image, fast());
    let total = probe.run().completion_time;

    for frac in [4u64, 2, 1] {
        let mut cfg = fast();
        cfg.failure = FailureSpec::At(SimTime::from_nanos(total.as_nanos() * frac / 5));
        let mut sys = FtSystem::new(&image, cfg);
        let r = sys.run();
        assert!(
            matches!(r.outcome, RunEnd::Exit { code: 42 }),
            "{:?}",
            r.outcome
        );
        let out = String::from_utf8_lossy(&r.console_output).into_owned();
        // In-order subsequence (fire-and-forget output may lose bytes in
        // the failover epoch, but never reorders or invents them).
        let mut it = msg.chars();
        assert!(
            out.chars().all(|c| it.any(|m| m == c)),
            "output is not a subsequence: {out:?}"
        );
    }
}

#[test]
fn detector_timeout_scales_run_length() {
    // A larger detector timeout delays promotion but changes nothing
    // else.
    let image = build_image(&KernelConfig::default(), &dhrystone_source(2_000, 0)).unwrap();
    let mut probe = FtSystem::new(&image, fast());
    let pr = probe.run();
    let ref_code = match pr.outcome {
        RunEnd::Exit { code } => code,
        other => panic!("{other:?}"),
    };

    let mut ends = Vec::new();
    for timeout_ms in [10u64, 40] {
        let mut cfg = fast();
        cfg.failure = FailureSpec::At(SimTime::from_nanos(pr.completion_time.as_nanos() / 2));
        cfg.detector_timeout = SimDuration::from_millis(timeout_ms);
        let mut sys = FtSystem::new(&image, cfg);
        let r = sys.run();
        match r.outcome {
            RunEnd::Exit { code } => assert_eq!(code, ref_code),
            other => panic!("{other:?}"),
        }
        ends.push(r.completion_time);
    }
    assert!(
        ends[0] < ends[1],
        "longer timeout must delay completion: {ends:?}"
    );
}
