//! Property tests: failover transparency under *arbitrary* failure
//! times and environment seeds.
//!
//! The paper's correctness claim is universally quantified — "after the
//! primary's processor has failed, exactly one backup generates
//! interactions with the environment and in such a way that the
//! environment is unaware of the primary's failure". These properties
//! sample that space: whenever the primary is killed, and whatever
//! transient faults the disk injects, the promoted backup must finish
//! with the reference checksum and the environment log must stay
//! single-processor consistent.

use hvft::core::{FailureSpec, FtConfig, FtSystem, ProtocolVariant, RunEnd};
use hvft::devices::check_single_processor_consistency;
use hvft::guest::{build_image, dhrystone_source, io_bench_source, IoMode, KernelConfig};
use hvft::hypervisor::cost::CostModel;
use hvft::sim::time::SimTime;
use proptest::prelude::*;
use std::sync::OnceLock;

fn fast() -> FtConfig {
    FtConfig {
        cost: CostModel::functional(),
        ..FtConfig::default()
    }
}

struct Reference {
    image: hvft_isa::program::Program,
    total_ns: u64,
    code: u32,
}

fn cpu_reference() -> &'static Reference {
    static REF: OnceLock<Reference> = OnceLock::new();
    REF.get_or_init(|| {
        let kernel = KernelConfig {
            tick_period_us: 2000,
            tick_work: 2,
            ..KernelConfig::default()
        };
        let image = build_image(&kernel, &dhrystone_source(2_000, 7)).unwrap();
        let mut sys = FtSystem::new(&image, fast());
        let r = sys.run();
        let code = match r.outcome {
            RunEnd::Exit { code } => code,
            other => panic!("{other:?}"),
        };
        Reference {
            image,
            total_ns: r.completion_time.as_nanos(),
            code,
        }
    })
}

fn io_reference() -> &'static Reference {
    static REF: OnceLock<Reference> = OnceLock::new();
    REF.get_or_init(|| {
        let image = build_image(
            &KernelConfig::default(),
            &io_bench_source(3, IoMode::Write, 16, 13),
        )
        .unwrap();
        let mut sys = FtSystem::new(&image, fast());
        let r = sys.run();
        let code = match r.outcome {
            RunEnd::Exit { code } => code,
            other => panic!("{other:?}"),
        };
        Reference {
            image,
            total_ns: r.completion_time.as_nanos(),
            code,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn cpu_failover_is_checksum_transparent(frac in 1u64..1000) {
        let reference = cpu_reference();
        let t = reference.total_ns * frac / 1000;
        let mut cfg = fast();
        cfg.failure = FailureSpec::At(SimTime::from_nanos(t.max(1)));
        let mut sys = FtSystem::new(&reference.image, cfg);
        let r = sys.run();
        match r.outcome {
            RunEnd::Exit { code } => prop_assert_eq!(code, reference.code),
            other => return Err(TestCaseError::fail(format!("fail at {t}: {other:?}"))),
        }
    }

    #[test]
    fn io_failover_keeps_environment_consistent(
        frac in 1u64..1000,
        protocol_new in any::<bool>(),
    ) {
        let reference = io_reference();
        let t = reference.total_ns * frac / 1000;
        let mut cfg = fast();
        cfg.protocol = if protocol_new { ProtocolVariant::New } else { ProtocolVariant::Old };
        cfg.failure = FailureSpec::At(SimTime::from_nanos(t.max(1)));
        let mut sys = FtSystem::new(&reference.image, cfg);
        let r = sys.run();
        match r.outcome {
            RunEnd::Exit { code } => prop_assert_eq!(code, reference.code),
            other => return Err(TestCaseError::fail(format!("fail at {t}: {other:?}"))),
        }
        if let Err(e) = check_single_processor_consistency(&r.disk_log) {
            return Err(TestCaseError::fail(format!("fail at {t}: {e}")));
        }
    }

    #[test]
    fn disk_faults_never_break_lockstep(fault_seed in 0u64..1_000, prob in 0.0f64..0.4) {
        let image = build_image(
            &KernelConfig::default(),
            &io_bench_source(2, IoMode::Write, 8, 21),
        ).unwrap();
        let mut cfg = fast();
        cfg.disk_fault_prob = prob;
        cfg.seed = fault_seed;
        let mut sys = FtSystem::new(&image, cfg);
        let r = sys.run();
        prop_assert!(matches!(r.outcome, RunEnd::Exit { .. }), "{:?}", r.outcome);
        prop_assert!(r.lockstep.is_clean(), "{:?}", r.lockstep.divergences());
        if let Err(e) = check_single_processor_consistency(&r.disk_log) {
            return Err(TestCaseError::fail(e));
        }
    }

    #[test]
    fn epoch_length_invariance(el_exp in 8u32..15) {
        // Checksums are independent of the epoch length (2^8 .. 2^14).
        let reference = cpu_reference();
        let mut cfg = fast();
        cfg.hv.epoch_len = 1 << el_exp;
        let mut sys = FtSystem::new(&reference.image, cfg);
        let r = sys.run();
        match r.outcome {
            RunEnd::Exit { code } => prop_assert_eq!(code, reference.code),
            other => return Err(TestCaseError::fail(format!("EL=2^{el_exp}: {other:?}"))),
        }
        prop_assert!(r.lockstep.is_clean());
    }
}
