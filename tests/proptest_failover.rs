//! Property tests: failover transparency under *arbitrary* failure
//! times and environment seeds.
//!
//! The paper's correctness claim is universally quantified — "after the
//! primary's processor has failed, exactly one backup generates
//! interactions with the environment and in such a way that the
//! environment is unaware of the primary's failure". These properties
//! sample that space: whenever the primary is killed, and whatever
//! transient faults the disk injects, the promoted backup must finish
//! with the reference checksum and the environment log must stay
//! single-processor consistent.

use hvft::core::scenario::{Protocol, Scenario};
use hvft::devices::check_single_processor_consistency;
use hvft::guest::workload::{Dhrystone, IoBench};
use hvft::guest::{IoMode, KernelConfig};
use hvft::sim::time::SimTime;
use proptest::prelude::*;
use std::sync::OnceLock;

fn cpu_workload() -> Dhrystone {
    Dhrystone {
        iters: 2_000,
        syscall_every: 7,
        kernel: KernelConfig {
            tick_period_us: 2000,
            tick_work: 2,
            ..KernelConfig::default()
        },
    }
}

fn io_workload() -> IoBench {
    IoBench {
        ops: 3,
        mode: IoMode::Write,
        num_blocks: 16,
        seed: 13,
        ..Default::default()
    }
}

struct Reference {
    total_ns: u64,
    code: u32,
}

fn reference(slot: &'static OnceLock<Reference>, scenario: Scenario) -> &'static Reference {
    slot.get_or_init(|| {
        let r = scenario.run();
        Reference {
            total_ns: r.completion_time.as_nanos(),
            code: r.exit.code().unwrap_or_else(|| panic!("{:?}", r.exit)),
        }
    })
}

fn cpu_reference() -> &'static Reference {
    static REF: OnceLock<Reference> = OnceLock::new();
    reference(
        &REF,
        Scenario::builder()
            .workload(cpu_workload())
            .functional_cost()
            .build()
            .unwrap(),
    )
}

fn io_reference() -> &'static Reference {
    static REF: OnceLock<Reference> = OnceLock::new();
    reference(
        &REF,
        Scenario::builder()
            .workload(io_workload())
            .functional_cost()
            .build()
            .unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn cpu_failover_is_checksum_transparent(frac in 1u64..1000) {
        let reference = cpu_reference();
        let t = reference.total_ns * frac / 1000;
        let r = Scenario::builder()
            .workload(cpu_workload())
            .functional_cost()
            .fail_primary_at(SimTime::from_nanos(t.max(1)))
            .build()
            .unwrap()
            .run();
        match r.exit.code() {
            Some(code) => prop_assert_eq!(code, reference.code),
            None => return Err(TestCaseError::fail(format!("fail at {t}: {:?}", r.exit))),
        }
    }

    #[test]
    fn io_failover_keeps_environment_consistent(
        frac in 1u64..1000,
        protocol_new in any::<bool>(),
    ) {
        let reference = io_reference();
        let t = reference.total_ns * frac / 1000;
        let r = Scenario::builder()
            .workload(io_workload())
            .functional_cost()
            .protocol(if protocol_new { Protocol::New } else { Protocol::Old })
            .fail_primary_at(SimTime::from_nanos(t.max(1)))
            .build()
            .unwrap()
            .run();
        match r.exit.code() {
            Some(code) => prop_assert_eq!(code, reference.code),
            None => return Err(TestCaseError::fail(format!("fail at {t}: {:?}", r.exit))),
        }
        if let Err(e) = check_single_processor_consistency(&r.disk_log) {
            return Err(TestCaseError::fail(format!("fail at {t}: {e}")));
        }
    }

    #[test]
    fn disk_faults_never_break_lockstep(fault_seed in 0u64..1_000, prob in 0.0f64..0.4) {
        let r = Scenario::builder()
            .workload(IoBench { ops: 2, mode: IoMode::Write, num_blocks: 8, seed: 21,
                                ..Default::default() })
            .functional_cost()
            .disk_fault_prob(prob)
            .seed(fault_seed)
            .build()
            .unwrap()
            .run();
        prop_assert!(r.exit.is_clean_exit(), "{:?}", r.exit);
        prop_assert!(r.lockstep_clean);
        if let Err(e) = check_single_processor_consistency(&r.disk_log) {
            return Err(TestCaseError::fail(e));
        }
    }

    #[test]
    fn epoch_length_invariance(el_exp in 8u32..15) {
        // Checksums are independent of the epoch length (2^8 .. 2^14).
        let reference = cpu_reference();
        let r = Scenario::builder()
            .workload(cpu_workload())
            .functional_cost()
            .epoch_len(1 << el_exp)
            .build()
            .unwrap()
            .run();
        match r.exit.code() {
            Some(code) => prop_assert_eq!(code, reference.code),
            None => return Err(TestCaseError::fail(format!("EL=2^{el_exp}: {:?}", r.exit))),
        }
        prop_assert!(r.lockstep_clean);
    }
}
