//! Property tests: deterministic snapshot/restore and epoch-boundary
//! reintegration.
//!
//! A snapshot captures exactly the canonical machine state; everything
//! derived — decoded blocks, JIT superblocks, the TLB front cache — is
//! dropped and rebuilt after a restore. The claim that makes the
//! subsystem usable for backup reintegration is *bit-identity*: a
//! restored machine must compute exactly what the donor computes from
//! the capture point on, whatever execution tier is in use, however hot
//! the donor's caches were, and even if the guest patches its own code
//! right after the restore lands on a cold cache.
//!
//! Three layers are pinned down:
//!
//! - **machine level**: a hot self-modifying guest is snapshotted at an
//!   arbitrary mid-run point and restored into a freshly constructed
//!   CPU; donor and restoree then run side by side, compared at short
//!   chunk boundaries, for every tier;
//! - **TLB state**: the replacement cursor and RNG are part of the
//!   canonical state, so a restored TLB continues the *same replacement
//!   stream* the donor would have produced;
//! - **system level**: a failstopped backup is repaired mid-run,
//!   reintegrated from a primary snapshot shipped over the (possibly
//!   lossy) coordination network, and must then survive a subsequent
//!   primary failstop — with the checksum, console stream and lockstep
//!   hashes of an undisturbed run.

#![recursion_limit = "256"]

use hvft::guest::workload::Dhrystone;
use hvft::hypervisor::cost::CostModel;
use hvft::hypervisor::hvguest::{HvConfig, HvEvent, HvGuest};
use hvft::isa::asm::assemble;
use hvft::isa::codec::encode;
use hvft::isa::instruction::{AluImmOp, Instruction};
use hvft::isa::reg::Reg;
use hvft::machine::cpu::{Cpu, Exit};
use hvft::machine::exec::ExecTier;
use hvft::machine::mem::Memory;
use hvft::machine::statehash::vm_state_hash;
use hvft::machine::tlb::TlbReplacement;
use hvft::machine::LoadProgram;
use hvft::net::link::LinkSpec;
use hvft::sim::time::{SimDuration, SimTime};
use hvft_core::scenario::{RunReport, Scenario, ScenarioBuilder};
use proptest::prelude::*;
use std::sync::OnceLock;

const TIERS: [ExecTier; 3] = [ExecTier::Step, ExecTier::Block, ExecTier::Jit];

// ---------------------------------------------------------------------
// Machine level: mid-run capture of a hot, self-modifying guest
// ---------------------------------------------------------------------

/// A guest whose hot inner routine is called far past the JIT promotion
/// threshold and patched *mid-run*: iterations count down from a poked
/// start value, and when the counter hits the poked trigger the word at
/// `slot` is overwritten. Loads and stores in the outer loop keep the
/// memory path (and SMC write generations) busy.
const HOT_SMC_GUEST: &str = ".org 0
start:
    lw   r21, 512(r0)        ; replacement word (poked by the test)
    lw   r22, 516(r0)        ; loop counter start (poked)
    lw   r24, 520(r0)        ; patch trigger value (poked)
outer:
    jal  ra, patchable
    bne  r22, r24, nopatch
    sw   r21, 96(r0)         ; patch `slot` when the counter hits trigger
nopatch:
    sw   r22, 1024(r0)
    lw   r23, 1024(r0)
    addi r22, r22, -1
    bne  r22, r0, outer
    halt

    .org 96
patchable:
slot:
    addi r20, r20, 1         ; becomes: addi r20, r20, 100
    jalr r0, ra, 0
";

/// Builds the guest with `iters` countdown iterations, patching when
/// the counter reaches `trigger`. `tlb_seed` exercises that restore
/// overwrites constructor-chosen TLB state.
fn build_hot_smc(iters: u32, trigger: u32, tier: ExecTier, tlb_seed: u64) -> (Cpu, Memory) {
    let patched = encode(Instruction::AluImm {
        op: AluImmOp::Addi,
        rd: Reg::of(20),
        rs1: Reg::of(20),
        imm: 100,
    })
    .unwrap();
    let image = assemble(HOT_SMC_GUEST).expect("asm");
    let mut cpu = Cpu::new(16, TlbReplacement::Random, tlb_seed);
    cpu.set_exec_tier(tier);
    let mut mem = Memory::new(64 * 1024);
    image.load_into_cpu(&mut cpu, &mut mem);
    mem.write_u32(512, patched).unwrap();
    mem.write_u32(516, iters).unwrap();
    mem.write_u32(520, trigger).unwrap();
    (cpu, mem)
}

/// Runs until `Halt` or until `budget` more instructions retired.
/// Returns true when halted.
fn run_budget(cpu: &mut Cpu, mem: &mut Memory, budget: u64) -> bool {
    let target = cpu.retired() + budget;
    while cpu.retired() < target {
        match cpu.run(mem, target - cpu.retired()) {
            Exit::Retired => {}
            Exit::Halt => return true,
            other => panic!("unexpected exit {other:?} at pc {:#x}", cpu.pc),
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    // Snapshot at an arbitrary mid-run point, restore into a fresh
    // machine (different TLB seed, cold caches), and run donor and
    // restoree side by side to completion: retired counts, PCs and
    // whole-state hashes must stay identical at every comparison
    // chunk, on every tier, even though the patch at `slot` may land
    // on a hot superblock in the donor and a cold cache in the
    // restoree.
    #[test]
    fn mid_run_snapshot_restores_bit_identically(
        tier_idx in 0usize..3,
        iters in 40u32..150,
        trigger_frac in 1u32..1000,
        split_frac in 1u64..1000,
    ) {
        let tier = TIERS[tier_idx];
        let trigger = (iters * trigger_frac / 1000).max(1);

        // Learn the total retirement count once, uninterrupted.
        let (mut ref_cpu, mut ref_mem) = build_hot_smc(iters, trigger, tier, 1);
        prop_assert!(run_budget(&mut ref_cpu, &mut ref_mem, u64::MAX / 2));
        let total = ref_cpu.retired();

        // Donor: run to the split point (possibly mid-hot-loop), capture.
        let split = (total * split_frac / 1000).max(1);
        let (mut donor, mut donor_mem) = build_hot_smc(iters, trigger, tier, 1);
        prop_assert!(!run_budget(&mut donor, &mut donor_mem, split));
        let cpu_snap = donor.snapshot();
        let mem_snap = donor_mem.snapshot();
        prop_assert_eq!(cpu_snap.retired(), split);
        prop_assert_eq!(cpu_snap.tier(), tier);

        // Restoree: a fresh machine with a *different* TLB seed; the
        // restore must overwrite every canonical bit of it.
        let (mut rest, mut rest_mem) = build_hot_smc(iters, trigger, ExecTier::Step, 99);
        rest.restore(&cpu_snap);
        rest_mem.restore(&mem_snap);
        prop_assert_eq!(rest.exec_tier(), tier, "tier travels with the snapshot");
        prop_assert_eq!(
            vm_state_hash(&rest, &rest_mem),
            vm_state_hash(&donor, &donor_mem),
            "restored state must hash identically to the donor at capture"
        );

        // Side-by-side to completion, compared at short chunks so a
        // divergence is localized.
        loop {
            let done_d = run_budget(&mut donor, &mut donor_mem, 500);
            let done_r = run_budget(&mut rest, &mut rest_mem, 500);
            prop_assert_eq!(done_d, done_r, "halt points diverged");
            prop_assert_eq!(donor.retired(), rest.retired());
            prop_assert_eq!(donor.pc, rest.pc);
            prop_assert_eq!(
                vm_state_hash(&donor, &donor_mem),
                vm_state_hash(&rest, &rest_mem),
                "states diverged at {} retired", donor.retired()
            );
            if done_d {
                break;
            }
        }
        prop_assert_eq!(donor.retired(), total);
        prop_assert_eq!(
            rest.tlb.snapshot_state(),
            donor.tlb.snapshot_state(),
            "TLB state (cursor, RNG, counters) must track the donor"
        );
    }
}

// ---------------------------------------------------------------------
// Machine level: hot cross-page superblocks across a restore
// ---------------------------------------------------------------------

/// Like [`HOT_SMC_GUEST`], but the hot routine sits at the end of page 0
/// and `jal`s into page 1, so the jit's compiled trace spans both pages
/// — and the mid-run patch lands on the *second* page. The snapshot is
/// taken while that cross-page trace is hot; the restoree rebuilds it
/// cold and must still replay bit-identically through the patch.
const HOT_CROSS_PAGE_GUEST: &str = ".org 0
start:
    lw   r21, 512(r0)        ; replacement word (poked by the test)
    lw   r22, 516(r0)        ; loop counter start (poked)
    lw   r24, 520(r0)        ; patch trigger value (poked)
outer:
    jal  ra, crosser
    bne  r22, r24, nopatch
    sw   r21, 4096(r0)       ; patch `slot` on the trace's second page
nopatch:
    sw   r22, 1024(r0)
    lw   r23, 1024(r0)
    addi r22, r22, -1
    bne  r22, r0, outer
    halt

    .org 4088
crosser:
    addi r20, r20, 1
    jal  r0, tail            ; crosses into page 1 mid-trace

    .org 4096
tail:
slot:
    addi r20, r20, 2         ; becomes: addi r20, r20, 100
    jalr r0, ra, 0
";

fn build_hot_cross(iters: u32, trigger: u32, tier: ExecTier, tlb_seed: u64) -> (Cpu, Memory) {
    let patched = encode(Instruction::AluImm {
        op: AluImmOp::Addi,
        rd: Reg::of(20),
        rs1: Reg::of(20),
        imm: 100,
    })
    .unwrap();
    let image = assemble(HOT_CROSS_PAGE_GUEST).expect("asm");
    let mut cpu = Cpu::new(16, TlbReplacement::Random, tlb_seed);
    cpu.set_exec_tier(tier);
    let mut mem = Memory::new(64 * 1024);
    image.load_into_cpu(&mut cpu, &mut mem);
    mem.write_u32(512, patched).unwrap();
    mem.write_u32(516, iters).unwrap();
    mem.write_u32(520, trigger).unwrap();
    (cpu, mem)
}

#[test]
fn snapshot_with_hot_cross_page_superblocks_restores_bit_identically() {
    for tier in TIERS {
        let (mut ref_cpu, mut ref_mem) = build_hot_cross(120, 40, tier, 1);
        assert!(run_budget(&mut ref_cpu, &mut ref_mem, u64::MAX / 2));
        let total = ref_cpu.retired();

        // Split mid-hot-loop, well past the promotion threshold and
        // before the patch trigger fires.
        let split = total / 2;
        let (mut donor, mut donor_mem) = build_hot_cross(120, 40, tier, 1);
        assert!(!run_budget(&mut donor, &mut donor_mem, split));
        if tier == ExecTier::Jit {
            let x = donor.exec_stats();
            assert!(
                x.cross_page_superblocks >= 1,
                "the donor must be hot with a cross-page trace at the \
                 capture point: {x:?}"
            );
        }
        let cpu_snap = donor.snapshot();
        let mem_snap = donor_mem.snapshot();

        let (mut rest, mut rest_mem) = build_hot_cross(120, 40, ExecTier::Step, 99);
        rest.restore(&cpu_snap);
        rest_mem.restore(&mem_snap);
        assert_eq!(rest.exec_tier(), tier);
        assert_eq!(
            vm_state_hash(&rest, &rest_mem),
            vm_state_hash(&donor, &donor_mem)
        );
        loop {
            let done_d = run_budget(&mut donor, &mut donor_mem, 500);
            let done_r = run_budget(&mut rest, &mut rest_mem, 500);
            assert_eq!(done_d, done_r, "{tier}: halt points diverged");
            assert_eq!(donor.retired(), rest.retired(), "{tier}");
            assert_eq!(donor.pc, rest.pc, "{tier}");
            assert_eq!(
                vm_state_hash(&donor, &donor_mem),
                vm_state_hash(&rest, &rest_mem),
                "{tier}: states diverged at {} retired",
                donor.retired()
            );
            if done_d {
                break;
            }
        }
        assert_eq!(
            rest.tlb.snapshot_state(),
            donor.tlb.snapshot_state(),
            "{tier}: TLB state must track the donor"
        );
    }
}

// ---------------------------------------------------------------------
// TLB: the replacement stream continues across a restore
// ---------------------------------------------------------------------

#[test]
fn tlb_replacement_stream_continues_after_restore() {
    use hvft::machine::tlb::pte;

    let pte_for = |page: u32| (page << 12) | pte::V | pte::R | pte::W | pte::X;
    // Warm an 8-slot random-replacement TLB past capacity so the
    // replacement RNG has advanced a few draws.
    let mut donor = Cpu::new(8, TlbReplacement::Random, 42);
    for page in 0u32..12 {
        donor.tlb.insert_pte(page << 12, pte_for(page));
    }
    let snap = donor.snapshot();

    // Restore into a CPU built with a different seed and cursor state.
    let mut rest = Cpu::new(8, TlbReplacement::Random, 7);
    rest.tlb.insert_pte(0x8000_0000, pte_for(5));
    rest.restore(&snap);
    assert_eq!(rest.tlb.snapshot_state(), donor.tlb.snapshot_state());

    // The *future* replacement decisions — which slot each insertion
    // evicts — must now be identical draw for draw.
    for page in 12u32..64 {
        donor.tlb.insert_pte(page << 12, pte_for(page));
        rest.tlb.insert_pte(page << 12, pte_for(page));
        assert_eq!(
            rest.tlb.snapshot_state(),
            donor.tlb.snapshot_state(),
            "replacement streams diverged at page {page}"
        );
    }
}

// ---------------------------------------------------------------------
// Hypervisor level: HvGuest round trip
// ---------------------------------------------------------------------

#[test]
fn hvguest_snapshot_round_trip_is_exact() {
    let workload = Dhrystone {
        iters: 5_000,
        syscall_every: 7,
        ..Default::default()
    };
    let image = hvft::guest::workload::Workload::image(&workload).expect("image");
    let mk = || HvGuest::new(&image, CostModel::functional(), HvConfig::default());

    // Run the donor a few epochs in, far enough to warm the TLB and
    // accumulate hypervisor bookkeeping.
    let mut donor = mk();
    for _ in 0..5 {
        match donor.run(SimDuration::from_micros(200)) {
            HvEvent::EpochEnd => donor.begin_epoch(),
            HvEvent::BudgetExhausted => {}
            other => panic!("unexpected event {other:?}"),
        }
    }
    let snap = donor.snapshot();
    assert_eq!(snap.epoch(), donor.epoch());
    assert_eq!(snap.elapsed(), donor.elapsed());
    assert!(snap.wire_bytes() > hvft::guest::layout::RAM_BYTES as u64);

    let mut rest = mk();
    rest.restore(&snap);
    assert_eq!(rest.state_hash(), donor.state_hash());
    assert_eq!(rest.elapsed(), donor.elapsed());
    assert_eq!(rest.epoch(), donor.epoch());
    assert_eq!(rest.epoch_progress(), donor.epoch_progress());

    // Both must reach the next epoch boundary at the same instant with
    // the same state.
    let run_to_boundary = |g: &mut HvGuest| loop {
        match g.run(SimDuration::from_millis(10)) {
            HvEvent::EpochEnd => break,
            HvEvent::BudgetExhausted => {}
            other => panic!("unexpected event {other:?}"),
        }
    };
    run_to_boundary(&mut donor);
    run_to_boundary(&mut rest);
    assert_eq!(rest.state_hash(), donor.state_hash());
    assert_eq!(rest.elapsed(), donor.elapsed());
    assert_eq!(rest.epoch_progress(), donor.epoch_progress());
}

// ---------------------------------------------------------------------
// System level: reintegration under arbitrary schedules and loss
// ---------------------------------------------------------------------

/// A fast coordination link so the ~266 KB state transfer completes in
/// a couple of simulated milliseconds — the schedules below interleave
/// two failovers around it inside one short run.
fn fast_link() -> LinkSpec {
    LinkSpec {
        bits_per_sec: 1_000_000_000,
        propagation: SimDuration::from_micros(5),
        per_message: SimDuration::from_micros(5),
        mtu: 16384,
    }
}

/// An even fatter link for the loss variant. The receive window accepts
/// chunks strictly in order, so recovery is go-back-N: every lost chunk
/// costs roughly a full drain of the frames queued behind it. Keeping
/// that per-episode cost small keeps the property about protocol
/// correctness (retransmission, abort, successor retry) rather than
/// about link capacity versus the kill schedule.
fn bulk_link() -> LinkSpec {
    LinkSpec {
        bits_per_sec: 10_000_000_000,
        propagation: SimDuration::from_micros(2),
        per_message: SimDuration::from_micros(1),
        mtu: 16384,
    }
}

fn rejoin_base() -> ScenarioBuilder {
    Scenario::builder()
        .workload(Dhrystone {
            iters: 20_000,
            syscall_every: 9,
            ..Default::default()
        })
        .backups(2)
        .functional_cost()
        .link(fast_link())
        .retransmit(SimDuration::from_micros(40))
        .detector_timeout(SimDuration::from_micros(1500))
}

struct Reference {
    total_ns: u64,
    code: u32,
    console: Vec<u8>,
}

fn rejoin_reference() -> &'static Reference {
    static REF: OnceLock<Reference> = OnceLock::new();
    REF.get_or_init(|| {
        let r = rejoin_base().build().expect("valid scenario").run();
        Reference {
            total_ns: r.completion_time.as_nanos(),
            code: r.exit.code().unwrap_or_else(|| panic!("{:?}", r.exit)),
            console: r.console.clone(),
        }
    })
}

/// The undisturbed duration on the bulk link, for scheduling the loss
/// variant (the checksum and console are link-invariant and shared
/// with [`rejoin_reference`]).
fn bulk_total_ns() -> u64 {
    static NS: OnceLock<u64> = OnceLock::new();
    *NS.get_or_init(|| {
        rejoin_base()
            .link(bulk_link())
            .build()
            .expect("valid scenario")
            .run()
            .completion_time
            .as_nanos()
    })
}

/// Kill backup 2 at `t0`‰ of the reference run, repair it `gap`‰
/// later, then failstop two primaries in sequence: the first
/// `transfer_margin`‰ after the repair (wide enough for the state
/// transfer — including loss-retransmission cycles — to complete), the
/// second `kill_gap`‰ after that (wide enough for the rank-scaled
/// detection of the first).
fn rejoin_schedule(
    b: ScenarioBuilder,
    total_ns: u64,
    t0: u64,
    gap: u64,
    transfer_margin: u64,
    kill_gap: u64,
) -> ScenarioBuilder {
    let at = |frac: u64| SimTime::from_nanos((total_ns * frac / 1000).max(1));
    let t1 = t0 + gap;
    b.fail_replica_at(at(t0), 2)
        .rejoin_replica_at(at(t1), 2)
        .fail_primary_at(at(t1 + transfer_margin))
        .fail_primary_at(at(t1 + transfer_margin + kill_gap))
}

/// One full arc, asserting the invariants every variant shares: the
/// repaired replica reintegrates once, both failovers are survived
/// (the second only the reintegrated replica can cover), and the run
/// is observably identical to the undisturbed reference.
fn assert_rejoin_arc(report: &RunReport, label: &str) {
    let reference = rejoin_reference();
    assert_eq!(
        report.reintegrations.len(),
        1,
        "{label}: exactly one reintegration expected, got {:?}",
        report.reintegrations
    );
    assert_eq!(report.reintegrations[0].replica, 2, "{label}");
    assert_eq!(
        report.failovers.len(),
        2,
        "{label}: both failstops must be survived, got {:?}",
        report.failovers
    );
    let code = report
        .exit
        .code()
        .unwrap_or_else(|| panic!("{label}: run ended {:?}", report.exit));
    assert_eq!(
        code, reference.code,
        "{label}: checksum must be transparent"
    );
    assert_eq!(report.console, reference.console, "{label}: console bytes");
    assert!(report.lockstep_clean, "{label}: replicas diverged");
    assert_eq!(
        report.state_transfer_bytes, report.reintegrations[0].bytes,
        "{label}: transfer accounting"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    // Arbitrary (safely-margined) kill/repair times: the reintegrated
    // backup must always carry the run to the reference checksum after
    // the second failover.
    #[test]
    fn reintegrated_backup_survives_a_second_failover(
        t0 in 80u64..220,
        gap in 40u64..120,
    ) {
        let reference = rejoin_reference();
        let report = rejoin_schedule(rejoin_base(), reference.total_ns, t0, gap, 300, 150)
            .build()
            .unwrap()
            .run();
        assert_rejoin_arc(&report, &format!("t0={t0} gap={gap}"));
    }

    // The same arc under message loss: chunks, boundary messages and
    // heartbeats all ride the lossy medium, so the transfer leans on
    // the ack/retransmission layer — and must still reintegrate
    // exactly once and survive both failovers.
    #[test]
    fn reintegration_survives_message_loss(
        loss in 0.01f64..0.12,
        seed in 0u64..1_000,
    ) {
        let report = rejoin_schedule(
            rejoin_base().link(bulk_link()).lossy(loss).seed(seed),
            bulk_total_ns(),
            100,
            50,
            450,
            170,
        )
        .build()
        .unwrap()
        .run();
        assert_rejoin_arc(&report, &format!("loss={loss:.3} seed={seed}"));
        // Loss must actually have bitten for the case to mean anything.
        prop_assert!(
            report.frames_retransmitted > 0,
            "no retransmissions at p={loss}"
        );
    }
}

/// The whole reintegration arc is execution-tier invariant: snapshots
/// taken from a JIT-hot primary restore onto an identically configured
/// replica and the entire observable outcome matches the interpreter
/// tier for tier — including the reintegration epoch and both failover
/// epochs.
#[test]
fn reintegration_is_execution_tier_invariant() {
    let reference = rejoin_reference();
    let run = |tier: ExecTier| {
        rejoin_schedule(
            rejoin_base().exec_tier(tier),
            reference.total_ns,
            150,
            80,
            300,
            150,
        )
        .build()
        .unwrap()
        .run()
    };
    let base = run(ExecTier::Step);
    assert_rejoin_arc(&base, "step");
    for tier in [ExecTier::Block, ExecTier::Jit] {
        let r = run(tier);
        assert_rejoin_arc(&r, &format!("{tier}"));
        assert_eq!(
            r.reintegrations[0].epoch, base.reintegrations[0].epoch,
            "{tier}: reintegration epoch"
        );
        assert_eq!(
            r.reintegrations[0].at, base.reintegrations[0].at,
            "{tier}: reintegration instant"
        );
        assert_eq!(r.failovers[0].epoch, base.failovers[0].epoch, "{tier}");
        assert_eq!(r.failovers[1].epoch, base.failovers[1].epoch, "{tier}");
        assert_eq!(r.completion_time, base.completion_time, "{tier}");
    }
}
