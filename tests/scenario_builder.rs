//! Table-driven builder validation: every invalid `ScenarioBuilder`
//! combination must come back as the *right* structured [`ConfigError`]
//! variant — never a panic, never a wrong variant, and never a silent
//! acceptance that would hang or OOM a run later.

use hvft::core::scenario::{
    ClusterScenario, ConfigError, Parallelism, Scenario, ScenarioBuilder, MAX_DISK_BLOCKS,
};
use hvft::machine::ExecTier;
use hvft::net::link::LinkSpec;
use hvft::sim::time::{SimDuration, SimTime};

/// Discriminant-level expectation (payloads are checked separately
/// where they matter).
fn variant(e: &ConfigError) -> &'static str {
    match e {
        ConfigError::MissingWorkload => "MissingWorkload",
        ConfigError::UnknownWorkload(_) => "UnknownWorkload",
        ConfigError::WorkloadImage(_) => "WorkloadImage",
        ConfigError::NoBackups => "NoBackups",
        ConfigError::LossWithoutRetransmit => "LossWithoutRetransmit",
        ConfigError::RejoinWithoutRetransmit => "RejoinWithoutRetransmit",
        ConfigError::DetectorTooShort { .. } => "DetectorTooShort",
        ConfigError::DiskTooLarge { .. } => "DiskTooLarge",
        ConfigError::EmptyDisk => "EmptyDisk",
        ConfigError::ZeroEpochLen => "ZeroEpochLen",
        ConfigError::DriverMismatch(_) => "DriverMismatch",
        ConfigError::ExecTierConflict { .. } => "ExecTierConflict",
    }
}

fn wl() -> ScenarioBuilder {
    Scenario::builder().workload_named("dhrystone")
}

#[test]
fn every_invalid_combination_yields_its_config_error() {
    let cases: Vec<(&str, ScenarioBuilder, &str)> = vec![
        // The four combinations named in the issue…
        (
            "loss without retransmit",
            wl().lossy(0.2),
            "LossWithoutRetransmit",
        ),
        (
            "detector below 32x rto",
            wl().lossy(0.2)
                .retransmit(SimDuration::from_millis(5))
                .detector_timeout(SimDuration::from_millis(100)),
            "DetectorTooShort",
        ),
        ("zero backups", wl().backups(0), "NoBackups"),
        (
            "oversized disk",
            wl().disk_blocks(MAX_DISK_BLOCKS + 1),
            "DiskTooLarge",
        ),
        // …and the rest of the validation surface.
        ("no workload at all", Scenario::builder(), "MissingWorkload"),
        (
            "unknown workload name",
            Scenario::builder().workload_named("hyperbench-9000"),
            "UnknownWorkload",
        ),
        ("zero-block disk", wl().disk_blocks(0), "EmptyDisk"),
        ("zero epoch length", wl().epoch_len(0), "ZeroEpochLen"),
        (
            "backups on the bare driver",
            wl().bare().backups(2),
            "DriverMismatch",
        ),
        (
            "failstop on the bare driver",
            wl().bare().fail_primary_at(SimTime::from_nanos(1)),
            "DriverMismatch",
        ),
        (
            "epoch-scheduled failure on the DES driver",
            wl().fail_primary_at_epoch(3),
            "DriverMismatch",
        ),
        (
            "time-scheduled failure on the chain driver",
            wl().chain().fail_primary_at(SimTime::from_nanos(1)),
            "DriverMismatch",
        ),
        (
            "replica failstop on the chain driver",
            wl().chain().fail_replica_at(SimTime::from_nanos(1), 1),
            "DriverMismatch",
        ),
        (
            "chain with zero backups",
            wl().chain().backups(0),
            "NoBackups",
        ),
        (
            "lossy chain without retransmit",
            wl().chain().lossy(0.5),
            "LossWithoutRetransmit",
        ),
        (
            "NIC queue bound on the bare driver",
            wl().bare().nic_queue_bound(SimDuration::from_millis(1)),
            "DriverMismatch",
        ),
        (
            "NIC queue bound on the chain driver",
            wl().chain().nic_queue_bound(SimDuration::from_millis(1)),
            "DriverMismatch",
        ),
        (
            "worker threads on the bare driver",
            wl().bare().parallelism(Parallelism::Threads(4)),
            "DriverMismatch",
        ),
        (
            "worker threads on the chain driver",
            wl().chain().parallelism(Parallelism::Threads(2)),
            "DriverMismatch",
        ),
        (
            "legacy block_exec(false) against exec_tier(Jit)",
            wl().block_exec(false).exec_tier(ExecTier::Jit),
            "ExecTierConflict",
        ),
        (
            "legacy block_exec(true) against exec_tier(Step)",
            wl().exec_tier(ExecTier::Step).block_exec(true),
            "ExecTierConflict",
        ),
        (
            "rejoin schedule without the reliable layer",
            wl().rejoin_replica_at(SimTime::from_nanos(1_000_000), 1),
            "RejoinWithoutRetransmit",
        ),
        (
            "rejoin schedule on a chain run",
            wl().chain()
                .retransmit(SimDuration::from_micros(40))
                .rejoin_replica_at(SimTime::from_nanos(1_000_000), 1),
            "DriverMismatch",
        ),
    ];
    for (label, builder, expected) in cases {
        match builder.build() {
            Err(e) => {
                assert_eq!(
                    variant(&e),
                    expected,
                    "{label}: expected {expected}, got {e:?}"
                );
                // Every error renders a human-readable message.
                assert!(!e.to_string().is_empty(), "{label}: empty Display");
            }
            Ok(s) => panic!("{label}: accepted as {s:?}, expected {expected}"),
        }
    }
}

#[test]
fn detector_error_reports_the_required_bound() {
    let err = wl()
        .lossy(0.1)
        .retransmit(SimDuration::from_millis(7))
        .detector_timeout(SimDuration::from_millis(10))
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        ConfigError::DetectorTooShort {
            detector: SimDuration::from_millis(10),
            required: SimDuration::from_millis(7) * 32,
        }
    );
}

#[test]
fn disk_error_reports_the_bound() {
    let err = wl().disk_blocks(MAX_DISK_BLOCKS * 2).build().unwrap_err();
    assert_eq!(
        err,
        ConfigError::DiskTooLarge {
            blocks: MAX_DISK_BLOCKS * 2,
            max: MAX_DISK_BLOCKS,
        }
    );
}

#[test]
fn the_boundary_values_are_accepted() {
    // The validation must reject *invalid* configurations only: the
    // extreme-but-legal points all build.
    for builder in [
        wl().disk_blocks(MAX_DISK_BLOCKS),
        wl().disk_blocks(1),
        wl().epoch_len(1),
        wl().backups(5),
        wl().lossy(0.0), // zero loss needs no retransmission
        wl().lossy(0.3)
            .retransmit(SimDuration::from_millis(5))
            .detector_timeout(SimDuration::from_millis(5) * 32),
        wl().bare(),
        wl().chain().fail_primary_at_epoch(1),
        wl().nic_queue_bound(SimDuration::from_millis(1)),
        wl().parallelism(Parallelism::Threads(8)),
        // An explicit Sequential request is fine on any driver.
        wl().bare().parallelism(Parallelism::Sequential),
    ] {
        builder.build().expect("legal boundary configuration");
    }
}

/// `Parallelism::Threads(n)` clamps to the cluster's *slice slots*
/// (`shards × max replicas per shard`), not to the shard count: every
/// replica of every shard is an independently schedulable guest slice.
#[test]
fn thread_clamp_is_slice_slots_not_shards() {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    // Boundary table: (mode, slots) → requested workers (no core
    // clamp), with the degenerate forms pinned to 1.
    let cases: Vec<(Parallelism, usize, usize)> = vec![
        (Parallelism::Sequential, 10, 1),
        (Parallelism::Threads(0), 10, 1),
        (Parallelism::Threads(1), 10, 1),
        // Below, at, and above the slot count.
        (Parallelism::Threads(4), 10, 4),
        (Parallelism::Threads(10), 10, 10),
        (Parallelism::Threads(64), 10, 10),
        // A single-shard t=4 system still exposes 5 slots.
        (Parallelism::Threads(8), 5, 5),
        // Degenerate slot counts never clamp to zero.
        (Parallelism::Threads(3), 0, 1),
    ];
    for (par, slots, want) in cases {
        assert_eq!(
            par.requested_workers(slots),
            want,
            "{par:?} over {slots} slots"
        );
        assert_eq!(
            par.effective_workers(slots),
            want.min(cores).max(1),
            "{par:?} over {slots} slots (effective)"
        );
    }
}

/// `ClusterScenario::slice_slots` is `shards × max(1 + backups)` —
/// the widest shard sets the per-shard slice budget.
#[test]
fn cluster_scenario_reports_its_slice_slots() {
    let mut c = ClusterScenario::new(LinkSpec::ethernet_10mbps(), 3);
    assert_eq!(c.slice_slots(), 1, "an empty cluster has one slot");
    c.add(wl().backups(1).build().unwrap()).unwrap();
    assert_eq!(c.slice_slots(), 2, "one shard, primary + 1 backup");
    c.add(wl().backups(4).build().unwrap()).unwrap();
    assert_eq!(c.slice_slots(), 10, "2 shards x widest chain (t=4)");
    c.add(wl().backups(2).build().unwrap()).unwrap();
    assert_eq!(c.slice_slots(), 15, "3 shards x widest chain (t=4)");
}
