//! Whole-system determinism: two constructions of the same simulation
//! produce bit-identical results — completion times, message counts,
//! environment logs, everything. This is what makes the reproduction's
//! numbers trustworthy (and debugging sane).

use hvft::core::{FailureSpec, FtConfig, FtSystem};
use hvft::guest::{build_image, dhrystone_source, io_bench_source, IoMode, KernelConfig};
use hvft::sim::time::SimTime;

fn identical_runs(image: &hvft_isa::program::Program, cfg: FtConfig) {
    let mut a = FtSystem::new(image, cfg);
    let ra = a.run();
    let mut b = FtSystem::new(image, cfg);
    let rb = b.run();
    assert_eq!(format!("{:?}", ra.outcome), format!("{:?}", rb.outcome));
    assert_eq!(
        ra.completion_time, rb.completion_time,
        "simulated time must be exact"
    );
    assert_eq!(ra.messages_per_replica, rb.messages_per_replica);
    assert_eq!(ra.console_output, rb.console_output);
    assert_eq!(ra.disk_log.len(), rb.disk_log.len());
    for (x, y) in ra.disk_log.iter().zip(rb.disk_log.iter()) {
        assert_eq!(x, y);
    }
    assert_eq!(ra.lockstep.compared(), rb.lockstep.compared());
    assert_eq!(ra.op_latencies, rb.op_latencies);
}

#[test]
fn cpu_run_is_bit_deterministic() {
    let kernel = KernelConfig {
        tick_period_us: 2000,
        tick_work: 7,
        ..KernelConfig::default()
    };
    let image = build_image(&kernel, &dhrystone_source(2_000, 9)).unwrap();
    identical_runs(&image, FtConfig::default());
}

#[test]
fn io_run_is_bit_deterministic() {
    let image = build_image(
        &KernelConfig::default(),
        &io_bench_source(4, IoMode::Write, 32, 6),
    )
    .unwrap();
    identical_runs(&image, FtConfig::default());
}

#[test]
fn faulty_run_is_bit_deterministic() {
    // Even with injected disk faults and a primary failure, the seeded
    // simulation replays identically.
    let image = build_image(
        &KernelConfig::default(),
        &io_bench_source(4, IoMode::Write, 32, 6),
    )
    .unwrap();
    let cfg = FtConfig {
        disk_fault_prob: 0.25,
        seed: 1234,
        failure: FailureSpec::At(SimTime::from_nanos(60_000_000)),
        ..FtConfig::default()
    };
    identical_runs(&image, cfg);
}

#[test]
fn different_seeds_change_fault_schedules_not_correctness() {
    let image = build_image(
        &KernelConfig::default(),
        &io_bench_source(4, IoMode::Write, 32, 6),
    )
    .unwrap();
    let mut outcomes = Vec::new();
    for seed in [1u64, 2, 3] {
        let cfg = FtConfig {
            disk_fault_prob: 0.3,
            seed,
            ..FtConfig::default()
        };
        let mut sys = FtSystem::new(&image, cfg);
        let r = sys.run();
        assert!(r.lockstep.is_clean(), "seed {seed}");
        outcomes.push((format!("{:?}", r.outcome), r.disk_log.len()));
    }
    // All runs complete with the same guest-visible outcome…
    assert!(
        outcomes.windows(2).all(|w| w[0].0 == w[1].0),
        "{outcomes:?}"
    );
    // …but the fault schedules (and so the retry counts) differ.
    let lens: Vec<usize> = outcomes.iter().map(|o| o.1).collect();
    assert!(
        lens.iter().any(|&l| l != lens[0]),
        "expected different retry schedules across seeds: {lens:?}"
    );
}
