//! Whole-system determinism: two runs of the same scenario produce
//! bit-identical results — completion times, message counts,
//! environment logs, everything. This is what makes the reproduction's
//! numbers trustworthy (and debugging sane). A `Scenario` builds a
//! fresh driver per `run()`, so running one twice is exactly the
//! two-constructions experiment.

use hvft::core::scenario::{Scenario, ScenarioBuilder};
use hvft::guest::workload::{Dhrystone, IoBench};
use hvft::guest::{IoMode, KernelConfig};
use hvft::sim::time::SimTime;

fn identical_runs(builder: ScenarioBuilder) {
    let scenario = builder.build().expect("valid scenario");
    let ra = scenario.run();
    let rb = scenario.run();
    assert_eq!(ra.exit, rb.exit);
    assert_eq!(
        ra.completion_time, rb.completion_time,
        "simulated time must be exact"
    );
    assert_eq!(ra.messages_per_replica, rb.messages_per_replica);
    assert_eq!(ra.console, rb.console);
    assert_eq!(ra.disk_log.len(), rb.disk_log.len());
    for (x, y) in ra.disk_log.iter().zip(rb.disk_log.iter()) {
        assert_eq!(x, y);
    }
    assert_eq!(ra.lockstep_compared, rb.lockstep_compared);
    assert_eq!(ra.op_latencies, rb.op_latencies);
}

fn io_workload() -> IoBench {
    IoBench {
        ops: 4,
        mode: IoMode::Write,
        num_blocks: 32,
        seed: 6,
        ..Default::default()
    }
}

#[test]
fn cpu_run_is_bit_deterministic() {
    identical_runs(Scenario::builder().workload(Dhrystone {
        iters: 2_000,
        syscall_every: 9,
        kernel: KernelConfig {
            tick_period_us: 2000,
            tick_work: 7,
            ..KernelConfig::default()
        },
    }));
}

#[test]
fn io_run_is_bit_deterministic() {
    identical_runs(Scenario::builder().workload(io_workload()).disk_blocks(32));
}

#[test]
fn faulty_run_is_bit_deterministic() {
    // Even with injected disk faults and a primary failure, the seeded
    // simulation replays identically.
    identical_runs(
        Scenario::builder()
            .workload(io_workload())
            .disk_blocks(32)
            .disk_fault_prob(0.25)
            .seed(1234)
            .fail_primary_at(SimTime::from_nanos(60_000_000)),
    );
}

#[test]
fn different_seeds_change_fault_schedules_not_correctness() {
    let mut outcomes = Vec::new();
    for seed in [1u64, 2, 3] {
        let r = Scenario::builder()
            .workload(io_workload())
            .disk_blocks(32)
            .disk_fault_prob(0.3)
            .seed(seed)
            .build()
            .unwrap()
            .run();
        assert!(r.lockstep_clean, "seed {seed}");
        outcomes.push((r.exit, r.disk_log.len()));
    }
    // All runs complete with the same guest-visible outcome…
    assert!(
        outcomes.windows(2).all(|w| w[0].0 == w[1].0),
        "{outcomes:?}"
    );
    // …but the fault schedules (and so the retry counts) differ.
    let lens: Vec<usize> = outcomes.iter().map(|o| o.1).collect();
    assert!(
        lens.iter().any(|&l| l != lens[0]),
        "expected different retry schedules across seeds: {lens:?}"
    );
}
