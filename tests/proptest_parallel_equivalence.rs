//! The parallel-execution determinism oracle: a sharded cluster run
//! produces **bit-identical** `RunReport`s whether its shards execute
//! sequentially or on worker threads with conservative synchronization.
//!
//! This is the hard promise behind `Parallelism::Threads(n)`: the
//! parallel executor only relocates guest computation onto workers —
//! every shared-medium effect still commits in exact global-time order
//! — so *nothing* the report can express may differ: exit codes,
//! console streams, epoch counts, completion clocks, per-replica
//! message counters, retransmission and suppression totals, failover
//! records, operation latencies. The executor's unit of parallelism is
//! the *replica slice* (each of a shard's t + 1 replicas runs its own
//! guest slice per wave), so the sweep crosses registry workloads,
//! shard counts (≥ 3), t ∈ {1..4}, LAN loss with retransmission,
//! primary-failstop schedules, and backup failstops landing mid-slice;
//! this retires the old legacy-vs-scenario workload-equivalence
//! proptest, whose legacy path no longer exists.

use hvft::core::scenario::{ClusterScenario, Parallelism, RunReport, Scenario, ScenarioBuilder};
use hvft::guest::workload::{Dhrystone, IoBench};
use hvft::guest::{CompiledWorkload, IoMode, KernelConfig};
use hvft::lang::genprog::GenConfig;
use hvft::net::link::LinkSpec;
use hvft::sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// Shard workloads rotate through registry names (small, by-name — the
/// CLI path) and two value-configured heavyweights (CPU- and I/O-bound)
/// so the mix always exercises both the streaming and the self-clocked
/// protocol regimes.
fn shard_builder(kind: usize) -> ScenarioBuilder {
    let b = Scenario::builder().functional_cost();
    match kind % 5 {
        0 => b.workload(Dhrystone {
            iters: 900,
            syscall_every: 7,
            kernel: KernelConfig {
                tick_period_us: 2000,
                tick_work: 2,
                ..KernelConfig::default()
            },
        }),
        1 => b.workload(IoBench {
            ops: 3,
            mode: IoMode::Write,
            num_blocks: 16,
            seed: 9,
            ..Default::default()
        }),
        2 => b.workload_named("hello"),
        3 => b.workload_named("sieve"),
        _ => b.workload_named("pingpong"),
    }
}

fn cluster(
    shards: usize,
    backups: usize,
    seed: u64,
    loss: bool,
    fail_shard: Option<(usize, u64)>,
    fail_backup: Option<(usize, usize, u64)>,
) -> ClusterScenario {
    let mut cluster = ClusterScenario::new(LinkSpec::ethernet_10mbps(), seed);
    for i in 0..shards {
        let mut b = shard_builder(i.wrapping_add(seed as usize))
            .backups(backups)
            .seed(seed.wrapping_add(i as u64));
        if loss {
            b = b
                .lossy(0.15)
                .retransmit(SimDuration::from_millis(5))
                .detector_timeout(SimDuration::from_millis(300));
        }
        if let Some((shard, at_ns)) = fail_shard {
            if shard == i {
                b = b.fail_primary_at(SimTime::from_nanos(at_ns));
            }
        }
        // A backup failstop lands mid-slice: with intra-shard replica
        // parallelism the victim's guest is typically in flight on a
        // worker when its failure time arrives, so this exercises the
        // plan/commit pipeline's failure path, not just the happy one.
        if let Some((shard, replica, at_ns)) = fail_backup {
            if shard == i {
                b = b.fail_replica_at(SimTime::from_nanos(at_ns), 1 + replica % backups);
            }
        }
        cluster
            .add(b.build().expect("valid shard scenario"))
            .expect("replicated shard");
    }
    cluster
}

/// Everything a `RunReport` can express that a schedule change could
/// possibly disturb, flattened for exact comparison.
fn fingerprint(reports: &[RunReport]) -> Vec<String> {
    reports
        .iter()
        .map(|r| {
            format!(
                "{}|{:?}|{}|{:?}|{:?}|{}|{}|{:?}|{:?}|{}|{}|{:?}|{}|{:?}",
                r.label,
                r.exit,
                r.completion_time,
                r.console,
                r.console_hosts,
                r.epochs,
                r.retired,
                r.failovers,
                r.messages_per_replica,
                r.frames_retransmitted,
                r.frames_suppressed,
                r.op_latencies,
                r.lockstep_compared,
                r.disk_log.len(),
            )
        })
        .collect()
}

fn run_modes_agree(
    shards: usize,
    backups: usize,
    seed: u64,
    loss: bool,
    fail_shard: Option<(usize, u64)>,
    fail_backup: Option<(usize, usize, u64)>,
    threads: usize,
) {
    let mut sequential = cluster(shards, backups, seed, loss, fail_shard, fail_backup);
    sequential.parallelism(Parallelism::Sequential);
    let seq = fingerprint(&sequential.run());

    let mut parallel = cluster(shards, backups, seed, loss, fail_shard, fail_backup);
    parallel.parallelism(Parallelism::Threads(threads));
    let par = fingerprint(&parallel.run());

    assert_eq!(
        seq, par,
        "Threads({threads}) diverged from sequential \
         (shards={shards}, t={backups}, seed={seed}, loss={loss}, \
         fail={fail_shard:?}, fail_backup={fail_backup:?})"
    );
    assert!(
        seq.iter().any(|f| f.contains("Exit")),
        "degenerate sweep: no shard exited (seed={seed})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    // The acceptance oracle: ≥ 3 shards, t ∈ {1..4} (intra-shard
    // replica parallelism means every backup is its own slice), loss,
    // primary-failstop *and* mid-slice backup-failstop schedules
    // sampled, 2–8 worker threads (beyond the shard count, so replica
    // slots are what keeps the extra workers busy).
    #[test]
    fn parallel_equals_sequential(
        seed in 0u64..1_000,
        shards in 3usize..5,
        backups in 1usize..5,
        loss in prop::bool::weighted(0.5),
        threads in 2usize..9,
        // 0..3 failstops shard N's primary; 3 injects no failure.
        fail_shard in 0usize..4,
        fail_ns in 500_000u64..4_000_000,
        // 0..3 failstops a backup replica of shard N mid-run.
        fail_backup_shard in 0usize..4,
        fail_backup_replica in 0usize..4,
        fail_backup_ns in 500_000u64..4_000_000,
    ) {
        let fail = (fail_shard < 3).then_some((fail_shard, fail_ns));
        let fail_backup = (fail_backup_shard < 3)
            .then_some((fail_backup_shard, fail_backup_replica, fail_backup_ns));
        run_modes_agree(shards, backups, seed, loss, fail, fail_backup, threads);
    }
}

/// Deterministic pin of the acceptance criterion — 3 shards, both
/// t ∈ {1, 2}, loss + a mid-run primary failstop + a mid-slice backup
/// failstop on another shard — so the oracle holds even if sampling
/// shifts.
#[test]
fn pinned_parallel_equivalence() {
    for backups in [1usize, 2] {
        run_modes_agree(
            3,
            backups,
            42,
            true,
            Some((1, 2_000_000)),
            Some((2, 0, 1_500_000)),
            3,
        );
    }
}

/// Deterministic pin of *intra-shard* replica parallelism: a single
/// shard with t = 4 backups exposes five replica slices per wave —
/// parallelism the pre-wave executor (one slice per shard) could never
/// express. Loss plus a mid-run primary failstop and a mid-slice
/// backup failstop land while the victims' guests are in flight on
/// workers; `Threads(5)` exceeds the shard count (1) and is only
/// useful via replica slots.
#[test]
fn pinned_intra_shard_replica_parallelism() {
    for threads in [2usize, 5] {
        run_modes_agree(
            1,
            4,
            42,
            true,
            Some((0, 2_000_000)),
            Some((0, 2, 1_200_000)),
            threads,
        );
    }
}

/// `ScenarioBuilder::parallelism` requests flow through the cluster:
/// any shard asking for threads turns the parallel executor on, and the
/// result is still bit-identical to a forced-sequential run.
#[test]
fn builder_level_parallelism_request_is_honoured() {
    let build = |p: Option<Parallelism>| {
        let mut c = ClusterScenario::new(LinkSpec::ethernet_10mbps(), 7);
        for i in 0..3usize {
            let mut b = shard_builder(i).seed(7 + i as u64);
            if let (0, Some(p)) = (i, p) {
                b = b.parallelism(p);
            }
            c.add(b.build().unwrap()).unwrap();
        }
        c
    };
    let requested = build(Some(Parallelism::Threads(2)));
    assert_eq!(
        requested.effective_parallelism(),
        Parallelism::Threads(2),
        "a shard's request must widen the cluster's mode"
    );
    let baseline = build(None);
    assert_eq!(
        baseline.effective_parallelism(),
        Parallelism::Sequential,
        "no request, no threads"
    );
    assert_eq!(
        fingerprint(&requested.run()),
        fingerprint(&baseline.run()),
        "the requested mode must not change results"
    );
}

// ---------------------------------------------------------------------
// Generated workloads through the full protocol stack
// ---------------------------------------------------------------------

/// A cluster whose shards all run `hvft-lang` *generated* programs:
/// the fuzz frontier pushed through the replication protocol itself.
/// Each shard gets a different program (seed-offset), loss plus a
/// mid-run backup failstop are always on, and the oracle is the same
/// as above — `Threads(n)` must be bit-identical to `Sequential`.
fn lang_cluster(shards: usize, backups: usize, seed: u64) -> ClusterScenario {
    let mut cluster = ClusterScenario::new(LinkSpec::ethernet_10mbps(), seed);
    for i in 0..shards {
        let workload = CompiledWorkload::generated(
            seed.wrapping_mul(31).wrapping_add(i as u64),
            &GenConfig::default(),
        );
        let b = Scenario::builder()
            .functional_cost()
            .workload(workload)
            .backups(backups)
            .seed(seed.wrapping_add(i as u64))
            .lossy(0.15)
            .retransmit(SimDuration::from_millis(5))
            .detector_timeout(SimDuration::from_millis(300))
            .fail_replica_at(SimTime::from_nanos(1_200_000), 1 + i % backups);
        cluster
            .add(b.build().expect("valid generated-workload shard"))
            .expect("replicated shard");
    }
    cluster
}

fn lang_modes_agree(shards: usize, backups: usize, seed: u64) {
    let mut sequential = lang_cluster(shards, backups, seed);
    sequential.parallelism(Parallelism::Sequential);
    let seq = fingerprint(&sequential.run());

    let mut parallel = lang_cluster(shards, backups, seed);
    parallel.parallelism(Parallelism::Threads(4));
    let par = fingerprint(&parallel.run());

    assert_eq!(
        seq, par,
        "generated workloads: Threads(4) diverged from sequential \
         (shards={shards}, t={backups}, seed={seed})"
    );
    assert!(
        seq.iter().any(|f| f.contains("Exit")),
        "degenerate generated sweep: no shard exited (seed={seed})"
    );
}

// Generated programs are adversarial in a way the registry set is not:
// their gate/branch mix is arbitrary, so epoch boundaries land in
// arbitrary spots. The protocol oracle must not care.
proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]
    #[test]
    fn generated_workloads_parallel_equals_sequential(
        seed in 0u64..1 << 32,
        shards in 2usize..4,
        backups in 1usize..3,
    ) {
        lang_modes_agree(shards, backups, seed);
    }
}

/// Deterministic pin of the generated-workload protocol oracle for
/// both replication degrees the issue names (t = 1 and t = 2), with
/// loss and a mid-run backup failstop always injected.
#[test]
fn pinned_generated_workload_cluster_equivalence() {
    for backups in [1usize, 2] {
        lang_modes_agree(3, backups, 1995);
    }
}
