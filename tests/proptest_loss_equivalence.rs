//! The headline lossy-LAN oracle: a multi-system cluster behaves
//! *identically* — exit codes and console streams — whether its shared
//! LAN loses no messages or loses 20% of them, as long as the
//! ack/retransmission layer is running.
//!
//! This is §4.3's claim made executable across the whole stack: the
//! protocol engines, the link-level reliable layer, the shared-medium
//! `Lan`, and the sharded cluster driver together hide message loss
//! from every guest and from the environment, for t = 1 and t = 2, with
//! and without primary failstops, under arbitrary workload mixes.
//! Simulated *time* is allowed to differ (retransmission costs air
//! time); simulated *behaviour* is not.
//!
//! Each shard runs the protocol variant the paper runs its workload
//! under — original §2 for the CPU-bound shard (its boundary ack-wait
//! is the flow control that keeps a shared medium stable) and the §4.3
//! revision for the I/O-bound shard (self-clocked by its disk
//! round-trips, the workload the revision was designed for).

use hvft::core::scenario::{ClusterScenario, Protocol, Scenario, ScenarioBuilder};
use hvft::guest::workload::{Dhrystone, Hello, IoBench};
use hvft::guest::{IoMode, KernelConfig};
use hvft::net::link::LinkSpec;
use hvft::sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// The three shard workloads: one CPU-bound, one I/O-bound, one
/// console-chatty — every cluster mixes all three. The per-shard
/// protocol variants: §2 for the streaming CPU shard, §4.3 for the
/// disk shard, caller's choice for the console shard.
fn shard_builder(i: usize, hello_new: bool) -> ScenarioBuilder {
    let b = Scenario::builder().functional_cost();
    match i {
        0 => b
            .workload(Dhrystone {
                iters: 1_200,
                syscall_every: 7,
                kernel: KernelConfig {
                    tick_period_us: 2000,
                    tick_work: 2,
                    ..KernelConfig::default()
                },
            })
            .protocol(Protocol::Old),
        1 => b
            .workload(IoBench {
                ops: 3,
                mode: IoMode::Write,
                num_blocks: 16,
                seed: 9,
                ..Default::default()
            })
            .protocol(Protocol::New),
        _ => b
            .workload(Hello {
                message: "shard up\n".into(),
                wait_ticks: 2,
                kernel: KernelConfig::default(),
            })
            .protocol(if hello_new {
                Protocol::New
            } else {
                Protocol::Old
            }),
    }
}

fn cluster(
    backups: usize,
    hello_new: bool,
    seed: u64,
    loss: f64,
    fail_shard: Option<(usize, u64)>,
) -> ClusterScenario {
    let mut cluster = ClusterScenario::new(LinkSpec::ethernet_10mbps(), seed);
    for i in 0..3usize {
        // Detection dominates recovery: retransmissions (the stalled
        // primary's only heartbeat) arrive at least every 4 × 5 ms, so
        // a false suspicion needs ~15 consecutive losses per window
        // (p ≈ 0.2¹⁵). Applied to BOTH sides of the comparison — the
        // lossless run must differ from the lossy one in the loss draws
        // alone, not in the recovery machinery or detection margins.
        let mut b = shard_builder(i, hello_new)
            .backups(backups)
            .seed(seed.wrapping_add(i as u64))
            .retransmit(SimDuration::from_millis(5))
            .detector_timeout(SimDuration::from_millis(300));
        if loss > 0.0 {
            b = b.lossy(loss);
        }
        if let Some((shard, at_ns)) = fail_shard {
            if shard == i {
                b = b.fail_primary_at(SimTime::from_nanos(at_ns));
            }
        }
        cluster
            .add(b.build().expect("valid shard scenario"))
            .expect("replicated shard");
    }
    cluster
}

/// What the environment can observe of a whole cluster run, per shard.
fn observables(
    backups: usize,
    hello_new: bool,
    seed: u64,
    loss: f64,
    fail_shard: Option<(usize, u64)>,
) -> Vec<(String, Vec<u8>, bool)> {
    cluster(backups, hello_new, seed, loss, fail_shard)
        .run()
        .into_iter()
        .map(|r| (format!("{:?}", r.exit), r.console, r.lockstep_clean))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    // The oracle of the PR: loss 0.0 vs 0.2-with-retransmission on a
    // 3-system shared LAN, t ∈ {1, 2}, arbitrary seeds.
    #[test]
    fn cluster_is_loss_equivalent(seed in 0u64..1_000, hello_new in any::<bool>()) {
        for backups in [1usize, 2] {
            let clean = observables(backups, hello_new, seed, 0.0, None);
            let lossy = observables(backups, hello_new, seed, 0.2, None);
            prop_assert_eq!(
                &clean, &lossy,
                "t = {}, seed {}: guest-visible behaviour diverged under loss",
                backups, seed
            );
            for (i, (outcome, _, lockstep_clean)) in clean.iter().enumerate() {
                prop_assert!(
                    outcome.starts_with("Exit"),
                    "shard {} did not exit cleanly: {}", i, outcome
                );
                prop_assert!(*lockstep_clean, "shard {} lockstep divergence", i);
            }
        }
    }

    // Same oracle with a primary failstop injected into one shard:
    // failover and loss recovery compose. Only the *environment's*
    // view (exit codes, console bytes) is compared here: lockstep
    // hashes against the dead primary's final epochs may legitimately
    // differ under loss, because a primary may deliver an interrupt to
    // its own guest and die before the (dropped) `[E, Int]` is ever
    // retransmitted — §4.3's invariant is precisely that such state is
    // never *revealed*, the primary having initiated no I/O past an
    // unacknowledged message.
    #[test]
    fn cluster_failover_is_loss_equivalent(
        seed in 0u64..1_000,
        fail_shard in 0usize..3,
        frac in 1u64..20,
    ) {
        // Fail somewhere inside the shard's active window: the hello
        // shard finishes in ~10 ms simulated, the others later.
        let at_ns = 500_000 + frac * 400_000;
        for backups in [1usize, 2] {
            let env_view = |runs: Vec<(String, Vec<u8>, bool)>| -> Vec<(String, Vec<u8>)> {
                runs.into_iter().map(|(o, c, _)| (o, c)).collect()
            };
            let clean = env_view(observables(backups, false, seed, 0.0,
                                             Some((fail_shard, at_ns))));
            let lossy = env_view(observables(backups, false, seed, 0.2,
                                             Some((fail_shard, at_ns))));
            prop_assert_eq!(
                &clean, &lossy,
                "t = {}, seed {}, kill shard {} at {} ns: diverged under loss",
                backups, seed, fail_shard, at_ns
            );
        }
    }
}

/// Deterministic pin of the oracle at one known point, so a regression
/// is caught even if the sampled cases shift.
#[test]
fn pinned_cluster_loss_equivalence() {
    let clean = observables(2, true, 7, 0.0, None);
    let lossy = observables(2, true, 7, 0.2, None);
    assert_eq!(clean, lossy);
    assert_eq!(clean[2].1.as_slice(), b"shard up\n");
    // And the lossy cluster really did lose traffic (the equivalence is
    // not vacuous).
    let (results, lan_stats) = cluster(2, true, 7, 0.2, None).run_with_lan_stats();
    assert!(lan_stats.dropped > 0, "no messages were lost");
    assert!(
        results.iter().map(|r| r.frames_retransmitted).sum::<u64>() > 0,
        "no retransmissions happened"
    );
    for r in &results {
        assert!(r.exit.is_clean_exit());
        assert!(
            r.failovers.is_empty(),
            "no failures were injected, so no promotions may happen: {:?}",
            r.failovers
        );
    }
}
