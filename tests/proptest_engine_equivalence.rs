//! The engine-equivalence oracle for the protocol refactor.
//!
//! `FtSystem` (the realistic DES: modelled link timing, shared disk,
//! timeout failure detectors) and `TChain` (the round-synchronous
//! chain on instantaneous links) run the *same* `hvft-core::protocol`
//! engines. If the rule logic is truly transport-independent — the
//! paper's claim — then the same workload and failure schedule must
//! produce identical guest-visible results through both drivers, at
//! t = 1 and t = 2 alike. These properties sample that space.

use hvft::core::chain::{ChainEnd, TChain};
use hvft::core::{FailureSpec, FtConfig, FtSystem, RunEnd};
use hvft::guest::{build_image, dhrystone_source, hello_source, KernelConfig};
use hvft::hypervisor::cost::CostModel;
use hvft::hypervisor::hvguest::HvConfig;
use hvft::sim::time::{SimDuration, SimTime};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Rank-1 detection latency plus hand-over slack, in nanoseconds.
const DETECT_NS: u64 = 2_000_000;

fn fast(backups: usize) -> FtConfig {
    FtConfig {
        cost: CostModel::functional(),
        backups,
        detector_timeout: SimDuration::from_micros(800),
        ..FtConfig::default()
    }
}

fn cpu_image() -> &'static hvft_isa::program::Program {
    static IMG: OnceLock<hvft_isa::program::Program> = OnceLock::new();
    IMG.get_or_init(|| {
        let kernel = KernelConfig {
            tick_period_us: 2000,
            tick_work: 2,
            ..KernelConfig::default()
        };
        build_image(&kernel, &dhrystone_source(1_500, 7)).unwrap()
    })
}

struct Reference {
    code: u32,
    total_ns: u64,
    console: Vec<u8>,
}

/// Failure-free t = 1 DES run of the CPU image.
fn cpu_reference() -> &'static Reference {
    static REF: OnceLock<Reference> = OnceLock::new();
    REF.get_or_init(|| {
        let mut sys = FtSystem::new(cpu_image(), fast(1));
        let r = sys.run();
        match r.outcome {
            RunEnd::Exit { code } => Reference {
                code,
                total_ns: r.completion_time.as_nanos(),
                console: r.console_output,
            },
            other => panic!("cpu reference: {other:?}"),
        }
    })
}

fn run_chain(
    image: &hvft_isa::program::Program,
    t: usize,
    fails: &[u64],
    epoch_len: u32,
) -> (u32, Vec<u8>) {
    let hv = HvConfig {
        epoch_len,
        ..HvConfig::default()
    };
    let mut chain = TChain::new(image, t, CostModel::functional(), hv);
    let r = chain.run(fails, 10_000_000);
    match r.end {
        ChainEnd::Exit { code } => (code, r.console.iter().map(|&(_, b)| b).collect()),
        other => panic!("chain (t={t}, fails={fails:?}): {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn failure_free_engines_agree_across_epoch_lengths(el_exp in 9u32..13) {
        // The same workload through both drivers at the same epoch
        // length: identical checksums, at t = 1 and t = 2.
        let el = 1u32 << el_exp;
        let reference = cpu_reference();
        for t in [1usize, 2] {
            let mut cfg = fast(t);
            cfg.hv.epoch_len = el;
            let mut sys = FtSystem::new(cpu_image(), cfg);
            let r = sys.run();
            match r.outcome {
                RunEnd::Exit { code } => prop_assert_eq!(code, reference.code,
                    "DES t={} EL={}", t, el),
                other => return Err(TestCaseError::fail(format!("DES t={t} EL={el}: {other:?}"))),
            }
            prop_assert!(r.lockstep.is_clean(), "DES t={} EL={} diverged", t, el);
            let (chain_code, _) = run_chain(cpu_image(), t, &[], el);
            prop_assert_eq!(chain_code, reference.code, "chain t={} EL={}", t, el);
        }
    }

    #[test]
    fn failure_schedules_agree_between_des_and_chain(
        frac in 1u64..8,
        gap in 1u64..4,
        two_failures in any::<bool>(),
    ) {
        // Kill the acting primary (twice, for t = 2) in the DES; the
        // survivor must produce the reference checksum. Then replay an
        // equivalent schedule — the observed failover epochs — through
        // the chain and demand the same checksum again.
        let reference = cpu_reference();
        let t = if two_failures { 2 } else { 1 };
        let t1 = (reference.total_ns * frac / 10).max(1);
        let mut cfg = fast(t);
        cfg.failure = FailureSpec::At(SimTime::from_nanos(t1));
        let mut sys = FtSystem::new(cpu_image(), cfg);
        if two_failures {
            let t2 = t1 + DETECT_NS + reference.total_ns * gap / 10;
            sys.schedule_failure(SimTime::from_nanos(t2));
        }
        let r = sys.run();
        match r.outcome {
            RunEnd::Exit { code } => prop_assert_eq!(code, reference.code,
                "DES t={} frac={}", t, frac),
            other => return Err(TestCaseError::fail(format!("DES t={t} frac={frac}: {other:?}"))),
        }
        prop_assert!(r.lockstep.is_clean(), "divergence: {:?}", r.lockstep.divergences());
        // Console bytes under failover are an in-order subsequence of
        // the reference stream (fire-and-forget output may lose bytes in
        // the failover epoch, never reorder or invent them).
        let mut it = reference.console.iter();
        prop_assert!(
            r.console_output.iter().all(|b| it.any(|m| m == b)),
            "DES console not a subsequence: {:?}", r.console_output
        );
        // Replay through the chain: each DES promotion at epoch E means
        // the dead primary completed epochs < E+1.
        let fails: Vec<u64> = r.failovers.iter().map(|f| f.epoch + 1).collect();
        let (chain_code, _) = run_chain(cpu_image(), t, &fails, cfg.hv.epoch_len);
        prop_assert_eq!(chain_code, reference.code, "chain replay of {:?}", fails);
    }
}

#[test]
fn console_streams_are_identical_without_failures() {
    // The strongest equivalence: byte-for-byte identical console output
    // through the DES (t = 1 and t = 2) and the chain.
    let msg = "the quick brown fox jumps over the lazy dog";
    let kernel = KernelConfig {
        tick_period_us: 500,
        tick_work: 0,
        ..KernelConfig::default()
    };
    let image = build_image(&kernel, &hello_source(msg, 2)).unwrap();
    let mut streams: Vec<Vec<u8>> = Vec::new();
    for t in [1usize, 2] {
        let mut sys = FtSystem::new(&image, fast(t));
        let r = sys.run();
        assert!(
            matches!(r.outcome, RunEnd::Exit { code: 42 }),
            "{:?}",
            r.outcome
        );
        streams.push(r.console_output);
        let (code, chain_bytes) = run_chain(&image, t, &[], FtConfig::default().hv.epoch_len);
        assert_eq!(code, 42);
        streams.push(chain_bytes);
    }
    for s in &streams[1..] {
        assert_eq!(
            s, &streams[0],
            "every driver/t must emit the identical byte stream"
        );
    }
    assert!(!streams[0].is_empty(), "the workload must actually print");
}

#[test]
fn chain_boundary_kills_lose_no_console_bytes() {
    // Chain failstops happen exactly at epoch boundaries, so — unlike
    // mid-epoch DES kills — the hand-over loses nothing: the full
    // reference stream must appear.
    let msg = "abcdefghijklmnopqrstuvwxyz";
    let kernel = KernelConfig {
        tick_period_us: 500,
        tick_work: 0,
        ..KernelConfig::default()
    };
    let image = build_image(&kernel, &hello_source(msg, 2)).unwrap();
    let el = 256;
    let (_, reference) = run_chain(&image, 2, &[], el);
    let (code, with_fails) = run_chain(&image, 2, &[3, 6], el);
    assert_eq!(code, 42);
    assert_eq!(
        with_fails, reference,
        "boundary-aligned failovers must be byte-transparent"
    );
}
