//! The engine-equivalence oracle for the protocol refactor.
//!
//! `FtSystem` (the realistic DES: modelled link timing, shared disk,
//! timeout failure detectors) and `TChain` (the round-synchronous
//! chain on instantaneous links) run the *same* `hvft-core::protocol`
//! engines. If the rule logic is truly transport-independent — the
//! paper's claim — then the same workload and failure schedule must
//! produce identical guest-visible results through both drivers, at
//! t = 1 and t = 2 alike. These properties sample that space, with
//! both drivers configured through the one `Scenario` builder.

use hvft::core::scenario::{RunReport, Scenario, ScenarioBuilder};
use hvft::guest::workload::{Dhrystone, Hello};
use hvft::guest::KernelConfig;
use hvft::sim::time::{SimDuration, SimTime};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Rank-1 detection latency plus hand-over slack, in nanoseconds.
const DETECT_NS: u64 = 2_000_000;

fn cpu_workload() -> Dhrystone {
    Dhrystone {
        iters: 1_500,
        syscall_every: 7,
        kernel: KernelConfig {
            tick_period_us: 2000,
            tick_work: 2,
            ..KernelConfig::default()
        },
    }
}

fn des_builder(backups: usize) -> ScenarioBuilder {
    Scenario::builder()
        .workload(cpu_workload())
        .functional_cost()
        .backups(backups)
        .detector_timeout(SimDuration::from_micros(800))
}

struct Reference {
    code: u32,
    total_ns: u64,
    console: Vec<u8>,
}

/// Failure-free t = 1 DES run of the CPU workload.
fn cpu_reference() -> &'static Reference {
    static REF: OnceLock<Reference> = OnceLock::new();
    REF.get_or_init(|| {
        let r = des_builder(1).build().unwrap().run();
        Reference {
            code: r.exit.code().unwrap_or_else(|| panic!("{:?}", r.exit)),
            total_ns: r.completion_time.as_nanos(),
            console: r.console,
        }
    })
}

fn run_chain(builder: ScenarioBuilder, t: usize, fails: &[u64], epoch_len: u32) -> RunReport {
    let mut b = builder
        .chain()
        .functional_cost()
        .backups(t)
        .epoch_len(epoch_len)
        .max_epochs(10_000_000);
    for &f in fails {
        b = b.fail_primary_at_epoch(f);
    }
    let r = b.build().unwrap().run();
    assert!(
        r.exit.is_clean_exit(),
        "chain (t={t}, fails={fails:?}): {:?}",
        r.exit
    );
    r
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn failure_free_engines_agree_across_epoch_lengths(el_exp in 9u32..13) {
        // The same workload through both drivers at the same epoch
        // length: identical checksums, at t = 1 and t = 2.
        let el = 1u32 << el_exp;
        let reference = cpu_reference();
        for t in [1usize, 2] {
            let r = des_builder(t).epoch_len(el).build().unwrap().run();
            match r.exit.code() {
                Some(code) => prop_assert_eq!(code, reference.code, "DES t={} EL={}", t, el),
                None => return Err(TestCaseError::fail(
                    format!("DES t={t} EL={el}: {:?}", r.exit))),
            }
            prop_assert!(r.lockstep_clean, "DES t={} EL={} diverged", t, el);
            let chain = run_chain(Scenario::builder().workload(cpu_workload()), t, &[], el);
            prop_assert_eq!(chain.exit.code(), Some(reference.code), "chain t={} EL={}", t, el);
        }
    }

    #[test]
    fn failure_schedules_agree_between_des_and_chain(
        frac in 1u64..8,
        gap in 1u64..4,
        two_failures in any::<bool>(),
    ) {
        // Kill the acting primary (twice, for t = 2) in the DES; the
        // survivor must produce the reference checksum. Then replay an
        // equivalent schedule — the observed failover epochs — through
        // the chain and demand the same checksum again.
        let reference = cpu_reference();
        let t = if two_failures { 2 } else { 1 };
        let t1 = (reference.total_ns * frac / 10).max(1);
        let mut b = des_builder(t).fail_primary_at(SimTime::from_nanos(t1));
        if two_failures {
            let t2 = t1 + DETECT_NS + reference.total_ns * gap / 10;
            b = b.fail_primary_at(SimTime::from_nanos(t2));
        }
        let r = b.build().unwrap().run();
        match r.exit.code() {
            Some(code) => prop_assert_eq!(code, reference.code, "DES t={} frac={}", t, frac),
            None => return Err(TestCaseError::fail(
                format!("DES t={t} frac={frac}: {:?}", r.exit))),
        }
        prop_assert!(r.lockstep_clean, "DES t={} frac={} diverged", t, frac);
        // Console bytes under failover are an in-order subsequence of
        // the reference stream (fire-and-forget output may lose bytes in
        // the failover epoch, never reorder or invent them).
        let mut it = reference.console.iter();
        prop_assert!(
            r.console.iter().all(|b| it.any(|m| m == b)),
            "DES console not a subsequence: {:?}", r.console
        );
        // Replay through the chain: each DES promotion at epoch E means
        // the dead primary completed epochs < E+1.
        let fails: Vec<u64> = r.failovers.iter().map(|f| f.epoch + 1).collect();
        let chain = run_chain(
            Scenario::builder().workload(cpu_workload()),
            t,
            &fails,
            4096,
        );
        prop_assert_eq!(chain.exit.code(), Some(reference.code), "chain replay of {:?}", fails);
    }
}

fn hello_workload(msg: &str) -> Hello {
    Hello {
        message: msg.into(),
        wait_ticks: 2,
        kernel: KernelConfig {
            tick_period_us: 500,
            tick_work: 0,
            ..KernelConfig::default()
        },
    }
}

#[test]
fn console_streams_are_identical_without_failures() {
    // The strongest equivalence: byte-for-byte identical console output
    // through the DES (t = 1 and t = 2) and the chain.
    let msg = "the quick brown fox jumps over the lazy dog";
    let mut streams: Vec<Vec<u8>> = Vec::new();
    for t in [1usize, 2] {
        let r = Scenario::builder()
            .workload(hello_workload(msg))
            .functional_cost()
            .backups(t)
            .detector_timeout(SimDuration::from_micros(800))
            .build()
            .unwrap()
            .run();
        assert_eq!(r.exit.code(), Some(42), "{:?}", r.exit);
        streams.push(r.console);
        let chain = run_chain(
            Scenario::builder().workload(hello_workload(msg)),
            t,
            &[],
            4096,
        );
        assert_eq!(chain.exit.code(), Some(42));
        streams.push(chain.console);
    }
    for s in &streams[1..] {
        assert_eq!(
            s, &streams[0],
            "every driver/t must emit the identical byte stream"
        );
    }
    assert!(!streams[0].is_empty(), "the workload must actually print");
}

#[test]
fn chain_boundary_kills_lose_no_console_bytes() {
    // Chain failstops happen exactly at epoch boundaries, so — unlike
    // mid-epoch DES kills — the hand-over loses nothing: the full
    // reference stream must appear.
    let msg = "abcdefghijklmnopqrstuvwxyz";
    let el = 256;
    let reference = run_chain(
        Scenario::builder().workload(hello_workload(msg)),
        2,
        &[],
        el,
    );
    let with_fails = run_chain(
        Scenario::builder().workload(hello_workload(msg)),
        2,
        &[3, 6],
        el,
    );
    assert_eq!(with_fails.exit.code(), Some(42));
    assert_eq!(
        with_fails.console, reference.console,
        "boundary-aligned failovers must be byte-transparent"
    );
    // The chain's report carries the promotions as failovers.
    assert_eq!(with_fails.failovers.len(), 2);
}
