//! Workload equivalence across the API migration: while the deprecated
//! constructor shims exist, every registered `Workload` must produce an
//! identical environment view — console bytes and exit status — whether
//! the run is assembled by hand through the legacy `FtConfig` path
//! (`FtSystem::new`) or through the `Scenario` builder, at t = 1 on raw
//! (lossless) channels.
//!
//! This is the guarantee that the scenario layer is a *front door*, not
//! a fork: same engines, same drivers, same bits.

// One side of the comparison deliberately exercises the deprecated
// legacy constructor — that is the point of the oracle.
#![allow(deprecated)]

use hvft::core::scenario::Scenario;
use hvft::core::{FtConfig, FtSystem, RunEnd};
use hvft::guest::workload::registry;
use hvft::guest::Workload;
use hvft::hypervisor::cost::CostModel;
use proptest::prelude::*;

/// The environment's complete view of one run.
#[derive(PartialEq, Debug)]
struct EnvView {
    exit: String,
    console: Vec<u8>,
    completion_ns: u64,
    messages: Vec<u64>,
    lockstep_clean: bool,
}

fn legacy_view(w: &dyn Workload, seed: u64) -> EnvView {
    let image = w.image().expect("workload image builds");
    // Hand-assembled configuration, exactly as pre-scenario harnesses
    // did it (this file lives outside crates/core, so no struct
    // literal — defaults plus field updates).
    #[allow(clippy::field_reassign_with_default)]
    let cfg = {
        let mut cfg = FtConfig::default();
        cfg.cost = CostModel::functional();
        cfg.backups = 1;
        cfg.seed = seed;
        cfg
    };
    let mut sys = FtSystem::new(&image, cfg);
    let r = sys.run();
    EnvView {
        exit: match r.outcome {
            RunEnd::Exit { code } => format!("Exit({code})"),
            other => format!("{other:?}"),
        },
        console: r.console_output,
        completion_ns: r.completion_time.as_nanos(),
        messages: r.messages_per_replica,
        lockstep_clean: r.lockstep.is_clean(),
    }
}

fn scenario_view(name: &str, seed: u64) -> EnvView {
    let r = Scenario::builder()
        .workload_named(name)
        .functional_cost()
        .backups(1)
        .seed(seed)
        .build()
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .run();
    EnvView {
        exit: match r.exit.code() {
            Some(code) => format!("Exit({code})"),
            None => format!("{:?}", r.exit),
        },
        console: r.console,
        completion_ns: r.completion_time.as_nanos(),
        messages: r.messages_per_replica,
        lockstep_clean: r.lockstep_clean,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    // Every registered workload, legacy vs builder, across sampled
    // environment seeds: identical console/exit (and, because the path
    // really is the same code, identical times and message counts too).
    #[test]
    fn every_workload_is_identical_through_both_paths(seed in 0u64..1_000) {
        for w in registry() {
            let name = w.name();
            let legacy = legacy_view(w.as_ref(), seed);
            let scenario = scenario_view(&name, seed);
            prop_assert_eq!(
                &legacy, &scenario,
                "{} seed {}: legacy and Scenario paths diverged", name, seed
            );
            prop_assert!(
                legacy.exit.starts_with("Exit("),
                "{} seed {}: did not exit cleanly: {}", name, seed, legacy.exit
            );
            prop_assert!(legacy.lockstep_clean, "{} seed {}: diverged", name, seed);
        }
    }
}

/// Deterministic pin at seed 0 so the oracle holds even if sampling
/// shifts.
#[test]
fn pinned_workload_equivalence_at_seed_zero() {
    for w in registry() {
        let name = w.name();
        assert_eq!(
            legacy_view(w.as_ref(), 0),
            scenario_view(&name, 0),
            "{name}: legacy and Scenario paths diverged at seed 0"
        );
    }
}
