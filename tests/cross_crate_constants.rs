//! Cross-crate consistency checks: constants the guest assembly
//! hard-codes must agree with the machine and device crates.

use hvft::guest::layout;
use hvft::machine::{IO_BASE, PAGE_SIZE};

#[test]
fn guest_io_base_matches_machine() {
    // The generated kernel embeds IO_BASE = 0xF0000000 in its driver.
    assert_eq!(IO_BASE, 0xF000_0000);
    let src = hvft::guest::kernel_source(&hvft::guest::KernelConfig::default());
    assert!(
        src.contains("0xf0000100") || src.contains("0xF0000100"),
        "kernel driver must target the disk register block"
    );
}

#[test]
fn guest_page_table_covers_mapped_pages() {
    // One PTE word per page, table at PAGE_TABLE.
    assert_eq!(PAGE_SIZE, 4096);
    let table_bytes = layout::MAPPED_PAGES * 4;
    assert!(layout::PAGE_TABLE + table_bytes <= layout::KSTACK_TOP);
    // All of guest RAM is covered by the mapped pages.
    assert!(layout::RAM_BYTES as u32 <= layout::MAPPED_PAGES * PAGE_SIZE);
}

#[test]
fn dma_buffer_holds_a_disk_block() {
    assert!(hvft::devices::BLOCK_SIZE <= (layout::RAM_BYTES - layout::DMA_BUF as usize));
    // The buffer must lie in user-accessible pages so the user program
    // can read what the kernel DMA'd.
    let first = layout::DMA_BUF >> 12;
    let last = (layout::DMA_BUF + hvft::devices::BLOCK_SIZE as u32 - 1) >> 12;
    assert!(first >= layout::USER_FIRST_PAGE && last < layout::USER_LAST_PAGE);
}

#[test]
fn ivt_slots_fit_32_bytes() {
    // Each vector slot holds a single jump; the CPU spaces vectors 32
    // bytes apart.
    let src = hvft::guest::kernel_source(&hvft::guest::KernelConfig::default());
    let prog = hvft::isa::asm::assemble(&src).unwrap();
    // Vector 10 (external interrupt) is the last one.
    let v10 = layout::IVA_BASE + 32 * 10;
    assert!(prog.segments.iter().any(|s| s.base <= v10 && v10 < s.end()));
}

#[test]
fn kernel_config_default_is_conservative() {
    let d = hvft::guest::KernelConfig::default();
    assert_eq!(
        d.io_work_priv, 0,
        "functional default must not inflate I/O paths"
    );
    assert_eq!(d.io_work_ord, 0);
    assert!(d.arm_timer);
}
