//! Differential tests: the three execution tiers against each other.
//!
//! `Cpu::run` under every [`ExecTier`] — the single-step reference
//! interpreter, the predecoded-block engine, and the threaded-code
//! superblock jit — must be **observably identical**: same retired
//! counts, same machine-state hashes, same trap sequences at the same
//! instruction-stream points, same console bytes. This file proves it
//! four ways:
//!
//! - **bare differential**: every guest workload runs to completion on
//!   three [`BareHost`]s, one per tier, compared chunk by chunk;
//! - **hypervised differential**: the same workloads run under the full
//!   replicated [`FtSystem`] once per tier (including across a
//!   failover), and the entire observable outcome (checksums, epoch
//!   counts, simulated times, console, disk log) must match — this
//!   exercises privileged simulation, trap reflection, TLB management
//!   and epoch delimitation over the batching engines;
//! - **registry sweep**: every registered workload runs bare under all
//!   three tiers with bit-identical exit codes and console streams;
//! - **instruction-soup proptest**: randomized code (valid, privileged,
//!   trapping and garbage words mixed) driven through all tiers with
//!   traps delivered bare-metal style, comparing the full event
//!   sequence and final state hash.
//!
//! Self-modifying code gets its own section: a guest that patches a
//! block the engines have already cached (and, for the jit, a compiled
//! superblock mid-hot-loop) must behave exactly like the interpreter.

use hvft::guest::layout::RAM_BYTES;
use hvft::guest::{
    build_image, dhrystone_source, hello_source, io_bench_source, mixed_source, IoMode,
    KernelConfig,
};
use hvft::hypervisor::bare::{BareExit, BareHost};
use hvft::hypervisor::cost::CostModel;
use hvft::isa::codec::encode;
use hvft::isa::instruction::{AluImmOp, AluOp, BranchCond, Instruction, MemWidth};
use hvft::isa::reg::Reg;
use hvft::machine::cpu::{Cpu, Exit};
use hvft::machine::exec::ExecTier;
use hvft::machine::mem::Memory;
use hvft::machine::statehash::vm_state_hash;
use hvft::machine::tlb::TlbReplacement;
use hvft_core::scenario::{RunReport, Scenario, ScenarioBuilder};
use hvft_sim::time::SimTime;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Bare differential: chunked lockstep over complete workloads
// ---------------------------------------------------------------------

fn assert_bare_equivalent(
    name: &str,
    user: &str,
    kcfg: &KernelConfig,
    prep: impl Fn(&mut BareHost),
) {
    let image = build_image(kcfg, user).expect("image builds");
    let mk = |tier: ExecTier| {
        let mut h = BareHost::new(&image, CostModel::hp9000_720(), RAM_BYTES, 32, 7);
        h.set_exec_tier(tier);
        prep(&mut h);
        h
    };
    let mut stepped = mk(ExecTier::Step);
    let mut others = [mk(ExecTier::Block), mk(ExecTier::Jit)];
    // Compare at chunk boundaries so a divergence is localized to
    // within `chunk` instructions of where it first occurred.
    let chunk = 10_000u64;
    let cap = 500_000_000u64;
    let mut limit = 0u64;
    loop {
        limit += chunk;
        let rb = stepped.run(limit);
        for host in &mut others {
            let tier = host.exec_tier();
            let ra = host.run(limit);
            assert_eq!(
                ra.exit, rb.exit,
                "{name}/{tier}: exits diverged at limit {limit}"
            );
            assert_eq!(
                ra.retired, rb.retired,
                "{name}/{tier}: retired counts diverged at limit {limit}"
            );
            assert_eq!(ra.diags, rb.diags, "{name}/{tier}: diag streams diverged");
            assert_eq!(
                ra.time, rb.time,
                "{name}/{tier}: simulated time diverged at limit {limit}"
            );
            assert_eq!(
                vm_state_hash(&host.cpu, &host.mem),
                vm_state_hash(&stepped.cpu, &stepped.mem),
                "{name}/{tier}: state hashes diverged at {} retired",
                ra.retired
            );
            assert_eq!(
                host.console.output_string(),
                stepped.console.output_string(),
                "{name}/{tier}: console bytes diverged"
            );
        }
        if rb.exit != BareExit::InstructionLimit {
            break;
        }
        assert!(limit < cap, "{name}: no exit before {cap} instructions");
    }
}

#[test]
fn bare_dhrystone_with_syscalls_is_engine_invariant() {
    let kcfg = KernelConfig {
        tick_period_us: 200,
        tick_work: 2,
        ..KernelConfig::default()
    };
    assert_bare_equivalent("dhrystone", &dhrystone_source(400, 7), &kcfg, |_| {});
}

#[test]
fn bare_hello_is_engine_invariant() {
    let kcfg = KernelConfig {
        tick_period_us: 1000,
        tick_work: 0,
        ..KernelConfig::default()
    };
    assert_bare_equivalent("hello", &hello_source("block vs step\n", 2), &kcfg, |_| {});
}

#[test]
fn bare_io_write_is_engine_invariant() {
    assert_bare_equivalent(
        "io-write",
        &io_bench_source(4, IoMode::Write, 16, 9),
        &KernelConfig::default(),
        |_| {},
    );
}

#[test]
fn bare_io_read_is_engine_invariant() {
    let pattern: Vec<u8> = (0..hvft::devices::disk::BLOCK_SIZE)
        .map(|i| (i % 251) as u8)
        .collect();
    assert_bare_equivalent(
        "io-read",
        &io_bench_source(3, IoMode::Read, 16, 5),
        &KernelConfig::default(),
        |h| {
            for b in 0..16 {
                h.disk.poke_block(b, &pattern);
            }
        },
    );
}

#[test]
fn bare_mixed_is_engine_invariant() {
    assert_bare_equivalent(
        "mixed",
        &mixed_source(3, IoMode::Write, 16, 11, 50),
        &KernelConfig::default(),
        |_| {},
    );
}

// ---------------------------------------------------------------------
// Self-modifying guest code (the riskiest block-cache path)
// ---------------------------------------------------------------------

/// A bare-metal guest that executes a code sequence, then patches one
/// of its instructions *after it was executed (and cached)*, and runs
/// it again: iteration 1 executes `addi r20, r20, 1`, every later
/// iteration must execute the patched `addi r20, r20, 100`.
const SMC_GUEST: &str = ".org 0
start:
    addi r22, r0, 5          ; loop counter
    lw   r21, 512(r0)        ; replacement word (poked by the test)
outer:
    jal  ra, patchable
    ; after the first pass, overwrite the instruction at `slot`
    sw   r21, 48(r0)
    addi r22, r22, -1
    bne  r22, r0, outer
    halt

    .org 48
patchable:
slot:
    addi r20, r20, 1         ; becomes: addi r20, r20, 100
    jalr r0, ra, 0
";

#[test]
fn self_modifying_guest_invalidates_the_block_cache() {
    let patched = encode(Instruction::AluImm {
        op: AluImmOp::Addi,
        rd: Reg::of(20),
        rs1: Reg::of(20),
        imm: 100,
    })
    .unwrap();
    let image = hvft::isa::asm::assemble(SMC_GUEST).expect("asm");
    let run = |tier: ExecTier| {
        let mut host = BareHost::new(&image, CostModel::hp9000_720(), RAM_BYTES, 16, 0);
        host.set_exec_tier(tier);
        host.mem.write_u32(512, patched).unwrap();
        let r = host.run(100_000);
        (r, host)
    };
    let (rb, host_b) = run(ExecTier::Step);
    for tier in [ExecTier::Block, ExecTier::Jit] {
        let (ra, host_a) = run(tier);
        assert!(matches!(ra.exit, BareExit::Halted { .. }), "{:?}", ra.exit);
        assert_eq!(ra.exit, rb.exit, "{tier}");
        assert_eq!(ra.retired, rb.retired, "{tier}");
        assert_eq!(
            vm_state_hash(&host_a.cpu, &host_a.mem),
            vm_state_hash(&host_b.cpu, &host_b.mem),
            "self-modifying code must behave identically on every engine ({tier})"
        );
        // 5 passes: 1 original (+1), 4 patched (+100 each).
        assert_eq!(host_a.cpu.reg(Reg::of(20)), 1 + 4 * 100);
        let stats = host_a.cpu.block_cache_stats();
        assert!(
            stats.invalidations >= 1,
            "patching a cached block must invalidate it ({tier}): {stats:?}"
        );
    }
}

/// Like [`SMC_GUEST`], but hot: the patchable routine is called 60
/// times, far past the jit's promotion threshold, and the patch lands
/// mid-run (when the counter reaches 30) — so it overwrites code inside
/// a *compiled superblock*, not just a predecoded block.
const SMC_HOT_GUEST: &str = ".org 0
start:
    addi r22, r0, 60         ; loop counter
    lw   r21, 512(r0)        ; replacement word (poked by the test)
outer:
    jal  ra, patchable
    addi r23, r22, -30
    bne  r23, r0, nopatch
    sw   r21, 48(r0)         ; patch `slot` once, mid-hot-loop
nopatch:
    addi r22, r22, -1
    bne  r22, r0, outer
    halt

    .org 48
patchable:
slot:
    addi r20, r20, 1         ; becomes: addi r20, r20, 100
    jalr r0, ra, 0
";

#[test]
fn patching_a_compiled_superblock_invalidates_and_recompiles() {
    let patched = encode(Instruction::AluImm {
        op: AluImmOp::Addi,
        rd: Reg::of(20),
        rs1: Reg::of(20),
        imm: 100,
    })
    .unwrap();
    let image = hvft::isa::asm::assemble(SMC_HOT_GUEST).expect("asm");
    let run = |tier: ExecTier| {
        let mut host = BareHost::new(&image, CostModel::hp9000_720(), RAM_BYTES, 16, 0);
        host.set_exec_tier(tier);
        host.mem.write_u32(512, patched).unwrap();
        let r = host.run(100_000);
        (r, host)
    };
    let (rs, host_s) = run(ExecTier::Step);
    let (rj, host_j) = run(ExecTier::Jit);
    assert!(matches!(rj.exit, BareExit::Halted { .. }), "{:?}", rj.exit);
    assert_eq!(rj.exit, rs.exit);
    assert_eq!(rj.retired, rs.retired);
    assert_eq!(
        vm_state_hash(&host_j.cpu, &host_j.mem),
        vm_state_hash(&host_s.cpu, &host_s.mem),
        "a patched superblock must replay exactly like the interpreter"
    );
    // Calls with r22 = 60..=30 add 1 (31 calls); r22 = 29..=1 add 100.
    assert_eq!(host_j.cpu.reg(Reg::of(20)), 31 + 29 * 100);
    let x = host_j.exec_stats();
    assert!(
        x.superblocks_compiled >= 2,
        "the patched routine must be compiled, invalidated and \
         recompiled: {x:?}"
    );
    assert!(
        x.jit_invalidations >= 1,
        "the mid-loop patch must invalidate a compiled superblock: {x:?}"
    );
    assert!(x.jit_retired > 0, "the hot loop must run compiled: {x:?}");
}

/// A hot loop whose callee sits at the end of page 0 and `jal`s into
/// page 1, so the compiled superblock spans both pages. Mid-hot-loop
/// the guest patches an instruction on the *second* page — the entry
/// page's write generation never changes, so only per-constituent-page
/// validation can catch the staleness.
const SMC_CROSS_PAGE_GUEST: &str = ".org 0
start:
    addi r22, r0, 60         ; loop counter
    lw   r21, 512(r0)        ; replacement word (poked by the test)
outer:
    jal  ra, crosser
    addi r23, r22, -30
    bne  r23, r0, nopatch
    sw   r21, 4096(r0)       ; patch `slot` on the trace's SECOND page
nopatch:
    addi r22, r22, -1
    bne  r22, r0, outer
    halt

    .org 4088
crosser:
    addi r20, r20, 1
    jal  r0, tail            ; crosses into page 1 mid-trace

    .org 4096
tail:
slot:
    addi r20, r20, 2         ; becomes: addi r20, r20, 100
    jalr r0, ra, 0
";

#[test]
fn patching_the_second_page_of_a_cross_page_superblock_invalidates_it() {
    let patched = encode(Instruction::AluImm {
        op: AluImmOp::Addi,
        rd: Reg::of(20),
        rs1: Reg::of(20),
        imm: 100,
    })
    .unwrap();
    let image = hvft::isa::asm::assemble(SMC_CROSS_PAGE_GUEST).expect("asm");
    let run = |tier: ExecTier| {
        let mut host = BareHost::new(&image, CostModel::hp9000_720(), RAM_BYTES, 16, 0);
        host.set_exec_tier(tier);
        host.mem.write_u32(512, patched).unwrap();
        let r = host.run(100_000);
        (r, host)
    };
    let (rs, host_s) = run(ExecTier::Step);
    let (rj, host_j) = run(ExecTier::Jit);
    assert!(matches!(rj.exit, BareExit::Halted { .. }), "{:?}", rj.exit);
    assert_eq!(rj.exit, rs.exit);
    assert_eq!(rj.retired, rs.retired);
    assert_eq!(
        vm_state_hash(&host_j.cpu, &host_j.mem),
        vm_state_hash(&host_s.cpu, &host_s.mem),
        "a cross-page superblock stale on its second page must replay \
         exactly like the interpreter"
    );
    // Calls with r22 = 60..=30 add 1+2 (31 calls); r22 = 29..=1 add 1+100.
    assert_eq!(host_j.cpu.reg(Reg::of(20)), 31 * 3 + 29 * 101);
    let x = host_j.exec_stats();
    assert!(
        x.cross_page_superblocks >= 1,
        "the crosser must compile into a cross-page trace: {x:?}"
    );
    assert!(
        x.jit_invalidations_secondary >= 1,
        "the patch leaves the entry page intact, so the invalidation \
         must be attributed to a secondary page: {x:?}"
    );
    assert!(x.jit_retired > 0, "the hot loop must run compiled: {x:?}");
}

/// Like [`SMC_CROSS_PAGE_GUEST`], but the patching store executes from
/// *inside* the cross-page trace itself (it sits on the second page,
/// four bytes before the instruction it overwrites), so the store
/// helper must notice the trace it is running in went stale and abandon
/// the compiled tail with the PC advanced past the store.
const SMC_CROSS_PAGE_SELF_GUEST: &str = ".org 0
start:
    addi r22, r0, 60         ; loop counter
    lw   r21, 512(r0)        ; replacement word (poked by the test)
outer:
    addi r24, r22, -30       ; r24 == 0 exactly once, mid-hot-loop
    jal  ra, crosser
    addi r22, r22, -1
    bne  r22, r0, outer
    halt

    .org 4088
crosser:
    addi r20, r20, 1
    jal  r0, tail            ; crosses into page 1 mid-trace

    .org 4096
tail:
    bne  r24, r0, skip
    sw   r21, 4104(r0)       ; patch `slot` from INSIDE the trace
skip:
slot:
    addi r20, r20, 2         ; becomes: addi r20, r20, 100
    jalr r0, ra, 0
";

#[test]
fn a_store_from_inside_a_cross_page_superblock_kills_its_own_trace() {
    let patched = encode(Instruction::AluImm {
        op: AluImmOp::Addi,
        rd: Reg::of(20),
        rs1: Reg::of(20),
        imm: 100,
    })
    .unwrap();
    let image = hvft::isa::asm::assemble(SMC_CROSS_PAGE_SELF_GUEST).expect("asm");
    let run = |tier: ExecTier| {
        let mut host = BareHost::new(&image, CostModel::hp9000_720(), RAM_BYTES, 16, 0);
        host.set_exec_tier(tier);
        host.mem.write_u32(512, patched).unwrap();
        let r = host.run(100_000);
        (r, host)
    };
    let (rs, host_s) = run(ExecTier::Step);
    let (rj, host_j) = run(ExecTier::Jit);
    assert!(matches!(rj.exit, BareExit::Halted { .. }), "{:?}", rj.exit);
    assert_eq!(rj.exit, rs.exit);
    assert_eq!(rj.retired, rs.retired);
    assert_eq!(
        vm_state_hash(&host_j.cpu, &host_j.mem),
        vm_state_hash(&host_s.cpu, &host_s.mem),
        "a trace that patches its own second page must replay exactly \
         like the interpreter"
    );
    // r22 = 60..=31: +3 each; r22 = 30 patches then runs the patched
    // slot (+101); r22 = 29..=1: +101 each.
    assert_eq!(host_j.cpu.reg(Reg::of(20)), 30 * 3 + 30 * 101);
    let x = host_j.exec_stats();
    assert!(
        x.cross_page_superblocks >= 1,
        "the crosser must compile into a cross-page trace: {x:?}"
    );
    assert!(
        x.jit_invalidations >= 1,
        "the in-trace patch must invalidate the superblock: {x:?}"
    );
    assert!(x.jit_retired > 0, "the hot loop must run compiled: {x:?}");
}

// ---------------------------------------------------------------------
// Hypervised differential: the whole replicated system, block on/off
// ---------------------------------------------------------------------

fn ft_outcome(
    image: &hvft::isa::program::Program,
    base: &dyn Fn() -> ScenarioBuilder,
    tier: ExecTier,
) -> RunReport {
    base()
        .image(image.clone())
        .functional_cost()
        .exec_tier(tier)
        .build()
        .expect("differential scenario is valid")
        .run()
}

fn assert_ft_equivalent(
    name: &str,
    user: &str,
    kcfg: &KernelConfig,
    base: &dyn Fn() -> ScenarioBuilder,
) {
    let image = build_image(kcfg, user).expect("image builds");
    let b = ft_outcome(&image, base, ExecTier::Step);
    assert!(b.lockstep_clean, "{name}: step run diverged");
    for tier in [ExecTier::Block, ExecTier::Jit] {
        let a = ft_outcome(&image, base, tier);
        assert_eq!(a.exit, b.exit, "{name}/{tier}: outcomes diverged");
        assert_eq!(
            a.completion_time, b.completion_time,
            "{name}/{tier}: completion times diverged"
        );
        assert_eq!(a.console, b.console, "{name}/{tier}: console bytes");
        assert_eq!(
            a.console_hosts, b.console_hosts,
            "{name}/{tier}: console hosts"
        );
        assert_eq!(a.disk_log, b.disk_log, "{name}/{tier}: disk logs diverged");
        assert_eq!(a.guest_retries, b.guest_retries, "{name}/{tier}: retries");
        assert_eq!(
            a.messages_per_replica, b.messages_per_replica,
            "{name}/{tier}: message counts diverged"
        );
        assert_eq!(
            a.failovers, b.failovers,
            "{name}/{tier}: failover schedules diverged"
        );
        assert!(a.lockstep_clean, "{name}/{tier}: run diverged");
        assert_eq!(
            a.lockstep_compared, b.lockstep_compared,
            "{name}/{tier}: lockstep comparison counts diverged"
        );
        // Same number of epochs, simulated instructions, reflections and
        // interrupt deliveries on every replica.
        let stats = |r: &RunReport| {
            r.replica_stats
                .iter()
                .map(|s| (s.epochs, s.simulated, s.reflected, s.mmio, s.irqs_delivered))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            stats(&a),
            stats(&b),
            "{name}/{tier}: hypervisor stats diverged"
        );
    }
}

#[test]
fn ft_dhrystone_is_engine_invariant() {
    let kcfg = KernelConfig {
        tick_period_us: 2000,
        tick_work: 2,
        ..KernelConfig::default()
    };
    assert_ft_equivalent(
        "ft-dhrystone",
        &dhrystone_source(800, 7),
        &kcfg,
        &Scenario::builder,
    );
}

#[test]
fn ft_io_write_is_engine_invariant() {
    assert_ft_equivalent(
        "ft-io-write",
        &io_bench_source(3, IoMode::Write, 16, 13),
        &KernelConfig::default(),
        &Scenario::builder,
    );
}

#[test]
fn ft_hello_is_engine_invariant() {
    let kcfg = KernelConfig {
        tick_period_us: 500,
        tick_work: 1,
        ..KernelConfig::default()
    };
    assert_ft_equivalent(
        "ft-hello",
        &hello_source("ft hello\n", 1),
        &kcfg,
        &Scenario::builder,
    );
}

#[test]
fn ft_mixed_is_engine_invariant() {
    assert_ft_equivalent(
        "ft-mixed",
        &mixed_source(2, IoMode::Write, 16, 3, 80),
        &KernelConfig::default(),
        &Scenario::builder,
    );
}

#[test]
fn ft_failover_is_engine_invariant() {
    // A failover mid-run (promotion, P7 bookkeeping, detector re-arm)
    // must land on exactly the same epoch under both engines.
    let kcfg = KernelConfig {
        tick_period_us: 2000,
        tick_work: 2,
        ..KernelConfig::default()
    };
    assert_ft_equivalent("ft-failover", &dhrystone_source(1_500, 9), &kcfg, &|| {
        Scenario::builder().fail_primary_at(SimTime::from_nanos(800_000))
    });
}

// ---------------------------------------------------------------------
// Registry sweep: every built-in workload under every tier
// ---------------------------------------------------------------------

#[test]
fn every_registry_workload_is_tier_invariant() {
    for name in hvft::guest::workload::names() {
        let run = |tier: ExecTier| {
            Scenario::builder()
                .workload_named(&name)
                .bare()
                .exec_tier(tier)
                .build()
                .expect("registry scenario is valid")
                .run()
        };
        let b = run(ExecTier::Step);
        for tier in [ExecTier::Block, ExecTier::Jit] {
            let a = run(tier);
            assert_eq!(a.exit, b.exit, "{name}/{tier}: exit codes diverged");
            assert_eq!(a.retired, b.retired, "{name}/{tier}: retired diverged");
            assert_eq!(a.console, b.console, "{name}/{tier}: console diverged");
            assert_eq!(
                a.completion_time, b.completion_time,
                "{name}/{tier}: simulated time diverged"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Instruction-soup proptest
// ---------------------------------------------------------------------

/// Deterministically expands one random draw into an instruction word:
/// mostly valid straight-line code, with control transfers, privileged
/// and environment instructions, gates, and raw garbage mixed in.
fn synth_word(r: u64) -> u32 {
    let reg = |n: u64| Reg::of((n % 32) as u8);
    let pick = r % 100;
    let a = r >> 8;
    let insn = if pick < 30 {
        Instruction::Alu {
            op: match a % 13 {
                0 => AluOp::Add,
                1 => AluOp::Sub,
                2 => AluOp::And,
                3 => AluOp::Or,
                4 => AluOp::Xor,
                5 => AluOp::Sll,
                6 => AluOp::Srl,
                7 => AluOp::Sra,
                8 => AluOp::Slt,
                9 => AluOp::Sltu,
                10 => AluOp::Mul,
                11 => AluOp::Divu,
                _ => AluOp::Remu,
            },
            rd: reg(a >> 4),
            rs1: reg(a >> 9),
            rs2: reg(a >> 14),
        }
    } else if pick < 50 {
        Instruction::AluImm {
            op: match a % 8 {
                0 => AluImmOp::Addi,
                1 => AluImmOp::Andi,
                2 => AluImmOp::Ori,
                3 => AluImmOp::Xori,
                4 => AluImmOp::Slti,
                5 => AluImmOp::Slli,
                6 => AluImmOp::Srli,
                _ => AluImmOp::Srai,
            },
            rd: reg(a >> 3),
            rs1: reg(a >> 8),
            imm: if matches!(a % 8, 5..=7) {
                ((a >> 13) % 32) as i32
            } else {
                (((a >> 13) % 4096) as i32) - 2048
            },
        }
    } else if pick < 62 {
        // Loads and stores around the scratch area at 0x2000.
        let width = match a % 3 {
            0 => MemWidth::Word,
            1 => MemWidth::Byte,
            _ => MemWidth::ByteU,
        };
        if a.is_multiple_of(2) {
            Instruction::Load {
                width,
                rd: reg(a >> 4),
                base: Reg::SP,
                disp: ((a >> 9) % 512) as i32 * 4 - 1024,
            }
        } else {
            Instruction::Store {
                width: if width == MemWidth::ByteU {
                    MemWidth::Byte
                } else {
                    width
                },
                rs: reg(a >> 4),
                base: Reg::SP,
                disp: ((a >> 9) % 512) as i32 * 4 - 1024,
            }
        }
    } else if pick < 72 {
        Instruction::Branch {
            cond: match a % 6 {
                0 => BranchCond::Eq,
                1 => BranchCond::Ne,
                2 => BranchCond::Lt,
                3 => BranchCond::Ge,
                4 => BranchCond::Ltu,
                _ => BranchCond::Geu,
            },
            rs1: reg(a >> 3),
            rs2: reg(a >> 8),
            offset: (((a >> 13) % 16) as i32 - 8) * 4,
        }
    } else if pick < 77 {
        Instruction::Jal {
            rd: reg(a),
            offset: (((a >> 6) % 16) as i32 - 8) * 4,
        }
    } else if pick < 80 {
        Instruction::Jalr {
            rd: reg(a),
            base: reg(a >> 5),
            disp: ((a >> 10) % 64) as i32 * 4,
        }
    } else if pick < 84 {
        Instruction::Gate {
            imm: (a % 16) as u32,
        }
    } else if pick < 86 {
        Instruction::Brk {
            imm: (a % 8) as u32,
        }
    } else if pick < 88 {
        Instruction::Probe {
            rd: reg(a),
            rs: reg(a >> 5),
        }
    } else if pick < 96 {
        // Privileged / environment instructions: above privilege 0
        // these all trap; the engines must agree on where.
        match a % 8 {
            0 => Instruction::MfCtl {
                rd: reg(a >> 3),
                cr: hvft::isa::reg::ControlReg::Scratch0,
            },
            1 => Instruction::MtCtl {
                cr: hvft::isa::reg::ControlReg::Scratch1,
                rs: reg(a >> 3),
            },
            2 => Instruction::Ssm {
                imm: ((a >> 3) % 4) as u32,
            },
            3 => Instruction::Rsm {
                imm: ((a >> 3) % 4) as u32,
            },
            4 => Instruction::Tlbp { rs: reg(a >> 3) },
            5 => Instruction::MfTod { rd: reg(a >> 3) },
            6 => Instruction::Idle,
            _ => Instruction::Nop,
        }
    } else if pick < 98 {
        Instruction::Nop
    } else {
        // Raw garbage: undecodable with high probability.
        return (a as u32) | 0xFF00_0000;
    };
    encode(insn).unwrap_or(0)
}

/// Drives one engine until `max_retired` instructions retired or
/// `max_events` non-retired exits, delivering traps the way bare
/// hardware would and logging every event. `use_run = false` bypasses
/// [`Cpu::run`] entirely and single-steps by hand — the most primitive
/// reference there is.
fn drive(
    cpu: &mut Cpu,
    mem: &mut Memory,
    use_run: bool,
    max_retired: u64,
    max_events: u32,
) -> Vec<String> {
    let mut log = Vec::new();
    let mut events = 0u32;
    while cpu.retired() < max_retired && events < max_events {
        let exit = if use_run {
            cpu.run(mem, max_retired - cpu.retired())
        } else {
            cpu.step(mem)
        };
        match exit {
            Exit::Retired => {}
            Exit::Trap(t) => {
                log.push(format!("{t:?} pc={:#x} n={}", cpu.pc, cpu.retired()));
                events += 1;
                cpu.deliver_trap(t);
            }
            other => {
                log.push(format!("{other:?} pc={:#x} n={}", cpu.pc, cpu.retired()));
                break;
            }
        }
    }
    log
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn random_code_runs_identically_on_both_engines(
        seeds in prop::collection::vec(any::<u64>(), 48),
        cpl in 0u8..4,
        user_code in any::<bool>(),
    ) {
        let build = || {
            let mut cpu = Cpu::new(16, TlbReplacement::RoundRobin, 0);
            let mut mem = Memory::new(64 * 1024);
            for (i, &s) in seeds.iter().enumerate() {
                mem.write_u32(i as u32 * 4, synth_word(s)).unwrap();
            }
            // A halt island after the soup so straight runs terminate.
            for i in seeds.len()..seeds.len() + 16 {
                mem.write_u32(i as u32 * 4, encode(Instruction::Halt).unwrap()).unwrap();
            }
            cpu.psw.cpl = cpl;
            cpu.set_reg(Reg::SP, 0x2000);
            cpu.set_reg(Reg::GP, 0x3000);
            for r in 4..12u8 {
                cpu.set_reg(Reg::of(r), (seeds[r as usize] as u32) % 0x4000);
            }
            if user_code {
                // Exercise translation: identity-map the low pages,
                // user-accessible, via the TLB directly.
                cpu.psw.translation = true;
                for page in 0u32..16 {
                    cpu.tlb.insert_pte(
                        page << 12,
                        (page << 12) | hvft::machine::tlb::pte::V
                            | hvft::machine::tlb::pte::R
                            | hvft::machine::tlb::pte::W
                            | hvft::machine::tlb::pte::X
                            | hvft::machine::tlb::pte::U,
                    );
                }
            }
            (cpu, mem)
        };
        let (mut cpu_b, mut mem_b) = build();
        let log_b = drive(&mut cpu_b, &mut mem_b, false, 5_000, 400);
        for tier in [ExecTier::Step, ExecTier::Block, ExecTier::Jit] {
            let (mut cpu_a, mut mem_a) = build();
            cpu_a.set_exec_tier(tier);
            let log_a = drive(&mut cpu_a, &mut mem_a, true, 5_000, 400);
            prop_assert_eq!(&log_a, &log_b, "event sequences diverged ({})", tier);
            prop_assert_eq!(cpu_a.retired(), cpu_b.retired(), "{}", tier);
            prop_assert_eq!(cpu_a.pc, cpu_b.pc, "{}", tier);
            prop_assert_eq!(
                vm_state_hash(&cpu_a, &mem_a),
                vm_state_hash(&cpu_b, &mem_b),
                "final states diverged ({})",
                tier
            );
        }
    }

    #[test]
    fn random_recovery_counter_epochs_are_engine_exact(
        seeds in prop::collection::vec(any::<u64>(), 32),
        epoch_len in 1u32..257,
    ) {
        // The Instruction-Stream Interrupt Assumption, adversarially:
        // with the recovery counter armed, both engines must report the
        // epoch boundary at exactly the same retired count, whatever
        // the code does.
        let build = || {
            let mut cpu = Cpu::new(16, TlbReplacement::RoundRobin, 0);
            let mut mem = Memory::new(64 * 1024);
            for (i, &s) in seeds.iter().enumerate() {
                mem.write_u32(i as u32 * 4, synth_word(s)).unwrap();
            }
            for i in seeds.len()..seeds.len() + 16 {
                mem.write_u32(i as u32 * 4, encode(Instruction::Jal { rd: Reg::ZERO, offset: -((seeds.len() as i32) * 4) }).unwrap()).unwrap();
            }
            cpu.psw.recovery = true;
            cpu.set_ctl(hvft::isa::reg::ControlReg::Rctr, epoch_len);
            cpu.set_reg(Reg::SP, 0x2000);
            (cpu, mem)
        };
        let (mut cpu_b, mut mem_b) = build();
        let (mut cpu_blk, mut mem_blk) = build();
        let (mut cpu_jit, mut mem_jit) = build();
        cpu_jit.set_exec_tier(ExecTier::Jit);
        for _ in 0..4 {
            let log_b = drive(&mut cpu_b, &mut mem_b, false, u64::MAX, 200);
            let log_blk = drive(&mut cpu_blk, &mut mem_blk, true, u64::MAX, 200);
            let log_jit = drive(&mut cpu_jit, &mut mem_jit, true, u64::MAX, 200);
            prop_assert_eq!(&log_blk, &log_b, "block");
            prop_assert_eq!(&log_jit, &log_b, "jit");
            prop_assert_eq!(cpu_blk.retired(), cpu_b.retired());
            prop_assert_eq!(cpu_jit.retired(), cpu_b.retired());
            // Re-arm and continue (drive stops at the event cap or a
            // non-trap exit; RecoveryCounter traps are delivered like
            // any other and vector to low memory).
            cpu_b.set_ctl(hvft::isa::reg::ControlReg::Rctr, epoch_len);
            cpu_blk.set_ctl(hvft::isa::reg::ControlReg::Rctr, epoch_len);
            cpu_jit.set_ctl(hvft::isa::reg::ControlReg::Rctr, epoch_len);
        }
        prop_assert_eq!(
            vm_state_hash(&cpu_blk, &mem_blk),
            vm_state_hash(&cpu_b, &mem_b)
        );
        prop_assert_eq!(
            vm_state_hash(&cpu_jit, &mem_jit),
            vm_state_hash(&cpu_b, &mem_b)
        );
    }

    #[test]
    fn random_stores_into_cross_page_traces_are_engine_exact(
        patch_idx in 0u32..4,
        patch_seed in any::<u64>(),
        patch_at in 20u32..45,
        loops in 50u32..70,
    ) {
        // A hot loop whose trace spans two pages, patched at a random
        // word of the SECOND page with a random replacement (valid,
        // control-transfer, trapping or garbage) at a random point
        // after the trace is hot. All three tiers must report the same
        // event log, retired count and final state, whatever the patch
        // turns the code into.
        let src = format!(
            ".org 0
start:
    addi r22, r0, {loops}
    lw   r21, 512(r0)        ; replacement word
    lw   r25, 516(r0)        ; patch address
    lw   r26, 520(r0)        ; patch countdown
outer:
    jal  ra, crosser
    addi r26, r26, -1
    bne  r26, r0, nopatch
    sw   r21, 0(r25)
nopatch:
    addi r22, r22, -1
    bne  r22, r0, outer
    halt
    .org 4088
crosser:
    addi r20, r20, 1
    jal  r0, tail
    .org 4096
tail:
    addi r20, r20, 2
    xor  r20, r20, r22
    addi r20, r20, 3
    jalr r0, ra, 0
"
        );
        let image = hvft::isa::asm::assemble(&src).expect("asm");
        let build = || {
            let cpu = Cpu::new(16, TlbReplacement::RoundRobin, 0);
            let mut mem = Memory::new(64 * 1024);
            for seg in &image.segments {
                mem.write_bytes(seg.base, &seg.data);
            }
            mem.write_u32(512, synth_word(patch_seed)).unwrap();
            mem.write_u32(516, 4096 + 4 * patch_idx).unwrap();
            mem.write_u32(520, patch_at).unwrap();
            (cpu, mem)
        };
        let (mut cpu_b, mut mem_b) = build();
        let log_b = drive(&mut cpu_b, &mut mem_b, false, 50_000, 400);
        for tier in [ExecTier::Step, ExecTier::Block, ExecTier::Jit] {
            let (mut cpu_a, mut mem_a) = build();
            cpu_a.set_exec_tier(tier);
            let log_a = drive(&mut cpu_a, &mut mem_a, true, 50_000, 400);
            prop_assert_eq!(&log_a, &log_b, "event sequences diverged ({})", tier);
            prop_assert_eq!(cpu_a.retired(), cpu_b.retired(), "{}", tier);
            prop_assert_eq!(
                vm_state_hash(&cpu_a, &mem_a),
                vm_state_hash(&cpu_b, &mem_b),
                "final states diverged ({})",
                tier
            );
            if tier == ExecTier::Jit {
                let x = cpu_a.exec_stats();
                prop_assert!(
                    x.cross_page_superblocks >= 1,
                    "the hot crosser must fuse across the page: {:?}",
                    x
                );
            }
        }
    }
}
