//! Replays the checked-in `corpus/` of hvft-lang regression programs.
//!
//! Every `corpus/*.hvft` file is compiled, booted bare under all three
//! execution tiers, and the observable outcome (exit code, retired
//! count, console stream, diag pairs, final state hash) must be
//! tier-invariant. Unless a program opts out with `//@ tiers-only`,
//! the reference interpreter must agree on exit code, console bytes
//! and `mark` checkpoints. Expectation directives embedded in the
//! source pin absolute values:
//!
//! ```text
//! //@ exit: 285            expected exit code (decimal)
//! //@ console: Hi\nABCDE   expected console bytes (\n \t \0 \\ escapes)
//! //@ marks: 12,6          expected mark() values, in order
//! //@ tiers-only           skip interpreter parity (clock intrinsics)
//! ```
//!
//! Each compiled image is also pushed through `disasm::to_source` and
//! re-assembled, pinning the assemble → disassemble fixpoint on whole
//! bootable images, kernel included.

use hvft::guest::layout::RAM_BYTES;
use hvft::guest::{build_image, CompiledWorkload, Workload};
use hvft::hypervisor::bare::{BareExit, BareHost};
use hvft::hypervisor::cost::CostModel;
use hvft::machine::exec::ExecTier;
use hvft::machine::statehash::vm_state_hash;
use hvft_isa::asm::assemble;
use hvft_isa::disasm::to_source;

const FUEL: u64 = 20_000_000;

/// Directives parsed from `//@` comments in a corpus file.
#[derive(Debug, Default)]
struct Expect {
    exit: Option<u32>,
    console: Option<String>,
    marks: Option<Vec<u32>>,
    tiers_only: bool,
}

fn unescape(s: &str) -> String {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('0') => out.push('\0'),
            Some('\\') => out.push('\\'),
            other => panic!("bad escape \\{other:?} in console directive"),
        }
    }
    out
}

fn parse_expect(name: &str, source: &str) -> Expect {
    let mut e = Expect::default();
    for line in source.lines() {
        let Some(directive) = line.trim().strip_prefix("//@") else {
            continue;
        };
        let directive = directive.trim();
        if directive == "tiers-only" {
            e.tiers_only = true;
        } else if let Some(v) = directive.strip_prefix("exit:") {
            e.exit = Some(
                v.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("{name}: bad exit directive")),
            );
        } else if let Some(v) = directive.strip_prefix("console:") {
            e.console = Some(unescape(v.trim_start()));
        } else if let Some(v) = directive.strip_prefix("marks:") {
            e.marks = Some(
                v.split(',')
                    .map(|m| {
                        m.trim()
                            .parse()
                            .unwrap_or_else(|_| panic!("{name}: bad marks directive"))
                    })
                    .collect(),
            );
        } else {
            panic!("{name}: unknown directive `//@ {directive}`");
        }
    }
    e
}

fn corpus_files() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut files: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("corpus/ directory exists")
        .map(|entry| entry.expect("readable corpus entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "hvft"))
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).expect("readable corpus file");
            (name, text)
        })
        .collect();
    files.sort();
    assert!(
        files.len() >= 5,
        "corpus went missing: {} files",
        files.len()
    );
    files
}

#[test]
fn corpus_replays_identically_across_tiers_and_oracles() {
    for (name, source) in corpus_files() {
        let expect = parse_expect(&name, &source);
        let workload = CompiledWorkload::new(&name, &source)
            .unwrap_or_else(|e| panic!("{name}: does not compile: {e}"));
        let image = build_image(&workload.kernel(), &workload.user_source())
            .unwrap_or_else(|e| panic!("{name}: image does not build: {e}"));

        let mut outcomes = Vec::new();
        for tier in [ExecTier::Step, ExecTier::Block, ExecTier::Jit] {
            let mut host = BareHost::new(&image, CostModel::functional(), RAM_BYTES, 32, 7);
            host.set_exec_tier(tier);
            let r = host.run(FUEL);
            assert!(
                matches!(r.exit, BareExit::Halted { .. }),
                "{name}/{tier}: did not halt: {:?}",
                r.exit
            );
            outcomes.push((
                tier,
                r.exit,
                r.retired,
                r.time,
                r.diags,
                host.console.output_string(),
                vm_state_hash(&host.cpu, &host.mem),
            ));
        }
        let (_, exit, _, _, diags, console, _) = outcomes[0].clone();
        for o in &outcomes[1..] {
            assert_eq!(
                (&o.1, &o.2, &o.3, &o.4, &o.5, &o.6),
                (
                    &outcomes[0].1,
                    &outcomes[0].2,
                    &outcomes[0].3,
                    &outcomes[0].4,
                    &outcomes[0].5,
                    &outcomes[0].6
                ),
                "{name}: {} diverged from {}",
                o.0,
                outcomes[0].0
            );
        }

        // Absolute pins from the file's own directives.
        if let Some(code) = expect.exit {
            assert_eq!(exit, BareExit::Halted { code: Some(code) }, "{name}: exit");
        }
        if let Some(ref want) = expect.console {
            assert_eq!(&console, want, "{name}: console");
        }
        if let Some(ref want) = expect.marks {
            let marks: Vec<u32> = diags.iter().filter(|d| d.1 == 2).map(|d| d.0).collect();
            assert_eq!(&marks, want, "{name}: marks");
        }

        // Language-level ground truth, unless the program opted out.
        if !expect.tiers_only {
            let outcome = hvft::lang::interpret(&source, FUEL)
                .unwrap_or_else(|e| panic!("{name}: interpreter failed: {e}"));
            assert_eq!(
                exit,
                BareExit::Halted {
                    code: Some(outcome.exit)
                },
                "{name}: machine exit disagrees with interpreter"
            );
            assert_eq!(
                console.as_bytes(),
                &outcome.console[..],
                "{name}: console parity"
            );
            let mut want: Vec<(u32, u32)> = outcome.marks.iter().map(|&m| (m, 2)).collect();
            want.push((outcome.exit, 1));
            assert_eq!(diags, want, "{name}: diag parity");
        }

        // Whole-image disassembly fixpoint: the bootable image (kernel
        // included) renders to source the assembler maps back to the
        // identical image.
        let rendered = to_source(&image);
        let again = assemble(&rendered)
            .unwrap_or_else(|e| panic!("{name}: to_source output does not assemble: {e}"));
        assert_eq!(
            image.words().collect::<Vec<_>>(),
            again.words().collect::<Vec<_>>(),
            "{name}: image changed across disassembly round trip"
        );
        assert_eq!(image.entry, again.entry, "{name}: entry changed");
    }
}
