//! Differential fuzzing of the execution tiers with `hvft-lang` as the
//! program source.
//!
//! The random-program generator ([`hvft::lang::genprog`]) is the fuzz
//! frontier and the reference interpreter ([`hvft::lang::interpret`])
//! is the ground-truth oracle: every generated program is compiled to
//! a bootable guest image and must behave **bit-identically** across
//!
//! - the three execution tiers ([`ExecTier::Step`], [`ExecTier::Block`],
//!   [`ExecTier::Jit`]) run straight to completion on a [`BareHost`];
//! - the same tiers driven through *epoch-length event windows* —
//!   seed-drawn small cumulative `run(limit)` chunks, the way the
//!   replication protocol actually drives a virtual machine;
//! - the language-level interpreter, which never saw the ISA at all:
//!   exit code, console byte stream, and `mark` checkpoints (surfaced
//!   by the kernel as `diag` pairs) must agree with the machine.
//!
//! A seed-corpus distinctness test guarantees the proptest sweep
//! exercises the advertised number of *distinct* programs rather than
//! re-running one degenerate case.

// The in-tree proptest shim's macro is a token muncher; two cases with
// doc comments exceed the default limit.
#![recursion_limit = "256"]

use std::collections::HashSet;

use hvft::guest::layout::RAM_BYTES;
use hvft::guest::{build_image, CompiledWorkload, Workload};
use hvft::hypervisor::bare::{BareExit, BareHost, BareRunResult};
use hvft::hypervisor::cost::CostModel;
use hvft::lang::genprog::{self, GenConfig};
use hvft::machine::exec::ExecTier;
use hvft::machine::statehash::vm_state_hash;
use hvft_isa::program::Program;
use proptest::prelude::*;

/// Hard ceiling on retired instructions; generated programs are
/// terminating by construction and orders of magnitude smaller.
const FUEL: u64 = 20_000_000;

/// Disk programs idle-wait for completions, so their retirement budget
/// is capped lower and reaching it is a valid terminal state.
const DISK_FUEL: u64 = 2_000_000;

/// Everything observable about one complete bare run.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    exit: BareExit,
    retired: u64,
    time: hvft::sim::time::SimDuration,
    diags: Vec<(u32, u32)>,
    console: String,
    state_hash: u64,
}

fn fresh_host(image: &Program, tier: ExecTier) -> BareHost {
    let mut host = BareHost::new(image, CostModel::functional(), RAM_BYTES, 32, 7);
    host.set_exec_tier(tier);
    host
}

/// `result.time` is the duration of ONE `run` call, so windowed runs
/// pass the accumulated total instead.
fn observe(
    host: &mut BareHost,
    result: BareRunResult,
    total_time: hvft::sim::time::SimDuration,
) -> Observed {
    Observed {
        exit: result.exit,
        retired: result.retired,
        time: total_time,
        diags: result.diags,
        console: host.console.output_string(),
        state_hash: vm_state_hash(&host.cpu, &host.mem),
    }
}

/// Run straight to completion under one cumulative limit.
fn run_straight(image: &Program, tier: ExecTier, fuel: u64) -> Observed {
    let mut host = fresh_host(image, tier);
    let result = host.run(fuel);
    let time = result.time;
    observe(&mut host, result, time)
}

/// Run in epoch-length windows: the cumulative `run(limit)` grows by a
/// seed-drawn chunk each call, so block/superblock caches are entered,
/// abandoned at the retirement clamp, and re-entered — exactly the
/// pattern the epoch-delimited replication protocol produces.
fn run_chunked(image: &Program, tier: ExecTier, seed: u64, fuel: u64) -> Observed {
    let mut host = fresh_host(image, tier);
    let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut draw = move |lo: u64, hi: u64| {
        // splitmix64 step; plenty for chunk-size jitter.
        rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        lo + (z ^ (z >> 31)) % (hi - lo)
    };
    let mut limit = 0u64;
    let mut total_time = hvft::sim::time::SimDuration::ZERO;
    loop {
        limit += draw(13, 700);
        let result = host.run(limit.min(fuel));
        total_time += result.time;
        if result.exit != BareExit::InstructionLimit || limit >= fuel {
            return observe(&mut host, result, total_time);
        }
    }
}

/// The full three-tier oracle for one generated seed.
///
/// Interrupt-free programs (no disk ops) must halt within [`FUEL`];
/// disk programs spend most of their retirement budget idle-waiting
/// for completions, so they run under a smaller cap and hitting it is
/// a valid terminal state — the tiers must agree **at the clamp**,
/// which is exactly the exact-retirement property the epochs need.
fn assert_tiers_agree(seed: u64, cfg: &GenConfig) -> Observed {
    let workload = CompiledWorkload::generated(seed, cfg);
    let image = build_image(&workload.kernel(), &workload.user_source())
        .unwrap_or_else(|e| panic!("seed {seed}: image does not build: {e}"));

    let fuel = if cfg.disk_ops { DISK_FUEL } else { FUEL };
    let reference = run_straight(&image, ExecTier::Step, fuel);
    assert!(
        cfg.disk_ops || matches!(reference.exit, BareExit::Halted { .. }),
        "seed {seed}: reference run did not halt: {:?}",
        reference.exit
    );

    for tier in [ExecTier::Block, ExecTier::Jit] {
        let straight = run_straight(&image, tier, fuel);
        assert_eq!(
            straight, reference,
            "seed {seed}: {tier} straight run diverged"
        );
    }

    // Epoch-window oracle: all three tiers driven through the *same*
    // seed-drawn window schedule must stay bit-identical.
    let step_windowed = run_chunked(&image, ExecTier::Step, seed, fuel);
    for tier in [ExecTier::Block, ExecTier::Jit] {
        let windowed = run_chunked(&image, tier, seed, fuel);
        assert_eq!(
            windowed, step_windowed,
            "seed {seed}: {tier} epoch-window run diverged from stepped windows"
        );
    }
    // Window-schedule *invariance* (windowed ≡ straight) only holds
    // for interrupt-free programs: an async disk-completion interrupt
    // is polled between dispatch units, so the instruction it lands on
    // legitimately depends on where windows fragment the stream. The
    // replication protocol never relies on more — it only needs every
    // tier to agree under the one schedule the epochs impose.
    if !cfg.disk_ops {
        assert_eq!(
            step_windowed, reference,
            "seed {seed}: epoch-window run diverged from the straight run"
        );
    }
    reference
}

/// Language-level ground truth: the interpreter never touches the ISA,
/// the kernel, or the MMU, yet must predict the machine's exit code,
/// console bytes, and `mark` checkpoints exactly.
fn assert_interpreter_parity(seed: u64, cfg: &GenConfig, machine: &Observed) {
    let source = genprog::source(seed, cfg);
    let outcome = hvft::lang::interpret(&source, FUEL)
        .unwrap_or_else(|e| panic!("seed {seed}: interpreter failed: {e}\n{source}"));
    assert_eq!(
        machine.exit,
        BareExit::Halted {
            code: Some(outcome.exit)
        },
        "seed {seed}: exit code disagrees with interpreter"
    );
    assert_eq!(
        machine.console.as_bytes(),
        &outcome.console[..],
        "seed {seed}: console stream disagrees with interpreter"
    );
    // The kernel surfaces `mark(v)` as diag (v, 2) and `exit(v)` as a
    // final diag (v, 1).
    let mut expected: Vec<(u32, u32)> = outcome.marks.iter().map(|&m| (m, 2)).collect();
    expected.push((outcome.exit, 1));
    assert_eq!(
        machine.diags, expected,
        "seed {seed}: diag stream disagrees with interpreter marks"
    );
}

// The headline oracle: 64 distinct generated programs per run, each
// checked across all three tiers (straight and windowed) and against
// the reference interpreter.
proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
    #[test]
    fn generated_programs_are_tier_and_interpreter_invariant(seed in 0u64..1 << 48) {
        let cfg = GenConfig::default();
        let machine = assert_tiers_agree(seed, &cfg);
        assert_interpreter_parity(seed, &cfg, &machine);
    }
}

// Disk-enabled programs exercise DMA, the block device, and the
// kernel's IO gates; the three tiers must still agree (the
// interpreter's device model is checked separately in `hvft-lang`'s
// own suite).
proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
    #[test]
    fn disk_touching_programs_are_tier_invariant(seed in 0u64..1 << 48) {
        let cfg = GenConfig { disk_ops: true, ..GenConfig::default() };
        assert_tiers_agree(seed, &cfg);
    }
}

/// Pinned regression seeds: stay green forever, independent of the
/// proptest shim's seed derivation.
#[test]
fn pinned_seed_corpus_is_tier_and_interpreter_invariant() {
    let cfg = GenConfig::default();
    for seed in [0u64, 1, 2, 3, 17, 42, 255, 1995, 0xB5] {
        let machine = assert_tiers_agree(seed, &cfg);
        assert_interpreter_parity(seed, &cfg, &machine);
    }
}

/// The distinctness guarantee behind "N cases": consecutive seeds must
/// produce (almost always) distinct programs, so a 64-case sweep
/// really does exercise ≥ 64 distinct programs.
#[test]
fn generator_produces_distinct_programs_across_seeds() {
    let cfg = GenConfig::default();
    let sources: HashSet<String> = (0..128).map(|s| genprog::source(s, &cfg)).collect();
    assert!(
        sources.len() >= 120,
        "only {} distinct programs in 128 seeds",
        sources.len()
    );
    // And the generator is seed-deterministic: same seed, same program.
    assert_eq!(genprog::source(7, &cfg), genprog::source(7, &cfg));
}
