//! **hvft** — Hypervisor-based Fault-tolerance, reproduced in Rust.
//!
//! This workspace reproduces Bressoud & Schneider, *Hypervisor-based
//! Fault-tolerance* (SOSP 1995): a primary virtual machine and its
//! backup execute identical instruction streams on two (simulated)
//! processors, coordinated entirely by the hypervisor, so that the
//! environment never notices the primary failing.
//!
//! The crate is an umbrella that re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `hvft-core` | [`core::protocol`]: the P1–P7/§4.3 rules as pure engines; [`core::FtSystem`]: the t-replica DES driver; [`core::TChain`]: the round-synchronous chain on the same engines; [`core::FtCluster`]: N systems sharded over one shared LAN |
//! | [`hypervisor`] | `hvft-hypervisor` | the hypervisor and bare machine; [`hypervisor::guest_iface::GuestCtl`], the narrow guest surface the protocols touch |
//! | [`machine`] | `hvft-machine` | CPU, MMU/TLB, recovery counter |
//! | [`isa`] | `hvft-isa` | instruction set and assembler |
//! | [`guest`] | `hvft-guest` | the mini guest OS and workloads |
//! | [`lang`] | `hvft-lang` | the hvft-lang workload compiler, reference interpreter, and random-program generator |
//! | [`devices`] | `hvft-devices` | shared disk (IO1/IO2), console |
//! | [`net`] | `hvft-net` | the [`net::transport::Transport`] interface with its two media — timed FIFO channels and the chain's instant links — plus link models, the failure detector, the [`net::reliable`] ack/retransmission layer, and the shared-medium [`net::lan::Lan`] |
//! | [`sim`] | `hvft-sim` | simulated time, events, RNG, stats |
//! | [`model`] | `hvft-model` | the paper's analytic NP models |
//!
//! # Quickstart
//!
//! ```
//! use hvft::core::scenario::Scenario;
//! use hvft::guest::workload::Dhrystone;
//!
//! let report = Scenario::builder()
//!     .workload(Dhrystone { iters: 100, ..Default::default() })
//!     .build()
//!     .expect("valid configuration")
//!     .run();
//! assert!(report.exit.is_clean_exit());
//! assert!(report.lockstep_clean);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hvft_core as core;
pub use hvft_devices as devices;
pub use hvft_guest as guest;
pub use hvft_hypervisor as hypervisor;
pub use hvft_isa as isa;
pub use hvft_lang as lang;
pub use hvft_machine as machine;
pub use hvft_model as model;
pub use hvft_net as net;
pub use hvft_sim as sim;
