//! Lightweight structured tracing for simulation components.
//!
//! A [`Tracer`] collects timestamped, categorized records into a bounded
//! ring buffer. Tracing is off by default and costs one branch per call
//! when disabled, so it can stay in hot paths (epoch boundaries, message
//! sends) without distorting benchmark harness wall time.

use crate::time::SimTime;
use std::collections::VecDeque;

/// Trace categories, matching the subsystems of the prototype.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TraceCategory {
    /// CPU execution events (traps, mode switches).
    Cpu,
    /// Hypervisor entry/exit and instruction simulation.
    Hypervisor,
    /// Epoch boundaries and the P1–P7 protocol.
    Protocol,
    /// Network sends, deliveries, acks.
    Net,
    /// Device commands, completions, uncertain interrupts.
    Device,
    /// Failure injection and detection.
    Failure,
}

/// One trace record.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Simulated time at which the event occurred.
    pub time: SimTime,
    /// Subsystem that produced the record.
    pub category: TraceCategory,
    /// Which host produced it (0 = primary's processor, 1 = backup's), or
    /// `None` for global events.
    pub host: Option<u8>,
    /// Human-readable message.
    pub message: String,
}

/// A bounded in-memory trace sink.
///
/// # Examples
///
/// ```
/// use hvft_sim::trace::{Tracer, TraceCategory};
/// use hvft_sim::time::SimTime;
///
/// let mut t = Tracer::new(16);
/// t.set_enabled(true);
/// t.emit(SimTime::ZERO, TraceCategory::Protocol, Some(0), "epoch 0 ends".into());
/// assert_eq!(t.records().count(), 1);
/// ```
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

impl Tracer {
    /// Creates a disabled tracer that retains at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            enabled: false,
            capacity: capacity.max(1),
            records: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if tracing is enabled; oldest records are dropped
    /// once capacity is reached.
    pub fn emit(
        &mut self,
        time: SimTime,
        category: TraceCategory,
        host: Option<u8>,
        message: String,
    ) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            time,
            category,
            host,
            message,
        });
    }

    /// All retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Records in a single category.
    pub fn by_category(&self, cat: TraceCategory) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.category == cat)
    }

    /// Number of records evicted due to capacity pressure.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears the retained records (does not reset the dropped counter).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Renders the retained trace as display lines.
    pub fn render(&self) -> Vec<String> {
        self.records
            .iter()
            .map(|r| {
                let host = match r.host {
                    Some(h) => format!("host{h}"),
                    None => "  -  ".to_owned(),
                };
                format!(
                    "[{:>12}] {} {:?}: {}",
                    format!("{}", r.time),
                    host,
                    r.category,
                    r.message
                )
            })
            .collect()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: &mut Tracer, ns: u64, msg: &str) {
        t.emit(
            SimTime::from_nanos(ns),
            TraceCategory::Protocol,
            Some(0),
            msg.to_owned(),
        );
    }

    #[test]
    fn disabled_by_default() {
        let mut t = Tracer::new(4);
        rec(&mut t, 1, "x");
        assert_eq!(t.records().count(), 0);
    }

    #[test]
    fn bounded_capacity_drops_oldest() {
        let mut t = Tracer::new(2);
        t.set_enabled(true);
        rec(&mut t, 1, "a");
        rec(&mut t, 2, "b");
        rec(&mut t, 3, "c");
        let msgs: Vec<_> = t.records().map(|r| r.message.clone()).collect();
        assert_eq!(msgs, ["b", "c"]);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn category_filter() {
        let mut t = Tracer::new(8);
        t.set_enabled(true);
        t.emit(SimTime::ZERO, TraceCategory::Net, None, "send".into());
        t.emit(
            SimTime::ZERO,
            TraceCategory::Device,
            Some(1),
            "disk go".into(),
        );
        assert_eq!(t.by_category(TraceCategory::Net).count(), 1);
        assert_eq!(t.by_category(TraceCategory::Device).count(), 1);
        assert_eq!(t.by_category(TraceCategory::Cpu).count(), 0);
    }

    #[test]
    fn render_includes_host_and_time() {
        let mut t = Tracer::new(2);
        t.set_enabled(true);
        rec(&mut t, 1500, "hello");
        let lines = t.render();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("host0"), "{}", lines[0]);
        assert!(lines[0].contains("hello"));
    }

    #[test]
    fn clear_retains_dropped_count() {
        let mut t = Tracer::new(1);
        t.set_enabled(true);
        rec(&mut t, 1, "a");
        rec(&mut t, 2, "b");
        t.clear();
        assert_eq!(t.records().count(), 0);
        assert_eq!(t.dropped(), 1);
    }
}
