//! Simulated time.
//!
//! All simulation components share a single notion of time measured in
//! integer **nanoseconds**. At the paper's 50 MIPS instruction rate one
//! instruction takes exactly 20 ns, so every quantity in the paper
//! (0.02 µs instructions, 15.12 µs privileged-instruction simulation,
//! 443 µs epoch boundaries, 26 ms disk writes) is exactly representable.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, in nanoseconds since simulation
/// start.
///
/// `SimTime` is a monotone, totally ordered timestamp. Arithmetic with
/// [`SimDuration`] is checked in debug builds (overflow panics) and
/// saturating semantics are available via [`SimTime::saturating_add`].
///
/// # Examples
///
/// ```
/// use hvft_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// A time later than every other time; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the time as fractional microseconds (for reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier:?}) is after self ({self:?})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Checked addition of a duration.
    #[inline]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration longer than any real one; used as an "infinite" timeout.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond.
    ///
    /// Useful for the paper's measured constants (e.g. 15.12 µs).
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(
            us >= 0.0 && us.is_finite(),
            "duration must be finite and non-negative"
        );
        SimDuration((us * 1e3).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional microseconds (reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Fractional milliseconds (reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked integer division yielding how many times `other` fits.
    #[inline]
    pub fn div_duration(self, other: SimDuration) -> u64 {
        assert!(other.0 != 0, "division by zero duration");
        self.0 / other.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Formats a nanosecond count with a human-friendly unit.
fn format_ns(ns: u64) -> String {
    if ns == u64::MAX {
        "inf".to_owned()
    } else if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_add() {
        let t = SimTime::ZERO + SimDuration::from_micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_micros(5));
    }

    #[test]
    fn instruction_time_is_exact() {
        // 50 MIPS => 20 ns per instruction; 4.2e8 instructions = 8.4 s.
        let insn = SimDuration::from_nanos(20);
        let total = insn * 420_000_000;
        assert_eq!(total, SimDuration::from_millis(8_400));
    }

    #[test]
    fn from_micros_f64_rounds() {
        assert_eq!(SimDuration::from_micros_f64(15.12).as_nanos(), 15_120);
        assert_eq!(SimDuration::from_micros_f64(0.02).as_nanos(), 20);
        assert_eq!(SimDuration::from_micros_f64(443.59).as_nanos(), 443_590);
    }

    #[test]
    fn ordering() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert!(a < b);
        assert_eq!(b - a, SimDuration::from_nanos(10));
        assert!(SimTime::MAX > b);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_when_reversed() {
        let _ = SimTime::from_nanos(5).since(SimTime::from_nanos(6));
    }

    #[test]
    fn div_duration() {
        let d = SimDuration::from_micros(1);
        assert_eq!(d.div_duration(SimDuration::from_nanos(20)), 50);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(7)), "7ns");
        assert_eq!(format!("{}", SimDuration::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(26)), "26.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(9)), "9.000s");
        assert_eq!(format!("{}", SimDuration::MAX), "inf");
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_nanos(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_nanos(3).saturating_sub(SimDuration::from_nanos(9)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)), None);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [SimDuration::from_nanos(1), SimDuration::from_nanos(2)]
            .into_iter()
            .sum();
        assert_eq!(total, SimDuration::from_nanos(3));
    }
}
