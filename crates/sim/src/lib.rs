//! `hvft-sim` — deterministic discrete-event simulation substrate.
//!
//! This crate provides the foundation every other `hvft` crate builds on:
//!
//! - [`time`]: integer-nanosecond simulated time ([`time::SimTime`],
//!   [`time::SimDuration`]) in which all of the paper's constants are exact;
//! - [`event`]: a deterministic event queue with FIFO tie-breaking;
//! - [`sched`]: the shared scheduler kernel — a deterministic
//!   [`sched::Scheduler`] over [`sched::Component`]s with FIFO
//!   tie-breaking, the [`sched::Agenda`] event-source arbiter, and the
//!   conservative-lookahead budget rule every driver in `hvft-core`
//!   runs on;
//! - [`pool`]: a persistent work-stealing worker pool ([`pool::WorkPool`])
//!   for off-thread guest-slice execution — per-worker deques with
//!   stealing, parked idle workers, reused across runs;
//! - [`rng`]: seeded, fork-able pseudo-randomness so "non-deterministic"
//!   hardware behaviour (TLB replacement, transient device faults) is
//!   reproducible;
//! - [`stats`]: Welford accumulators and histograms for the measurement
//!   harnesses (the paper reports means and coefficients of variation over
//!   20 runs);
//! - [`trace`]: a bounded structured trace sink.
//!
//! The *shape* of every co-simulation loop lives here in [`sched`]; the
//! drivers in `hvft-core` supply what only they know — the event sources
//! and the lookahead (minimum network latency) that make conservative
//! synchronization safe — and the kernel owns the ordering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod pool;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::{EventId, EventQueue};
pub use pool::{PoolStats, WorkPool};
pub use rng::SimRng;
pub use sched::{Agenda, Component, Scheduler};
pub use stats::{DurationHistogram, RunningStats};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceCategory, TraceRecord, Tracer};
