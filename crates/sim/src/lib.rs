//! `hvft-sim` — deterministic discrete-event simulation substrate.
//!
//! This crate provides the foundation every other `hvft` crate builds on:
//!
//! - [`time`]: integer-nanosecond simulated time ([`time::SimTime`],
//!   [`time::SimDuration`]) in which all of the paper's constants are exact;
//! - [`event`]: a deterministic event queue with FIFO tie-breaking;
//! - [`rng`]: seeded, fork-able pseudo-randomness so "non-deterministic"
//!   hardware behaviour (TLB replacement, transient device faults) is
//!   reproducible;
//! - [`stats`]: Welford accumulators and histograms for the measurement
//!   harnesses (the paper reports means and coefficients of variation over
//!   20 runs);
//! - [`trace`]: a bounded structured trace sink.
//!
//! The co-simulation loop that coordinates the two simulated hosts lives in
//! `hvft-core`, because only the fault-tolerant system knows the lookahead
//! (minimum network latency) that makes conservative synchronization safe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::{EventId, EventQueue};
pub use rng::SimRng;
pub use stats::{DurationHistogram, RunningStats};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceCategory, TraceRecord, Tracer};
