//! A persistent work-stealing worker pool for off-thread slice
//! execution.
//!
//! The parallel cluster executor (PR 5) spawned a fresh set of worker
//! threads behind one shared `mpsc` queue on every `run_with` call:
//! thread spawn/join cost on every run, one contended queue for all
//! workers, and no reuse across benchmark iterations. This module
//! replaces that with a reusable pool:
//!
//! - **per-worker deques with stealing** — a submitted job lands on one
//!   worker's queue (round-robin); a worker that drains its own queue
//!   steals from its peers, so a long slice on one worker never strands
//!   runnable jobs behind it;
//! - **parked idle workers** — a worker with nothing to run (own queue
//!   and all peers empty) blocks on a condvar instead of spinning, and
//!   is woken by the next submission;
//! - **persistence** — [`WorkPool::global`] returns a process-wide pool
//!   that survives across `run_with` calls and bench iterations
//!   ([`WorkPool::ensure_workers`] grows it on demand, workers are
//!   never torn down), so steady-state parallel runs pay zero
//!   spawn/join cost;
//! - **panic containment** — a panicking job is caught on the worker,
//!   its message recorded ([`WorkPool::take_panics`]), and the worker
//!   survives to run the next job. Owned pools join every worker on
//!   drop even when jobs panicked.
//!
//! **Scheduling freedom, result determinism.** Which worker runs which
//! job, and in what order, is explicitly nondeterministic (it depends
//! on stealing races). Determinism is the *submitter's* contract:
//! simulation results must depend only on job outputs committed in a
//! deterministic order, never on pool scheduling — which is exactly how
//! the cluster executor uses it (slices are independent; commits happen
//! on the coordinator in kernel pick order).
//!
//! The observed-utilization counters ([`WorkPool::stats`]) are wall
//! clock, not simulated time: they exist so benchmark artifacts can
//! record how much of the pool the executor actually kept busy, making
//! scaling-curve regressions attributable.
//!
//! # Examples
//!
//! ```
//! use hvft_sim::pool::WorkPool;
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let pool = WorkPool::new(2);
//! let sum = Arc::new(AtomicU64::new(0));
//! for i in 1..=10u64 {
//!     let sum = Arc::clone(&sum);
//!     pool.submit(move || {
//!         sum.fetch_add(i, Ordering::Relaxed);
//!     });
//! }
//! pool.wait_idle();
//! assert_eq!(sum.load(Ordering::Relaxed), 55);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::thread;
use std::time::Instant;

/// A unit of work shipped to the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Monotonic counters describing what the pool has done since it was
/// created. Snapshot before and after a run and subtract to attribute
/// work to that run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs executed to completion (including ones that panicked).
    pub jobs: u64,
    /// Wall-clock nanoseconds workers spent executing jobs. Divide a
    /// run's delta by `wall_time × workers` for observed utilization.
    pub busy_nanos: u64,
    /// Jobs a worker took from another worker's queue.
    pub steals: u64,
    /// Times a worker went to sleep on the idle condvar.
    pub parks: u64,
}

/// State shared between the pool handle and its workers.
struct Shared {
    /// One deque per worker; the list grows (under the write lock) when
    /// [`WorkPool::ensure_workers`] adds workers, and entries are never
    /// removed, so a worker's own index stays valid for its lifetime.
    queues: RwLock<Vec<Arc<Mutex<VecDeque<Job>>>>>,
    /// Round-robin cursor for submissions.
    next_queue: AtomicUsize,
    /// Jobs submitted and not yet finished executing.
    outstanding: Mutex<usize>,
    /// Signalled when `outstanding` reaches zero.
    all_done: Condvar,
    /// Sleeping-worker wakeup: notified on submit and on shutdown.
    idle: Mutex<bool>,
    wake: Condvar,
    /// Panic messages from jobs, in completion order.
    panics: Mutex<Vec<String>>,
    jobs: AtomicU64,
    busy_nanos: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
}

impl Shared {
    /// Takes the next runnable job for worker `me`: own queue first
    /// (submission order), then a steal sweep over the peers starting
    /// at `me + 1` so contention spreads instead of piling onto worker
    /// 0's queue.
    fn take_job(&self, me: usize) -> Option<Job> {
        let queues = self.queues.read().expect("queue list");
        if let Some(job) = queues[me].lock().expect("own queue").pop_front() {
            return Some(job);
        }
        let n = queues.len();
        for k in 1..n {
            let victim = (me + k) % n;
            // Steal from the back: the victim pops its own front, so
            // the two ends only collide on a one-job queue.
            if let Some(job) = queues[victim].lock().expect("peer queue").pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    fn run_job(&self, job: Job) {
        let start = Instant::now();
        // Contain the panic on the worker: the job's submitter observes
        // the failure through its own channel (the cluster executor) or
        // through `take_panics`; the worker itself must survive to run
        // the next job, and an owned pool must still join cleanly.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        self.busy_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.jobs.fetch_add(1, Ordering::Relaxed);
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|m| (*m).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            self.panics.lock().expect("panic log").push(msg);
        }
        let mut outstanding = self.outstanding.lock().expect("outstanding");
        *outstanding -= 1;
        if *outstanding == 0 {
            self.all_done.notify_all();
        }
    }

    fn worker_loop(self: &Arc<Self>, me: usize) {
        loop {
            if let Some(job) = self.take_job(me) {
                self.run_job(job);
                continue;
            }
            // Park until new work arrives (or shutdown). Re-check the
            // queues after taking the lock: a submission between the
            // failed sweep and the wait would otherwise be missed.
            let mut shutdown = self.idle.lock().expect("idle lock");
            if *shutdown {
                return;
            }
            if self.has_work() {
                continue;
            }
            self.parks.fetch_add(1, Ordering::Relaxed);
            let guard = self.wake.wait(shutdown).expect("idle wait");
            shutdown = guard;
            if *shutdown {
                return;
            }
        }
    }

    fn has_work(&self) -> bool {
        let queues = self.queues.read().expect("queue list");
        queues.iter().any(|q| !q.lock().expect("queue").is_empty())
    }
}

/// A fixed-or-growing set of worker threads executing submitted jobs
/// with per-worker deques and work stealing. See the [module
/// docs](self).
pub struct WorkPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl WorkPool {
    fn empty() -> Self {
        WorkPool {
            shared: Arc::new(Shared {
                queues: RwLock::new(Vec::new()),
                next_queue: AtomicUsize::new(0),
                outstanding: Mutex::new(0),
                all_done: Condvar::new(),
                idle: Mutex::new(false),
                wake: Condvar::new(),
                panics: Mutex::new(Vec::new()),
                jobs: AtomicU64::new(0),
                busy_nanos: AtomicU64::new(0),
                steals: AtomicU64::new(0),
                parks: AtomicU64::new(0),
            }),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// A pool with `workers` worker threads (at least one).
    pub fn new(workers: usize) -> Self {
        let pool = Self::empty();
        pool.ensure_workers(workers.max(1));
        pool
    }

    /// The process-wide persistent pool. Starts with no workers; grow
    /// it with [`WorkPool::ensure_workers`]. Workers, once spawned,
    /// live for the rest of the process — parked when idle — so
    /// repeated parallel runs reuse them instead of respawning.
    pub fn global() -> &'static WorkPool {
        static GLOBAL: OnceLock<WorkPool> = OnceLock::new();
        GLOBAL.get_or_init(Self::empty)
    }

    /// Grows the pool to at least `n` workers (never shrinks — an
    /// over-provisioned worker parks and costs nothing).
    pub fn ensure_workers(&self, n: usize) {
        let mut handles = self.handles.lock().expect("handle list");
        while handles.len() < n {
            let me = {
                let mut queues = self.shared.queues.write().expect("queue list");
                queues.push(Arc::new(Mutex::new(VecDeque::new())));
                queues.len() - 1
            };
            let shared = Arc::clone(&self.shared);
            handles.push(
                thread::Builder::new()
                    .name(format!("hvft-pool-{me}"))
                    .spawn(move || shared.worker_loop(me))
                    .expect("spawn pool worker"),
            );
        }
    }

    /// Current worker count.
    pub fn workers(&self) -> usize {
        self.handles.lock().expect("handle list").len()
    }

    /// Submits a job. Round-robins across the worker deques and wakes
    /// one parked worker.
    ///
    /// # Panics
    ///
    /// Panics if the pool has no workers (submit after
    /// [`WorkPool::ensure_workers`], or construct via
    /// [`WorkPool::new`]).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        // Count the job before publishing it: a worker may pop and
        // finish it the instant it lands on a queue, and the completion
        // decrement must never observe a count the submission hasn't
        // reached yet.
        *self.shared.outstanding.lock().expect("outstanding") += 1;
        {
            let queues = self.shared.queues.read().expect("queue list");
            assert!(!queues.is_empty(), "pool has no workers");
            let k = self.shared.next_queue.fetch_add(1, Ordering::Relaxed) % queues.len();
            queues[k].lock().expect("queue").push_back(Box::new(job));
        }
        // Take the idle lock so the wakeup cannot slip between a
        // worker's failed sweep and its wait.
        let _guard = self.shared.idle.lock().expect("idle lock");
        self.shared.wake.notify_one();
    }

    /// Blocks until every submitted job has finished executing.
    pub fn wait_idle(&self) {
        let mut outstanding = self.shared.outstanding.lock().expect("outstanding");
        while *outstanding > 0 {
            outstanding = self
                .shared
                .all_done
                .wait(outstanding)
                .expect("all_done wait");
        }
    }

    /// Drains the recorded panic messages of jobs that panicked on a
    /// worker, in completion order.
    pub fn take_panics(&self) -> Vec<String> {
        std::mem::take(&mut *self.shared.panics.lock().expect("panic log"))
    }

    /// Monotonic activity counters (see [`PoolStats`]).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            jobs: self.shared.jobs.load(Ordering::Relaxed),
            busy_nanos: self.shared.busy_nanos.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            parks: self.shared.parks.load(Ordering::Relaxed),
        }
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        {
            let mut shutdown = self.shared.idle.lock().expect("idle lock");
            *shutdown = true;
            self.shared.wake.notify_all();
        }
        for h in self.handles.lock().expect("handle list").drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn all_jobs_run_exactly_once_regardless_of_worker_count() {
        for workers in [1, 2, 4] {
            let pool = WorkPool::new(workers);
            let seen = Arc::new(Mutex::new(Vec::new()));
            for i in 0..64u32 {
                let seen = Arc::clone(&seen);
                pool.submit(move || seen.lock().unwrap().push(i));
            }
            pool.wait_idle();
            let mut got = seen.lock().unwrap().clone();
            got.sort_unstable();
            assert_eq!(got, (0..64).collect::<Vec<_>>());
            assert_eq!(pool.stats().jobs, 64);
        }
    }

    #[test]
    fn a_free_worker_steals_from_a_busy_one() {
        // One long job occupies a worker while short jobs round-robin
        // onto both queues: the free worker must steal the strandees.
        let pool = WorkPool::new(2);
        let done = Arc::new(AtomicU64::new(0));
        for i in 0..16u64 {
            let done = Arc::clone(&done);
            if i == 0 {
                pool.submit(move || {
                    thread::sleep(Duration::from_millis(100));
                    done.fetch_add(1, Ordering::Relaxed);
                });
            } else {
                pool.submit(move || {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        }
        pool.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 16);
        assert!(
            pool.stats().steals >= 1,
            "the free worker should have stolen from the occupied one: {:?}",
            pool.stats()
        );
    }

    #[test]
    fn workers_park_and_are_reused_across_batches() {
        let pool = WorkPool::new(3);
        let count = Arc::new(AtomicU64::new(0));
        let batch = |n: u64| {
            for _ in 0..n {
                let count = Arc::clone(&count);
                pool.submit(move || {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait_idle();
        };
        batch(8);
        // Workers drain and park between batches; poll briefly since
        // parking happens just after the last job completes.
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.stats().parks == 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        assert!(pool.stats().parks > 0, "idle workers must park");
        batch(8);
        assert_eq!(count.load(Ordering::Relaxed), 16);
        assert_eq!(pool.workers(), 3, "reuse, not respawn");
        assert_eq!(pool.stats().jobs, 16);
    }

    #[test]
    fn a_panicking_job_is_contained_and_the_pool_survives() {
        let pool = WorkPool::new(2);
        pool.submit(|| panic!("slice exploded"));
        pool.wait_idle();
        let panics = pool.take_panics();
        assert_eq!(panics, vec!["slice exploded".to_owned()]);
        // The worker that caught the panic still runs new jobs, and
        // dropping the pool joins every worker cleanly.
        let ok = Arc::new(AtomicU64::new(0));
        for _ in 0..8 {
            let ok = Arc::clone(&ok);
            pool.submit(move || {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(ok.load(Ordering::Relaxed), 8);
        assert!(pool.take_panics().is_empty());
        drop(pool);
    }

    #[test]
    fn ensure_workers_grows_but_never_shrinks() {
        let pool = WorkPool::new(1);
        assert_eq!(pool.workers(), 1);
        pool.ensure_workers(3);
        assert_eq!(pool.workers(), 3);
        pool.ensure_workers(2);
        assert_eq!(pool.workers(), 3);
        let ran = Arc::new(AtomicU64::new(0));
        for _ in 0..6 {
            let ran = Arc::clone(&ran);
            pool.submit(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(ran.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn global_pool_is_persistent() {
        let a = WorkPool::global() as *const _;
        let b = WorkPool::global() as *const _;
        assert_eq!(a, b);
        WorkPool::global().ensure_workers(2);
        let before = WorkPool::global().stats().jobs;
        let ran = Arc::new(AtomicU64::new(0));
        {
            let ran = Arc::clone(&ran);
            WorkPool::global().submit(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Other tests share the global pool, so wait on our own signal
        // rather than on pool-wide idleness.
        let deadline = Instant::now() + Duration::from_secs(5);
        while ran.load(Ordering::Relaxed) == 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        assert!(WorkPool::global().stats().jobs > before);
    }
}
