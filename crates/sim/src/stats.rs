//! Statistics accumulators used by the measurement harnesses.
//!
//! The paper reports averages over 20 runs with coefficients of variation,
//! so the harness needs streaming mean/variance (Welford) and simple
//! histograms for interrupt-delay distributions.

use crate::time::SimDuration;

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use hvft_sim::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_stddev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a duration sample in microseconds.
    pub fn push_duration(&mut self, d: SimDuration) {
        self.push(d.as_micros_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 1 sample).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance with Bessel's correction (0 if fewer than 2 samples).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Coefficient of variation (sample stddev / mean), as the paper reports.
    ///
    /// Returns 0 when the mean is 0.
    pub fn coefficient_of_variation(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.sample_stddev() / m
        }
    }

    /// Smallest sample (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Fixed-bucket histogram over durations, for interrupt-delay profiles.
#[derive(Clone, Debug)]
pub struct DurationHistogram {
    bucket_width: SimDuration,
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl DurationHistogram {
    /// Creates a histogram with `buckets` buckets of `bucket_width` each;
    /// samples beyond the last bucket are counted in an overflow bin.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `buckets` is zero.
    pub fn new(bucket_width: SimDuration, buckets: usize) -> Self {
        assert!(bucket_width.as_nanos() > 0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        DurationHistogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, d: SimDuration) {
        let idx = d.as_nanos() / self.bucket_width.as_nanos();
        if (idx as usize) < self.buckets.len() {
            self.buckets[idx as usize] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of regular buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Samples that fell beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The smallest duration `d` such that at least `q` (0..=1) of samples
    /// are `<= d`, resolved to bucket granularity. Returns `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(self.bucket_width * (i as u64 + 1));
            }
        }
        Some(SimDuration::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn welford_matches_naive() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.sample_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn cov_is_relative() {
        let mut s = RunningStats::new();
        for x in [99.9, 100.0, 100.1] {
            s.push(x);
        }
        assert!(s.coefficient_of_variation() < 0.002);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = DurationHistogram::new(SimDuration::from_micros(10), 4);
        h.record(SimDuration::from_micros(5)); // bucket 0
        h.record(SimDuration::from_micros(15)); // bucket 1
        h.record(SimDuration::from_micros(39)); // bucket 3
        h.record(SimDuration::from_micros(40)); // overflow
        assert_eq!(h.total(), 4);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 0);
        assert_eq!(h.bucket(3), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = DurationHistogram::new(SimDuration::from_micros(1), 100);
        for i in 0..100 {
            h.record(SimDuration::from_micros(i));
        }
        let median = h.quantile(0.5).unwrap();
        assert_eq!(median, SimDuration::from_micros(50));
        assert!(h.quantile(1.0).unwrap() <= SimDuration::from_micros(100));
    }

    #[test]
    fn histogram_empty_quantile() {
        let h = DurationHistogram::new(SimDuration::from_micros(1), 4);
        assert!(h.quantile(0.5).is_none());
    }
}
