//! A deterministic discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: two events scheduled for the
//! same instant pop in the order they were pushed (FIFO), which keeps
//! whole-system runs reproducible regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque handle identifying a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    cancelled: bool,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event priority queue with stable FIFO ordering at equal times
/// and O(log n) cancellation (lazy deletion).
///
/// # Examples
///
/// ```
/// use hvft_sim::event::EventQueue;
/// use hvft_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "second");
/// q.schedule(SimTime::from_nanos(10), "first");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "second");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Seqs scheduled but neither popped nor cancelled yet.
    pending: std::collections::HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pending: std::collections::HashSet::new(),
        }
    }

    /// Schedules `payload` to fire at `time`; returns a handle for
    /// cancellation.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            seq,
            cancelled: false,
            payload,
        });
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending. Cancelling an already
    /// fired or already cancelled event returns `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // Lazy deletion: the heap entry is skipped when it reaches the top.
        self.pending.remove(&id.0)
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest pending event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let e = self.heap.pop()?;
        self.pending.remove(&e.seq);
        Some((e.time, e.payload))
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    fn skip_cancelled(&mut self) {
        while let Some(head) = self.heap.peek() {
            if head.cancelled || !self.pending.contains(&head.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_at_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let b = q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel must report false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(!q.cancel(b), "cancel after pop must report false");
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(t(1), 0);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        assert_eq!(q.pop(), Some((t(10), 1)));
        // Scheduling into the "past" is the caller's responsibility; the
        // queue itself still orders correctly.
        q.schedule(t(5), 2);
        q.schedule(t(15), 3);
        assert_eq!(q.pop(), Some((t(5), 2)));
        assert_eq!(q.pop(), Some((t(15), 3)));
    }
}
