//! The shared scheduler kernel: one deterministic event-loop skeleton
//! for every driver in the workspace.
//!
//! Every driver in `hvft-core` used to hand-roll the same loop — "find
//! the earliest thing that can happen, do it, repeat" — three times
//! over: `FtSystem` arbitrated between its event sources and its hosts'
//! guest slices, `TChain` stepped replicas through rounds, and
//! `FtCluster` interleaved whole systems in min-time order. Each copy
//! had to re-invent the same two invariants:
//!
//! 1. **Earliest first**: nothing may act before the globally earliest
//!    pending action (conservative discrete-event simulation);
//! 2. **FIFO-deterministic tie-breaking**: at equal times, whoever was
//!    registered (or offered) first acts first, so a run is exactly
//!    reproducible regardless of container iteration order.
//!
//! This module owns both invariants once:
//!
//! - [`Component`] + [`Scheduler`] drive a set of peers (cluster
//!   shards, chain replicas) in min-time order;
//! - [`Agenda`] arbitrates a single driver's heterogeneous event
//!   sources (deliveries, timers, failure schedules…) so the "what is
//!   next" and "do the next thing" answers can never disagree — they
//!   are one pick;
//! - [`conservative_budget`] computes how far a computation may run
//!   ahead of its peers (the lookahead rule that makes conservative
//!   co-simulation safe);
//! - [`run_solo`] is the degenerate one-component loop.
//!
//! # Examples
//!
//! ```
//! use hvft_sim::sched::{Component, Scheduler};
//! use hvft_sim::time::SimTime;
//!
//! /// A counter that acts at times `start, start+2, …` and finishes
//! /// after `n` actions.
//! struct Ticker { next: u64, left: u32, fired: Vec<u64> }
//!
//! impl Component for Ticker {
//!     type Output = Vec<u64>;
//!     fn next_action_time(&self) -> Option<SimTime> {
//!         (self.left > 0).then(|| SimTime::from_nanos(self.next))
//!     }
//!     fn advance(&mut self) -> Option<Vec<u64>> {
//!         self.fired.push(self.next);
//!         self.next += 2;
//!         self.left -= 1;
//!         (self.left == 0).then(|| std::mem::take(&mut self.fired))
//!     }
//! }
//!
//! let mut sched = Scheduler::new();
//! sched.add(Ticker { next: 0, left: 2, fired: vec![] });
//! sched.add(Ticker { next: 1, left: 2, fired: vec![] });
//! let outputs = sched.run();
//! // Interleaved in global time order: 0, 1, 2, 3.
//! assert_eq!(outputs, vec![vec![0, 2], vec![1, 3]]);
//! ```

use crate::time::{SimDuration, SimTime};

/// One schedulable peer in a [`Scheduler`]: a component announces when
/// it can next act, and `advance` performs exactly one scheduling
/// decision's worth of work.
pub trait Component {
    /// What the component yields when its run completes.
    type Output;

    /// The earliest instant this component can act. `None` means the
    /// component cannot make progress on its own — it is finished (or
    /// deadlocked) and its next [`Component::advance`] must produce the
    /// output without moving time.
    fn next_action_time(&self) -> Option<SimTime>;

    /// Performs the component's earliest action. Returns `Some(output)`
    /// once the component's run is over.
    fn advance(&mut self) -> Option<Self::Output>;
}

/// Drives a set of [`Component`]s on one conservative schedule: every
/// step advances the unfinished component with the smallest
/// [`Component::next_action_time`], ties broken by registration order
/// (FIFO), so multi-component runs are exactly reproducible.
///
/// A component reporting `None` is treated as due *now*
/// ([`SimTime::ZERO`]): it is advanced immediately so it can surrender
/// its output instead of wedging the schedule.
pub struct Scheduler<C: Component> {
    components: Vec<C>,
    outputs: Vec<Option<C::Output>>,
}

impl<C: Component> Default for Scheduler<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: Component> Scheduler<C> {
    /// An empty schedule.
    pub fn new() -> Self {
        Scheduler {
            components: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Registers a component; returns its index. Registration order is
    /// the tie-breaking priority at equal action times.
    pub fn add(&mut self, c: C) -> usize {
        self.components.push(c);
        self.outputs.push(None);
        self.components.len() - 1
    }

    /// Number of registered components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether no components are registered.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Shared access to component `i`.
    pub fn component(&self, i: usize) -> &C {
        &self.components[i]
    }

    /// Exclusive access to component `i` (external drivers that manage
    /// their own advancement, e.g. a parallel executor, mutate through
    /// this and report completion via [`Scheduler::record`]).
    pub fn component_mut(&mut self, i: usize) -> &mut C {
        &mut self.components[i]
    }

    /// Iterates over all components in registration order.
    pub fn components(&self) -> impl Iterator<Item = &C> {
        self.components.iter()
    }

    /// Whether component `i` has produced its output.
    pub fn is_finished(&self, i: usize) -> bool {
        self.outputs[i].is_some()
    }

    /// The index of the unfinished component that must act next —
    /// smallest [`Component::next_action_time`] (`None` counts as
    /// [`SimTime::ZERO`]), FIFO tie-break — or `None` when every
    /// component has finished.
    pub fn pick(&self) -> Option<usize> {
        let mut pick: Option<(SimTime, usize)> = None;
        for (i, c) in self.components.iter().enumerate() {
            if self.outputs[i].is_some() {
                continue;
            }
            let t = c.next_action_time().unwrap_or(SimTime::ZERO);
            if pick.is_none_or(|(pt, _)| t < pt) {
                pick = Some((t, i));
            }
        }
        pick.map(|(_, i)| i)
    }

    /// Advances the picked component by one scheduling decision.
    /// Returns the index it advanced, or `None` when all are finished.
    pub fn step(&mut self) -> Option<usize> {
        let i = self.pick()?;
        if let Some(out) = self.components[i].advance() {
            self.outputs[i] = Some(out);
        }
        Some(i)
    }

    /// Records component `i`'s output on behalf of an external driver
    /// that advanced it through [`Scheduler::component_mut`].
    pub fn record(&mut self, i: usize, output: C::Output) {
        debug_assert!(self.outputs[i].is_none(), "component {i} already finished");
        self.outputs[i] = Some(output);
    }

    /// Runs every component to completion and returns the outputs in
    /// registration order.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty.
    pub fn run(&mut self) -> Vec<C::Output> {
        assert!(!self.components.is_empty(), "empty schedule");
        while self.step().is_some() {}
        self.take_outputs()
    }

    /// Removes and returns every output, in registration order.
    ///
    /// # Panics
    ///
    /// Panics if any component has not finished.
    pub fn take_outputs(&mut self) -> Vec<C::Output> {
        self.outputs
            .iter_mut()
            .enumerate()
            .map(|(i, o)| {
                o.take()
                    .unwrap_or_else(|| panic!("component {i} unfinished"))
            })
            .collect()
    }
}

/// Runs a single component to completion — the degenerate one-peer
/// schedule ([`Component::advance`] already performs the earliest
/// action, so no arbitration is needed).
pub fn run_solo<C: Component>(c: &mut C) -> C::Output {
    loop {
        if let Some(out) = c.advance() {
            return out;
        }
    }
}

/// Deterministic arbitration among one driver's heterogeneous event
/// sources.
///
/// A driver offers each source's next due time (tagged with how to
/// dispatch it); [`Agenda::earliest`] returns the single earliest
/// offer, ties broken by offer order. Because the same pick answers
/// both "when is the next event" and "which event fires", the two can
/// never drift apart — the bug class the hand-rolled
/// `next_event_time`/`process_one_event` pairs had to guard against by
/// convention.
///
/// # Examples
///
/// ```
/// use hvft_sim::sched::Agenda;
/// use hvft_sim::time::SimTime;
///
/// let mut a = Agenda::new();
/// a.offer(Some(SimTime::from_nanos(7)), "timer");
/// a.offer(None, "idle source");
/// a.offer(Some(SimTime::from_nanos(7)), "delivery");
/// // Equal times: the first-offered source wins.
/// assert_eq!(a.earliest(), Some((SimTime::from_nanos(7), &"timer")));
/// ```
pub struct Agenda<T> {
    /// The best offer so far. A later offer replaces it only on a
    /// *strictly* smaller time, which is exactly the first-offered-
    /// wins-ties rule — so no buffering is needed, and building an
    /// agenda allocates nothing (it sits in every driver's hot loop).
    best: Option<(SimTime, T)>,
}

impl<T> Default for Agenda<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Agenda<T> {
    /// An empty agenda.
    pub fn new() -> Self {
        Agenda { best: None }
    }

    /// Offers a source's next due time; `None` (idle source) is
    /// ignored. Offer order is the tie-breaking priority.
    pub fn offer(&mut self, time: Option<SimTime>, tag: T) {
        if let Some(t) = time {
            if self.best.as_ref().is_none_or(|&(bt, _)| t < bt) {
                self.best = Some((t, tag));
            }
        }
    }

    /// Whether any source is due.
    pub fn is_empty(&self) -> bool {
        self.best.is_none()
    }

    /// The earliest offer (first-offered wins ties).
    pub fn earliest(&self) -> Option<(SimTime, &T)> {
        self.best.as_ref().map(|(t, tag)| (*t, tag))
    }

    /// Consumes the agenda and returns the earliest offer by value.
    pub fn into_earliest(self) -> Option<(SimTime, T)> {
        self.best
    }
}

/// How long a computation at `now` may run before anything else could
/// possibly affect it: the earliest pending event, or any peer's clock
/// plus the communication `lookahead` (a peer cannot influence this
/// computation sooner than its own clock plus the minimum latency of
/// the medium between them). With no horizon at all, `idle_grain`
/// bounds the slice so external schedules stay responsive.
pub fn conservative_budget(
    now: SimTime,
    next_event: Option<SimTime>,
    peer_clocks: impl IntoIterator<Item = SimTime>,
    lookahead: SimDuration,
    idle_grain: SimDuration,
) -> SimDuration {
    let mut horizon = next_event.unwrap_or(SimTime::MAX);
    for c in peer_clocks {
        horizon = horizon.min(c.saturating_add(lookahead));
    }
    if horizon == SimTime::MAX {
        idle_grain
    } else {
        horizon - now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    /// Appends `(id, time)` pairs to a shared log; finishes after `n`.
    struct Logger {
        id: u8,
        times: Vec<u64>,
        at: usize,
        log: Vec<(u8, u64)>,
    }

    impl Component for Logger {
        type Output = Vec<(u8, u64)>;
        fn next_action_time(&self) -> Option<SimTime> {
            self.times.get(self.at).map(|&n| t(n))
        }
        fn advance(&mut self) -> Option<Self::Output> {
            let now = self.times[self.at];
            self.log.push((self.id, now));
            self.at += 1;
            (self.at == self.times.len()).then(|| std::mem::take(&mut self.log))
        }
    }

    fn logger(id: u8, times: Vec<u64>) -> Logger {
        Logger {
            id,
            times,
            at: 0,
            log: Vec::new(),
        }
    }

    #[test]
    fn components_interleave_in_global_time_order() {
        let mut s = Scheduler::new();
        s.add(logger(0, vec![5, 20]));
        s.add(logger(1, vec![1, 30]));
        let out = s.run();
        assert_eq!(out[0], vec![(0, 5), (0, 20)]);
        assert_eq!(out[1], vec![(1, 1), (1, 30)]);
    }

    #[test]
    fn ties_break_by_registration_order() {
        // Both components are due at the same instants; the pick must
        // always favour the first-registered one.
        let mut s = Scheduler::new();
        s.add(logger(0, vec![10, 10]));
        s.add(logger(1, vec![10, 10]));
        let mut order = Vec::new();
        while let Some(i) = s.step() {
            order.push(i);
        }
        assert_eq!(order, vec![0, 0, 1, 1]);
    }

    #[test]
    fn none_time_means_due_now() {
        struct Instant;
        impl Component for Instant {
            type Output = &'static str;
            fn next_action_time(&self) -> Option<SimTime> {
                None
            }
            fn advance(&mut self) -> Option<&'static str> {
                Some("done")
            }
        }
        let mut s = Scheduler::new();
        s.add(Instant);
        assert_eq!(s.run(), vec!["done"]);
    }

    #[test]
    fn record_marks_externally_driven_components_finished() {
        let mut s = Scheduler::new();
        s.add(logger(0, vec![1]));
        s.add(logger(1, vec![2]));
        s.record(1, vec![(9, 9)]);
        assert!(s.is_finished(1));
        assert_eq!(s.pick(), Some(0));
        while s.step().is_some() {}
        let out = s.take_outputs();
        assert_eq!(out[1], vec![(9, 9)]);
    }

    #[test]
    fn run_solo_loops_to_completion() {
        let mut l = logger(3, vec![1, 2, 3]);
        let out = run_solo(&mut l);
        assert_eq!(out, vec![(3, 1), (3, 2), (3, 3)]);
    }

    #[test]
    fn agenda_picks_earliest_with_offer_order_ties() {
        let mut a = Agenda::new();
        a.offer(Some(t(9)), 'a');
        a.offer(Some(t(3)), 'b');
        a.offer(None, 'c');
        a.offer(Some(t(3)), 'd');
        assert_eq!(a.earliest(), Some((t(3), &'b')));
        assert_eq!(a.into_earliest(), Some((t(3), 'b')));
    }

    #[test]
    fn empty_agenda_has_no_pick() {
        let a: Agenda<u8> = Agenda::new();
        assert!(a.is_empty());
        assert_eq!(a.earliest(), None);
    }

    #[test]
    fn conservative_budget_clamps_to_event_and_peers() {
        let la = SimDuration::from_nanos(10);
        let grain = SimDuration::from_millis(1);
        // Event horizon governs.
        assert_eq!(
            conservative_budget(t(100), Some(t(130)), [t(1000)], la, grain),
            SimDuration::from_nanos(30)
        );
        // Peer clock + lookahead governs.
        assert_eq!(
            conservative_budget(t(100), Some(t(900)), [t(150)], la, grain),
            SimDuration::from_nanos(60)
        );
        // No horizon at all: the idle grain bounds the slice.
        assert_eq!(conservative_budget(t(100), None, [], la, grain), grain);
    }
}
