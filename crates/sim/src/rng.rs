//! Deterministic pseudo-random number generation for the simulator.
//!
//! Every source of "non-determinism" in the simulated hardware (the paper's
//! non-deterministic TLB replacement, injected transient device faults,
//! failure times under property testing) is driven by an explicitly seeded
//! generator so that whole-system runs are bit-for-bit reproducible.
//!
//! The generator is xoshiro256** seeded through SplitMix64, implemented
//! locally so the substrate has no external dependencies and its output is
//! stable across toolchain upgrades.

/// A deterministic, fork-able PRNG (xoshiro256**).
///
/// # Examples
///
/// ```
/// use hvft_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from_u64(42);
/// let mut b = SimRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SimRng { s }
    }

    /// Creates a generator whose seed is derived from a label, so distinct
    /// subsystems of one simulation get decorrelated streams.
    pub fn seed_from_label(seed: u64, label: &str) -> Self {
        // FNV-1a over the label mixed with the base seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
        for &b in label.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::seed_from_u64(h)
    }

    /// Forks an independent child generator; the parent stream advances.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Widening-multiply rejection sampling (unbiased).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "streams from different seeds should differ");
    }

    #[test]
    fn labeled_streams_are_decorrelated() {
        let mut a = SimRng::seed_from_label(9, "tlb");
        let mut b = SimRng::seed_from_label(9, "disk");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SimRng::seed_from_u64(3);
        for bound in [1u64, 2, 3, 10, 1729, u64::MAX] {
            for _ in 0..100 {
                assert!(r.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut r = SimRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[r.gen_range(8) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear: {seen:?}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gen_range_zero_panics() {
        SimRng::seed_from_u64(0).gen_range(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fork_gives_independent_stream() {
        let mut parent = SimRng::seed_from_u64(6);
        let mut child = parent.fork();
        // The child must not replay the parent's continuing stream.
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SimRng::seed_from_u64(8);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(r.gen_bool(2.0));
        assert!(!r.gen_bool(-1.0));
    }
}
