//! `hvft-model` — the paper's analytic performance models.
//!
//! §4 of the paper formulates (and validates) closed-form models for the
//! normalized performance of each workload as a function of the epoch
//! length `EL`:
//!
//! - [`cpu::NpcModel`] — `NPC(EL)` for the CPU-intensive workload
//!   (§4.1, Figure 2);
//! - [`io::NpIoModel`] — `NPW(EL)` / `NPR(EL)` for the disk write and
//!   read workloads (§4.2, Figure 3);
//! - [`comm`] — the §4.3 faster-communication variants (Figure 4).
//!
//! The constants default to the paper's measured values, so the crate
//! reproduces the printed curves exactly; the benchmark harness also
//! instantiates the models with constants *measured from our simulator*
//! to validate the simulation the same way the paper validated its
//! prototype.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comm;
pub mod cpu;
pub mod io;

pub use comm::{predict_fig4, CommScenario};
pub use cpu::NpcModel;
pub use io::{IoDirection, NpIoModel};
