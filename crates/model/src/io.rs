//! `NPW(EL)` / `NPR(EL)`: the I/O workload models (§4.2).
//!
//! ```text
//! NPW(EL) = nW · ( cpu(EL) + xferW + delayW(EL) ) / RT
//! NPR(EL) = nR · ( cpu(EL) + xferR + delayR(EL) ) / RT
//! ```
//!
//! `cpu(EL)` — the elapsed time to select a block and initiate the
//! transfer with the hypervisor present — is an *empirical* function in
//! the paper (they measured it per epoch length; it is dominated by
//! hypervisor-simulated privileged instructions in the syscall and
//! driver paths). We represent it as an interpolation table, with
//! defaults back-fitted so the model reproduces Figure 3's printed
//! points, and let the benchmark harness install tables measured from
//! the simulator instead.

/// Which I/O benchmark.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoDirection {
    /// 2048 random-block writes, each awaited (`NPW`).
    Write,
    /// 2048 random-block reads (≈ 1729 reaching the disk), each awaited
    /// (`NPR`).
    Read,
}

/// Parameters of one I/O workload model.
#[derive(Clone, Debug)]
pub struct NpIoModel {
    /// Which benchmark.
    pub direction: IoDirection,
    /// `cpu(EL)` sample points `(EL, seconds)`, ascending in `EL`;
    /// linearly interpolated, clamped at the ends.
    pub cpu_table: Vec<(u64, f64)>,
    /// Device transfer seconds (`xferW` = 26 ms, `xferR` = 24.2 ms).
    pub xfer_secs: f64,
    /// Epoch-length-independent part of the interrupt-delivery delay
    /// (boundary processing, data forwarding for reads).
    pub delay0_secs: f64,
    /// Delay growth per instruction of epoch length (buffered interrupts
    /// wait out the residual epoch; ≈ half an epoch at 0.02 µs per
    /// instruction).
    pub delay_slope_secs_per_insn: f64,
    /// Bare-hardware seconds per operation (`RT / n`).
    pub rt_per_op_secs: f64,
}

impl NpIoModel {
    /// Paper-fitted write model (Figure 3's `NPW`).
    pub fn paper_write() -> Self {
        NpIoModel {
            direction: IoDirection::Write,
            cpu_table: vec![
                (1024, 26.46e-3),
                (2048, 21.93e-3),
                (4096, 20.78e-3),
                (8192, 19.89e-3),
                (32768, 20.20e-3),
            ],
            xfer_secs: 26.0e-3,
            delay0_secs: 0.45e-3,
            delay_slope_secs_per_insn: 0.01e-6, // half of 0.02 µs
            rt_per_op_secs: 28.3e-3,
        }
    }

    /// Paper-fitted read model (Figure 3's `NPR`). The larger `delay0`
    /// is the 8 KB data forward to the backup over the 10 Mbps Ethernet
    /// ("9 messages for the data and 1 message for an acknowledgement").
    pub fn paper_read() -> Self {
        NpIoModel {
            direction: IoDirection::Read,
            cpu_table: vec![
                (1024, 28.07e-3),
                (2048, 22.23e-3),
                (4096, 20.35e-3),
                (8192, 18.99e-3),
                (32768, 18.90e-3),
            ],
            xfer_secs: 24.2e-3,
            delay0_secs: 9.2e-3,
            delay_slope_secs_per_insn: 0.01e-6,
            rt_per_op_secs: 26.5e-3,
        }
    }

    /// Interpolated `cpu(EL)`.
    pub fn cpu(&self, el: u64) -> f64 {
        let t = &self.cpu_table;
        assert!(!t.is_empty(), "cpu table must not be empty");
        if el <= t[0].0 {
            return t[0].1;
        }
        for w in t.windows(2) {
            let (e0, c0) = w[0];
            let (e1, c1) = w[1];
            if el <= e1 {
                let f = (el - e0) as f64 / (e1 - e0) as f64;
                return c0 + f * (c1 - c0);
            }
        }
        t[t.len() - 1].1
    }

    /// `delay(EL)`: elapsed time between the completion interrupt and
    /// its delivery to the virtual machine.
    pub fn delay(&self, el: u64) -> f64 {
        self.delay0_secs + self.delay_slope_secs_per_insn * el as f64
    }

    /// Evaluates the normalized performance at epoch length `el`.
    pub fn np(&self, el: u64) -> f64 {
        assert!(el > 0, "epoch length must be positive");
        (self.cpu(el) + self.xfer_secs + self.delay(el)) / self.rt_per_op_secs
    }

    /// Sweeps over epoch lengths.
    pub fn sweep(&self, els: &[u64]) -> Vec<(u64, f64)> {
        els.iter().map(|&el| (el, self.np(el))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_matches_figure_3() {
        let m = NpIoModel::paper_write();
        for (el, printed) in [(1024u64, 1.87), (2048, 1.71), (4096, 1.67), (8192, 1.64)] {
            let np = m.np(el);
            assert!(
                (np - printed).abs() / printed < 0.02,
                "NPW({el}) = {np:.3}, paper prints {printed}"
            );
        }
    }

    #[test]
    fn read_matches_figure_3() {
        let m = NpIoModel::paper_read();
        for (el, printed) in [(1024u64, 2.32), (2048, 2.10), (4096, 2.03), (8192, 1.98)] {
            let np = m.np(el);
            assert!(
                (np - printed).abs() / printed < 0.02,
                "NPR({el}) = {np:.3}, paper prints {printed}"
            );
        }
    }

    #[test]
    fn reads_cost_more_than_writes() {
        // The data forward to the backup makes reads strictly worse.
        let w = NpIoModel::paper_write();
        let r = NpIoModel::paper_read();
        for el in [1024u64, 4096, 32768] {
            assert!(r.np(el) > w.np(el));
        }
    }

    #[test]
    fn delay_grows_with_epoch_length() {
        // The "slight upward drift" of Figure 3 at large EL.
        let m = NpIoModel::paper_write();
        assert!(m.delay(32768) > m.delay(1024));
    }

    #[test]
    fn io_np_never_approaches_one() {
        // "Normalized performance for the I/O workload experiments never
        // goes as low as for the CPU-intensive workload."
        let w = NpIoModel::paper_write();
        let r = NpIoModel::paper_read();
        for el in [1024u64, 8192, 32768, 385_000] {
            assert!(w.np(el) > 1.5, "NPW({el}) = {}", w.np(el));
            assert!(r.np(el) > 1.5, "NPR({el}) = {}", r.np(el));
        }
    }

    #[test]
    fn cpu_table_interpolates_and_clamps() {
        let m = NpIoModel::paper_write();
        assert_eq!(m.cpu(100), m.cpu_table[0].1);
        assert_eq!(m.cpu(1_000_000), m.cpu_table.last().unwrap().1);
        let mid = m.cpu(1536);
        assert!(mid < m.cpu(1024) && mid > m.cpu(2048));
    }
}
