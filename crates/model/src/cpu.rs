//! `NPC(EL)`: the CPU-intensive workload model (§4.1).
//!
//! ```text
//! NPC(EL) = 1 + (1/RT) · ( nsim·hsim + (VI/EL)·hepoch + Cother(EL) )
//! ```
//!
//! where `RT` is the bare-hardware runtime, `nsim` the number of
//! instructions the hypervisor simulates, `hsim` the per-instruction
//! simulation cost, `VI` the workload's instruction count, `hepoch` the
//! epoch-boundary processing time, and `Cother` the communication delays
//! between the two hypervisors.

/// Parameters of the CPU-intensive workload model.
#[derive(Clone, Copy, Debug)]
pub struct NpcModel {
    /// Bare-hardware runtime in seconds (`RT`).
    pub rt_secs: f64,
    /// Instructions simulated by the hypervisor (`nsim`).
    pub nsim: f64,
    /// Seconds to simulate one instruction (`hsim`).
    pub hsim_secs: f64,
    /// Virtual-machine instructions executed (`VI`).
    pub vi: f64,
    /// Epoch-boundary processing seconds (`hepoch`).
    pub hepoch_secs: f64,
    /// Communication delay seconds (`Cother`), modelled as constant in
    /// epoch length as the paper's fit does.
    pub cother_secs: f64,
}

impl NpcModel {
    /// The paper's measured constants for the HP 9000/720 prototype:
    /// `RT` = 8.8 s, `hsim` = 15.12 µs, `VI` = 4.2×10⁸,
    /// `hepoch` = 443.59 µs, `Cother` = 41 ms. `nsim` is not printed in
    /// the paper; it is recovered from the statement that instruction
    /// simulation accounts for 0.18 of the overhead at `EL` = 385 000
    /// (so `nsim·hsim = 0.18·RT`, giving `nsim` ≈ 104 762).
    pub fn paper() -> Self {
        NpcModel {
            rt_secs: 8.8,
            nsim: 0.18 * 8.8 / 15.12e-6,
            hsim_secs: 15.12e-6,
            vi: 4.2e8,
            hepoch_secs: 443.59e-6,
            cother_secs: 41e-3,
        }
    }

    /// Evaluates `NPC(EL)`.
    ///
    /// # Panics
    ///
    /// Panics if `el` is zero.
    pub fn np(&self, el: u64) -> f64 {
        assert!(el > 0, "epoch length must be positive");
        let epochs = self.vi / el as f64;
        1.0 + (self.nsim * self.hsim_secs + epochs * self.hepoch_secs + self.cother_secs)
            / self.rt_secs
    }

    /// Sweeps `NPC` over a list of epoch lengths.
    pub fn sweep(&self, els: &[u64]) -> Vec<(u64, f64)> {
        els.iter().map(|&el| (el, self.np(el))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_points() -> Vec<(u64, f64)> {
        // Figure 2's printed predictions/measurements.
        vec![
            (1024, 22.24),
            (2048, 11.83),
            (4096, 6.50),
            (8192, 3.83),
            (32768, 1.84),
        ]
    }

    #[test]
    fn matches_figure_2_within_tolerance() {
        let m = NpcModel::paper();
        for (el, printed) in paper_points() {
            let np = m.np(el);
            let rel = (np - printed).abs() / printed;
            assert!(
                rel < 0.05,
                "NPC({el}) = {np:.2}, paper prints {printed} (rel err {rel:.3})"
            );
        }
    }

    #[test]
    fn matches_385k_endpoint() {
        // "For epoch lengths of 385,000 instructions, our model predicts
        // a normalized performance of 1.24."
        let np = NpcModel::paper().np(385_000);
        assert!((np - 1.24).abs() < 0.02, "NPC(385000) = {np:.3}");
    }

    #[test]
    fn instruction_simulation_share_is_018() {
        // "the hypervisor's simulation of instructions accounts for .18
        // of the .24 overhead."
        let m = NpcModel::paper();
        let share = m.nsim * m.hsim_secs / m.rt_secs;
        assert!((share - 0.18).abs() < 1e-10);
    }

    #[test]
    fn monotone_decreasing_in_epoch_length() {
        let m = NpcModel::paper();
        let mut prev = f64::INFINITY;
        for el in [512, 1024, 4096, 16384, 65536, 385_000] {
            let np = m.np(el);
            assert!(np < prev, "NPC must fall as epochs lengthen");
            prev = np;
        }
    }

    #[test]
    fn floor_is_one_plus_simulation_overhead() {
        let m = NpcModel::paper();
        let asymptote = 1.0 + (m.nsim * m.hsim_secs + m.cother_secs) / m.rt_secs;
        assert!(m.np(u64::MAX / 2) - asymptote < 1e-6);
        assert!(asymptote > 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_epoch_length_panics() {
        NpcModel::paper().np(0);
    }
}
