//! §4.3: faster replica coordination (Figure 4).
//!
//! The dominant coordination cost is rule P2's wait for acknowledgments,
//! so the paper asks what a 155 Mbps ATM link would buy over the 10 Mbps
//! Ethernet, assuming identical I/O-controller set-up times. The answer
//! (Figure 4): some — at `EL` = 32 K, NPC falls from 1.84 to 1.66.

use crate::cpu::NpcModel;

/// A link scenario for the CPU-workload model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CommScenario {
    /// The prototype's 10 Mbps Ethernet.
    Ethernet10,
    /// The §4.3 alternative: 155 Mbps ATM, same controller set-up time.
    Atm155,
}

impl CommScenario {
    /// The `NPC` model under this link.
    ///
    /// Moving from 10 Mbps to 155 Mbps removes (most of) the
    /// serialization component of the per-epoch message exchange. The
    /// reduction is calibrated from Figure 4's printed endpoints:
    /// 1.84 → 1.66 at `EL` = 32 768 means the per-epoch saving is
    /// `(1.84 − 1.66) · RT / (VI/32768)` ≈ 124 µs.
    pub fn npc_model(self) -> NpcModel {
        let base = NpcModel::paper();
        match self {
            CommScenario::Ethernet10 => base,
            CommScenario::Atm155 => {
                let epochs_at_32k = base.vi / 32_768.0;
                let saving = (1.84 - 1.66) * base.rt_secs / epochs_at_32k;
                NpcModel {
                    hepoch_secs: base.hepoch_secs - saving,
                    ..base
                }
            }
        }
    }
}

/// Produces Figure 4's two curves at the given epoch lengths:
/// `(EL, NPC over Ethernet, NPC over ATM)`.
pub fn predict_fig4(els: &[u64]) -> Vec<(u64, f64, f64)> {
    let eth = CommScenario::Ethernet10.npc_model();
    let atm = CommScenario::Atm155.npc_model();
    els.iter().map(|&el| (el, eth.np(el), atm.np(el))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_4_endpoints() {
        let rows = predict_fig4(&[32_768]);
        let (_, eth, atm) = rows[0];
        assert!((eth - 1.84).abs() < 0.03, "Ethernet at 32K: {eth:.3}");
        assert!((atm - 1.66).abs() < 0.03, "ATM at 32K: {atm:.3}");
    }

    #[test]
    fn atm_always_wins_but_less_at_long_epochs() {
        let rows = predict_fig4(&[1024, 4096, 16384, 65536]);
        let mut gaps = Vec::new();
        for (el, eth, atm) in rows {
            assert!(atm < eth, "ATM must beat Ethernet at EL={el}");
            gaps.push(eth - atm);
        }
        for w in gaps.windows(2) {
            assert!(w[1] < w[0], "the gap shrinks as epochs lengthen: {gaps:?}");
        }
    }

    #[test]
    fn atm_endpoint_at_385k() {
        // Long-epoch limit: both approach the simulation-dominated floor;
        // the paper's Figure 4 shows the ATM curve's 385 K endpoint near
        // 1.66 → at 385 K both are ≈ 1.2.
        let atm = CommScenario::Atm155.npc_model();
        assert!(atm.np(385_000) < 1.24);
    }
}
