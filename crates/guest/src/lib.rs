//! `hvft-guest` — the guest software stack.
//!
//! The paper runs unmodified HP-UX plus benchmark processes on its
//! virtual machine. Our equivalent is a miniature kernel
//! ([`kernel::kernel_source`]) and user-level benchmark programs
//! ([`programs`]) written in the `hvft-isa` assembly dialect. The same
//! binary image runs on the bare machine (for the paper's `RT` baseline)
//! and under the replicated hypervisors, unmodified.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiled;
pub mod kernel;
pub mod layout;
pub mod programs;
pub mod workload;

pub use compiled::{guest_codegen_options, CompiledWorkload};
pub use kernel::{kernel_source, KernelConfig};
pub use programs::{
    callstorm_source, dhrystone_source, hello_source, io_bench_source, matmul_source, mixed_source,
    pingpong_source, sieve_source, IoMode,
};
pub use workload::{UnknownWorkload, Workload};

use hvft_isa::asm::{assemble, AsmError};
use hvft_isa::program::Program;

/// Assembles the kernel plus a user program into one bootable image.
///
/// # Examples
///
/// ```
/// use hvft_guest::{build_image, KernelConfig};
///
/// let img = build_image(
///     &KernelConfig::default(),
///     &hvft_guest::dhrystone_source(10, 0),
/// )
/// .unwrap();
/// assert_eq!(img.entry, img.symbol("k_boot").unwrap());
/// ```
pub fn build_image(cfg: &KernelConfig, user_source: &str) -> Result<Program, AsmError> {
    let mut src = kernel_source(cfg);
    src.push('\n');
    src.push_str(user_source);
    assemble(&src)
}
