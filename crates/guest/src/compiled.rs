//! Workloads written in `hvft-lang` instead of raw assembly.
//!
//! [`CompiledWorkload`] turns any hvft-lang source program into a
//! first-class [`Workload`]: the compiler runs eagerly at construction
//! (so bad programs fail loudly, not at image-build time) and the
//! emitted assembly links against the guest kernel exactly like the
//! hand-written programs in [`crate::programs`].
//!
//! Two compiled programs ship in the [`crate::workload::registry`]
//! (`lang-gcd`, `lang-collatz`), and [`CompiledWorkload::generated`]
//! wraps `hvft_lang::genprog` so differential tests can mint a
//! scenario-ready workload from a bare seed.

use crate::kernel::KernelConfig;
use crate::layout::{self, sys};
use crate::workload::{functional_kernel, Workload};
use hvft_lang::genprog::{self, GenConfig};
use hvft_lang::{CodegenOptions, LangError};

/// The [`CodegenOptions`] matching this crate's guest environment:
/// memory layout from [`crate::layout`], syscall gates from
/// [`crate::layout::sys`]. A unit test pins these to `hvft-lang`'s
/// defaults so the two crates cannot drift apart silently.
pub fn guest_codegen_options() -> CodegenOptions {
    CodegenOptions {
        org: layout::USER_TEXT,
        // Stack grows down from just under the DMA buffer, leaving a
        // 4 KiB guard of headroom for the deepest frames.
        stack_top: layout::DMA_BUF - 0x1000,
        user_data: layout::USER_DATA,
        // peek/poke window stops 12 KiB short of the stack region.
        data_window: 0xC000,
        dma_buf: layout::DMA_BUF,
        sys_putc: sys::PUTC,
        sys_gettime: sys::GETTIME,
        sys_read_block: sys::READ_BLOCK,
        sys_write_block: sys::WRITE_BLOCK,
        sys_exit: sys::EXIT,
        sys_mark: sys::MARK,
        sys_getticks: sys::GETTICKS,
    }
}

/// An hvft-lang program packaged as a registry-compatible workload.
#[derive(Debug, Clone)]
pub struct CompiledWorkload {
    name: String,
    asm: String,
    kernel: KernelConfig,
}

impl CompiledWorkload {
    /// Compile `source` under the guest's codegen options.
    ///
    /// # Errors
    ///
    /// Any front-end or codegen failure, with source line where known.
    pub fn new(name: &str, source: &str) -> Result<CompiledWorkload, LangError> {
        let asm = hvft_lang::compile_with(source, &guest_codegen_options())?;
        Ok(CompiledWorkload {
            name: name.to_string(),
            asm,
            kernel: functional_kernel(),
        })
    }

    /// Same, with an explicit kernel configuration.
    ///
    /// # Errors
    ///
    /// Any front-end or codegen failure, with source line where known.
    pub fn with_kernel(
        name: &str,
        source: &str,
        kernel: KernelConfig,
    ) -> Result<CompiledWorkload, LangError> {
        let mut w = CompiledWorkload::new(name, source)?;
        w.kernel = kernel;
        Ok(w)
    }

    /// A workload from the seed-deterministic program generator,
    /// registered under the name `lang-gen-<seed>`.
    ///
    /// Generated programs are well-formed by construction, so this
    /// cannot fail.
    pub fn generated(seed: u64, cfg: &GenConfig) -> CompiledWorkload {
        let source = genprog::source(seed, cfg);
        CompiledWorkload::new(&format!("lang-gen-{seed}"), &source)
            .expect("generated programs always compile")
    }
}

impl Workload for CompiledWorkload {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn kernel(&self) -> KernelConfig {
        self.kernel
    }

    fn user_source(&self) -> String {
        self.asm.clone()
    }
}

/// hvft-lang source of the `lang-gcd` registry workload: Euclid's
/// algorithm folded over a sweep of operand pairs, checkpointed with
/// `mark` and exited with the running checksum.
pub fn lang_gcd_source() -> &'static str {
    "// lang-gcd: Euclid over a sweep of operand pairs.
fn gcd(a, b) {
    while b != 0 {
        let t = b;
        b = a % b;
        a = t;
    }
    return a;
}

fn main() {
    let acc = 0;
    let i = 1;
    while i < 40 {
        let g = gcd(i * 1000 + 17, 252 + (i & 7));
        acc = (acc << 1) ^ g;
        i = i + 1;
    }
    mark(acc);
    exit(acc);
}
"
}

/// hvft-lang source of the `lang-collatz` registry workload: Collatz
/// trajectory lengths with console output of each length.
pub fn lang_collatz_source() -> &'static str {
    "// lang-collatz: hailstone trajectory lengths, console-audited.
fn steps(n) {
    let c = 0;
    while (n != 1) && (c < 200) {
        if n & 1 {
            n = 3 * n + 1;
        } else {
            n = n / 2;
        }
        c = c + 1;
    }
    return c;
}

fn main() {
    let total = 0;
    let i = 1;
    while i < 48 {
        let s = steps(i);
        total = total + s;
        putc(0x41 + (s & 15));
        i = i + 1;
    }
    putc('\\n');
    exit(total);
}
"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_image;

    /// The whole point of `CodegenOptions::default()` is that it IS the
    /// guest environment; if this test fails, a layout or syscall
    /// change must be mirrored in `hvft-lang`.
    #[test]
    fn guest_options_match_lang_defaults() {
        assert_eq!(guest_codegen_options(), CodegenOptions::default());
    }

    #[test]
    fn builtin_lang_workloads_compile_and_build_bootable_images() {
        for (name, src) in [
            ("lang-gcd", lang_gcd_source()),
            ("lang-collatz", lang_collatz_source()),
        ] {
            let w = CompiledWorkload::new(name, src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let img = build_image(&w.kernel(), &w.user_source())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(img.symbol("u_main"), Some(layout::USER_TEXT), "{name}");
        }
    }

    #[test]
    fn generated_workloads_build_images_too() {
        for seed in [0u64, 1, 17, 99] {
            let w = CompiledWorkload::generated(seed, &GenConfig::default());
            assert_eq!(w.name(), format!("lang-gen-{seed}"));
            let img = build_image(&w.kernel(), &w.user_source())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(img.symbol("u_main"), Some(layout::USER_TEXT));
        }
    }

    #[test]
    fn compile_errors_surface_at_construction() {
        let err = CompiledWorkload::new("bad", "fn main() { undefined_var; }").unwrap_err();
        assert!(err.msg.contains("undeclared"), "{err}");
    }
}
