//! Named, pluggable guest workloads.
//!
//! The paper evaluates its protocols under exactly three guest programs
//! (CPU-intense dhrystone, read-intense, write-intense). The scenario
//! layer generalizes that: a [`Workload`] is anything that can produce
//! a bootable guest image, and the [`registry`] holds a named instance
//! of every built-in workload so harnesses (CLI figure regeneration,
//! CI benches, proptests) can select guests *by name* instead of
//! hand-assembling images.
//!
//! Built-in workloads:
//!
//! | name | program | flavour |
//! |---|---|---|
//! | `dhrystone` | [`crate::dhrystone_source`] | the paper's CPU-intense mix |
//! | `io-read` | [`crate::io_bench_source`] | random-block disk reads (§4.2) |
//! | `io-write` | [`crate::io_bench_source`] | random-block disk writes (§4.2) |
//! | `mixed` | [`crate::mixed_source`] | compute + I/O interpolation (§4.2) |
//! | `hello` | [`crate::hello_source`] | console + timer ticks |
//! | `sieve` | [`crate::sieve_source`] | branchy byte-store prime sieve |
//! | `matmul` | [`crate::matmul_source`] | n³ integer multiply, deep loop nest |
//! | `pingpong` | [`crate::pingpong_source`] | producer–consumer ring + console |
//! | `callstorm` | [`crate::callstorm_source`] | call-dominated: leaf, cross-page and deep-recursive calls |
//! | `lang-gcd` | [`crate::compiled::lang_gcd_source`] | hvft-lang: Euclid sweep (call-heavy) |
//! | `lang-collatz` | [`crate::compiled::lang_collatz_source`] | hvft-lang: hailstone lengths + console |
//!
//! # Examples
//!
//! ```
//! use hvft_guest::workload::{by_name, registry, Workload};
//!
//! // Every registered workload can produce a bootable image.
//! for w in registry() {
//!     assert!(w.image().is_ok(), "{} must build", w.name());
//! }
//! // Selection by name is how CLIs and CI harnesses pick guests.
//! let sieve = by_name("sieve").expect("sieve is registered");
//! assert_eq!(sieve.name(), "sieve");
//! // Misses come back as a structured error naming the registry.
//! let err = by_name("no-such").err().expect("no-such must not resolve");
//! assert!(err.to_string().contains("registered workloads"));
//! ```

use crate::build_image;
use crate::compiled::{lang_collatz_source, lang_gcd_source, CompiledWorkload};
use crate::kernel::KernelConfig;
use crate::programs::{
    callstorm_source, dhrystone_source, hello_source, io_bench_source, matmul_source, mixed_source,
    pingpong_source, sieve_source, IoMode,
};
use hvft_isa::asm::AsmError;
use hvft_isa::program::Program;

/// A guest workload: everything needed to produce one bootable image.
///
/// Implementations are plain parameter structs; the scenario layer
/// treats them uniformly, and [`registry`] exposes a default-sized
/// instance of each built-in under a stable name.
pub trait Workload {
    /// Stable name the workload is registered (and selected) under.
    fn name(&self) -> String;

    /// The kernel configuration this workload boots with.
    fn kernel(&self) -> KernelConfig {
        KernelConfig::default()
    }

    /// The user program's assembly source (must `.org` at
    /// [`crate::layout::USER_TEXT`] and label its entry `u_main`).
    fn user_source(&self) -> String;

    /// Assembles the kernel plus the user program into a bootable image.
    fn image(&self) -> Result<Program, AsmError> {
        build_image(&self.kernel(), &self.user_source())
    }
}

/// A snappy kernel for functional (non-paper-calibrated) runs: frequent
/// ticks with a little privileged work, so the timer/interrupt path
/// stays exercised without dominating short workloads.
pub(crate) fn functional_kernel() -> KernelConfig {
    KernelConfig {
        tick_period_us: 2000,
        tick_work: 2,
        ..KernelConfig::default()
    }
}

/// The paper's CPU-intense workload (synthetic Dhrystone 2.1 mix).
#[derive(Clone, Copy, Debug)]
pub struct Dhrystone {
    /// Iterations of the fixed integer/memory/branch mix.
    pub iters: u32,
    /// Perform a `SYS_GETTIME` syscall every this many iterations
    /// (0 = never).
    pub syscall_every: u32,
    /// Kernel tunables.
    pub kernel: KernelConfig,
}

impl Default for Dhrystone {
    fn default() -> Self {
        Dhrystone {
            iters: 1_500,
            syscall_every: 6,
            kernel: functional_kernel(),
        }
    }
}

impl Workload for Dhrystone {
    fn name(&self) -> String {
        "dhrystone".into()
    }
    fn kernel(&self) -> KernelConfig {
        self.kernel
    }
    fn user_source(&self) -> String {
        dhrystone_source(self.iters, self.syscall_every)
    }
}

/// The §4.2 disk benchmark: random-block reads or writes, each awaited.
#[derive(Clone, Copy, Debug)]
pub struct IoBench {
    /// Operations to perform.
    pub ops: u32,
    /// Read or write.
    pub mode: IoMode,
    /// Blocks the LCG selects among (must not exceed the disk size the
    /// scenario configures).
    pub num_blocks: u32,
    /// LCG seed for block selection.
    pub seed: u32,
    /// Kernel tunables.
    pub kernel: KernelConfig,
}

impl IoBench {
    /// The default-sized read benchmark.
    pub fn read() -> Self {
        IoBench {
            mode: IoMode::Read,
            ..Self::default()
        }
    }
}

impl Default for IoBench {
    fn default() -> Self {
        IoBench {
            ops: 3,
            mode: IoMode::Write,
            num_blocks: 16,
            seed: 5,
            kernel: KernelConfig::default(),
        }
    }
}

impl Workload for IoBench {
    fn name(&self) -> String {
        match self.mode {
            IoMode::Read => "io-read".into(),
            IoMode::Write => "io-write".into(),
        }
    }
    fn kernel(&self) -> KernelConfig {
        self.kernel
    }
    fn user_source(&self) -> String {
        io_bench_source(self.ops, self.mode, self.num_blocks, self.seed)
    }
}

/// The §4.2 interpolation workload: compute iterations before each I/O.
#[derive(Clone, Copy, Debug)]
pub struct Mixed {
    /// I/O operations.
    pub ops: u32,
    /// Read or write.
    pub mode: IoMode,
    /// Blocks the LCG selects among.
    pub num_blocks: u32,
    /// LCG seed.
    pub seed: u32,
    /// Integer-mix iterations before each operation.
    pub compute_iters: u32,
    /// Kernel tunables.
    pub kernel: KernelConfig,
}

impl Default for Mixed {
    fn default() -> Self {
        Mixed {
            ops: 2,
            mode: IoMode::Write,
            num_blocks: 16,
            seed: 3,
            compute_iters: 400,
            kernel: KernelConfig::default(),
        }
    }
}

impl Workload for Mixed {
    fn name(&self) -> String {
        "mixed".into()
    }
    fn kernel(&self) -> KernelConfig {
        self.kernel
    }
    fn user_source(&self) -> String {
        mixed_source(
            self.ops,
            self.mode,
            self.num_blocks,
            self.seed,
            self.compute_iters,
        )
    }
}

/// The console workload: print, wait out timer ticks, exit 42.
#[derive(Clone, Debug)]
pub struct Hello {
    /// Message to print.
    pub message: String,
    /// Timer ticks to wait between prints.
    pub wait_ticks: u32,
    /// Kernel tunables.
    pub kernel: KernelConfig,
}

impl Default for Hello {
    fn default() -> Self {
        Hello {
            message: "hello from a replicated VM\n".into(),
            wait_ticks: 2,
            kernel: functional_kernel(),
        }
    }
}

impl Workload for Hello {
    fn name(&self) -> String {
        "hello".into()
    }
    fn kernel(&self) -> KernelConfig {
        self.kernel
    }
    fn user_source(&self) -> String {
        hello_source(&self.message, self.wait_ticks)
    }
}

/// The prime sieve: branchy byte stores over a `limit`-sized array.
#[derive(Clone, Copy, Debug)]
pub struct Sieve {
    /// Sieve candidates `2..=limit`.
    pub limit: u32,
    /// Kernel tunables.
    pub kernel: KernelConfig,
}

impl Default for Sieve {
    fn default() -> Self {
        Sieve {
            limit: 2_000,
            kernel: functional_kernel(),
        }
    }
}

impl Workload for Sieve {
    fn name(&self) -> String {
        "sieve".into()
    }
    fn kernel(&self) -> KernelConfig {
        self.kernel
    }
    fn user_source(&self) -> String {
        sieve_source(self.limit)
    }
}

/// The integer matrix multiply: `n³` multiply-accumulate loop nest.
#[derive(Clone, Copy, Debug)]
pub struct MatMul {
    /// Matrix dimension (`n × n`).
    pub n: u32,
    /// LCG seed filling `A` and `B`.
    pub seed: u32,
    /// Kernel tunables.
    pub kernel: KernelConfig,
}

impl Default for MatMul {
    fn default() -> Self {
        MatMul {
            n: 16,
            seed: 7,
            kernel: functional_kernel(),
        }
    }
}

impl Workload for MatMul {
    fn name(&self) -> String {
        "matmul".into()
    }
    fn kernel(&self) -> KernelConfig {
        self.kernel
    }
    fn user_source(&self) -> String {
        matmul_source(self.n, self.seed)
    }
}

/// The producer–consumer ping-pong over an in-memory ring, with one
/// console byte per round.
#[derive(Clone, Copy, Debug)]
pub struct PingPong {
    /// Fill/drain rounds.
    pub rounds: u32,
    /// Queue slots per round.
    pub depth: u32,
    /// Producer LCG seed.
    pub seed: u32,
    /// Kernel tunables.
    pub kernel: KernelConfig,
}

impl Default for PingPong {
    fn default() -> Self {
        PingPong {
            rounds: 24,
            depth: 32,
            seed: 11,
            kernel: functional_kernel(),
        }
    }
}

impl Workload for PingPong {
    fn name(&self) -> String {
        "pingpong".into()
    }
    fn kernel(&self) -> KernelConfig {
        self.kernel
    }
    fn user_source(&self) -> String {
        pingpong_source(self.rounds, self.depth, self.seed)
    }
}

/// A call-dominated guest: near leaf calls, calls into the next text
/// page, and a deep monomorphic recursion — the stress workload for the
/// jit tier's inline return cache and cross-page traces.
#[derive(Clone, Copy, Debug)]
pub struct CallStorm {
    /// Outer iterations (each makes one leaf, one far and `depth`
    /// recursive calls).
    pub calls: u32,
    /// Recursion depth per iteration.
    pub depth: u32,
    /// Kernel tunables.
    pub kernel: KernelConfig,
}

impl Default for CallStorm {
    fn default() -> Self {
        CallStorm {
            calls: 400,
            depth: 12,
            kernel: functional_kernel(),
        }
    }
}

impl Workload for CallStorm {
    fn name(&self) -> String {
        "callstorm".into()
    }
    fn kernel(&self) -> KernelConfig {
        self.kernel
    }
    fn user_source(&self) -> String {
        callstorm_source(self.calls, self.depth)
    }
}

/// Default-sized instances of every built-in workload, in stable order.
///
/// Sizes are chosen so a whole-registry sweep (e.g. the scenarios bench
/// or the workload-equivalence proptest) stays CI-friendly; harnesses
/// wanting paper-scale workloads construct the parameter structs
/// directly.
pub fn registry() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Dhrystone::default()),
        Box::new(IoBench::read()),
        Box::new(IoBench::default()),
        Box::new(Mixed::default()),
        Box::new(Hello::default()),
        Box::new(Sieve::default()),
        Box::new(MatMul::default()),
        Box::new(PingPong::default()),
        Box::new(CallStorm::default()),
        Box::new(
            CompiledWorkload::new("lang-gcd", lang_gcd_source())
                .expect("built-in lang-gcd compiles"),
        ),
        Box::new(
            CompiledWorkload::new("lang-collatz", lang_collatz_source())
                .expect("built-in lang-collatz compiles"),
        ),
    ]
}

/// Names of every registered workload, in registry order.
pub fn names() -> Vec<String> {
    registry().iter().map(|w| w.name()).collect()
}

/// The structured error for a failed registry lookup: it names the
/// request *and* every registered workload, so the message a CLI or
/// scenario error surfaces is immediately actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownWorkload {
    /// The name that failed to resolve.
    pub name: String,
    /// Every registered workload name, in registry order.
    pub registered: Vec<String>,
}

impl std::fmt::Display for UnknownWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown workload `{}`; registered workloads: {}",
            self.name,
            self.registered.join(", ")
        )
    }
}

impl std::error::Error for UnknownWorkload {}

/// Looks up a registered workload by name.
///
/// # Errors
///
/// [`UnknownWorkload`], which lists every registered name.
pub fn by_name(name: &str) -> Result<Box<dyn Workload>, UnknownWorkload> {
    registry()
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| UnknownWorkload {
            name: name.to_string(),
            registered: names(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names = names();
        for n in &names {
            assert!(by_name(n).is_ok(), "{n} must resolve");
        }
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate workload names");
    }

    #[test]
    fn registry_has_the_paper_workloads_and_new_ones() {
        let names = names();
        for required in [
            "dhrystone",
            "io-read",
            "io-write",
            "hello",
            "mixed",
            "sieve",
            "matmul",
            "pingpong",
            "callstorm",
        ] {
            assert!(names.iter().any(|n| n == required), "{required} missing");
        }
    }

    #[test]
    fn every_registered_workload_builds_an_image() {
        for w in registry() {
            let img = w
                .image()
                .unwrap_or_else(|e| panic!("{} image: {e}", w.name()));
            assert_eq!(
                img.symbol("u_main"),
                Some(layout::USER_TEXT),
                "{}",
                w.name()
            );
        }
    }

    #[test]
    fn unknown_name_is_a_structured_error_listing_the_registry() {
        let err = match by_name("no-such-workload") {
            Err(e) => e,
            Ok(w) => panic!("{} must not resolve", w.name()),
        };
        assert_eq!(err.name, "no-such-workload");
        assert_eq!(err.registered, names());
        let msg = err.to_string();
        assert!(msg.contains("no-such-workload"), "{msg}");
        assert!(msg.contains("lang-gcd"), "{msg}");
    }
}
