//! User-level benchmark programs.
//!
//! These are the guests' workloads from §4 of the paper:
//!
//! - [`dhrystone_source`]: the CPU-intensive workload — a synthetic
//!   integer/memory/branch mix in the spirit of Dhrystone 2.1, run at
//!   user privilege with a configurable syscall density;
//! - [`io_bench_source`]: the I/O workloads — random-block disk reads or
//!   writes, each awaited synchronously, exactly like the §4.2
//!   benchmarks ("randomly selects a disk block, issues a read, and
//!   awaits the data", iterated);
//! - [`hello_source`]: a minimal console program for the quickstart.
//!
//! All programs end with `SYS_EXIT`, carrying a checksum in `r4` that is
//! **independent of timing** (clock values never feed it), so the same
//! binary must produce the identical checksum on bare hardware, on the
//! primary, and on a promoted backup — the determinism property the test
//! suite leans on.

use crate::layout::{sys, DMA_BUF, USER_DATA, USER_TEXT};

/// Which direction the I/O benchmark drives the disk.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoMode {
    /// Random-block reads (the paper's read benchmark).
    Read,
    /// Random-block writes (the paper's write benchmark).
    Write,
}

fn prologue(name: &str) -> String {
    format!(
        "; ---- user program: {name} (generated) ----
.org {utext:#x}
u_main:
",
        utext = USER_TEXT
    )
}

/// The CPU-intensive workload.
///
/// Each iteration executes a fixed mix of ALU, memory, byte, branch and
/// call/return work (≈ 30 instructions plus a leaf call). When
/// `syscall_every` is non-zero, every that-many-th iteration performs a
/// `SYS_GETTIME` syscall, whose kernel path executes privileged
/// instructions that the hypervisor must simulate.
pub fn dhrystone_source(iters: u32, syscall_every: u32) -> String {
    let mut s = prologue("dhrystone");
    s.push_str(&format!(
        "    li   r10, 0              ; checksum
    li   r11, {iters}        ; iteration counter
    li   r12, {udata:#x}     ; record array
    li   r13, 0x12345        ; mixing state
    li   r23, {se}           ; syscall period (0 = never)
u_loop:
    ; integer mix
    add  r14, r13, r10
    xor  r15, r14, r11
    slli r16, r15, 3
    srli r17, r15, 5
    or   r14, r16, r17
    sub  r13, r14, r11
    mul  r15, r13, r14
    add  r10, r10, r15
    ; record assignment: store and reload a rotating slot; the stride
    ; spreads the record array across several pages so small TLBs churn
    andi r18, r11, 0xFF
    slli r18, r18, 6
    add  r18, r18, r12
    sw   r14, 0(r18)
    lw   r19, 0(r18)
    add  r10, r10, r19
    ; string-ish byte traffic
    sb   r14, 1024(r18)
    lbu  r20, 1024(r18)
    add  r10, r10, r20
    ; data-dependent branch
    andi r21, r11, 1
    beq  r21, r0, u_even
    addi r10, r10, 7
u_even:
    ; procedure call (exercises the jal privilege-bit quirk)
    call u_leaf
    add  r10, r10, r24
",
        iters = iters,
        udata = USER_DATA,
        se = syscall_every,
    ));
    if syscall_every > 0 {
        s.push_str(&format!(
            "    ; periodic syscall: kernel executes privileged clock reads
    remu r22, r11, r23
    bne  r22, r0, u_nosys
    gate {gettime}               ; result in r4 is timing-dependent —
    and  r4, r4, r0              ; never fold it into the checksum
u_nosys:
",
            gettime = sys::GETTIME
        ));
    }
    s.push_str(&format!(
        "    addi r11, r11, -1
    bne  r11, r0, u_loop
    mv   r4, r10
    gate {exit}

u_leaf:
    xor  r24, r10, r11
    andi r24, r24, 0xFFF
    ret
",
        exit = sys::EXIT
    ));
    s
}

/// The I/O workload: `ops` random-block operations, LCG-selected within
/// `num_blocks`, each one issued via syscall and awaited.
///
/// For writes, the first 16 words of the DMA buffer are refreshed with
/// iteration-dependent data first. For reads, the first word of the
/// buffer after each read is folded into the checksum.
pub fn io_bench_source(ops: u32, mode: IoMode, num_blocks: u32, seed: u32) -> String {
    let syscall = match mode {
        IoMode::Read => sys::READ_BLOCK,
        IoMode::Write => sys::WRITE_BLOCK,
    };
    let mut s = prologue(match mode {
        IoMode::Read => "disk-read benchmark",
        IoMode::Write => "disk-write benchmark",
    });
    s.push_str(&format!(
        "    li   r10, {ops}          ; remaining operations
    li   r11, {seed:#x}      ; LCG state
    li   r12, {dma:#x}       ; DMA buffer
    li   r13, {blocks}       ; number of blocks
    li   r19, 0              ; checksum
u_loop:
    ; LCG step: state = state * 1664525 + 1013904223
    li   r14, 1664525
    mul  r11, r11, r14
    li   r14, 1013904223
    add  r11, r11, r14
    srli r15, r11, 8
    remu r15, r15, r13       ; block number
",
        ops = ops,
        seed = seed,
        dma = DMA_BUF,
        blocks = num_blocks,
    ));
    if mode == IoMode::Write {
        s.push_str(
            "    ; refresh the head of the buffer so each write is distinct
    addi r16, r0, 16
    mv   r17, r12
u_fill:
    sw   r11, 0(r17)
    addi r17, r17, 4
    addi r16, r16, -1
    bne  r16, r0, u_fill
",
        );
    }
    s.push_str(&format!(
        "    mv   r4, r15
    mv   r5, r12
    gate {syscall}
",
        syscall = syscall
    ));
    if mode == IoMode::Read {
        s.push_str(
            "    lw   r18, 0(r12)
    add  r19, r19, r18
",
        );
    } else {
        s.push_str(
            "    add  r19, r19, r15       ; fold the block number instead
",
        );
    }
    s.push_str(&format!(
        "    addi r10, r10, -1
    bne  r10, r0, u_loop
    mv   r4, r19
    gate {exit}
",
        exit = sys::EXIT
    ));
    s
}

/// A mixed workload: like [`io_bench_source`], but with `compute_iters`
/// iterations of integer work before each I/O operation.
///
/// §4.2 remarks that "in a benchmark where more computation were done
/// before each I/O operation, the dominance of the cpu(EL) term would
/// ameliorate the normalized performance" — this workload lets the
/// ablation harness test that claim: its NP must interpolate between
/// the pure-I/O and pure-CPU workloads' values.
pub fn mixed_source(
    ops: u32,
    mode: IoMode,
    num_blocks: u32,
    seed: u32,
    compute_iters: u32,
) -> String {
    let syscall = match mode {
        IoMode::Read => sys::READ_BLOCK,
        IoMode::Write => sys::WRITE_BLOCK,
    };
    let mut s = prologue("mixed compute + disk benchmark");
    s.push_str(&format!(
        "    li   r10, {ops}          ; remaining operations
    li   r11, {seed:#x}      ; LCG state
    li   r12, {dma:#x}       ; DMA buffer
    li   r13, {blocks}       ; number of blocks
    li   r19, 0              ; checksum
u_loop:
    ; compute phase: {compute} iterations of integer mix
    li   r20, {compute}
    beq  r20, r0, u_io
u_compute:
    add  r14, r11, r19
    xor  r15, r14, r20
    slli r16, r15, 3
    srli r17, r15, 7
    or   r14, r16, r17
    mul  r15, r14, r20
    add  r19, r19, r15
    addi r20, r20, -1
    bne  r20, r0, u_compute
u_io:
    ; LCG step and I/O
    li   r14, 1664525
    mul  r11, r11, r14
    li   r14, 1013904223
    add  r11, r11, r14
    srli r15, r11, 8
    remu r15, r15, r13
    mv   r4, r15
    mv   r5, r12
    gate {syscall}
    add  r19, r19, r15
    addi r10, r10, -1
    bne  r10, r0, u_loop
    mv   r4, r19
    gate {exit}
",
        ops = ops,
        seed = seed,
        dma = DMA_BUF,
        blocks = num_blocks,
        compute = compute_iters,
        syscall = syscall,
        exit = sys::EXIT,
    ));
    s
}

/// A sieve of Eratosthenes over `2..=limit`.
///
/// Byte-array marking with a quadratic striding pattern — a branchy,
/// store-heavy workload quite unlike dhrystone's fixed mix. The
/// checksum folds every surviving prime and the running prime count,
/// so it is timing-independent and highly sensitive to any marking
/// error. The flag array lives at [`USER_DATA`]; `limit` must leave it
/// clear of the DMA buffer (one byte per candidate).
pub fn sieve_source(limit: u32) -> String {
    assert!(
        (2..=0xFFF0).contains(&limit),
        "sieve limit {limit} outside 2..=0xFFF0 (flag array must fit below the DMA buffer)"
    );
    let mut s = prologue("sieve of Eratosthenes");
    s.push_str(&format!(
        "    li   r10, {limit}        ; limit
    li   r11, {udata:#x}     ; flag array (byte per candidate)
    ; clear flags 0..=limit
    mv   r12, r11
    add  r13, r11, r10
u_sv_clear:
    sb   r0, 0(r12)
    addi r12, r12, 1
    blt  r12, r13, u_sv_clear
    sb   r0, 0(r13)          ; include the limit itself
    ; outer loop: p = 2, 3, ... while p*p <= limit
    li   r14, 2
u_sv_outer:
    mul  r15, r14, r14
    blt  r10, r15, u_sv_count
    add  r16, r11, r14
    lbu  r17, 0(r16)
    bne  r17, r0, u_sv_next  ; p already composite
    li   r17, 1
u_sv_mark:
    blt  r10, r15, u_sv_next ; multiple beyond limit
    add  r16, r11, r15
    sb   r17, 0(r16)
    add  r15, r15, r14
    b    u_sv_mark
u_sv_next:
    addi r14, r14, 1
    b    u_sv_outer
    ; count the survivors, folding primes into the checksum
u_sv_count:
    li   r18, 0              ; prime count
    li   r19, 0              ; checksum
    li   r14, 2
u_sv_cloop:
    blt  r10, r14, u_sv_done
    add  r16, r11, r14
    lbu  r17, 0(r16)
    bne  r17, r0, u_sv_cnext
    addi r18, r18, 1
    add  r19, r19, r14
    slli r20, r19, 1
    srli r21, r19, 31
    or   r19, r20, r21       ; rotate-left 1
    xor  r19, r19, r18
u_sv_cnext:
    addi r14, r14, 1
    b    u_sv_cloop
u_sv_done:
    slli r20, r18, 16        ; count in the high half, mix in the low
    xor  r4, r19, r20
    gate {exit}
",
        limit = limit,
        udata = USER_DATA,
        exit = sys::EXIT,
    ));
    s
}

/// An `n × n` integer matrix multiply (`C = A × B`).
///
/// `A` and `B` are filled by an LCG from `seed`; the checksum folds
/// every element of `C` through a rotate-xor mix. Dense `mul`/`lw`
/// traffic with a 3-deep loop nest — the classic cache/TLB walker.
/// All three matrices live at [`USER_DATA`] (`3 × n² × 4` bytes, which
/// must stay below the DMA buffer: `n ≤ 73`).
pub fn matmul_source(n: u32, seed: u32) -> String {
    assert!((1..=73).contains(&n), "matmul n {n} outside 1..=73");
    let mut s = prologue("integer matmul");
    s.push_str(&format!(
        "    li   r10, {n}            ; n
    li   r11, {seed:#x}      ; LCG state
    li   r12, {udata:#x}     ; A
    mul  r13, r10, r10       ; n*n
    slli r14, r13, 2
    add  r15, r12, r14       ; B = A + n*n*4
    add  r16, r15, r14       ; C = B + n*n*4
    ; fill A and B: 2*n*n LCG words
    slli r17, r13, 1
    mv   r18, r12
u_mm_fill:
    li   r19, 1664525
    mul  r11, r11, r19
    li   r19, 1013904223
    add  r11, r11, r19
    srli r19, r11, 4
    sw   r19, 0(r18)
    addi r18, r18, 4
    addi r17, r17, -1
    bne  r17, r0, u_mm_fill
    ; C[i][j] = sum_k A[i][k] * B[k][j]
    li   r20, 0              ; checksum
    li   r17, 0              ; i
u_mm_i:
    li   r18, 0              ; j
u_mm_j:
    li   r21, 0              ; acc
    li   r19, 0              ; k
u_mm_k:
    mul  r22, r17, r10
    add  r22, r22, r19
    slli r22, r22, 2
    add  r22, r22, r12
    lw   r22, 0(r22)         ; A[i][k]
    mul  r23, r19, r10
    add  r23, r23, r18
    slli r23, r23, 2
    add  r23, r23, r15
    lw   r23, 0(r23)         ; B[k][j]
    mul  r22, r22, r23
    add  r21, r21, r22
    addi r19, r19, 1
    blt  r19, r10, u_mm_k
    mul  r22, r17, r10
    add  r22, r22, r18
    slli r22, r22, 2
    add  r22, r22, r16
    sw   r21, 0(r22)         ; C[i][j]
    add  r20, r20, r21
    slli r22, r20, 3
    srli r23, r20, 29
    or   r20, r22, r23       ; rotate-left 3
    xor  r20, r20, r21
    addi r18, r18, 1
    blt  r18, r10, u_mm_j
    addi r17, r17, 1
    blt  r17, r10, u_mm_i
    mv   r4, r20
    gate {exit}
",
        n = n,
        seed = seed,
        udata = USER_DATA,
        exit = sys::EXIT,
    ));
    s
}

/// A producer–consumer ping-pong over an in-memory ring.
///
/// Each round the producer fills a `depth`-slot queue at [`USER_DATA`]
/// from an LCG stream, the consumer drains it folding a parity-branchy
/// checksum, and one console byte marks the round — so the workload
/// mixes stores, loads, data-dependent branches and a steady trickle of
/// externally visible I/O (the console path the protocols must gate).
pub fn pingpong_source(rounds: u32, depth: u32, seed: u32) -> String {
    assert!(rounds >= 1, "pingpong needs at least one round");
    assert!(
        (1..=0x3FF0).contains(&depth),
        "pingpong depth {depth} outside 1..=0x3FF0 (queue must fit below the DMA buffer)"
    );
    let mut s = prologue("producer-consumer ping-pong");
    s.push_str(&format!(
        "    li   r10, {rounds}       ; rounds remaining
    li   r11, {depth}        ; queue depth
    li   r12, {udata:#x}     ; queue base
    li   r14, 0              ; checksum
    li   r15, {seed:#x}      ; producer LCG state
u_pp_round:
    ; producer: fill the queue
    li   r16, 0
u_pp_prod:
    li   r17, 1664525
    mul  r15, r15, r17
    li   r17, 1013904223
    add  r15, r15, r17
    slli r18, r16, 2
    add  r18, r18, r12
    sw   r15, 0(r18)
    addi r16, r16, 1
    blt  r16, r11, u_pp_prod
    ; consumer: drain it, branching on item parity
    li   r16, 0
u_pp_cons:
    slli r18, r16, 2
    add  r18, r18, r12
    lw   r19, 0(r18)
    xor  r14, r14, r19
    andi r20, r19, 1
    beq  r20, r0, u_pp_even
    add  r14, r14, r16
u_pp_even:
    addi r16, r16, 1
    blt  r16, r11, u_pp_cons
    ; one console byte per round: externally visible progress
    li   r4, 46              ; '.'
    gate {putc}
    addi r10, r10, -1
    bne  r10, r0, u_pp_round
    mv   r4, r14
    gate {exit}
",
        rounds = rounds,
        depth = depth,
        seed = seed,
        udata = USER_DATA,
        putc = sys::PUTC,
        exit = sys::EXIT,
    ));
    s
}

/// A call-dominated workload: the stress case for the jit tier's
/// inline return cache and cross-page traces.
///
/// Each outer iteration makes a near leaf call, a call into the *next*
/// text page (so hot traces must fuse across a page boundary to batch
/// it), and a `depth`-deep recursive chain whose return site is
/// monomorphic — the exact shape Dynamo-style return prediction wins
/// on. The checksum in `r4` folds every path and is timing-independent.
pub fn callstorm_source(calls: u32, depth: u32) -> String {
    assert!(calls >= 1, "callstorm needs at least one iteration");
    assert!(
        (1..=1024).contains(&depth),
        "callstorm depth {depth} outside 1..=1024 (software stack must fit in user data)"
    );
    let mut s = prologue("callstorm");
    s.push_str(&format!(
        "    li   r10, {calls}       ; outer iterations
    li   r14, 0              ; checksum
    li   r15, 0x2F           ; LCG state
    li   r12, {udata:#x}     ; software call stack base
u_cs_loop:
    jal  ra, u_cs_leaf       ; near monomorphic call
    jal  ra, u_cs_far        ; call into the next text page
    li   r11, {depth}        ; remaining recursion depth
    mv   r13, r12            ; software stack pointer
    jal  ra, u_cs_rec        ; deep call/return chain
    addi r10, r10, -1
    bne  r10, r0, u_cs_loop
    mv   r4, r14
    gate {exit}

u_cs_leaf:
    addi r14, r14, 3
    xor  r14, r14, r10
    jalr r0, ra, 0

u_cs_rec:                    ; r11 = depth left, r13 = stack pointer
    beq  r11, r0, u_cs_rec_done
    sw   ra, 0(r13)
    addi r13, r13, 4
    addi r11, r11, -1
    addi r14, r14, 1
    jal  ra, u_cs_rec
    addi r13, r13, -4
    lw   ra, 0(r13)
u_cs_rec_done:
    jalr r0, ra, 0

.org {far:#x}
u_cs_far:
    li   r17, 1664525
    mul  r15, r15, r17
    li   r17, 1013904223
    add  r15, r15, r17
    xor  r14, r14, r15
    jalr r0, ra, 0
",
        calls = calls,
        depth = depth,
        udata = USER_DATA,
        far = USER_TEXT + 0x1000,
        exit = sys::EXIT,
    ));
    s
}

/// A tiny console program: prints a message, waits for a few timer
/// ticks, prints again, exits with a fixed code.
pub fn hello_source(message: &str, wait_ticks: u32) -> String {
    let mut s = prologue("hello");
    s.push_str("    la r12, u_msg\nu_putloop:\n");
    s.push_str(&format!(
        "    lbu  r4, 0(r12)
    beq  r4, r0, u_wait
    gate {putc}
    addi r12, r12, 1
    b    u_putloop
u_wait:
    gate {getticks}
    mv   r13, r4
    addi r13, r13, {wait}
u_tickloop:
    gate {getticks}
    blt  r4, r13, u_tickloop
    addi r4, r0, 42
    gate {exit}
u_msg:
    .asciiz \"{msg}\"
",
        putc = sys::PUTC,
        getticks = sys::GETTICKS,
        wait = wait_ticks,
        exit = sys::EXIT,
        msg = message
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
            .replace('\t', "\\t"),
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvft_isa::asm::assemble;

    #[test]
    fn dhrystone_assembles() {
        for se in [0, 1, 10] {
            let src = dhrystone_source(1000, se);
            assemble(&src).unwrap_or_else(|e| panic!("dhrystone(se={se}): {e}"));
        }
    }

    #[test]
    fn io_bench_assembles() {
        for mode in [IoMode::Read, IoMode::Write] {
            let src = io_bench_source(64, mode, 128, 1);
            assemble(&src).unwrap_or_else(|e| panic!("io({mode:?}): {e}"));
        }
    }

    #[test]
    fn callstorm_assembles_and_spans_two_text_pages() {
        let src = callstorm_source(100, 8);
        let prog = assemble(&src).unwrap_or_else(|e| panic!("callstorm: {e}"));
        assert_eq!(prog.symbol("u_cs_far"), Some(USER_TEXT + 0x1000));
    }

    #[test]
    fn hello_assembles() {
        let src = hello_source("hi there\n", 2);
        let p = assemble(&src).unwrap();
        assert!(p.symbol("u_main").is_some());
    }

    #[test]
    fn mixed_assembles() {
        for compute in [0, 100, 10_000] {
            let src = mixed_source(8, IoMode::Write, 32, 3, compute);
            assemble(&src).unwrap_or_else(|e| panic!("mixed({compute}): {e}"));
        }
    }

    #[test]
    fn sieve_assembles() {
        for limit in [10, 500, 5_000] {
            let src = sieve_source(limit);
            assemble(&src).unwrap_or_else(|e| panic!("sieve({limit}): {e}"));
        }
    }

    #[test]
    fn matmul_assembles() {
        for n in [1, 8, 24] {
            let src = matmul_source(n, 7);
            assemble(&src).unwrap_or_else(|e| panic!("matmul({n}): {e}"));
        }
    }

    #[test]
    fn pingpong_assembles() {
        for (rounds, depth) in [(1, 1), (16, 8), (64, 256)] {
            let src = pingpong_source(rounds, depth, 3);
            assemble(&src).unwrap_or_else(|e| panic!("pingpong({rounds},{depth}): {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "sieve limit")]
    fn oversized_sieve_rejected() {
        let _ = sieve_source(0x20000);
    }

    #[test]
    fn programs_org_at_user_text() {
        let p = assemble(&dhrystone_source(1, 0)).unwrap();
        assert_eq!(p.symbol("u_main"), Some(USER_TEXT));
    }
}
