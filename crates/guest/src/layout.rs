//! The guest physical memory layout and kernel ABI constants.
//!
//! The kernel keeps its hot data below `0x2000` so trap handlers can
//! address it with plain `r0`-relative displacements (the 14-bit signed
//! displacement field reaches `0x1FFF`), which lets handlers save and
//! restore registers without needing a free base register first.

/// Base of the interrupt vector table (each vector slot is 32 bytes).
pub const IVA_BASE: u32 = 0x100;
/// Kernel scratch/data area (r0-relative addressable).
pub const KDATA: u32 = 0x400;
/// Kernel entry point (boot).
pub const KERNEL_TEXT: u32 = 0x1000;
/// Page table base: 1024 word entries covering virtual pages 0..1023
/// (the first 4 MB) — installed in `ptbr` at boot.
pub const PAGE_TABLE: u32 = 0x2000;
/// Reachable with `ori` from a page-aligned value (must stay below the
/// 14-bit unsigned immediate ceiling for the TLB-miss handler).
const _: () = assert!(PAGE_TABLE < (1 << 14));
/// Kernel stack top (grows down; mostly unused — handlers are leaf code).
pub const KSTACK_TOP: u32 = 0xF000;
/// User program text.
pub const USER_TEXT: u32 = 0x10000;
/// User scratch data array.
pub const USER_DATA: u32 = 0x20000;
/// User DMA buffer for disk transfers (one 8 KB block: pages 0x30, 0x31).
pub const DMA_BUF: u32 = 0x30000;
/// First page (number) with the user-access bit set.
pub const USER_FIRST_PAGE: u32 = USER_TEXT >> 12;
/// One past the last user page.
pub const USER_LAST_PAGE: u32 = 0x40;
/// Pages mapped identity in the boot page table.
pub const MAPPED_PAGES: u32 = 0x40;
/// Guest RAM size in bytes (covers everything above plus headroom).
pub const RAM_BYTES: usize = 0x40000;

/// Kernel data slots (absolute addresses, r0-relative addressable).
pub mod kdata {
    use super::KDATA;
    /// Timer tick counter.
    pub const TICKS: u32 = KDATA;
    /// Disk-completion flag set by the interrupt handler.
    pub const DISK_DONE: u32 = KDATA + 0x4;
    /// Disk status captured from the controller by the handler.
    pub const DISK_ST: u32 = KDATA + 0x8;
    /// Saved `ipsw` across a syscall (so interrupts can nest over it).
    pub const SAVED_IPSW: u32 = KDATA + 0xC;
    /// Saved `iip` across a syscall.
    pub const SAVED_IIP: u32 = KDATA + 0x10;
    /// Interval-timer reload value in microseconds.
    pub const TICK_PERIOD: u32 = KDATA + 0x14;
    /// Interrupt-handler register save slots.
    pub const S_R28: u32 = KDATA + 0x18;
    /// Interrupt-handler register save slot.
    pub const S_R29: u32 = KDATA + 0x1C;
    /// Interrupt-handler register save slot.
    pub const S_R30: u32 = KDATA + 0x20;
    /// Interrupt-handler register save slot.
    pub const S_R31: u32 = KDATA + 0x24;
    /// Exit code stored by `SYS_EXIT`.
    pub const EXIT_CODE: u32 = KDATA + 0x28;
    /// Count of disk-driver retries caused by uncertain interrupts.
    pub const RETRIES: u32 = KDATA + 0x2C;
}

/// Syscall numbers (the `gate` immediate).
pub mod sys {
    /// Write the byte in `r4` to the console.
    pub const PUTC: u32 = 1;
    /// Return the time-of-day clock (µs, low word) in `r4`.
    pub const GETTIME: u32 = 2;
    /// Read block `r4` from disk into the buffer at physical `r5`.
    pub const READ_BLOCK: u32 = 3;
    /// Write the buffer at physical `r5` to disk block `r4`.
    pub const WRITE_BLOCK: u32 = 4;
    /// Terminate the workload with code `r4`.
    pub const EXIT: u32 = 5;
    /// Emit a harness marker carrying `r4`.
    pub const MARK: u32 = 6;
    /// Return the tick counter in `r4`.
    pub const GETTICKS: u32 = 7;
}

/// `diag` immediate codes understood by the embedding harness.
pub mod diag {
    /// Workload finished; `r4` carries the exit code / checksum.
    pub const EXIT: u32 = 1;
    /// Progress marker; `r4` carries a value.
    pub const MARK: u32 = 2;
    /// Kernel fatal trap; `r4` carries the fatal code.
    pub const FATAL: u32 = 3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kdata_is_r0_addressable() {
        // Every kdata slot must fit a signed 14-bit displacement.
        for a in [
            kdata::TICKS,
            kdata::DISK_DONE,
            kdata::DISK_ST,
            kdata::SAVED_IPSW,
            kdata::SAVED_IIP,
            kdata::TICK_PERIOD,
            kdata::S_R28,
            kdata::S_R29,
            kdata::S_R30,
            kdata::S_R31,
            kdata::EXIT_CODE,
            kdata::RETRIES,
        ] {
            assert!(a < 8192, "{a:#x} exceeds the r0-relative range");
            assert_eq!(a % 4, 0);
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // Layout invariants, deliberately spelled out.
    fn regions_do_not_overlap() {
        assert!(IVA_BASE + 11 * 32 <= KDATA);
        assert!(KDATA + 0x30 <= KERNEL_TEXT);
        assert!(
            KERNEL_TEXT < PAGE_TABLE,
            "kernel text region precedes page table"
        );
        assert!(PAGE_TABLE + 1024 * 4 <= KSTACK_TOP);
        assert!(KSTACK_TOP <= USER_TEXT);
        assert!(USER_TEXT < USER_DATA);
        assert!(USER_DATA < DMA_BUF);
        assert!((DMA_BUF as usize) + 8192 <= RAM_BYTES);
    }

    #[test]
    fn user_pages_cover_user_regions() {
        for addr in [USER_TEXT, USER_DATA, DMA_BUF, DMA_BUF + 8191] {
            let page = addr >> 12;
            assert!(
                (USER_FIRST_PAGE..USER_LAST_PAGE).contains(&page),
                "{addr:#x} not in user pages"
            );
        }
    }
}
