//! The miniature guest operating system.
//!
//! Plays the role HP-UX plays in the paper: an unmodified OS that boots,
//! fields timer interrupts, runs a user program at privilege 3, and
//! drives the disk through a driver that honours the IO1/IO2 contract
//! (§2.2) — in particular, it **retries any operation whose interrupt
//! reported an uncertain outcome**, which is the behaviour rule P7
//! exploits during failover.
//!
//! The kernel is oblivious to the hypervisor: it is assembled once and
//! runs unchanged on the bare machine and under replication, exactly as
//! the paper requires ("does not require modifying ... the operating
//! system").

use crate::layout::{
    kdata, IVA_BASE, KERNEL_TEXT, MAPPED_PAGES, PAGE_TABLE, USER_FIRST_PAGE, USER_LAST_PAGE,
    USER_TEXT,
};
use hvft_devices::mmio;

/// Tunables of the guest kernel.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Interval-timer period in microseconds (HP-UX ticked at 100 Hz;
    /// default 10 000 µs).
    pub tick_period_us: u32,
    /// Privileged clock reads performed per tick, modelling HP-UX's
    /// clock/callout processing. The paper's CPU workload implies ≈ 119
    /// hypervisor-simulated instructions per 10 ms tick (nsim ≈ 105 000
    /// over 880 ticks).
    pub tick_work: u32,
    /// Whether to arm the interval timer at boot.
    pub arm_timer: bool,
    /// Privileged instructions executed in the disk-driver path per
    /// operation, modelling the HP-UX raw-I/O path whose simulated
    /// instructions dominate the paper's `cpu(EL)` term (§4.2). Zero
    /// keeps the driver minimal (functional tests).
    pub io_work_priv: u32,
    /// Ordinary three-instruction loop iterations in the driver path
    /// per operation (buffer management, copies).
    pub io_work_ord: u32,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            tick_period_us: 10_000,
            tick_work: 119,
            arm_timer: true,
            io_work_priv: 0,
            io_work_ord: 0,
        }
    }
}

/// Emits the kernel assembly source. Append a user program (which must
/// `.org` itself at `USER_TEXT` (see [`crate::layout`]) and label its
/// entry `u_main`) and assemble the concatenation.
pub fn kernel_source(cfg: &KernelConfig) -> String {
    let io_base: u32 = 0xF000_0000;
    let disk_block = io_base + mmio::DISK_REG_BLOCK;
    let disk_status = io_base + mmio::DISK_REG_STATUS;
    let cons_tx = io_base + mmio::CONSOLE_REG_TX;
    let v = |n: u32| IVA_BASE + 32 * n;

    let mut s = String::new();
    s.push_str(&format!(
        "; ---- hvft guest kernel (generated) ----
.equ KD_TICKS,      {ticks:#x}
.equ KD_DISK_DONE,  {disk_done:#x}
.equ KD_DISK_ST,    {disk_st:#x}
.equ KD_SAVED_IPSW, {saved_ipsw:#x}
.equ KD_SAVED_IIP,  {saved_iip:#x}
.equ KD_TICK_PER,   {tick_per:#x}
.equ KD_S_R28,      {s_r28:#x}
.equ KD_S_R29,      {s_r29:#x}
.equ KD_S_R30,      {s_r30:#x}
.equ KD_S_R31,      {s_r31:#x}
.equ KD_EXIT,       {exit:#x}
.equ KD_RETRIES,    {retries:#x}
.equ PT_BASE,       {pt:#x}

.entry k_boot

; ---- interrupt vector table (32 bytes per vector) ----
.org {v1:#x}
    j k_fatal_illegal
.org {v2:#x}
    j k_fatal_priv
.org {v3:#x}
    j k_tlbmiss
.org {v4:#x}
    j k_fatal_access
.org {v5:#x}
    j k_fatal_align
.org {v6:#x}
    j k_fatal_arith
.org {v7:#x}
    j k_gate
.org {v8:#x}
    j k_fatal_brk
.org {v9:#x}
    j k_fatal_recovery
.org {v10:#x}
    j k_irq

.org {ktext:#x}
",
        ticks = kdata::TICKS,
        disk_done = kdata::DISK_DONE,
        disk_st = kdata::DISK_ST,
        saved_ipsw = kdata::SAVED_IPSW,
        saved_iip = kdata::SAVED_IIP,
        tick_per = kdata::TICK_PERIOD,
        s_r28 = kdata::S_R28,
        s_r29 = kdata::S_R29,
        s_r30 = kdata::S_R30,
        s_r31 = kdata::S_R31,
        exit = kdata::EXIT_CODE,
        retries = kdata::RETRIES,
        pt = PAGE_TABLE,
        v1 = v(1),
        v2 = v(2),
        v3 = v(3),
        v4 = v(4),
        v5 = v(5),
        v6 = v(6),
        v7 = v(7),
        v8 = v(8),
        v9 = v(9),
        v10 = v(10),
        ktext = KERNEL_TEXT,
    ));

    // ---- boot ----
    s.push_str(&format!(
        "k_boot:
    ; interrupt vector base
    addi r4, r0, {iva:#x}
    mtctl iva, r4
    ; build the page table: identity-map pages 0..{pages}, user bit on
    ; pages {ufirst:#x}..{ulast:#x}
    addi r5, r0, 0              ; vpn
    li   r6, PT_BASE
k_pt_loop:
    slli r7, r5, 12             ; pfn << 12
    ori  r7, r7, 0xF            ; V|R|W|X
    slti r8, r5, {ufirst:#x}
    bne  r8, r0, k_pt_nouser
    slti r8, r5, {ulast:#x}
    beq  r8, r0, k_pt_nouser
    ori  r7, r7, 0x10           ; U
k_pt_nouser:
    slli r9, r5, 2
    add  r9, r9, r6
    sw   r7, 0(r9)
    addi r5, r5, 1
    slti r8, r5, {pages}
    bne  r8, r0, k_pt_loop
    mtctl ptbr, r6
    ; enable timer + disk interrupts
    addi r4, r0, 3
    mtctl eiem, r4
    ; zero kernel counters
    sw r0, KD_TICKS(r0)
    sw r0, KD_DISK_DONE(r0)
    sw r0, KD_RETRIES(r0)
    sw r0, KD_EXIT(r0)
",
        iva = IVA_BASE,
        pages = MAPPED_PAGES,
        ufirst = USER_FIRST_PAGE,
        ulast = USER_LAST_PAGE,
    ));
    if cfg.arm_timer {
        s.push_str(&format!(
            "    li r4, {period}
    sw r4, KD_TICK_PER(r0)
    mtit r4
",
            period = cfg.tick_period_us
        ));
    }
    s.push_str(&format!(
        "    ; drop to the user program: cpl=3, interrupts on, translation on
    addi r4, r0, 0xF
    mtctl ipsw, r4
    li   r4, {utext:#x}
    mtctl iip, r4
    rfi

",
        utext = USER_TEXT
    ));

    // ---- fatal traps ----
    s.push_str(
        "k_fatal_illegal:
    addi r29, r0, 1
    b k_fatal
k_fatal_priv:
    addi r29, r0, 2
    b k_fatal
k_fatal_access:
    addi r29, r0, 3
    b k_fatal
k_fatal_align:
    addi r29, r0, 4
    b k_fatal
k_fatal_arith:
    addi r29, r0, 5
    b k_fatal
k_fatal_brk:
    addi r29, r0, 6
    b k_fatal
k_fatal_recovery:
    addi r29, r0, 7
    b k_fatal
k_fatal_nomap:
    addi r29, r0, 8
    b k_fatal
k_fatal_badsys:
    addi r29, r0, 9
k_fatal:
    sw   r29, KD_EXIT(r0)
    diag r29, 3
    halt

",
    );

    // ---- TLB miss handler (software-managed TLB, like PA-RISC) ----
    s.push_str(
        "k_tlbmiss:
    sw r30, KD_S_R30(r0)
    sw r31, KD_S_R31(r0)
    mfctl r30, traparg
    srli r31, r30, 12
    slli r31, r31, 2
    ori  r31, r31, PT_BASE
    lw   r31, 0(r31)
    andi r30, r31, 1
    beq  r30, r0, k_fatal_nomap
    mfctl r30, traparg
    tlbi r30, r31
    lw r30, KD_S_R30(r0)
    lw r31, KD_S_R31(r0)
    rfi

",
    );

    // ---- syscall (gate) dispatcher ----
    s.push_str(
        "k_gate:
    ; save the interrupted context: the disk driver re-enables
    ; interrupts while waiting, which overwrites ipsw/iip
    mfctl r30, ipsw
    sw    r30, KD_SAVED_IPSW(r0)
    mfctl r30, iip
    sw    r30, KD_SAVED_IIP(r0)
    mfctl r29, traparg
    addi r28, r0, 1
    beq  r29, r28, k_sys_putc
    addi r28, r0, 2
    beq  r29, r28, k_sys_gettime
    addi r28, r0, 3
    beq  r29, r28, k_sys_read
    addi r28, r0, 4
    beq  r29, r28, k_sys_write
    addi r28, r0, 5
    beq  r29, r28, k_sys_exit
    addi r28, r0, 6
    beq  r29, r28, k_sys_mark
    addi r28, r0, 7
    beq  r29, r28, k_sys_getticks
    b    k_fatal_badsys

k_sys_ret:
    lw r30, KD_SAVED_IPSW(r0)
    mtctl ipsw, r30
    lw r30, KD_SAVED_IIP(r0)
    mtctl iip, r30
    rfi

",
    );

    s.push_str(&format!(
        "k_sys_putc:
    li r26, {cons_tx:#x}
    sw r4, 0(r26)
    b  k_sys_ret

k_sys_gettime:
    mftod r4
    b  k_sys_ret

k_sys_getticks:
    lw r4, KD_TICKS(r0)
    b  k_sys_ret

k_sys_mark:
    diag r4, 2
    b  k_sys_ret

k_sys_exit:
    sw   r4, KD_EXIT(r0)
    diag r4, 1
    halt

",
        cons_tx = cons_tx
    ));

    // ---- disk driver: issue, wait for interrupt, retry on uncertain ----
    let mut driver_work = String::new();
    if cfg.io_work_priv > 0 {
        driver_work.push_str(&format!(
            "    ; driver path (privileged): models HP-UX's raw-I/O kernel work
    li r28, {n}
k_io_priv_loop:
    mftod r29
    addi r28, r28, -1
    bne  r28, r0, k_io_priv_loop
",
            n = cfg.io_work_priv
        ));
    }
    if cfg.io_work_ord > 0 {
        driver_work.push_str(&format!(
            "    ; driver path (ordinary): buffer management and copies
    li r28, {n}
k_io_ord_loop:
    xor  r29, r29, r28
    addi r28, r28, -1
    bne  r28, r0, k_io_ord_loop
",
            n = cfg.io_work_ord
        ));
    }
    s.push_str(&format!(
        "k_sys_read:
    addi r27, r0, {cmd_read}
    b    k_disk_op
k_sys_write:
    addi r27, r0, {cmd_write}
k_disk_op:
    li r26, {disk_block:#x}
{driver_work}k_disk_retry:
    sw r0,  KD_DISK_DONE(r0)
    sw r4,  0(r26)              ; block register
    sw r5,  4(r26)              ; DMA address register
    sw r27, 8(r26)              ; GO
    ssm 1                       ; take interrupts while waiting
k_disk_wait:
    lw  r28, KD_DISK_DONE(r0)
    beq r28, r0, k_disk_wait
    rsm 1
    lw   r28, KD_DISK_ST(r0)
    addi r29, r0, {st_done}
    beq  r28, r29, k_sys_ret
    ; IO2: uncertain outcome — the operation may or may not have been
    ; performed; repeat it (the environment tolerates repetition)
    lw   r28, KD_RETRIES(r0)
    addi r28, r28, 1
    sw   r28, KD_RETRIES(r0)
    b    k_disk_retry

",
        cmd_read = mmio::disk_cmd::READ,
        cmd_write = mmio::disk_cmd::WRITE,
        disk_block = disk_block,
        driver_work = driver_work,
        st_done = mmio::disk_status::DONE,
    ));

    // ---- external interrupt handler ----
    s.push_str(
        "k_irq:
    sw r28, KD_S_R28(r0)
    sw r29, KD_S_R29(r0)
    sw r30, KD_S_R30(r0)
    mfctl r30, eirr
    andi r29, r30, 1            ; interval timer?
    beq  r29, r0, k_irq_disk
    lw   r28, KD_TICKS(r0)
    addi r28, r28, 1
    sw   r28, KD_TICKS(r0)
    addi r29, r0, 1
    mtctl eirr, r29             ; acknowledge
",
    );
    if cfg.tick_work > 0 {
        s.push_str(&format!(
            "    ; clock/callout processing: {n} privileged clock reads
    li r28, {n}
k_tick_work:
    mftod r29
    addi r28, r28, -1
    bne  r28, r0, k_tick_work
",
            n = cfg.tick_work
        ));
    }
    if cfg.arm_timer {
        s.push_str(
            "    lw r28, KD_TICK_PER(r0)
    mtit r28                    ; re-arm
",
        );
    }
    s.push_str(&format!(
        "k_irq_disk:
    andi r29, r30, 2            ; disk?
    beq  r29, r0, k_irq_done
    li   r28, {disk_status:#x}
    lw   r29, 0(r28)            ; completion status from the controller
    sw   r29, KD_DISK_ST(r0)
    addi r28, r0, 1
    sw   r28, KD_DISK_DONE(r0)
    addi r29, r0, 2
    mtctl eirr, r29             ; acknowledge
k_irq_done:
    lw r28, KD_S_R28(r0)
    lw r29, KD_S_R29(r0)
    lw r30, KD_S_R30(r0)
    rfi

",
        disk_status = disk_status
    ));

    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvft_isa::asm::assemble;

    #[test]
    fn kernel_assembles() {
        let src = kernel_source(&KernelConfig::default());
        let prog = assemble(&src).unwrap_or_else(|e| panic!("kernel asm error: {e}"));
        assert_eq!(prog.entry, prog.symbol("k_boot").unwrap());
        assert!(prog.symbol("k_gate").is_some());
        assert!(prog.symbol("k_irq").is_some());
        assert!(prog.symbol("k_tlbmiss").is_some());
    }

    #[test]
    fn kernel_fits_below_page_table() {
        let src = kernel_source(&KernelConfig::default());
        let prog = assemble(&src).unwrap();
        for seg in &prog.segments {
            assert!(
                seg.end() <= crate::layout::PAGE_TABLE,
                "kernel segment ends at {:#x}, beyond the page table",
                seg.end()
            );
        }
    }

    #[test]
    fn no_tick_work_variant_assembles() {
        let cfg = KernelConfig {
            tick_work: 0,
            arm_timer: false,
            ..KernelConfig::default()
        };
        assert!(assemble(&kernel_source(&cfg)).is_ok());
    }

    #[test]
    fn vectors_land_in_ivt() {
        let src = kernel_source(&KernelConfig::default());
        let prog = assemble(&src).unwrap();
        // The first segment should start at the IVT, inside page 0.
        assert!(prog.segments[0].base >= IVA_BASE);
        assert!(prog.segments[0].base < KERNEL_TEXT);
    }
}
