//! A minimal, offline, in-tree stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! implements the subset of criterion's API the workspace's benches
//! use — [`Criterion::bench_function`], benchmark groups with
//! `sample_size`/`throughput`/`bench_with_input`, [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — with plain wall-clock timing and stdout reporting instead
//! of criterion's statistical machinery.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    /// (total duration, total iterations) accumulated by `iter`.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, running it enough times to smooth noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        std::hint::black_box(routine());
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            total += start.elapsed();
            iters += 1;
        }
        self.measured = Some((total, iters));
    }
}

fn report(label: &str, measured: Option<(Duration, u64)>, throughput: Option<Throughput>) {
    let Some((total, iters)) = measured else {
        println!("{label:<40} (no measurement)");
        return;
    };
    let per_iter = total.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:.3e} elem/s", n as f64 / per_iter),
        Some(Throughput::Bytes(n)) => format!("  {:.3e} B/s", n as f64 / per_iter),
        None => String::new(),
    };
    println!(
        "{label:<40} {:>12.3?}/iter{rate}",
        Duration::from_secs_f64(per_iter)
    );
}

/// A named group of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            measured: None,
        };
        routine(&mut b);
        let label = format!("{}/{}", self.name, id.into_label());
        report(&label, b.measured, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            measured: None,
        };
        routine(&mut b, input);
        let label = format!("{}/{}", self.name, id.into_label());
        report(&label, b.measured, self.throughput);
        self
    }

    /// Ends the group (reporting happens eagerly; this is a no-op).
    pub fn finish(&mut self) {}
}

/// Conversion of the various id forms benches pass to `bench_function`.
pub trait IntoBenchmarkLabel {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.name
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_samples: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples();
        BenchmarkGroup {
            name: name.into(),
            samples,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples(),
            measured: None,
        };
        routine(&mut b);
        report(&id.into_label(), b.measured, None);
        self
    }

    fn samples(&self) -> usize {
        if self.default_samples == 0 {
            10
        } else {
            self.default_samples
        }
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_without_panicking() {
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(3)
            .throughput(Throughput::Elements(10))
            .bench_function(BenchmarkId::new("f", 42), |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| x * x)
        });
        g.finish();
    }
}
