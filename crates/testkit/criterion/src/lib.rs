//! A minimal, offline, in-tree stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! implements the subset of criterion's API the workspace's benches
//! use — [`Criterion::bench_function`], benchmark groups with
//! `sample_size`/`throughput`/`bench_with_input`, [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — with plain wall-clock timing and stdout reporting instead
//! of criterion's statistical machinery.

use std::time::{Duration, Instant};

/// One completed benchmark measurement, recorded for machine-readable
/// output ([`Criterion::save_json`]).
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Full label (`group/function`).
    pub label: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Elements processed per iteration, when declared via
    /// [`Throughput::Elements`].
    pub elements_per_iter: Option<u64>,
    /// Bytes processed per iteration, when declared via
    /// [`Throughput::Bytes`].
    pub bytes_per_iter: Option<u64>,
    /// Free-form numeric annotations attached via
    /// [`BenchmarkGroup::annotate`] — serialized as extra JSON fields
    /// so benches can record context (worker utilization, effective
    /// parallelism) alongside the timing.
    pub extra: Vec<(String, f64)>,
}

impl Measurement {
    fn json(&self) -> String {
        // Labels come from bench source code; escape the two JSON
        // specials anyway.
        let label = self.label.replace('\\', "\\\\").replace('"', "\\\"");
        let mut s = format!(
            "{{\"label\": \"{label}\", \"ns_per_iter\": {:.3}",
            self.ns_per_iter
        );
        if let Some(n) = self.elements_per_iter {
            s.push_str(&format!(
                ", \"elements_per_iter\": {n}, \"ns_per_element\": {:.3}, \"elements_per_sec\": {:.1}",
                self.ns_per_iter / n as f64,
                n as f64 / (self.ns_per_iter * 1e-9)
            ));
        }
        if let Some(n) = self.bytes_per_iter {
            s.push_str(&format!(
                ", \"bytes_per_iter\": {n}, \"bytes_per_sec\": {:.1}",
                n as f64 / (self.ns_per_iter * 1e-9)
            ));
        }
        for (key, value) in &self.extra {
            let key = key.replace('\\', "\\\\").replace('"', "\\\"");
            s.push_str(&format!(", \"{key}\": {value:.4}"));
        }
        s.push('}');
        s
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    /// (total duration, total iterations) accumulated by `iter`.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, running it enough times to smooth noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        std::hint::black_box(routine());
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            total += start.elapsed();
            iters += 1;
        }
        self.measured = Some((total, iters));
    }
}

fn report(
    label: &str,
    measured: Option<(Duration, u64)>,
    throughput: Option<Throughput>,
) -> Option<Measurement> {
    let Some((total, iters)) = measured else {
        println!("{label:<40} (no measurement)");
        return None;
    };
    let per_iter = total.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:.3e} elem/s", n as f64 / per_iter),
        Some(Throughput::Bytes(n)) => format!("  {:.3e} B/s", n as f64 / per_iter),
        None => String::new(),
    };
    println!(
        "{label:<40} {:>12.3?}/iter{rate}",
        Duration::from_secs_f64(per_iter)
    );
    Some(Measurement {
        label: label.to_owned(),
        ns_per_iter: per_iter * 1e9,
        elements_per_iter: match throughput {
            Some(Throughput::Elements(n)) => Some(n),
            _ => None,
        },
        bytes_per_iter: match throughput {
            Some(Throughput::Bytes(n)) => Some(n),
            _ => None,
        },
        extra: Vec::new(),
    })
}

/// A named group of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            measured: None,
        };
        routine(&mut b);
        let label = format!("{}/{}", self.name, id.into_label());
        if let Some(m) = report(&label, b.measured, self.throughput) {
            self.criterion.measurements.push(m);
        }
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            measured: None,
        };
        routine(&mut b, input);
        let label = format!("{}/{}", self.name, id.into_label());
        if let Some(m) = report(&label, b.measured, self.throughput) {
            self.criterion.measurements.push(m);
        }
        self
    }

    /// Attaches a numeric annotation to the most recently recorded
    /// measurement (a no-op if nothing has been recorded yet). The
    /// annotation is serialized as an extra JSON field on that
    /// measurement's row in [`Criterion::save_json`] output.
    pub fn annotate(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        if let Some(m) = self.criterion.measurements.last_mut() {
            m.extra.push((key.into(), value));
        }
        self
    }

    /// Ends the group (reporting happens eagerly; this is a no-op).
    pub fn finish(&mut self) {}
}

/// Conversion of the various id forms benches pass to `bench_function`.
pub trait IntoBenchmarkLabel {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.name
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_samples: usize,
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples();
        BenchmarkGroup {
            name: name.into(),
            samples,
            throughput: None,
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples(),
            measured: None,
        };
        routine(&mut b);
        if let Some(m) = report(&id.into_label(), b.measured, None) {
            self.measurements.push(m);
        }
        self
    }

    /// Every measurement recorded so far, in execution order.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Writes the recorded measurements as a JSON document — the
    /// machine-readable bench output CI archives as an artifact.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let entries: Vec<String> = self
            .measurements
            .iter()
            .map(|m| format!("    {}", m.json()))
            .collect();
        let doc = format!(
            "{{\n  \"benchmarks\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(path, doc)
    }

    fn samples(&self) -> usize {
        if self.default_samples == 0 {
            10
        } else {
            self.default_samples
        }
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_are_recorded_and_serialized() {
        let mut c = Criterion::default();
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2)
            .throughput(Throughput::Elements(100))
            .bench_function("counted", |b| b.iter(|| 2 * 2));
        g.finish();
        assert_eq!(c.measurements().len(), 2);
        assert_eq!(c.measurements()[0].label, "plain");
        assert_eq!(c.measurements()[1].label, "grp/counted");
        assert_eq!(c.measurements()[1].elements_per_iter, Some(100));
        let path = std::env::temp_dir().join("hvft_criterion_shim_test.json");
        c.save_json(&path).unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(doc.contains("\"label\": \"grp/counted\""));
        assert!(doc.contains("\"elements_per_iter\": 100"));
        assert!(doc.contains("\"ns_per_element\":"));
        assert!(doc.starts_with("{\n  \"benchmarks\": ["));
    }

    #[test]
    fn annotations_attach_to_the_last_measurement() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2)
                .bench_function("annotated", |b| b.iter(|| 1 + 1));
            g.annotate("utilization", 0.75)
                .annotate("effective_workers", 4.0);
        }
        assert_eq!(
            c.measurements()[0].extra,
            vec![
                ("utilization".to_owned(), 0.75),
                ("effective_workers".to_owned(), 4.0)
            ]
        );
        let path = std::env::temp_dir().join("hvft_criterion_shim_annotate.json");
        c.save_json(&path).unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(doc.contains("\"utilization\": 0.7500"));
        assert!(doc.contains("\"effective_workers\": 4.0000"));
    }

    #[test]
    fn bench_function_reports_without_panicking() {
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(3)
            .throughput(Throughput::Elements(10))
            .bench_function(BenchmarkId::new("f", 42), |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| x * x)
        });
        g.finish();
    }
}
