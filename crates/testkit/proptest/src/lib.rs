//! A minimal, offline, in-tree stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so this shim implements exactly the property-testing API surface the
//! workspace uses:
//!
//! - the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header) generating one `#[test]` per property;
//! - [`strategy::Strategy`] with `prop_map`, strategies for integer and
//!   float ranges, tuples, [`strategy::Just`], [`arbitrary::any`],
//!   `prop::collection::vec`, `prop::bool::weighted`, and the
//!   [`prop_oneof!`] union;
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assume!` and
//!   [`test_runner::TestCaseError`].
//!
//! Semantics differ from real proptest in two deliberate ways: inputs
//! are drawn from a deterministic per-test RNG (seeded from the test's
//! module path and name) so runs are exactly reproducible, and failing
//! cases are reported without shrinking. Neither difference changes
//! what a passing suite guarantees.

pub mod test_runner {
    /// Deterministic splitmix64 generator used to sample all inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary label (e.g. the test's full name).
        pub fn from_label(label: &str) -> Self {
            // FNV-1a over the label, then a splitmix scramble.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
            // irrelevant for test-input generation.
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!` and should be resampled.
        Reject(String),
        /// The property failed for this case.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed case with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (assumption-violating) case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration; only `cases` is meaningful in the shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
        /// Cap on `prop_assume!` rejections before the run aborts.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn dyn_value(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A type-erased [`Strategy`].
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.dyn_value(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice between type-erased alternatives (the `prop_oneof!` macro).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// A union over the given alternatives; must be non-empty.
        pub fn new(alts: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!alts.is_empty(), "prop_oneof! needs at least one arm");
            Union(alts)
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union(self.0.clone())
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].new_value(rng)
        }
    }

    macro_rules! unsigned_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    unsigned_range_strategies!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }
    signed_range_strategies!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident $i:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Namespaced strategy constructors (`prop::collection::vec`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Size bounds for generated collections.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + rng.below(span + 1) as usize;
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }

        /// Generates vectors of `element` values with a length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// A biased boolean: `true` with probability `p`.
        #[derive(Clone, Debug)]
        pub struct Weighted(f64);

        impl Strategy for Weighted {
            type Value = bool;
            fn new_value(&self, rng: &mut TestRng) -> bool {
                rng.next_f64() < self.0
            }
        }

        /// `true` with probability `p` (clamped to `[0, 1]`).
        pub fn weighted(p: f64) -> Weighted {
            Weighted(p.clamp(0.0, 1.0))
        }
    }
}

/// The glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Uniform choice among strategy alternatives of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($alt)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Rejects the current case (resampled without counting) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `fn` body runs once per sampled input
/// set, `config.cases` accepted times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_label(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.max_global_rejects,
                            "proptest '{}': too many prop_assume! rejections",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}",
                            stringify!($name),
                            accepted,
                            msg
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_label("x");
        let mut b = TestRng::from_label("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_label("below");
        for n in 1..50u64 {
            for _ in 0..20 {
                assert!(rng.below(n) < n);
            }
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i32..=5, z in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn maps_and_unions_compose(
            v in prop::collection::vec(prop_oneof![Just(1u32), 10u32..20], 1..8),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x == 1 || (10..20).contains(&x)));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
