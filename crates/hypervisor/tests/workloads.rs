//! Every registered workload must run to a clean, deterministic halt on
//! the bare machine — the baseline every replicated scenario divides by.

use hvft_guest::workload::registry;
use hvft_guest::Workload;
use hvft_hypervisor::bare::{BareExit, BareHost};
use hvft_hypervisor::cost::CostModel;

#[test]
fn every_registered_workload_halts_on_bare_hardware() {
    for w in registry() {
        let image = w.image().unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        let mut host = BareHost::new(
            &image,
            CostModel::hp9000_720(),
            hvft_guest::layout::RAM_BYTES,
            128,
            7,
        );
        let r = host.run(500_000_000);
        match r.exit {
            BareExit::Halted { code: Some(_) } => {}
            other => panic!("{}: {other:?} after {} insns", w.name(), r.retired),
        }
    }
}

#[test]
fn workload_checksums_are_deterministic() {
    for w in registry() {
        let image = w.image().unwrap();
        let run = || {
            let mut host = BareHost::new(
                &image,
                CostModel::hp9000_720(),
                hvft_guest::layout::RAM_BYTES,
                128,
                7,
            );
            let r = host.run(500_000_000);
            match r.exit {
                BareExit::Halted { code } => (code, r.retired),
                other => panic!("{}: {other:?}", w.name()),
            }
        };
        assert_eq!(run(), run(), "{} must be bit-deterministic", w.name());
    }
}

#[test]
fn sieve_checksum_counts_primes() {
    // 303 primes below 2000: the count lands in the checksum's high half.
    let w = hvft_guest::workload::Sieve {
        limit: 2_000,
        ..Default::default()
    };
    let image = w.image().unwrap();
    let mut host = BareHost::new(
        &image,
        CostModel::hp9000_720(),
        hvft_guest::layout::RAM_BYTES,
        16,
        0,
    );
    let r = host.run(500_000_000);
    let code = match r.exit {
        BareExit::Halted { code: Some(c) } => c,
        other => panic!("{other:?}"),
    };
    // The mix xors the rotated sum into count << 16; primes below 2000
    // sum to 277050, so the top half is count ^ (sum-mix high bits) —
    // recompute the reference in Rust instead of trusting magic values.
    let mut is_comp = vec![false; 2001];
    let (mut count, mut sum_mix, mut n) = (0u32, 0u32, 0u32);
    for p in 2..=2000u32 {
        if !is_comp[p as usize] {
            let mut m = p * p;
            while m <= 2000 {
                is_comp[m as usize] = true;
                m += p;
            }
        }
    }
    for p in 2..=2000u32 {
        if !is_comp[p as usize] {
            n += 1;
            sum_mix = sum_mix.wrapping_add(p).rotate_left(1) ^ n;
            count += 1;
        }
    }
    assert_eq!(count, 303);
    assert_eq!(code, sum_mix ^ (count << 16));
}
