//! Integration tests of the hypervisor's privilege-level machinery —
//! the §3.1 story: guest kernel at real level 1, user at 3, and the
//! leaky instructions (`jal`, `probe`, `gate`) behaving identically on
//! bare hardware and under the hypervisor *as far as a well-behaved
//! guest can tell*.

use hvft_hypervisor::bare::{BareExit, BareHost};
use hvft_hypervisor::cost::CostModel;
use hvft_hypervisor::hvguest::{HvConfig, HvEvent, HvGuest};
use hvft_isa::asm::assemble;
use hvft_sim::time::SimDuration;

/// Assembles a bare kernel-only program (no user mode, no paging).
fn tiny(src: &str) -> hvft_isa::program::Program {
    assemble(src).unwrap_or_else(|e| panic!("asm: {e}"))
}

fn run_hv(image: &hvft_isa::program::Program, max_epochs: u32) -> (HvGuest, Vec<HvEvent>) {
    let mut g = HvGuest::new(image, CostModel::functional(), HvConfig::default());
    let mut events = Vec::new();
    for _ in 0..max_epochs {
        let ev = g.run(SimDuration::from_secs(1));
        events.push(ev);
        match ev {
            HvEvent::EpochEnd => g.begin_epoch(),
            HvEvent::Halted | HvEvent::Diag { .. } => break,
            HvEvent::MmioRead { .. } => g.finish_mmio_read(0),
            HvEvent::MmioWrite { .. } => g.finish_mmio_write(),
            other => panic!("unexpected {other:?}"),
        }
    }
    (g, events)
}

#[test]
fn guest_kernel_runs_at_real_level_1() {
    let image = tiny(
        ".org 0x1000
        boot:
            addi r4, r0, 5
            halt",
    );
    let (g, events) = run_hv(&image, 10);
    assert!(matches!(events.last(), Some(HvEvent::Halted)));
    // The halt was *simulated* (trapped as privileged at level 1), not
    // executed at level 0.
    assert!(g.stats().simulated >= 1);
    assert_eq!(g.cpu.psw.cpl, hvft_hypervisor::GUEST_KERNEL_LEVEL);
    assert_eq!(g.cpu.reg(hvft_isa::reg::Reg::of(4)), 5);
}

#[test]
fn jal_link_bits_differ_between_bare_and_hypervised() {
    // The virtualization hole itself: the return address's low bits hold
    // the REAL privilege level — 0 on bare hardware, 1 under the
    // hypervisor. A guest that inspected them could detect the
    // hypervisor ("although if it looked, it could", §3.1).
    let src = ".org 0x1000
        boot:
            jal r5, next
        next:
            halt";
    let image = tiny(src);

    let mut bare = BareHost::new(&image, CostModel::hp9000_720(), 1 << 16, 4, 0);
    let br = bare.run(100);
    assert!(matches!(br.exit, BareExit::Halted { .. }));
    let bare_link = bare.cpu.reg(hvft_isa::reg::Reg::of(5));

    let (g, _) = run_hv(&image, 4);
    let hv_link = g.cpu.reg(hvft_isa::reg::Reg::of(5));

    assert_eq!(bare_link & 3, 0, "bare kernel runs at level 0");
    assert_eq!(hv_link & 3, 1, "hypervised kernel runs at real level 1");
    assert_eq!(
        bare_link & !3,
        hv_link & !3,
        "the address part is identical"
    );
}

#[test]
fn mfctl_rctr_is_virtualized_to_zero() {
    // The recovery counter belongs to the hypervisor; the guest reads 0
    // and its writes are discarded.
    let image = tiny(
        ".org 0x1000
        boot:
            addi r4, r0, 99
            mtctl rctr, r4
            mfctl r5, rctr
            halt",
    );
    let (g, _) = run_hv(&image, 10);
    assert_eq!(g.cpu.reg(hvft_isa::reg::Reg::of(5)), 0);
}

#[test]
fn environment_reads_are_deterministic_in_instruction_count() {
    // Two mftod reads separated by a fixed number of instructions must
    // differ by exactly that instruction count at 50 MIPS — virtual time
    // is derived from the retired count, which both replicas share.
    let image = tiny(
        ".org 0x1000
        boot:
            mftod r5
            nop
            nop
            nop
            nop
            nop
            nop
            nop
            nop
            nop
            nop
            mftod r6
            halt",
    );
    let (g, _) = run_hv(&image, 10);
    let t0 = g.cpu.reg(hvft_isa::reg::Reg::of(5));
    let t1 = g.cpu.reg(hvft_isa::reg::Reg::of(6));
    // 11 retired instructions between the two reads (10 nops + the first
    // mftod itself), at 50 insns per µs → the µs clock may advance 0 or
    // round, but the relationship must be exact and reproducible.
    let (g2, _) = run_hv(&image, 10);
    assert_eq!(t0, g2.cpu.reg(hvft_isa::reg::Reg::of(5)));
    assert_eq!(t1, g2.cpu.reg(hvft_isa::reg::Reg::of(6)));
    assert!(t1 >= t0);
}

#[test]
fn interval_timer_roundtrip_via_simulation() {
    let image = tiny(
        ".org 0x1000
        boot:
            li   r4, 500        ; arm for 500 µs
            mtit r4
            mfit r5             ; immediately read back
            halt",
    );
    let (g, _) = run_hv(&image, 10);
    let remaining = g.cpu.reg(hvft_isa::reg::Reg::of(5));
    assert!((499..=500).contains(&remaining), "remaining = {remaining}");
    assert!(g.vclock.timer_armed());
}

#[test]
fn epoch_accounting_is_exact_across_simulated_instructions() {
    // Privileged instructions retire through the simulation path; they
    // must still count toward the epoch length exactly once.
    let image = tiny(
        ".org 0x1000
        boot:
            mftod r4
            mftod r4
            mftod r4
            nop
            nop
        spin:
            b spin",
    );
    let mut g = HvGuest::new(
        &image,
        CostModel::functional(),
        HvConfig {
            epoch_len: 100,
            ..HvConfig::default()
        },
    );
    let ev = g.run(SimDuration::from_secs(1));
    assert_eq!(ev, HvEvent::EpochEnd);
    assert_eq!(
        g.cpu.retired(),
        100,
        "epoch must be exactly 100 retired instructions"
    );
}
