//! The narrow guest-control surface the replication protocols need.
//!
//! The protocol engines in `hvft-core` never see a full [`HvGuest`]:
//! their effects touch exactly five things — the epoch counter, the
//! state hash, interrupt assertion, the virtual clock, and the
//! boundary-delimiting recovery counter. [`GuestCtl`] names that
//! surface, so the engine-effect applier is checked against what the
//! protocols are *allowed* to do rather than everything a hypervised
//! guest can do, and so tests can drive the protocol layer with mock
//! guests.

use crate::hvguest::HvGuest;
use crate::vclock::VClock;

/// What replica coordination may do to a guest.
///
/// Rules P1–P7 only ever: read the epoch number, hash the VM state at a
/// boundary, assert interrupt bits (at boundaries), ship and assign the
/// virtual clock (`[Tme]`), check interval-timer expiry "based on Tme",
/// and re-arm the recovery counter for the next epoch.
pub trait GuestCtl {
    /// Current epoch number (completed epochs).
    fn epoch(&self) -> u64;

    /// Hash of the complete VM state (lockstep checking).
    fn state_hash(&self) -> u64;

    /// Asserts external-interrupt bits in the guest's `eirr`.
    fn assert_irq(&mut self, bits: u32);

    /// Snapshot of the virtual clock for a `[Tme_p]` message.
    fn vclock_snapshot(&self) -> VClock;

    /// `Tme_b := Tme_p` (rule P5).
    fn vclock_assign(&mut self, vc: VClock);

    /// If the interval timer expired at the current instruction-stream
    /// point, disarms it and reports `true` (boundary timer delivery).
    fn timer_expired(&mut self) -> bool;

    /// Re-arms the recovery counter: the next epoch begins.
    fn begin_epoch(&mut self);
}

impl GuestCtl for HvGuest {
    fn epoch(&self) -> u64 {
        HvGuest::epoch(self)
    }

    fn state_hash(&self) -> u64 {
        HvGuest::state_hash(self)
    }

    fn assert_irq(&mut self, bits: u32) {
        HvGuest::assert_irq(self, bits)
    }

    fn vclock_snapshot(&self) -> VClock {
        self.vclock.snapshot()
    }

    fn vclock_assign(&mut self, vc: VClock) {
        self.vclock.assign(vc)
    }

    fn timer_expired(&mut self) -> bool {
        let retired = self.cpu.retired();
        self.vclock.take_expired_timer(retired)
    }

    fn begin_epoch(&mut self) {
        HvGuest::begin_epoch(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::hvguest::{HvConfig, HvEvent};
    use hvft_guest::{build_image, dhrystone_source, KernelConfig};
    use hvft_sim::time::SimDuration;

    #[test]
    fn hvguest_implements_the_narrow_surface() {
        let image = build_image(&KernelConfig::default(), &dhrystone_source(20, 0)).unwrap();
        let mut g = HvGuest::new(&image, CostModel::functional(), HvConfig::default());
        fn through_trait(g: &mut dyn GuestCtl) -> (u64, u64) {
            let e = g.epoch();
            let h = g.state_hash();
            let snap = g.vclock_snapshot();
            g.vclock_assign(snap);
            (e, h)
        }
        let (e0, h0) = through_trait(&mut g);
        assert_eq!(e0, 0);
        // The trait calls themselves must not perturb the VM state.
        assert_eq!(h0, g.state_hash());
        // Run to the first boundary and advance through the trait.
        match g.run(SimDuration::from_secs(10)) {
            HvEvent::EpochEnd => {}
            HvEvent::Halted | HvEvent::Diag { .. } => return,
            other => panic!("unexpected {other:?}"),
        }
        let before = GuestCtl::epoch(&g);
        GuestCtl::begin_epoch(&mut g);
        assert_eq!(GuestCtl::epoch(&g), before + 1);
    }
}
