//! The bare machine: the guest running directly on the (simulated)
//! hardware, with no hypervisor and no replication.
//!
//! This is the paper's baseline: "a workload that requires N seconds on
//! bare hardware" — every normalized-performance figure divides by the
//! completion time this host measures. Environment instructions execute
//! against the host's real (simulated) clock, traps vector straight into
//! the guest, and devices interrupt as soon as they complete.

use crate::cost::CostModel;
use hvft_devices::console::Console;
use hvft_devices::disk::{Disk, DiskCommand, DiskStatus, BLOCK_SIZE};
use hvft_devices::mmio;
use hvft_isa::program::Program;
use hvft_machine::cpu::{Cpu, EnvOp, Exit, LoadProgram};
use hvft_machine::exec::{ExecStats, ExecTier};
use hvft_machine::mem::{Memory, IO_BASE};
use hvft_machine::tlb::TlbReplacement;
use hvft_machine::trap::irq;
use hvft_sim::time::{SimDuration, SimTime};

/// Why a bare run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BareExit {
    /// The guest executed `halt`; the exit code is whatever `SYS_EXIT`
    /// stored (`diag` code 1), if any.
    Halted {
        /// Workload exit value (from the last `diag` with code 1).
        code: Option<u32>,
    },
    /// The instruction limit was reached (runaway guard).
    InstructionLimit,
    /// The guest idled with no wake-up source armed.
    Stuck,
}

/// Result of a completed bare run.
#[derive(Clone, Debug)]
pub struct BareRunResult {
    /// Why the run ended.
    pub exit: BareExit,
    /// Total simulated time (the paper's `RT` for this workload).
    pub time: SimDuration,
    /// Guest instructions retired.
    pub retired: u64,
    /// `diag` markers observed, in order, as `(value, code)`.
    pub diags: Vec<(u32, u32)>,
}

/// The bare host: one CPU, RAM, a private disk and console.
pub struct BareHost {
    /// The processor.
    pub cpu: Cpu,
    /// RAM.
    pub mem: Memory,
    /// The disk (same model the replicated system shares).
    pub disk: Disk,
    /// The console.
    pub console: Console,
    cost: CostModel,
    now: SimTime,
    timer_fires_at: Option<SimTime>,
    disk_done_at: Option<SimTime>,
    reg_block: u32,
    reg_addr: u32,
    disk_status_reg: u32,
    diags: Vec<(u32, u32)>,
    exit_code: Option<u32>,
    disk_blocks: u32,
    seed: u64,
    exec_tier: ExecTier,
}

impl BareHost {
    /// Boots `image` on bare hardware with a disk of `disk_blocks`
    /// blocks.
    pub fn new(
        image: &Program,
        cost: CostModel,
        ram_bytes: usize,
        disk_blocks: u32,
        seed: u64,
    ) -> Self {
        let mut cpu = Cpu::new(64, TlbReplacement::Random, seed);
        let mut mem = Memory::new(ram_bytes);
        image.load_into_cpu(&mut cpu, &mut mem);
        BareHost {
            cpu,
            mem,
            disk: Disk::new(disk_blocks, seed),
            console: Console::new(),
            cost,
            now: SimTime::ZERO,
            timer_fires_at: None,
            disk_done_at: None,
            reg_block: 0,
            reg_addr: 0,
            disk_status_reg: mmio::disk_status::IDLE,
            diags: Vec::new(),
            exit_code: None,
            disk_blocks,
            seed,
            exec_tier: ExecTier::default(),
        }
    }

    /// Selects the execution engine (default: predecoded blocks). The
    /// choice survives [`BareHost::reset`], so benches that re-boot the
    /// host per iteration keep measuring the selected tier.
    pub fn set_exec_tier(&mut self, tier: ExecTier) {
        self.exec_tier = tier;
        self.cpu.set_exec_tier(tier);
    }

    /// The selected execution engine.
    pub fn exec_tier(&self) -> ExecTier {
        self.exec_tier
    }

    /// The CPU's per-tier execution counters for this boot.
    pub fn exec_stats(&self) -> ExecStats {
        self.cpu.exec_stats()
    }

    /// Re-boots `image` on this host in place, reusing the RAM
    /// allocation. After `reset` the host is observably identical to a
    /// freshly constructed one — benches use this so repeated runs
    /// measure execution, not allocation.
    pub fn reset(&mut self, image: &Program) {
        self.cpu = Cpu::new(64, TlbReplacement::Random, self.seed);
        self.cpu.set_exec_tier(self.exec_tier);
        self.mem.reset();
        image.load_into_cpu(&mut self.cpu, &mut self.mem);
        self.disk = Disk::new(self.disk_blocks, self.seed);
        self.console = Console::new();
        self.now = SimTime::ZERO;
        self.timer_fires_at = None;
        self.disk_done_at = None;
        self.reg_block = 0;
        self.reg_addr = 0;
        self.disk_status_reg = mmio::disk_status::IDLE;
        self.diags.clear();
        self.exit_code = None;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Instructions the per-step path would retire before the earliest
    /// pending timer/disk event fires: events fire when `now` reaches
    /// their deadline, and `now` advances by `cost.insn` per retired
    /// instruction. `u64::MAX` when nothing is pending.
    fn insns_until_next_event(&self) -> u64 {
        let next = [self.timer_fires_at, self.disk_done_at]
            .into_iter()
            .flatten()
            .min();
        let Some(t) = next else {
            return u64::MAX;
        };
        if t <= self.now {
            return 0;
        }
        let insn = self.cost.insn.as_nanos();
        if insn == 0 {
            return u64::MAX;
        }
        (t - self.now).as_nanos().div_ceil(insn)
    }

    fn poll_events(&mut self) {
        if let Some(t) = self.timer_fires_at {
            if t <= self.now {
                self.timer_fires_at = None;
                self.cpu.raise_irq(irq::TIMER);
            }
        }
        if let Some(t) = self.disk_done_at {
            if t <= self.now {
                self.disk_done_at = None;
                self.complete_disk();
            }
        }
    }

    fn complete_disk(&mut self) {
        let pending_cmd = self
            .disk
            .pending()
            .map(|p| p.cmd)
            .expect("disk completion without op");
        let status = match pending_cmd {
            DiskCommand::Write => {
                let data = self.mem.read_bytes(self.reg_addr, BLOCK_SIZE).to_vec();
                self.disk.complete_write(&data)
            }
            DiskCommand::Read => {
                let (status, data) = self.disk.complete_read();
                if let Some(d) = data {
                    self.mem.write_bytes(self.reg_addr, &d);
                }
                status
            }
        };
        self.disk_status_reg = match status {
            DiskStatus::Complete => mmio::disk_status::DONE,
            DiskStatus::Uncertain => mmio::disk_status::UNCERTAIN,
        };
        self.cpu.raise_irq(irq::DISK);
    }

    fn mmio_read(&mut self, paddr: u32) -> u32 {
        match paddr.wrapping_sub(IO_BASE) {
            mmio::DISK_REG_STATUS => self.disk_status_reg,
            mmio::DISK_REG_BLOCK => self.reg_block,
            mmio::DISK_REG_ADDR => self.reg_addr,
            mmio::CONSOLE_REG_STATUS => 1,
            _ => 0,
        }
    }

    fn mmio_write(&mut self, paddr: u32, value: u32) {
        match paddr.wrapping_sub(IO_BASE) {
            mmio::DISK_REG_BLOCK => self.reg_block = value,
            mmio::DISK_REG_ADDR => self.reg_addr = value,
            mmio::DISK_REG_CMD => {
                let cmd = match value {
                    mmio::disk_cmd::READ => DiskCommand::Read,
                    mmio::disk_cmd::WRITE => DiskCommand::Write,
                    _ => return,
                };
                match self.disk.submit(self.now, 0, cmd, self.reg_block) {
                    Ok(dur) => {
                        self.disk_status_reg = mmio::disk_status::BUSY;
                        self.disk_done_at = Some(self.now + dur);
                    }
                    Err(_) => {
                        // Controller rejects: report uncertainty so the
                        // driver retries rather than wedging.
                        self.disk_status_reg = mmio::disk_status::UNCERTAIN;
                        self.cpu.raise_irq(irq::DISK);
                    }
                }
            }
            mmio::CONSOLE_REG_TX => self.console.write(self.now, 0, value as u8),
            _ => {}
        }
    }

    /// Runs the guest to completion (or the instruction limit).
    ///
    /// Execution goes through the predecoded-block engine
    /// ([`Cpu::run`]), entered with a budget clamped to the next
    /// timer/disk deadline so devices interrupt at exactly the same
    /// instruction as single-stepping would.
    pub fn run(&mut self, max_insns: u64) -> BareRunResult {
        let start = self.now;
        let result_exit = loop {
            if self.cpu.retired() >= max_insns {
                break BareExit::InstructionLimit;
            }
            self.poll_events();
            let retired_before = self.cpu.retired();
            let budget = (max_insns - retired_before)
                .min(self.insns_until_next_event())
                .max(1);
            let exit = self.cpu.run(&mut self.mem, budget);
            match exit {
                Exit::Retired => {}
                Exit::Trap(t) => {
                    // Real hardware vectors every trap through the IVT.
                    self.cpu.deliver_trap(t);
                }
                Exit::Env(op) => match op {
                    EnvOp::ReadTod { rd } => {
                        let us = self.now.as_nanos() / 1000;
                        self.cpu.complete_env_read(rd, us as u32);
                    }
                    EnvOp::ReadTodHigh { rd } => {
                        let us = self.now.as_nanos() / 1000;
                        self.cpu.complete_env_read(rd, (us >> 32) as u32);
                    }
                    EnvOp::SetTimer { value } => {
                        self.timer_fires_at =
                            Some(self.now + SimDuration::from_micros(u64::from(value)));
                        self.cpu.complete_env_effect();
                    }
                    EnvOp::ReadTimer { rd } => {
                        let rem = match self.timer_fires_at {
                            Some(t) if t > self.now => ((t - self.now).as_nanos() / 1000) as u32,
                            _ => 0,
                        };
                        self.cpu.complete_env_read(rd, rem);
                    }
                },
                Exit::MmioRead { paddr, width, rd } => {
                    let v = self.mmio_read(paddr);
                    self.cpu.complete_mmio_read(rd, width, v);
                }
                Exit::MmioWrite { paddr, value, .. } => {
                    self.mmio_write(paddr, value);
                    self.cpu.complete_env_effect();
                }
                Exit::Diag { value, code } => {
                    self.diags.push((value, code));
                    if code == hvft_guest::layout::diag::EXIT {
                        self.exit_code = Some(value);
                    }
                    self.cpu.complete_env_effect();
                }
                Exit::Halt => {
                    break BareExit::Halted {
                        code: self.exit_code,
                    }
                }
                Exit::Idle => {
                    // Skip forward to the next wake-up source.
                    let next = [self.timer_fires_at, self.disk_done_at]
                        .into_iter()
                        .flatten()
                        .min();
                    match next {
                        Some(t) => {
                            self.now = self.now.max(t);
                            self.cpu.complete_env_effect();
                        }
                        None => break BareExit::Stuck,
                    }
                }
            }
            // Charge instruction time by retirement delta, which also
            // covers gate/brk (they retire inside a Trap exit).
            let delta = self.cpu.retired() - retired_before;
            if delta > 0 {
                self.now += self.cost.insn * delta;
            }
        };
        BareRunResult {
            exit: result_exit,
            time: self.now - start,
            retired: self.cpu.retired(),
            diags: self.diags.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvft_guest::layout::RAM_BYTES;
    use hvft_guest::{
        build_image, dhrystone_source, hello_source, io_bench_source, IoMode, KernelConfig,
    };

    fn run_bare(user: &str, kcfg: &KernelConfig) -> (BareHost, BareRunResult) {
        let image = build_image(kcfg, user).expect("image builds");
        let mut host = BareHost::new(&image, CostModel::hp9000_720(), RAM_BYTES, 128, 7);
        let result = host.run(2_000_000_000);
        (host, result)
    }

    #[test]
    fn dhrystone_completes_with_checksum() {
        let (_, r) = run_bare(&dhrystone_source(500, 10), &KernelConfig::default());
        match r.exit {
            BareExit::Halted { code: Some(_) } => {}
            other => panic!("unexpected exit {other:?}"),
        }
        // The exit diag carries the checksum.
        assert_eq!(r.diags.last().unwrap().1, hvft_guest::layout::diag::EXIT);
    }

    #[test]
    fn dhrystone_checksum_is_deterministic() {
        let (_, r1) = run_bare(&dhrystone_source(300, 7), &KernelConfig::default());
        let (_, r2) = run_bare(&dhrystone_source(300, 7), &KernelConfig::default());
        assert_eq!(r1.diags, r2.diags);
        assert_eq!(r1.retired, r2.retired);
        assert_eq!(r1.time, r2.time);
    }

    #[test]
    fn timer_ticks_advance() {
        let kcfg = KernelConfig {
            tick_period_us: 100,
            tick_work: 1,
            ..KernelConfig::default()
        };
        let (host, r) = run_bare(&dhrystone_source(20_000, 0), &kcfg);
        assert!(matches!(r.exit, BareExit::Halted { .. }));
        let ticks = host.mem.read_u32(hvft_guest::layout::kdata::TICKS).unwrap();
        assert!(ticks > 2, "expected several ticks, got {ticks}");
    }

    #[test]
    fn console_hello() {
        let kcfg = KernelConfig {
            tick_period_us: 1000,
            tick_work: 0,
            ..KernelConfig::default()
        };
        let (host, r) = run_bare(&hello_source("bare hello\n", 1), &kcfg);
        assert!(matches!(r.exit, BareExit::Halted { code: Some(42) }));
        assert_eq!(host.console.output_string(), "bare hello\n");
    }

    #[test]
    fn disk_write_benchmark_lands_on_disk() {
        let (host, r) = run_bare(
            &io_bench_source(4, IoMode::Write, 64, 9),
            &KernelConfig::default(),
        );
        assert!(matches!(r.exit, BareExit::Halted { .. }), "{:?}", r.exit);
        assert_eq!(host.disk.log().len(), 4);
        // Time must be dominated by 4 × 26 ms.
        assert!(r.time >= SimDuration::from_millis(100), "time {}", r.time);
    }

    #[test]
    fn disk_read_benchmark_returns_data() {
        let image = build_image(
            &KernelConfig::default(),
            &io_bench_source(3, IoMode::Read, 16, 5),
        )
        .unwrap();
        let mut host = BareHost::new(&image, CostModel::hp9000_720(), RAM_BYTES, 16, 3);
        // Pre-fill the medium so reads observe non-zero data.
        let patterned: Vec<u8> = (0..BLOCK_SIZE).map(|i| (i % 251) as u8).collect();
        for b in 0..16 {
            host.disk.poke_block(b, &patterned);
        }
        let r = host.run(2_000_000_000);
        assert!(matches!(r.exit, BareExit::Halted { .. }), "{:?}", r.exit);
        assert_eq!(host.disk.log().len(), 3);
        // The DMA buffer holds the last block read.
        let buf = host.mem.read_bytes(hvft_guest::layout::DMA_BUF, 8);
        assert_eq!(buf, &patterned[..8]);
    }

    #[test]
    fn driver_retries_on_uncertain() {
        let image = build_image(
            &KernelConfig::default(),
            &io_bench_source(2, IoMode::Write, 16, 5),
        )
        .unwrap();
        let mut host = BareHost::new(&image, CostModel::hp9000_720(), RAM_BYTES, 16, 3);
        host.disk.force_uncertain(1);
        let r = host.run(2_000_000_000);
        assert!(matches!(r.exit, BareExit::Halted { .. }), "{:?}", r.exit);
        // 2 operations + 1 retry = 3 log entries.
        assert_eq!(host.disk.log().len(), 3);
        let retries = host
            .mem
            .read_u32(hvft_guest::layout::kdata::RETRIES)
            .unwrap();
        assert_eq!(retries, 1, "driver must have recorded one retry");
    }

    #[test]
    fn bare_runtime_close_to_instruction_time() {
        // With no I/O and few ticks, elapsed ≈ retired × 20 ns.
        let kcfg = KernelConfig {
            tick_period_us: 1_000_000,
            tick_work: 0,
            ..KernelConfig::default()
        };
        let (_, r) = run_bare(&dhrystone_source(10_000, 0), &kcfg);
        let ideal = SimDuration::from_nanos(20) * r.retired;
        assert_eq!(
            r.time, ideal,
            "bare hardware charges exactly 0.02 µs per instruction"
        );
    }
}
