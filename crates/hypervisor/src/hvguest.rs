//! The hypervisor's per-guest execution engine.
//!
//! [`HvGuest`] runs one virtual machine the way the paper's augmented
//! hypervisor does:
//!
//! - the guest kernel executes at **real privilege 1** ("virtual
//!   privilege 0", §3.1), so every privileged instruction traps and is
//!   **simulated** here, with identical effects on both replicas
//!   (Environment Instruction Assumption);
//! - the **recovery counter** delimits epochs of exactly `epoch_len`
//!   retired instructions (Instruction-Stream Interrupt Assumption);
//! - the hypervisor **takes over TLB management** (§3.2): misses on
//!   present pages are filled invisibly by walking the guest page table,
//!   so the machine's non-deterministic replacement policy can never
//!   perturb the guest instruction stream (this can be disabled to
//!   reproduce the divergence the paper's authors ran into);
//! - memory-mapped I/O and diagnostic escapes are surfaced to the
//!   caller — the replication protocol decides what they mean at a
//!   primary versus a backup.
//!
//! Every action is charged simulated time per the [`CostModel`].

use crate::cost::CostModel;
use crate::vclock::VClock;
use hvft_isa::codec::decode;
use hvft_isa::instruction::Instruction;
use hvft_isa::program::Program;
use hvft_isa::reg::ControlReg;
use hvft_machine::cpu::{Cpu, Exit, LoadProgram};
use hvft_machine::exec::{ExecStats, ExecTier};
use hvft_machine::mem::{Memory, PAGE_SHIFT};
use hvft_machine::snapshot::{CpuSnapshot, MemSnapshot};
use hvft_machine::statehash::vm_state_hash;
use hvft_machine::tlb::{pte, TlbReplacement};
use hvft_machine::trap::Trap;
use hvft_sim::time::SimDuration;

/// Privilege level the guest kernel really runs at (virtual level 0).
pub const GUEST_KERNEL_LEVEL: u8 = 1;

/// A hypervisor-level event the protocol layer must handle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HvEvent {
    /// The recovery counter expired: the epoch is over. No instruction
    /// of the next epoch has executed. Call [`HvGuest::begin_epoch`] to
    /// continue.
    EpochEnd,
    /// The guest read a device register. Complete with
    /// [`HvGuest::finish_mmio_read`].
    MmioRead {
        /// Physical address in the I/O window.
        paddr: u32,
    },
    /// The guest wrote a device register. Complete with
    /// [`HvGuest::finish_mmio_write`].
    MmioWrite {
        /// Physical address in the I/O window.
        paddr: u32,
        /// The stored value.
        value: u32,
    },
    /// The guest executed `diag` (already retired): a harness escape,
    /// e.g. workload exit.
    Diag {
        /// Argument register value.
        value: u32,
        /// Marker code.
        code: u32,
    },
    /// The guest executed `halt` in virtual supervisor mode.
    Halted,
    /// The guest executed `idle` in virtual supervisor mode. Complete
    /// with [`HvGuest::finish_idle`] once an interrupt is pending.
    Idle,
    /// The time budget given to [`HvGuest::run`] ran out mid-epoch.
    BudgetExhausted,
}

/// Counters describing where execution time went.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HvStats {
    /// Privileged/environment instructions simulated (the paper's
    /// `nsim`).
    pub simulated: u64,
    /// Traps reflected into the guest kernel.
    pub reflected: u64,
    /// TLB misses serviced invisibly by the hypervisor.
    pub tlb_fills: u64,
    /// Epochs completed.
    pub epochs: u64,
    /// MMIO intercepts.
    pub mmio: u64,
    /// External interrupts delivered into the guest.
    pub irqs_delivered: u64,
    /// Simulated time spent inside the hypervisor.
    pub hv_time: SimDuration,
    /// Simulated time spent executing guest instructions.
    pub guest_time: SimDuration,
    /// Execution-tier breakdown from the CPU: instructions retired per
    /// engine, superblocks compiled, and jit invalidations.
    pub exec: ExecStats,
}

/// Configuration of one hypervised guest.
#[derive(Clone, Copy, Debug)]
pub struct HvConfig {
    /// Instructions per epoch (the paper sweeps 1 K – 32 K and bounds it
    /// at 385 000 for HP-UX).
    pub epoch_len: u32,
    /// Whether the hypervisor manages the TLB (the §3.2 fix). Disabling
    /// this reproduces the replica-divergence problem.
    pub tlb_managed: bool,
    /// TLB slots.
    pub tlb_slots: usize,
    /// TLB replacement policy of the underlying machine.
    pub tlb_policy: TlbReplacement,
    /// Seed for the machine's non-deterministic TLB replacement.
    pub tlb_seed: u64,
    /// Guest RAM size in bytes.
    pub ram_bytes: usize,
    /// Which execution engine the CPU uses: the single-step reference
    /// interpreter, predecoded blocks (the default) or the threaded-code
    /// jit. All three are observably identical, and the knob lets
    /// differential tests prove that.
    pub exec_tier: ExecTier,
}

impl Default for HvConfig {
    fn default() -> Self {
        HvConfig {
            epoch_len: 4096,
            tlb_managed: true,
            tlb_slots: 64,
            tlb_policy: TlbReplacement::Random,
            tlb_seed: 0,
            ram_bytes: hvft_guest::layout::RAM_BYTES,
            exec_tier: ExecTier::Block,
        }
    }
}

/// Canonical state of one hypervised guest, as captured by
/// [`HvGuest::snapshot`]: the whole virtual machine plus the
/// hypervisor-side bookkeeping (virtual clock, consumed time, epoch
/// progress, counters). The cost model and [`HvConfig`] are *not*
/// captured — a restore target must be built with the same
/// configuration, which is how replicas are constructed anyway.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HvGuestSnapshot {
    cpu: CpuSnapshot,
    mem: MemSnapshot,
    vclock: VClock,
    elapsed: SimDuration,
    epoch_start_retired: u64,
    stats: HvStats,
}

impl HvGuestSnapshot {
    /// Approximate serialized size in bytes, used to charge the network
    /// when a snapshot is shipped for reintegration: RAM dominates; the
    /// registers, TLB and bookkeeping ride in a small fixed overhead.
    pub fn wire_bytes(&self) -> u64 {
        self.mem.ram_bytes() as u64 + 4096
    }

    /// Epoch counter at the moment of capture.
    pub fn epoch(&self) -> u64 {
        self.stats.epochs
    }

    /// Simulated time the captured guest had consumed.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }
}

/// One virtual machine under the hypervisor.
pub struct HvGuest {
    /// The virtual processor.
    pub cpu: Cpu,
    /// Guest physical memory.
    pub mem: Memory,
    /// The virtual clock pair (`Tme` in the protocol).
    pub vclock: VClock,
    cost: CostModel,
    config: HvConfig,
    elapsed: SimDuration,
    /// Retired count at the start of the current epoch.
    epoch_start_retired: u64,
    stats: HvStats,
}

impl HvGuest {
    /// Boots a guest image under the hypervisor: the kernel entry runs at
    /// real privilege 1 with the recovery counter armed for the first
    /// epoch.
    pub fn new(image: &Program, cost: CostModel, config: HvConfig) -> Self {
        let mut cpu = Cpu::new(config.tlb_slots, config.tlb_policy, config.tlb_seed);
        cpu.set_exec_tier(config.exec_tier);
        let mut mem = Memory::new(config.ram_bytes);
        image.load_into_cpu(&mut cpu, &mut mem);
        cpu.psw.cpl = GUEST_KERNEL_LEVEL;
        cpu.psw.recovery = true;
        cpu.set_ctl(ControlReg::Rctr, config.epoch_len);
        HvGuest {
            cpu,
            mem,
            vclock: VClock::new(),
            cost,
            config,
            elapsed: SimDuration::ZERO,
            epoch_start_retired: 0,
            stats: HvStats::default(),
        }
    }

    /// The configuration this guest runs under.
    pub fn config(&self) -> &HvConfig {
        &self.config
    }

    /// Execution statistics.
    pub fn stats(&self) -> &HvStats {
        &self.stats
    }

    /// Simulated time consumed so far (guest + hypervisor).
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Adds an external charge (e.g. protocol message handling) to this
    /// guest's processor time.
    pub fn charge(&mut self, d: SimDuration) {
        self.elapsed += d;
        self.stats.hv_time += d;
    }

    /// Current epoch number (0-based).
    pub fn epoch(&self) -> u64 {
        self.stats.epochs
    }

    /// Instructions retired in the current (incomplete) epoch.
    pub fn epoch_progress(&self) -> u64 {
        self.cpu.retired() - self.epoch_start_retired
    }

    /// Hash of the virtual-machine state (for lockstep checking).
    pub fn state_hash(&self) -> u64 {
        vm_state_hash(&self.cpu, &self.mem)
    }

    /// Re-arms the recovery counter for the next epoch. Must be called
    /// after [`HvEvent::EpochEnd`]; interrupts to deliver should have
    /// been asserted via [`HvGuest::assert_irq`] first.
    pub fn begin_epoch(&mut self) {
        self.stats.epochs += 1;
        self.epoch_start_retired = self.cpu.retired();
        self.cpu.set_ctl(ControlReg::Rctr, self.config.epoch_len);
    }

    /// Captures the guest's canonical state. The machine's derived
    /// caches (decoded blocks, JIT superblocks, TLB front array) are
    /// excluded by construction; see [`hvft_machine::snapshot`].
    pub fn snapshot(&self) -> HvGuestSnapshot {
        HvGuestSnapshot {
            cpu: self.cpu.snapshot(),
            mem: self.mem.snapshot(),
            vclock: self.vclock,
            elapsed: self.elapsed,
            epoch_start_retired: self.epoch_start_retired,
            stats: self.stats,
        }
    }

    /// Restores state captured by [`HvGuest::snapshot`] onto this guest.
    /// The guest keeps its own cost model and [`HvConfig`] (they must
    /// match the donor's — replicas are always built identically), and
    /// resumes bit-identically to the donor: same PC, same retirement
    /// count, same epoch progress, same TLB replacement stream.
    pub fn restore(&mut self, snap: &HvGuestSnapshot) {
        self.cpu.restore(&snap.cpu);
        self.mem.restore(&snap.mem);
        self.vclock = snap.vclock;
        self.elapsed = snap.elapsed;
        self.epoch_start_retired = snap.epoch_start_retired;
        self.stats = snap.stats;
    }

    /// Asserts external-interrupt bits in the guest's `eirr`. Under the
    /// protocols this happens only at epoch boundaries, which is what
    /// keeps delivery points identical across replicas.
    pub fn assert_irq(&mut self, bits: u32) {
        self.cpu.raise_irq(bits);
    }

    /// Completes an [`HvEvent::MmioRead`] with the value the device (or
    /// the protocol layer, at a backup) supplied.
    pub fn finish_mmio_read(&mut self, value: u32) {
        self.charge_guest(self.cost.insn);
        // The exit left the faulting load at PC; re-decode to learn the
        // destination register and width.
        let word = self.fetch_current_word();
        match decode(word) {
            Ok(Instruction::Load { width, rd, .. }) => {
                self.cpu.complete_mmio_read(rd, width, value);
            }
            other => panic!("finish_mmio_read: PC does not hold a load: {other:?}"),
        }
    }

    /// Completes an [`HvEvent::MmioWrite`].
    pub fn finish_mmio_write(&mut self) {
        self.charge_guest(self.cost.insn);
        self.cpu.complete_env_effect();
    }

    /// Completes an [`HvEvent::Idle`].
    pub fn finish_idle(&mut self) {
        self.charge_guest(self.cost.insn);
        self.cpu.complete_env_effect();
    }

    fn fetch_current_word(&mut self) -> u32 {
        let pa = self
            .cpu
            .translate(self.cpu.pc, hvft_machine::tlb::TlbAccess::Execute)
            .expect("current PC must be fetchable");
        self.mem.read_u32(pa).expect("current PC must be in RAM")
    }

    fn charge_guest(&mut self, d: SimDuration) {
        self.elapsed += d;
        self.stats.guest_time += d;
    }

    fn charge_hv(&mut self, d: SimDuration) {
        self.elapsed += d;
        self.stats.hv_time += d;
    }

    /// Runs the guest until a hypervisor-level event occurs or `budget`
    /// simulated time has been consumed (measured from this call).
    ///
    /// Execution goes through the predecoded-block engine
    /// ([`Cpu::run`]) with the instruction budget set to exactly the
    /// count the per-step path would retire before exhausting the time
    /// budget, so pause points (and therefore the conservative
    /// co-simulation's horizons) are unchanged.
    pub fn run(&mut self, budget: SimDuration) -> HvEvent {
        let deadline = self.elapsed + budget;
        loop {
            if self.elapsed >= deadline {
                return HvEvent::BudgetExhausted;
            }
            let remaining = deadline.saturating_sub(self.elapsed);
            let insn_ns = self.cost.insn.as_nanos();
            let max_insns = if insn_ns == 0 {
                u64::MAX
            } else {
                remaining.as_nanos().div_ceil(insn_ns)
            };
            let retired_before = self.cpu.retired();
            let exit = self.cpu.run(&mut self.mem, max_insns);
            self.stats.exec = self.cpu.exec_stats();
            // Charge instruction time by retirement delta; this covers
            // plain retirement, gate/brk (which retire inside a Trap
            // exit) and instructions retired by privileged simulation.
            let event = match exit {
                Exit::Retired => None,
                Exit::Trap(trap) => self.handle_trap(trap),
                Exit::Env(op) => {
                    // Environment instruction at real privilege 0 — the
                    // guest kernel runs at 1, so this cannot happen.
                    unreachable!("guest reached real privilege 0: {op:?}");
                }
                Exit::MmioRead { paddr, .. } => {
                    self.stats.mmio += 1;
                    self.stats.simulated += 1;
                    self.charge_hv(self.cost.hsim());
                    Some(HvEvent::MmioRead { paddr })
                }
                Exit::MmioWrite { paddr, value, .. } => {
                    self.stats.mmio += 1;
                    self.stats.simulated += 1;
                    self.charge_hv(self.cost.hsim());
                    Some(HvEvent::MmioWrite { paddr, value })
                }
                Exit::Halt | Exit::Idle | Exit::Diag { .. } => {
                    unreachable!("privileged exit at real privilege 0")
                }
            };
            let delta = self.cpu.retired() - retired_before;
            if delta > 0 {
                self.charge_guest(self.cost.insn * delta);
            }
            if let Some(ev) = event {
                return ev;
            }
        }
    }

    /// Handles a trap exit; returns an event if the protocol layer must
    /// intervene.
    fn handle_trap(&mut self, trap: Trap) -> Option<HvEvent> {
        match trap {
            Trap::RecoveryCounter => {
                self.charge_hv(self.cost.hv_entry_exit);
                Some(HvEvent::EpochEnd)
            }
            Trap::PrivilegedOp { word } => {
                if self.cpu.psw.cpl == GUEST_KERNEL_LEVEL {
                    self.simulate_privileged(word)
                } else {
                    // User-mode privilege violation: the guest kernel's
                    // business.
                    self.reflect(trap);
                    None
                }
            }
            Trap::TlbMiss { vaddr, .. } if self.config.tlb_managed => {
                if self.service_tlb_miss(vaddr) {
                    None
                } else {
                    // Page not present: reflect so the guest's handler
                    // (or fault path) sees it, exactly as §3.2 describes.
                    self.reflect(trap);
                    None
                }
            }
            Trap::ExternalInterrupt => {
                self.stats.irqs_delivered += 1;
                self.charge_hv(self.cost.hv_deliver_irq);
                self.cpu.deliver_trap_at(trap, GUEST_KERNEL_LEVEL);
                None
            }
            _ => {
                // Gate, break, faults, unmanaged TLB misses: reflect into
                // the guest kernel at virtual privilege 0 (real 1).
                self.reflect(trap);
                None
            }
        }
    }

    fn reflect(&mut self, trap: Trap) {
        self.stats.reflected += 1;
        self.charge_hv(self.cost.hv_reflect);
        self.cpu.deliver_trap_at(trap, GUEST_KERNEL_LEVEL);
    }

    /// Walks the guest page table and fills the TLB; `false` if the page
    /// is absent.
    fn service_tlb_miss(&mut self, vaddr: u32) -> bool {
        let ptbr = self.cpu.ctl(ControlReg::Ptbr);
        let vpn = vaddr >> PAGE_SHIFT;
        let pte_addr = ptbr.wrapping_add(vpn * 4);
        let Ok(pte_word) = self.mem.read_u32(pte_addr) else {
            return false;
        };
        if pte_word & pte::V == 0 {
            return false;
        }
        self.stats.tlb_fills += 1;
        self.charge_hv(self.cost.hv_tlb_fill);
        self.cpu.tlb.insert_pte(vaddr, pte_word);
        true
    }

    /// Maps a virtual privilege level (as the guest believes) to the real
    /// level it runs at: virtual 0 becomes real 1 (§3.1).
    fn map_privilege(level: u8) -> u8 {
        if level == 0 {
            GUEST_KERNEL_LEVEL
        } else {
            level
        }
    }

    /// Simulates one privileged instruction for the guest kernel.
    fn simulate_privileged(&mut self, word: u32) -> Option<HvEvent> {
        let insn = match decode(word) {
            Ok(i) => i,
            Err(_) => {
                self.reflect(Trap::IllegalInstruction { word });
                return None;
            }
        };
        self.stats.simulated += 1;
        self.charge_hv(self.cost.hsim());
        let retired = self.cpu.retired();
        match insn {
            Instruction::MfTod { rd } => {
                let us = self.vclock.tod_us(retired);
                self.cpu.set_reg(rd, us as u32);
                self.cpu.retire_skip();
            }
            Instruction::MfTodH { rd } => {
                let us = self.vclock.tod_us(retired);
                self.cpu.set_reg(rd, (us >> 32) as u32);
                self.cpu.retire_skip();
            }
            Instruction::MtIt { rs } => {
                let us = self.cpu.reg(rs);
                self.vclock.set_timer(us, retired);
                self.cpu.retire_skip();
            }
            Instruction::MfIt { rd } => {
                let rem = self.vclock.timer_remaining_us(retired);
                self.cpu.set_reg(rd, rem);
                self.cpu.retire_skip();
            }
            Instruction::MtCtl { cr, rs } => {
                let v = self.cpu.reg(rs);
                match cr {
                    // The recovery counter belongs to the hypervisor;
                    // guest writes are ignored (HP-UX never touches it).
                    ControlReg::Rctr => {}
                    ControlReg::Eirr => {
                        let cur = self.cpu.ctl(ControlReg::Eirr);
                        self.cpu.set_ctl(ControlReg::Eirr, cur & !v);
                    }
                    _ => self.cpu.set_ctl(cr, v),
                }
                self.cpu.retire_skip();
            }
            Instruction::MfCtl { rd, cr } => {
                let v = match cr {
                    // Hide the real recovery counter.
                    ControlReg::Rctr => 0,
                    _ => self.cpu.ctl(cr),
                };
                self.cpu.set_reg(rd, v);
                self.cpu.retire_skip();
            }
            Instruction::Rfi => {
                let mut psw = hvft_machine::psw::Psw::unpack(self.cpu.ctl(ControlReg::Ipsw));
                psw.cpl = Self::map_privilege(psw.cpl);
                // All guest execution is recovery-counted.
                psw.recovery = true;
                let target = self.cpu.ctl(ControlReg::Iip);
                self.cpu.retire_to(target);
                self.cpu.psw = psw;
            }
            Instruction::Ssm { imm } => {
                if imm & 1 != 0 {
                    self.cpu.psw.interrupts = true;
                }
                if imm & 2 != 0 {
                    self.cpu.psw.translation = true;
                }
                self.cpu.retire_skip();
            }
            Instruction::Rsm { imm } => {
                if imm & 1 != 0 {
                    self.cpu.psw.interrupts = false;
                }
                if imm & 2 != 0 {
                    self.cpu.psw.translation = false;
                }
                self.cpu.retire_skip();
            }
            Instruction::Tlbi { rs1, rs2 } => {
                let vaddr = self.cpu.reg(rs1);
                let pte_word = self.cpu.reg(rs2);
                self.cpu.tlb.insert_pte(vaddr, pte_word);
                self.cpu.retire_skip();
            }
            Instruction::Tlbp { rs } => {
                if rs.index() == 0 {
                    self.cpu.tlb.purge_all();
                } else {
                    let vaddr = self.cpu.reg(rs);
                    self.cpu.tlb.purge(vaddr);
                }
                self.cpu.retire_skip();
            }
            Instruction::Diag { rs, imm } => {
                let value = self.cpu.reg(rs);
                self.cpu.retire_skip();
                return Some(HvEvent::Diag { value, code: imm });
            }
            Instruction::Halt => return Some(HvEvent::Halted),
            Instruction::Idle => return Some(HvEvent::Idle),
            other => {
                // A non-privileged instruction cannot raise PrivilegedOp.
                unreachable!("PrivilegedOp trap for {other}")
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvft_guest::{build_image, dhrystone_source, KernelConfig};
    use hvft_sim::time::SimDuration;

    fn boot(epoch_len: u32) -> HvGuest {
        let image = build_image(
            &KernelConfig {
                tick_work: 2,
                ..KernelConfig::default()
            },
            &dhrystone_source(50, 5),
        )
        .expect("image builds");
        let config = HvConfig {
            epoch_len,
            ..HvConfig::default()
        };
        HvGuest::new(&image, CostModel::functional(), config)
    }

    fn big_budget() -> SimDuration {
        SimDuration::from_secs(10)
    }

    #[test]
    fn epochs_have_exact_length() {
        let mut g = boot(1000);
        let mut boundaries = Vec::new();
        loop {
            match g.run(big_budget()) {
                HvEvent::EpochEnd => {
                    boundaries.push(g.cpu.retired());
                    g.begin_epoch();
                }
                HvEvent::Diag { code: 1, .. } => break,
                HvEvent::Halted => break,
                other => panic!("unexpected event {other:?}"),
            }
            if boundaries.len() > 100 {
                break;
            }
        }
        assert!(boundaries.len() >= 2, "workload must span several epochs");
        for w in boundaries.windows(2) {
            assert_eq!(
                w[1] - w[0],
                1000,
                "every epoch is exactly epoch_len instructions"
            );
        }
        assert_eq!(boundaries[0], 1000);
    }

    #[test]
    fn workload_runs_to_exit_and_is_deterministic() {
        let run = |seed: u64| {
            let image = build_image(
                &KernelConfig {
                    tick_work: 2,
                    ..KernelConfig::default()
                },
                &dhrystone_source(100, 10),
            )
            .unwrap();
            let config = HvConfig {
                epoch_len: 4096,
                tlb_seed: seed,
                ..HvConfig::default()
            };
            let mut g = HvGuest::new(&image, CostModel::functional(), config);
            loop {
                match g.run(big_budget()) {
                    HvEvent::EpochEnd => g.begin_epoch(),
                    HvEvent::Diag { code: 1, value } => return (value, g.cpu.retired()),
                    other => panic!("unexpected {other:?}"),
                }
            }
        };
        // Different TLB seeds (non-deterministic replacement) must not
        // change the guest-visible outcome when the hypervisor manages
        // the TLB.
        let (sum1, retired1) = run(1);
        let (sum2, retired2) = run(2);
        assert_eq!(sum1, sum2);
        assert_eq!(retired1, retired2);
    }

    #[test]
    fn privileged_instructions_are_counted() {
        let mut g = boot(100_000);
        loop {
            match g.run(big_budget()) {
                HvEvent::EpochEnd => g.begin_epoch(),
                HvEvent::Diag { code: 1, .. } => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        // Boot alone does several mtctl/mtit/rfi; syscalls add more.
        assert!(g.stats().simulated > 10, "nsim = {}", g.stats().simulated);
        assert!(g.stats().reflected > 0, "gates must reflect");
    }

    #[test]
    fn budget_exhaustion_pauses_mid_epoch() {
        let mut g = boot(1_000_000);
        let ev = g.run(SimDuration::from_micros(5));
        assert_eq!(ev, HvEvent::BudgetExhausted);
        let before = g.cpu.retired();
        // Resuming continues from the pause point.
        let _ = g.run(SimDuration::from_micros(5));
        assert!(g.cpu.retired() > before);
    }

    #[test]
    fn timer_interrupt_fires_via_epoch_boundary() {
        // With a short tick period, the virtual timer must expire and the
        // guest tick counter must advance once the interrupt is delivered
        // at an epoch boundary.
        let image = build_image(
            &KernelConfig {
                tick_period_us: 50,
                tick_work: 1,
                ..KernelConfig::default()
            },
            &dhrystone_source(100_000, 0),
        )
        .unwrap();
        let mut g = HvGuest::new(
            &image,
            CostModel::functional(),
            HvConfig {
                epoch_len: 1000,
                ..HvConfig::default()
            },
        );
        let mut delivered = 0;
        for _ in 0..200 {
            match g.run(big_budget()) {
                HvEvent::EpochEnd => {
                    if g.vclock.take_expired_timer(g.cpu.retired()) {
                        g.assert_irq(hvft_machine::trap::irq::TIMER);
                        delivered += 1;
                    }
                    g.begin_epoch();
                }
                HvEvent::Diag { .. } | HvEvent::Halted => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(
            delivered > 1,
            "timer should fire repeatedly, got {delivered}"
        );
        // The guest's tick counter lives at kdata::TICKS.
        let ticks = g.mem.read_u32(hvft_guest::layout::kdata::TICKS).unwrap();
        assert!(ticks >= 1, "guest observed {ticks} ticks");
        assert!(g.stats().irqs_delivered >= 1);
    }

    #[test]
    fn state_hash_stable_across_identical_runs() {
        let mut a = boot(500);
        let mut b = boot(500);
        for _ in 0..20 {
            let ea = a.run(big_budget());
            let eb = b.run(big_budget());
            assert_eq!(ea, eb);
            assert_eq!(a.state_hash(), b.state_hash(), "replicas diverged");
            match ea {
                HvEvent::EpochEnd => {
                    a.begin_epoch();
                    b.begin_epoch();
                }
                _ => break,
            }
        }
    }
}
