//! The timing cost model.
//!
//! All charges are in simulated time and default to the measurements the
//! paper reports for the HP 9000/720 prototype (§4.1):
//!
//! - a 50 MIPS processor → 0.02 µs per instruction;
//! - 15.12 µs to simulate one privileged instruction
//!   (≈ 8 µs hypervisor entry/exit + ≈ 7 µs of actual work);
//! - ≈ 443 µs of epoch-boundary processing under the original protocol,
//!   of which our model attributes a fixed CPU part here and the
//!   acknowledgment round-trip to the link model.

use hvft_sim::time::SimDuration;

/// Simulated-time charges for guest execution and hypervisor services.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Time per retired guest instruction (0.02 µs at 50 MIPS).
    pub insn: SimDuration,
    /// Hypervisor entry/exit for any intercepted event (≈ 8 µs).
    pub hv_entry_exit: SimDuration,
    /// Work to simulate one privileged/environment instruction beyond
    /// entry/exit (≈ 7.12 µs, so the total matches the measured
    /// 15.12 µs).
    pub hv_sim_work: SimDuration,
    /// Reflecting a trap into the guest kernel (entry/exit plus vector
    /// bookkeeping).
    pub hv_reflect: SimDuration,
    /// Hypervisor TLB-miss service: page-table walk plus insert
    /// (the hypervisor took over TLB management, §3.2).
    pub hv_tlb_fill: SimDuration,
    /// Fixed epoch-boundary CPU processing (rule P2 bookkeeping,
    /// excluding any wait for acknowledgments, which the protocol layer
    /// accounts against the link).
    pub hv_epoch_cpu: SimDuration,
    /// Per-buffered-interrupt delivery work at an epoch boundary.
    pub hv_deliver_irq: SimDuration,
    /// Per-message CPU cost of handling a received coordination message
    /// (interrupt forwarding, ack processing).
    pub hv_msg_recv: SimDuration,
}

impl CostModel {
    /// The paper's prototype constants.
    pub fn hp9000_720() -> Self {
        CostModel {
            insn: SimDuration::from_nanos(20),
            hv_entry_exit: SimDuration::from_micros(8),
            hv_sim_work: SimDuration::from_micros_f64(7.12),
            hv_reflect: SimDuration::from_micros(10),
            hv_tlb_fill: SimDuration::from_micros(4),
            hv_epoch_cpu: SimDuration::from_micros(125),
            hv_deliver_irq: SimDuration::from_micros(5),
            hv_msg_recv: SimDuration::from_micros(20),
        }
    }

    /// A near-zero-overhead model, useful for functional tests where
    /// timing is irrelevant.
    pub fn functional() -> Self {
        CostModel {
            insn: SimDuration::from_nanos(20),
            hv_entry_exit: SimDuration::from_nanos(1),
            hv_sim_work: SimDuration::from_nanos(1),
            hv_reflect: SimDuration::from_nanos(1),
            hv_tlb_fill: SimDuration::from_nanos(1),
            hv_epoch_cpu: SimDuration::from_nanos(1),
            hv_deliver_irq: SimDuration::from_nanos(1),
            hv_msg_recv: SimDuration::from_nanos(1),
        }
    }

    /// Total cost to simulate one privileged instruction (`hsim` in the
    /// paper's model, 15.12 µs for the prototype).
    pub fn hsim(&self) -> SimDuration {
        self.hv_entry_exit + self.hv_sim_work
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hsim_matches_paper() {
        let c = CostModel::hp9000_720();
        assert_eq!(c.hsim(), SimDuration::from_micros_f64(15.12));
    }

    #[test]
    fn insn_rate_is_50_mips() {
        let c = CostModel::hp9000_720();
        // 50 million instructions in one second.
        assert_eq!(c.insn * 50_000_000, SimDuration::from_secs(1));
    }
}
