//! The virtual time-of-day clock and interval timer.
//!
//! Under replication, clock reads are *environment instructions*: their
//! results must be identical at the primary and backup even though the
//! two processors execute at different real times. We realize the
//! paper's `Tme` synchronization by deriving virtual time from the
//! **retired-instruction count** — a quantity the protocols already keep
//! identical — at the nominal 50 MIPS rate. The primary still ships its
//! clock state to the backup each epoch (`Tme_p`, rule P2), and the
//! backup still assigns it (`Tme_b := Tme_p`, rule P5); with this
//! derivation the assignment is also a bit-exact no-op, which makes
//! divergence detectable as a protocol bug.

/// Virtual clock state; part of what the `[Tme]` message carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VClock {
    /// Virtual nanoseconds accumulated up to `base_retired`.
    base_ns: u64,
    /// Retired-instruction count at which `base_ns` was taken.
    base_retired: u64,
    /// Interval-timer expiry, as a retired-instruction count.
    timer_deadline: Option<u64>,
}

/// Nanoseconds of virtual time per retired instruction (50 MIPS).
pub const NS_PER_INSN: u64 = 20;
/// Instructions per virtual microsecond.
pub const INSNS_PER_US: u64 = 1000 / NS_PER_INSN;

impl VClock {
    /// A clock starting at virtual time zero, timer unarmed.
    pub fn new() -> Self {
        VClock {
            base_ns: 0,
            base_retired: 0,
            timer_deadline: None,
        }
    }

    /// Virtual time in nanoseconds at the given retired count.
    pub fn tod_ns(&self, retired: u64) -> u64 {
        self.base_ns + (retired - self.base_retired) * NS_PER_INSN
    }

    /// Virtual time in microseconds (what `mftod` returns, split into
    /// low/high words).
    pub fn tod_us(&self, retired: u64) -> u64 {
        self.tod_ns(retired) / 1000
    }

    /// Arms the interval timer to fire `us` microseconds from `retired`.
    pub fn set_timer(&mut self, us: u32, retired: u64) {
        self.timer_deadline = Some(retired + u64::from(us) * INSNS_PER_US);
    }

    /// Remaining microseconds on the timer (0 if unarmed or expired).
    pub fn timer_remaining_us(&self, retired: u64) -> u32 {
        match self.timer_deadline {
            Some(d) if d > retired => ((d - retired) / INSNS_PER_US) as u32,
            _ => 0,
        }
    }

    /// If the timer expired at or before `retired`, disarms it and
    /// reports `true`. Called at epoch boundaries: "primary adds to
    /// buffer any interrupts based on Tme_p" (rule P2).
    pub fn take_expired_timer(&mut self, retired: u64) -> bool {
        match self.timer_deadline {
            Some(d) if d <= retired => {
                self.timer_deadline = None;
                true
            }
            _ => false,
        }
    }

    /// Whether the timer is armed.
    pub fn timer_armed(&self) -> bool {
        self.timer_deadline.is_some()
    }

    /// Snapshot for the `[Tme_p]` message.
    pub fn snapshot(&self) -> VClock {
        *self
    }

    /// `Tme_b := Tme_p` (rule P5).
    pub fn assign(&mut self, other: VClock) {
        *self = other;
    }
}

impl Default for VClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tod_advances_with_instructions() {
        let c = VClock::new();
        assert_eq!(c.tod_us(0), 0);
        assert_eq!(c.tod_us(50), 1); // 50 instructions = 1 µs at 50 MIPS
        assert_eq!(c.tod_us(50_000_000), 1_000_000); // 1 simulated second
    }

    #[test]
    fn timer_fires_after_programmed_interval() {
        let mut c = VClock::new();
        c.set_timer(100, 1000); // 100 µs from instruction 1000
        assert!(!c.take_expired_timer(1000 + 99 * INSNS_PER_US));
        assert_eq!(c.timer_remaining_us(1000), 100);
        assert!(c.take_expired_timer(1000 + 100 * INSNS_PER_US));
        // One-shot: a second take reports nothing.
        assert!(!c.take_expired_timer(u64::MAX));
        assert!(!c.timer_armed());
    }

    #[test]
    fn remaining_clamps_to_zero() {
        let mut c = VClock::new();
        c.set_timer(10, 0);
        assert_eq!(c.timer_remaining_us(10 * INSNS_PER_US + 5), 0);
        assert_eq!(VClock::new().timer_remaining_us(123), 0);
    }

    #[test]
    fn snapshot_assign_round_trip() {
        let mut a = VClock::new();
        a.set_timer(500, 42);
        let mut b = VClock::new();
        b.assign(a.snapshot());
        assert_eq!(a, b);
    }
}
