//! `hvft-hypervisor` — the software layer between the hardware and the
//! operating system.
//!
//! Two embedders of the `hvft-machine` CPU live here:
//!
//! - [`bare::BareHost`]: the guest running directly on the simulated
//!   hardware — the paper's baseline for normalized performance;
//! - [`hvguest::HvGuest`]: the guest under the hypervisor — privileged
//!   and environment instructions simulated, epochs delimited by the
//!   recovery counter, TLB management taken over, I/O intercepted.
//!
//! The replica-coordination protocols (rules P1–P7) that make two
//! `HvGuest`s into a fault-tolerant virtual machine live in `hvft-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bare;
pub mod cost;
pub mod guest_iface;
pub mod hvguest;
pub mod vclock;

pub use bare::{BareExit, BareHost, BareRunResult};
pub use cost::CostModel;
pub use hvguest::{HvConfig, HvEvent, HvGuest, HvGuestSnapshot, HvStats, GUEST_KERNEL_LEVEL};
pub use vclock::VClock;
