//! Lossy-LAN and cluster benchmarks: what sharding many fault-tolerant
//! systems onto one wire costs, and what the retransmission layer's
//! recovery machinery costs — recorded to `BENCH_lan.json` for the CI
//! artifact.
//!
//! Two kinds of number live here:
//!
//! - `lan/*` are substrate microbenchmarks (wall-clock cost of the
//!   shared-medium model itself);
//! - `cluster/*` time whole cluster runs to completion; each iteration
//!   simulates the *same* deterministic run, so the wall time measures
//!   the simulator while the recorded run is the paper-relevant datum.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hvft_core::cluster::FtCluster;
use hvft_core::config::FtConfig;
use hvft_core::system::RunEnd;
use hvft_guest::{build_image, dhrystone_source, KernelConfig};
use hvft_hypervisor::cost::CostModel;
use hvft_isa::program::Program;
use hvft_net::lan::Lan;
use hvft_net::link::LinkSpec;
use hvft_sim::time::{SimDuration, SimTime};
use std::hint::black_box;

fn cpu_image() -> Program {
    let kernel = KernelConfig {
        tick_period_us: 2000,
        tick_work: 2,
        ..KernelConfig::default()
    };
    build_image(&kernel, &dhrystone_source(400, 0)).expect("image builds")
}

fn shard_cfg(seed: u64, loss: f64) -> FtConfig {
    FtConfig {
        cost: CostModel::functional(),
        seed,
        loss_prob: loss,
        retransmit: Some(SimDuration::from_millis(5)),
        detector_timeout: SimDuration::from_millis(300),
        ..FtConfig::default()
    }
}

/// Shared-medium model microbenchmark: send + deliver across 6 nodes.
fn bench_lan_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("lan");
    g.throughput(Throughput::Elements(600));
    g.bench_function("send_pop_6nodes_600msgs", |b| {
        b.iter(|| {
            let mut lan: Lan<u64> = Lan::new(LinkSpec::ethernet_10mbps(), 0);
            let nodes: Vec<_> = (0..6).map(|_| lan.add_node()).collect();
            let mut t = SimTime::ZERO;
            for i in 0..600u64 {
                let from = nodes[(i % 6) as usize];
                let to = nodes[((i + 1) % 6) as usize];
                if let Some(d) = lan.send(t, from, to, 64, i) {
                    t = d;
                }
            }
            let mut got = 0;
            let far = t + SimDuration::from_secs(1);
            while lan.pop_ready(far).is_some() {
                got += 1;
            }
            black_box(got)
        })
    });
    g.finish();
}

/// Whole-cluster throughput: N CPU-bound shards to completion on one
/// shared Ethernet, lossless vs 20% loss with retransmission.
fn bench_cluster(c: &mut Criterion) {
    let image = cpu_image();
    let mut g = c.benchmark_group("cluster");
    g.sample_size(10);
    for (label, systems, loss) in [
        ("throughput_1sys_lossless", 1usize, 0.0),
        ("throughput_3sys_lossless", 3, 0.0),
        ("throughput_3sys_loss20", 3, 0.2),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cluster = FtCluster::new(LinkSpec::ethernet_10mbps(), 9);
                for i in 0..systems {
                    cluster.add_system(&image, shard_cfg(9 + i as u64, loss));
                }
                let results = cluster.run();
                for r in &results {
                    assert!(
                        matches!(r.outcome, RunEnd::Exit { .. }),
                        "shard must finish: {:?}",
                        r.outcome
                    );
                }
                // The paper-relevant datum: simulated completion of the
                // slowest shard (contention stretches it as N grows).
                black_box(
                    results
                        .iter()
                        .map(|r| r.completion_time)
                        .max()
                        .expect("nonempty"),
                )
            })
        });
    }
    g.finish();
}

fn save(c: &mut Criterion) {
    // Machine-readable record for the CI artifact, at the workspace
    // root next to BENCH_interpreter.json.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lan.json");
    c.save_json(out)
        .unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}

criterion_group!(benches, bench_lan_substrate, bench_cluster, save);
criterion_main!(benches);
