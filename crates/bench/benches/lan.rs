//! Lossy-LAN and cluster benchmarks: what sharding many fault-tolerant
//! systems onto one wire costs, and what the retransmission layer's
//! recovery machinery costs — recorded to `BENCH_lan.json` for the CI
//! artifact.
//!
//! Two kinds of number live here:
//!
//! - `lan/*` are substrate microbenchmarks (wall-clock cost of the
//!   shared-medium model itself);
//! - `cluster/*` time whole cluster runs to completion; each iteration
//!   simulates the *same* deterministic run, so the wall time measures
//!   the simulator while the recorded run is the paper-relevant datum.
//!
//! Non-regression micro-asserts ride along: the ready-time index behind
//! `Lan::pop_ready_within` must not change simulated cluster throughput
//! (delivery order is asserted identical run-to-run, and the substrate
//! must stay orders of magnitude under the pre-index worst case).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hvft_core::scenario::{ClusterScenario, RunReport, Scenario};
use hvft_guest::workload::Dhrystone;
use hvft_guest::KernelConfig;
use hvft_net::lan::Lan;
use hvft_net::link::LinkSpec;
use hvft_sim::time::{SimDuration, SimTime};
use std::hint::black_box;

fn cpu_workload() -> Dhrystone {
    Dhrystone {
        iters: 400,
        syscall_every: 0,
        kernel: KernelConfig {
            tick_period_us: 2000,
            tick_work: 2,
            ..KernelConfig::default()
        },
    }
}

fn cluster(systems: usize, loss: f64) -> ClusterScenario {
    let mut cluster = ClusterScenario::new(LinkSpec::ethernet_10mbps(), 9);
    for i in 0..systems {
        let mut b = Scenario::builder()
            .workload(cpu_workload())
            .functional_cost()
            .seed(9 + i as u64);
        if loss > 0.0 {
            b = b
                .lossy(loss)
                .retransmit(SimDuration::from_millis(5))
                .detector_timeout(SimDuration::from_millis(300));
        }
        cluster
            .add(b.build().expect("valid shard"))
            .expect("replicated shard");
    }
    cluster
}

/// Shared-medium model microbenchmark: send + deliver across 6 nodes.
fn bench_lan_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("lan");
    g.throughput(Throughput::Elements(600));
    g.bench_function("send_pop_6nodes_600msgs", |b| {
        b.iter(|| {
            let mut lan: Lan<u64> = Lan::new(LinkSpec::ethernet_10mbps(), 0);
            let nodes: Vec<_> = (0..6).map(|_| lan.add_node()).collect();
            let mut t = SimTime::ZERO;
            for i in 0..600u64 {
                let from = nodes[(i % 6) as usize];
                let to = nodes[((i + 1) % 6) as usize];
                if let Some(d) = lan.send(t, from, to, 64, i) {
                    t = d;
                }
            }
            let mut got = 0;
            let far = t + SimDuration::from_secs(1);
            while lan.pop_ready(far).is_some() {
                got += 1;
            }
            black_box(got)
        })
    });
    g.finish();
    // Micro-assert: with the ready-time index a send+pop costs well
    // under a microsecond; 50 µs/element would mean the per-pop scan
    // over all links is back (or worse). Generous enough for any CI
    // machine, tight enough to catch an O(links) pop.
    let m = c
        .measurements()
        .iter()
        .find(|m| m.label == "lan/send_pop_6nodes_600msgs")
        .expect("substrate measurement recorded");
    let ns_per_elem = m.ns_per_iter / 600.0;
    assert!(
        ns_per_elem < 50_000.0,
        "LAN substrate regressed to {ns_per_elem:.0} ns/element"
    );
}

/// Whole-cluster throughput: N CPU-bound shards to completion on one
/// shared Ethernet, lossless vs 20% loss with retransmission.
fn bench_cluster(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster");
    g.sample_size(10);
    let mut recorded: Vec<(usize, f64, SimDuration)> = Vec::new();
    for (label, systems, loss) in [
        ("throughput_1sys_lossless", 1usize, 0.0),
        ("throughput_3sys_lossless", 3, 0.0),
        ("throughput_3sys_loss20", 3, 0.2),
    ] {
        let scenario = cluster(systems, loss);
        let mut slowest = SimDuration::ZERO;
        g.bench_function(label, |b| {
            b.iter(|| {
                let results: Vec<RunReport> = scenario.run();
                for r in &results {
                    assert!(r.exit.is_clean_exit(), "shard must finish: {:?}", r.exit);
                }
                // The paper-relevant datum: simulated completion of the
                // slowest shard (contention stretches it as N grows).
                slowest = results
                    .iter()
                    .map(|r| r.completion_time)
                    .max()
                    .expect("nonempty");
                black_box(slowest)
            })
        });
        recorded.push((systems, loss, slowest));
    }
    g.finish();
    // Micro-asserts on the *simulated* numbers, which are deterministic:
    // cluster throughput must not regress behind the LAN index.
    // (a) A rerun reproduces the slowest-shard time bit-for-bit — the
    //     index changed no delivery order.
    for &(systems, loss, slowest) in &recorded {
        let again = cluster(systems, loss)
            .run()
            .iter()
            .map(|r| r.completion_time)
            .max()
            .expect("nonempty");
        assert_eq!(
            again, slowest,
            "{systems}-system loss={loss} cluster is not deterministic"
        );
    }
    // (b) Contention ordering is preserved: sharing the wire costs time,
    //     and loss recovery costs more.
    assert!(recorded[1].2 > recorded[0].2, "contention must cost time");
    assert!(
        recorded[2].2 > recorded[1].2,
        "loss recovery must cost time"
    );
}

fn save(c: &mut Criterion) {
    // Machine-readable record for the CI artifact, at the workspace
    // root next to BENCH_interpreter.json.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lan.json");
    c.save_json(out)
        .unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}

criterion_group!(benches, bench_lan_substrate, bench_cluster, save);
criterion_main!(benches);
