//! Substrate microbenchmarks: interpreter, assembler, channel, TLB.
//!
//! These measure the *simulator's* wall-clock performance (not simulated
//! time): how fast the virtual machine executes guest instructions, how
//! fast the assembler builds images, and the cost of the coordination
//! primitives. They bound how long the paper-reproduction harnesses take.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hvft_guest::{build_image, callstorm_source, dhrystone_source, KernelConfig};
use hvft_hypervisor::bare::BareHost;
use hvft_hypervisor::cost::CostModel;
use hvft_machine::tlb::{pte, Tlb, TlbAccess, TlbReplacement};
use hvft_machine::ExecTier;
use hvft_net::channel::Channel;
use hvft_net::link::LinkSpec;
use hvft_sim::time::SimTime;
use std::hint::black_box;

fn bench_interpreter(c: &mut Criterion) {
    let image = build_image(&KernelConfig::default(), &dhrystone_source(5_000, 0)).unwrap();
    // One host, reset per iteration: the benchmark measures execution,
    // not RAM/device allocation. The warm-up run doubles as the
    // retired-instruction count for throughput reporting.
    let mut host = BareHost::new(
        &image,
        CostModel::hp9000_720(),
        hvft_guest::layout::RAM_BYTES,
        16,
        0,
    );
    let retired = host.run(100_000_000).retired;
    let mut g = c.benchmark_group("interpreter");
    g.throughput(Throughput::Elements(retired));
    g.sample_size(20);
    // "after": the predecoded-block engine (the default).
    g.bench_function("bare_dhrystone_5k_iters", |b| {
        b.iter(|| {
            host.reset(&image);
            black_box(host.run(100_000_000).retired)
        })
    });
    // "before": the per-instruction engine, for the speedup record.
    // set_exec_tier on the host survives reset(), so each iteration
    // re-boots into the same tier.
    host.set_exec_tier(ExecTier::Step);
    g.bench_function("bare_dhrystone_5k_iters_step", |b| {
        b.iter(|| {
            host.reset(&image);
            black_box(host.run(100_000_000).retired)
        })
    });
    // Tier 2: the threaded-code superblock jit, same harness. Each
    // iteration re-boots cold (empty caches), so compile + warm-up cost
    // is inside the measurement, exactly like the block engine's.
    host.set_exec_tier(ExecTier::Jit);
    g.bench_function("bare_dhrystone_5k_iters_jit", |b| {
        b.iter(|| {
            host.reset(&image);
            black_box(host.run(100_000_000).retired)
        })
    });
    g.finish();
    // Call-heavy guest: leaf calls, calls into the next text page and a
    // deep monomorphic recursion. This is where the jit tier's inline
    // return cache and cross-page traces pay off, so it gets its own
    // block-vs-jit pair.
    let cs_image = build_image(&KernelConfig::default(), &callstorm_source(2_000, 12)).unwrap();
    host.set_exec_tier(ExecTier::Block);
    let cs_retired = {
        host.reset(&cs_image);
        host.run(100_000_000).retired
    };
    let mut g = c.benchmark_group("interpreter");
    g.throughput(Throughput::Elements(cs_retired));
    g.sample_size(20);
    g.bench_function("bare_callstorm_2k_iters", |b| {
        b.iter(|| {
            host.reset(&cs_image);
            black_box(host.run(100_000_000).retired)
        })
    });
    host.set_exec_tier(ExecTier::Jit);
    g.bench_function("bare_callstorm_2k_iters_jit", |b| {
        b.iter(|| {
            host.reset(&cs_image);
            black_box(host.run(100_000_000).retired)
        })
    });
    // Annotate the jit row with the return-cache hit rate and trace
    // shape of the last run, so the artifact records *why* it is fast.
    let cs = host.exec_stats();
    let ret_total = cs.ret_cache_hits + cs.ret_cache_misses;
    if ret_total > 0 {
        g.annotate(
            "ret_cache_hit_rate",
            cs.ret_cache_hits as f64 / ret_total as f64,
        );
    }
    g.annotate("cross_page_superblocks", cs.cross_page_superblocks as f64);
    g.finish();
    // Machine-readable record (ns/insn, insns/sec, before/after) for
    // the CI artifact; written at the workspace root.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_interpreter.json");
    c.save_json(out)
        .unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}

fn bench_assembler(c: &mut Criterion) {
    let src = hvft_guest::kernel_source(&KernelConfig::default());
    let mut g = c.benchmark_group("assembler");
    g.throughput(Throughput::Bytes(src.len() as u64));
    g.bench_function("assemble_kernel", |b| {
        b.iter(|| black_box(hvft_isa::asm::assemble(black_box(&src)).unwrap()))
    });
    g.finish();
}

fn bench_channel(c: &mut Criterion) {
    c.bench_function("channel_send_pop", |b| {
        b.iter(|| {
            let mut ch: Channel<u64> = Channel::new(LinkSpec::ethernet_10mbps(), 0);
            let mut t = SimTime::ZERO;
            for i in 0..100u64 {
                if let Some(d) = ch.send(t, 64, i) {
                    t = d;
                }
            }
            let mut got = 0;
            while ch
                .pop_ready(SimTime::MAX - hvft_sim::time::SimDuration::from_secs(1))
                .is_some()
            {
                got += 1;
            }
            black_box(got)
        })
    });
}

fn bench_tlb(c: &mut Criterion) {
    c.bench_function("tlb_lookup_hit", |b| {
        let mut tlb = Tlb::new(64, TlbReplacement::RoundRobin, 0);
        for vpn in 0..64 {
            tlb.insert_pte(vpn << 12, (vpn << 12) | pte::V | pte::R | pte::W | pte::X);
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 64;
            black_box(tlb.lookup(i << 12, TlbAccess::Read, false))
        })
    });
}

criterion_group!(
    benches,
    bench_interpreter,
    bench_assembler,
    bench_channel,
    bench_tlb
);
criterion_main!(benches);
