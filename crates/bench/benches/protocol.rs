//! Protocol-level benchmarks: full replicated runs at several epoch
//! lengths and under both protocol variants, at reduced workload scale.
//!
//! Each iteration runs an entire two-replica simulation to completion;
//! the criterion time is simulator wall time (the simulated-time results
//! are what the `fig*`/`table1` binaries report).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hvft_core::config::ProtocolVariant;
use hvft_core::scenario::Scenario;
use hvft_guest::{build_image, dhrystone_source, KernelConfig};
use std::hint::black_box;

fn image() -> hvft_isa::program::Program {
    build_image(
        &KernelConfig {
            tick_period_us: 2000,
            tick_work: 10,
            ..KernelConfig::default()
        },
        &dhrystone_source(5_000, 0),
    )
    .unwrap()
}

fn bench_ft_run(c: &mut Criterion) {
    let img = image();
    let mut g = c.benchmark_group("ft_run");
    g.sample_size(10);
    for el in [1024u32, 4096, 16384] {
        for (name, protocol) in [("old", ProtocolVariant::Old), ("new", ProtocolVariant::New)] {
            g.bench_with_input(
                BenchmarkId::new(name, el),
                &(el, protocol),
                |b, &(el, protocol)| {
                    let scenario = Scenario::builder()
                        .image(img.clone())
                        .protocol(protocol)
                        .lockstep(false)
                        .epoch_len(el)
                        .build()
                        .expect("bench scenario is valid");
                    b.iter(|| black_box(scenario.run().completion_time))
                },
            );
        }
    }
    g.finish();
}

fn bench_lockstep_hashing(c: &mut Criterion) {
    let img = image();
    let mut g = c.benchmark_group("lockstep");
    g.sample_size(10);
    for (name, check) in [("hashing_on", true), ("hashing_off", false)] {
        let scenario = Scenario::builder()
            .image(img.clone())
            .lockstep(check)
            .epoch_len(4096)
            .build()
            .expect("bench scenario is valid");
        g.bench_function(name, |b| {
            b.iter(|| black_box(scenario.run().lockstep_compared))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ft_run, bench_lockstep_hashing);
criterion_main!(benches);
