//! hvft-lang toolchain benchmarks — recorded to `BENCH_lang.json`.
//!
//! Three costs matter for the fuzzing pipeline's wall-clock budget:
//!
//! - `compile_*` — source bytes per second through the full pass stack
//!   (parse → check → lower → regalloc → emit → assemble) for the two
//!   shipped workloads;
//! - `generate_and_compile` — programs per second minted by
//!   `genprog` and pushed to a bootable image, the per-case setup cost
//!   of every differential-fuzz iteration;
//! - `execute_*` — retired guest instructions per second for a
//!   compiled workload under the step interpreter and the jit, showing
//!   compiled code enjoys the same tier speedup as the hand-written
//!   guests.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hvft_guest::compiled::{lang_collatz_source, lang_gcd_source};
use hvft_guest::workload::Workload;
use hvft_guest::{build_image, guest_codegen_options, CompiledWorkload};
use hvft_hypervisor::bare::BareHost;
use hvft_hypervisor::cost::CostModel;
use hvft_lang::genprog::{self, GenConfig};
use hvft_machine::ExecTier;
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    let opts = guest_codegen_options();
    let mut g = c.benchmark_group("lang_compile");
    for (name, src) in [
        ("compile_gcd", lang_gcd_source()),
        ("compile_collatz", lang_collatz_source()),
    ] {
        g.throughput(Throughput::Bytes(src.len() as u64));
        g.bench_function(name, |b| {
            b.iter(|| black_box(hvft_lang::compile_with(black_box(src), &opts).unwrap()))
        });
    }
    g.finish();
}

fn bench_generate(c: &mut Criterion) {
    let cfg = GenConfig::default();
    let opts = guest_codegen_options();
    let mut g = c.benchmark_group("lang_generate");
    g.throughput(Throughput::Elements(1));
    let mut seed = 0u64;
    g.bench_function("generate_and_compile", |b| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let src = genprog::source(seed, &cfg);
            black_box(hvft_lang::compile_to_program(&src, &opts).unwrap())
        })
    });
    g.finish();
}

fn bench_execute(c: &mut Criterion) {
    let workload = CompiledWorkload::new("gcd", lang_gcd_source()).unwrap();
    let image = build_image(&workload.kernel(), &workload.user_source()).unwrap();
    let mut host = BareHost::new(
        &image,
        CostModel::functional(),
        hvft_guest::layout::RAM_BYTES,
        16,
        0,
    );
    let retired = host.run(100_000_000).retired;
    let mut g = c.benchmark_group("lang_execute");
    g.throughput(Throughput::Elements(retired));
    g.sample_size(20);
    host.set_exec_tier(ExecTier::Step);
    g.bench_function("gcd_step", |b| {
        b.iter(|| {
            host.reset(&image);
            black_box(host.run(100_000_000).retired)
        })
    });
    host.set_exec_tier(ExecTier::Jit);
    g.bench_function("gcd_jit", |b| {
        b.iter(|| {
            host.reset(&image);
            black_box(host.run(100_000_000).retired)
        })
    });
    g.finish();

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lang.json");
    c.save_json(out)
        .unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}

criterion_group!(benches, bench_compile, bench_generate, bench_execute);
criterion_main!(benches);
