//! The workload-registry sweep: every registered guest through the
//! scenario builder at `t ∈ {1, 2}`, recorded to `BENCH_scenarios.json`
//! for the CI artifact (next to the interpreter and LAN records).
//!
//! Wall time per iteration measures the simulator; the asserts pin the
//! paper's transparency property across the whole registry — every
//! workload must exit identically at t = 1 and t = 2 (backup count is
//! invisible to the guest), with clean lockstep throughout.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hvft_core::scenario::Scenario;
use hvft_guest::workload::registry;
use std::hint::black_box;

fn bench_registry_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario");
    g.sample_size(3);
    for w in registry() {
        let name = w.name();
        let mut codes = Vec::new();
        for backups in [1usize, 2] {
            let scenario = Scenario::builder()
                .workload_named(&name)
                .functional_cost()
                .backups(backups)
                .build()
                .unwrap_or_else(|e| panic!("{name} t={backups}: {e}"));
            // One verified run outside the timer: exit + lockstep.
            let probe = scenario.run();
            assert!(
                probe.exit.is_clean_exit(),
                "{name} t={backups}: {:?}",
                probe.exit
            );
            assert!(probe.lockstep_clean, "{name} t={backups}: diverged");
            codes.push(probe.exit.code());
            g.throughput(Throughput::Elements(probe.retired));
            g.bench_function(format!("{name}_t{backups}"), |b| {
                b.iter(|| black_box(scenario.run().completion_time))
            });
        }
        assert_eq!(
            codes[0], codes[1],
            "{name}: the backup count must be invisible to the guest"
        );
    }
    g.finish();
}

fn save(c: &mut Criterion) {
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scenarios.json");
    c.save_json(out)
        .unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}

criterion_group!(benches, bench_registry_sweep, save);
criterion_main!(benches);
