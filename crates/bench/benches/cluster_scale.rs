//! Cluster scaling under the parallel conservative-sync executor —
//! recorded to `BENCH_cluster_scale.json` for the CI artifact.
//!
//! One workload mix, swept across shard counts × execution modes
//! (sequential, and worker-thread counts up to the machine's cores):
//! each `cluster/<shards>sys_<mode>` entry times the *same*
//! deterministic simulated run, so the wall-clock ratios between modes
//! are the scaling curve of the executor itself. Thread rows are
//! labelled with the *effective* parallelism
//! ([`Parallelism::effective_workers`]): a `Threads(2)` request clamps
//! to `min(2, shards, cores)`, so on a one-core CI runner the row says
//! `2thr_eff1` — archived numbers never claim parallelism the hardware
//! didn't deliver. On a many-core box the thread rows shrink toward
//! `1/eff` of the sequential row; either way the recorded curve is
//! honest for the hardware that produced it, and the bit-identity
//! micro-assert below is the part that must hold everywhere.

use criterion::{criterion_group, criterion_main, Criterion};
use hvft_core::scenario::{ClusterScenario, Parallelism, RunReport, Scenario};
use hvft_guest::workload::{Dhrystone, IoBench};
use hvft_guest::{IoMode, KernelConfig};
use hvft_net::link::LinkSpec;

fn cluster(shards: usize) -> ClusterScenario {
    let mut cluster = ClusterScenario::new(LinkSpec::ethernet_10mbps(), 13);
    for i in 0..shards {
        let b = Scenario::builder()
            .functional_cost()
            .seed(13 + i as u64)
            // Contention on a crowded wire must not forge suspicions.
            .detector_timeout(hvft_sim::time::SimDuration::from_millis(300));
        let b = if i % 2 == 0 {
            b.workload(Dhrystone {
                iters: 500,
                syscall_every: 0,
                kernel: KernelConfig {
                    tick_period_us: 2000,
                    tick_work: 2,
                    ..KernelConfig::default()
                },
            })
        } else {
            b.workload(IoBench {
                ops: 2,
                mode: IoMode::Write,
                num_blocks: 16,
                seed: 4,
                ..Default::default()
            })
        };
        cluster
            .add(b.build().expect("valid shard"))
            .expect("replicated shard");
    }
    cluster
}

/// The full observable surface of a shard's report, for bit-identity
/// checks across execution modes.
fn fingerprint(reports: &[RunReport]) -> Vec<String> {
    reports
        .iter()
        .map(|r| {
            format!(
                "{:?}|{}|{:?}|{:?}|{:?}|{}|{}|{}",
                r.exit,
                r.completion_time,
                r.console,
                r.failovers,
                r.messages_per_replica,
                r.frames_retransmitted,
                r.frames_suppressed,
                r.lockstep_compared,
            )
        })
        .collect()
}

fn modes() -> Vec<Parallelism> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut modes = vec![Parallelism::Sequential];
    let mut t = 2;
    while t <= cores.max(2) {
        modes.push(Parallelism::Threads(t));
        t *= 2;
    }
    modes
}

/// `seq`, or `<n>thr_eff<e>` with the effective worker count for this
/// shard count on this machine baked into the archived label.
fn mode_label(par: Parallelism, shards: usize) -> String {
    match par {
        Parallelism::Sequential => "seq".to_owned(),
        Parallelism::Threads(t) => {
            format!("{t}thr_eff{}", par.effective_workers(shards))
        }
    }
}

/// Shards × threads sweep: whole cluster runs to completion.
fn bench_cluster_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_scale");
    g.sample_size(5);
    let mut fingerprints: Vec<(usize, String, Vec<String>)> = Vec::new();
    for shards in [2usize, 4, 8] {
        for par in modes() {
            let mode = mode_label(par, shards);
            let label = format!("{shards}sys_{mode}");
            let mut last: Vec<RunReport> = Vec::new();
            g.bench_function(label.clone(), |b| {
                b.iter(|| {
                    let mut sc = cluster(shards);
                    sc.parallelism(par);
                    last = sc.run();
                    last.len()
                })
            });
            for r in &last {
                assert!(r.exit.is_clean_exit(), "{label}: {:?}", r.exit);
            }
            fingerprints.push((shards, mode, fingerprint(&last)));
        }
    }
    g.finish();
    // Micro-assert: every execution mode of a given shard count is
    // bit-identical — the determinism oracle, archived alongside the
    // timings it licenses.
    for shards in [2usize, 4, 8] {
        let of_count: Vec<_> = fingerprints
            .iter()
            .filter(|(s, _, _)| *s == shards)
            .collect();
        let (_, seq_label, reference) = of_count.first().expect("sequential row present");
        assert_eq!(seq_label, "seq");
        for (_, mode, fp) in &of_count[1..] {
            assert_eq!(
                fp, reference,
                "{shards} shards: mode {mode} diverged from sequential"
            );
        }
    }
}

fn save(c: &mut Criterion) {
    // Machine-readable record for the CI artifact, at the workspace
    // root next to BENCH_lan.json.
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_cluster_scale.json"
    );
    c.save_json(out)
        .unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}

criterion_group!(benches, bench_cluster_scale, save);
criterion_main!(benches);
