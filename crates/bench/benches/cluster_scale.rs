//! Cluster scaling under the parallel conservative-sync executor —
//! recorded to `BENCH_cluster_scale.json` for the CI artifact.
//!
//! One workload mix, swept across shards × replicas (`t` backups) ×
//! execution modes × execution tiers. Each
//! `cluster_scale/<shards>sys_t<t>_<tier>_<mode>` entry times the
//! *same* deterministic simulated run, so the wall-clock ratios
//! between modes are the scaling curve of the executor itself, and
//! the `jit` rows show that tier-2 gains and multi-core gains compose.
//!
//! Every row records enough to make regressions attributable:
//!
//! - `elements_per_sec` — guest instructions retired per wall-clock
//!   second (the throughput that actually matters), via
//!   [`Throughput::Elements`];
//! - `requested_workers` / `effective_workers` — what the mode asked
//!   for (clamped to the cluster's slice slots,
//!   `shards × replicas`) and what the machine can actually deliver
//!   (further clamped to cores);
//! - `pool_utilization` (thread rows only) — the fraction of
//!   `effective_workers × wall` the persistent pool's workers spent
//!   executing guest slices, observed via [`WorkPool::stats`].
//!
//! Thread rows are labelled with the *effective* parallelism: a
//! `Threads(4)` request on a one-core CI runner reads `4thr_eff1` —
//! archived numbers never claim parallelism the hardware didn't
//! deliver. On a many-core box the thread rows shrink toward `1/eff`
//! of the sequential row; either way the recorded curve is honest for
//! the hardware that produced it, and the bit-identity micro-assert
//! below is the part that must hold everywhere.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hvft_core::scenario::{ClusterScenario, ExecTier, Parallelism, RunReport, Scenario};
use hvft_guest::workload::{Dhrystone, IoBench};
use hvft_guest::{IoMode, KernelConfig};
use hvft_net::link::LinkSpec;
use hvft_sim::WorkPool;
use std::time::Instant;

fn cluster(shards: usize, backups: usize, tier: ExecTier) -> ClusterScenario {
    let mut cluster = ClusterScenario::new(LinkSpec::ethernet_10mbps(), 13);
    for i in 0..shards {
        let b = Scenario::builder()
            .functional_cost()
            .seed(13 + i as u64)
            .backups(backups)
            .exec_tier(tier)
            // Contention on a crowded wire must not forge suspicions.
            .detector_timeout(hvft_sim::time::SimDuration::from_millis(300));
        let b = if i % 2 == 0 {
            b.workload(Dhrystone {
                iters: 500,
                syscall_every: 0,
                kernel: KernelConfig {
                    tick_period_us: 2000,
                    tick_work: 2,
                    ..KernelConfig::default()
                },
            })
        } else {
            b.workload(IoBench {
                ops: 2,
                mode: IoMode::Write,
                num_blocks: 16,
                seed: 4,
                ..Default::default()
            })
        };
        cluster
            .add(b.build().expect("valid shard"))
            .expect("replicated shard");
    }
    cluster
}

/// The full observable surface of a shard's report, for bit-identity
/// checks across execution modes.
fn fingerprint(reports: &[RunReport]) -> Vec<String> {
    reports
        .iter()
        .map(|r| {
            format!(
                "{:?}|{}|{:?}|{:?}|{:?}|{}|{}|{}",
                r.exit,
                r.completion_time,
                r.console,
                r.failovers,
                r.messages_per_replica,
                r.frames_retransmitted,
                r.frames_suppressed,
                r.lockstep_compared,
            )
        })
        .collect()
}

/// Guest instructions retired across every replica of every shard —
/// the work the cluster actually performed, whatever tier retired it.
fn guest_insns(reports: &[RunReport]) -> u64 {
    reports
        .iter()
        .flat_map(|r| &r.replica_stats)
        .map(|s| s.exec.step_retired + s.exec.block_retired + s.exec.jit_retired)
        .sum()
}

/// `seq`, or `<n>thr_eff<e>` with the effective worker count for this
/// slot count on this machine baked into the archived label.
fn mode_label(par: Parallelism, slots: usize) -> String {
    match par {
        Parallelism::Sequential => "seq".to_owned(),
        Parallelism::Threads(t) => {
            format!("{t}thr_eff{}", par.effective_workers(slots))
        }
    }
}

/// Shards × replicas × threads × tier sweep: whole cluster runs to
/// completion.
fn bench_cluster_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_scale");
    g.sample_size(3);
    // (sweep point, mode, fingerprint): modes must agree per point.
    let mut fingerprints: Vec<(String, String, Vec<String>)> = Vec::new();
    for shards in [2usize, 4, 8] {
        for backups in [1usize, 2] {
            for tier in [ExecTier::Block, ExecTier::Jit] {
                let point = format!("{shards}sys_t{backups}_{tier}");
                for par in [
                    Parallelism::Sequential,
                    Parallelism::Threads(2),
                    Parallelism::Threads(4),
                ] {
                    let run = || {
                        let mut sc = cluster(shards, backups, tier);
                        sc.parallelism(par);
                        sc.run()
                    };
                    let slots = cluster(shards, backups, tier).slice_slots();
                    let eff = par.effective_workers(slots);
                    // Untimed probe: observed pool utilization and the
                    // guest-instruction total for the throughput rate.
                    let pool_before = WorkPool::global().stats();
                    let wall = Instant::now();
                    let reports = run();
                    let wall = wall.elapsed();
                    let pool_delta = WorkPool::global().stats().busy_nanos - pool_before.busy_nanos;
                    let utilization =
                        pool_delta as f64 / (wall.as_nanos().max(1) as f64 * eff as f64);
                    let insns = guest_insns(&reports);
                    let mode = mode_label(par, slots);
                    let label = format!("{point}_{mode}");
                    for r in &reports {
                        assert!(r.exit.is_clean_exit(), "{label}: {:?}", r.exit);
                    }
                    fingerprints.push((point.clone(), mode, fingerprint(&reports)));
                    g.throughput(Throughput::Elements(insns));
                    g.bench_function(label, |b| b.iter(|| run().len()));
                    g.annotate("requested_workers", par.requested_workers(slots) as f64)
                        .annotate("effective_workers", eff as f64);
                    if !matches!(par, Parallelism::Sequential) {
                        g.annotate("pool_utilization", utilization);
                    }
                }
            }
        }
    }
    g.finish();
    // Micro-assert: every execution mode of a given sweep point is
    // bit-identical — the determinism oracle, archived alongside the
    // timings it licenses.
    let points: Vec<String> = {
        let mut seen = Vec::new();
        for (p, _, _) in &fingerprints {
            if !seen.contains(p) {
                seen.push(p.clone());
            }
        }
        seen
    };
    for point in points {
        let of_point: Vec<_> = fingerprints
            .iter()
            .filter(|(p, _, _)| *p == point)
            .collect();
        let (_, seq_label, reference) = of_point.first().expect("sequential row present");
        assert_eq!(seq_label, "seq");
        for (_, mode, fp) in &of_point[1..] {
            assert_eq!(
                fp, reference,
                "{point}: mode {mode} diverged from sequential"
            );
        }
    }
}

fn save(c: &mut Criterion) {
    // Machine-readable record for the CI artifact, at the workspace
    // root next to BENCH_lan.json.
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_cluster_scale.json"
    );
    c.save_json(out)
        .unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}

criterion_group!(benches, bench_cluster_scale, save);
criterion_main!(benches);
