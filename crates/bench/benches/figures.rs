//! Paper-figure regeneration as criterion benchmarks.
//!
//! Each benchmark runs one measured point of a paper table/figure at
//! reduced workload scale and asserts its normalized performance lands
//! in the right regime, so `cargo bench` both times the harness and
//! sanity-checks the reproduction. The printable tables come from the
//! `fig2_cpu`/`fig3_io`/`fig4_comm`/`table1` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use hvft_bench::{measure_cpu_np, measure_io_np, Scale};
use hvft_core::config::ProtocolVariant;
use hvft_guest::IoMode;
use hvft_net::link::LinkSpec;
use std::hint::black_box;

fn bench_fig2_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("cpu_np_el4096_old", |b| {
        b.iter(|| {
            let m = measure_cpu_np(
                4096,
                ProtocolVariant::Old,
                LinkSpec::ethernet_10mbps(),
                Scale::Tiny,
            );
            // Paper: 6.50.
            assert!((4.0..9.0).contains(&m.np), "NP out of regime: {}", m.np);
            black_box(m.np)
        })
    });
    g.finish();
}

fn bench_fig3_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("write_np_el4096_old", |b| {
        b.iter(|| {
            let m = measure_io_np(
                4096,
                IoMode::Write,
                ProtocolVariant::Old,
                LinkSpec::ethernet_10mbps(),
                Scale::Tiny,
            );
            // Paper: 1.67.
            assert!((1.4..2.0).contains(&m.np), "NP out of regime: {}", m.np);
            black_box(m.np)
        })
    });
    g.finish();
}

fn bench_table1_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("cpu_np_el4096_new", |b| {
        b.iter(|| {
            let m = measure_cpu_np(
                4096,
                ProtocolVariant::New,
                LinkSpec::ethernet_10mbps(),
                Scale::Tiny,
            );
            // Paper: 3.21.
            assert!((2.2..4.5).contains(&m.np), "NP out of regime: {}", m.np);
            black_box(m.np)
        })
    });
    g.finish();
}

fn bench_fig4_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("cpu_np_el32768_atm", |b| {
        b.iter(|| {
            let m = measure_cpu_np(
                32_768,
                ProtocolVariant::Old,
                LinkSpec::atm_155mbps(),
                Scale::Tiny,
            );
            // Paper model: 1.66.
            assert!((1.4..2.0).contains(&m.np), "NP out of regime: {}", m.np);
            black_box(m.np)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig2_point,
    bench_fig3_point,
    bench_table1_point,
    bench_fig4_point
);
criterion_main!(benches);
