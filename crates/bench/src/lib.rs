//! `hvft-bench` — the measurement harness that regenerates the paper's
//! evaluation (§4).
//!
//! Normalized performance is the figure of merit: a workload needing
//! `N` seconds on bare hardware and `N′` under the fault-tolerant system
//! has `NP = N′/N`. [`measure_cpu_np`] and [`measure_io_np`] run the
//! same guest image on the bare host (for `N`) and under the replicated
//! hypervisors (for `N′`), both in exact simulated time.
//!
//! Workloads are scaled down from the paper's (4.2×10⁸ instructions,
//! 2048 I/O operations) by default: normalized performance is a per-
//! iteration ratio, so it is insensitive to workload length once
//! boundary effects amortize. The binaries accept `--full` to run the
//! paper-scale counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hvft_core::config::ProtocolVariant;
use hvft_core::scenario::{RunReport, Scenario};
use hvft_guest::{build_image, dhrystone_source, io_bench_source, IoMode, KernelConfig};
use hvft_net::link::LinkSpec;
use hvft_sim::time::SimDuration;

/// Scale of a measurement run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Minimal sizes for criterion benchmarks (sub-second wall time;
    /// normalized-performance ratios become approximate).
    Tiny,
    /// Reduced workload sizes (seconds of wall time).
    Quick,
    /// The paper's workload sizes (minutes of wall time).
    Full,
}

impl Scale {
    /// Parses `--full` / `--sample` from argv. `--sample` selects the
    /// tiny profile CI uses to exercise the figure binaries end to end
    /// in seconds; without either flag the quick profile runs.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--full") {
            Scale::Full
        } else if args.iter().any(|a| a == "--sample") {
            Scale::Tiny
        } else {
            Scale::Quick
        }
    }

    /// Epoch lengths for the figure curves. The sampled profile keeps
    /// the paper's short, measured epochs — every point still spans
    /// dozens of epochs at the tiny workload size — and drops the
    /// long-epoch tail, where the tiny workload would finish in a
    /// couple of epochs and the NP ratio degenerates.
    pub fn curve_els(self) -> &'static [u32] {
        match self {
            Scale::Tiny => &CURVE_ELS[..4],
            Scale::Quick | Scale::Full => &CURVE_ELS,
        }
    }

    /// Dhrystone iterations (the paper's workload is ≈ 4.2×10⁸
    /// instructions; quick mode runs ≈ 2×10⁶).
    pub fn cpu_iters(self) -> u32 {
        match self {
            Scale::Tiny => 15_000,
            Scale::Quick => 75_000,
            Scale::Full => 15_000_000, // ≈ 4.2e8 instructions
        }
    }

    /// I/O operations (the paper ran 2048).
    pub fn io_ops(self) -> u32 {
        match self {
            Scale::Tiny => 8,
            Scale::Quick => 48,
            Scale::Full => 2048,
        }
    }
}

/// The guest kernel configuration used for all §4 experiments:
/// a 100 Hz tick whose handler performs enough privileged clock work to
/// reproduce the paper's `nsim` density (the 0.18 overhead share at
/// `EL` = 385 000 implies ≈ 1 simulated instruction per 4000 executed).
pub fn paper_kernel() -> KernelConfig {
    KernelConfig {
        tick_period_us: 10_000,
        tick_work: 158,
        arm_timer: true,
        // Driver path calibrated to the paper's cpu(EL): ≈ 1020
        // privileged + ≈ 15 K total guest instructions per operation.
        io_work_priv: 1020,
        io_work_ord: 3933,
    }
}

/// One normalized-performance measurement.
#[derive(Clone, Debug)]
pub struct NpMeasurement {
    /// Epoch length used.
    pub epoch_len: u32,
    /// Bare-hardware completion time (`N`).
    pub bare: SimDuration,
    /// Fault-tolerant completion time (`N′`).
    pub ft: SimDuration,
    /// `N′ / N`.
    pub np: f64,
    /// Instructions the hypervisor simulated at the primary (`nsim`).
    pub nsim: u64,
    /// Epochs completed at the primary.
    pub epochs: u64,
    /// Mean guest-visible disk-operation latency under FT, if the
    /// workload did I/O.
    pub ft_op_latency: Option<SimDuration>,
    /// Guest instructions retired (the `VI` of the model).
    pub retired: u64,
}

fn np_of(bare: SimDuration, ft: SimDuration) -> f64 {
    ft.as_nanos() as f64 / bare.as_nanos() as f64
}

/// Runs a guest image on the bare host and returns its completion time
/// and retired-instruction count.
///
/// # Panics
///
/// Panics unless the workload terminates through a clean `SYS_EXIT` —
/// a codeless halt (kernel fatal path), a stuck guest, or the
/// instruction limit means the measurement would be of a broken run.
pub fn run_bare(image: &hvft_isa::program::Program, max_insns: u64) -> (SimDuration, u64) {
    let r = Scenario::builder()
        .image(image.clone())
        .bare()
        .seed(7)
        .max_insns(max_insns)
        .build()
        .expect("bare scenario is valid")
        .run();
    assert!(
        r.exit.is_clean_exit(),
        "bare run did not complete: {:?}",
        r.exit
    );
    (r.completion_time, r.retired)
}

/// Runs a guest image under the fault-tolerant system.
pub fn run_ft(
    image: &hvft_isa::program::Program,
    epoch_len: u32,
    protocol: ProtocolVariant,
    link: LinkSpec,
    max_insns: u64,
) -> RunReport {
    let r = Scenario::builder()
        .image(image.clone())
        .epoch_len(epoch_len)
        .protocol(protocol)
        .link(link)
        .lockstep(false)
        .max_insns(max_insns)
        .build()
        .expect("measurement scenario is valid")
        .run();
    assert!(
        r.exit.is_clean_exit(),
        "FT run (EL={epoch_len}, {protocol:?}) did not complete: {:?}",
        r.exit
    );
    r
}

/// Measures the CPU-intensive workload's normalized performance
/// (Figure 2 / Table 1 columns "CPU Intense").
pub fn measure_cpu_np(
    epoch_len: u32,
    protocol: ProtocolVariant,
    link: LinkSpec,
    scale: Scale,
) -> NpMeasurement {
    let image = build_image(&paper_kernel(), &dhrystone_source(scale.cpu_iters(), 0))
        .expect("image builds");
    let max = 3_000_000_000;
    let (bare, retired) = run_bare(&image, max);
    let r = run_ft(&image, epoch_len, protocol, link, max);
    NpMeasurement {
        epoch_len,
        bare,
        ft: r.completion_time,
        np: np_of(bare, r.completion_time),
        nsim: r.primary_stats.simulated,
        epochs: r.primary_stats.epochs,
        ft_op_latency: None,
        retired,
    }
}

/// Measures an I/O workload's normalized performance (Figure 3 / Table 1
/// columns "Write Intense" / "Read Intense").
pub fn measure_io_np(
    epoch_len: u32,
    mode: IoMode,
    protocol: ProtocolVariant,
    link: LinkSpec,
    scale: Scale,
) -> NpMeasurement {
    let image = build_image(
        &paper_kernel(),
        &io_bench_source(scale.io_ops(), mode, 128, 7),
    )
    .expect("image builds");
    let max = 20_000_000_000;
    let (bare, retired) = run_bare(&image, max);
    let r = run_ft(&image, epoch_len, protocol, link, max);
    let mean_lat = if r.op_latencies.is_empty() {
        None
    } else {
        let total: u64 = r.op_latencies.iter().map(|d| d.as_nanos()).sum();
        Some(SimDuration::from_nanos(total / r.op_latencies.len() as u64))
    };
    NpMeasurement {
        epoch_len,
        bare,
        ft: r.completion_time,
        np: np_of(bare, r.completion_time),
        nsim: r.primary_stats.simulated,
        epochs: r.primary_stats.epochs,
        ft_op_latency: mean_lat,
        retired,
    }
}

/// Measures a single bare-hardware disk-operation latency (the paper's
/// "26 msec"/"24.2 msec" microbenchmarks) by differencing one- and
/// two-operation bare runs.
pub fn bare_disk_op_time(mode: IoMode) -> SimDuration {
    let one = build_image(&paper_kernel(), &io_bench_source(1, mode, 128, 7)).unwrap();
    let two = build_image(&paper_kernel(), &io_bench_source(2, mode, 128, 7)).unwrap();
    let (t1, _) = run_bare(&one, 1_000_000_000);
    let (t2, _) = run_bare(&two, 1_000_000_000);
    t2 - t1
}

/// The epoch lengths of the paper's tables (1 K – 8 K measured points).
pub const MEASURED_ELS: [u32; 4] = [1024, 2048, 4096, 8192];

/// The epoch lengths of the paper's figures (1 K – 32 K curves).
pub const CURVE_ELS: [u32; 6] = [1024, 2048, 4096, 8192, 16384, 32768];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parameters() {
        assert!(Scale::Quick.cpu_iters() < Scale::Full.cpu_iters());
        assert_eq!(Scale::Full.io_ops(), 2048);
    }

    #[test]
    fn cpu_np_decreases_with_epoch_length() {
        // Tiny workload: direction matters more than magnitude here.
        let image = build_image(&paper_kernel(), &dhrystone_source(3_000, 0)).unwrap();
        let (bare, _) = run_bare(&image, 1_000_000_000);
        let short = run_ft(
            &image,
            1024,
            ProtocolVariant::Old,
            LinkSpec::ethernet_10mbps(),
            1_000_000_000,
        );
        let long = run_ft(
            &image,
            16384,
            ProtocolVariant::Old,
            LinkSpec::ethernet_10mbps(),
            1_000_000_000,
        );
        let np_short = np_of(bare, short.completion_time);
        let np_long = np_of(bare, long.completion_time);
        assert!(
            np_short > np_long,
            "NP must fall with epoch length: {np_short:.2} vs {np_long:.2}"
        );
        assert!(np_long >= 1.0);
    }
}
