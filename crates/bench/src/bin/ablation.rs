//! Ablation studies beyond the paper's printed evaluation.
//!
//! ```text
//! cargo run --release -p hvft-bench --bin ablation
//! ```
//!
//! 1. **Mixed workloads** (§4.2's verbal claim): adding computation
//!    before each I/O operation moves normalized performance between
//!    the pure-I/O and pure-CPU regimes.
//! 2. **Interrupt-delay bound**: the flip side of long epochs — the
//!    paper's reason HP-UX caps epochs at 385 000 instructions.
//! 3. **Protocol cost decomposition**: how much of the overhead is
//!    instruction simulation vs epoch boundaries, measured by running
//!    with each mechanism's cost individually zeroed.

use hvft_bench::{paper_kernel, run_bare, run_ft};
use hvft_core::config::ProtocolVariant;
use hvft_core::scenario::Scenario;
use hvft_guest::{build_image, mixed_source, IoMode};
use hvft_hypervisor::cost::CostModel;
use hvft_net::link::LinkSpec;

fn main() {
    mixed_workload();
    delay_bound();
    cost_decomposition();
}

fn mixed_workload() {
    println!("== Ablation 1: computation mixed into the I/O workload ==");
    println!("(§4.2: \"in a benchmark where more computation were done before");
    println!(" each I/O operation, the dominance of the cpu(EL) term would");
    println!(" ameliorate the normalized performance\")\n");
    println!("| compute iters/op | NP at EL=4096 | NP at EL=32768 |");
    println!("|-----------------:|--------------:|---------------:|");
    for compute in [0u32, 2_000, 10_000, 50_000] {
        let image = build_image(
            &paper_kernel(),
            &mixed_source(24, IoMode::Write, 128, 7, compute),
        )
        .expect("image builds");
        let (bare, _) = run_bare(&image, 20_000_000_000);
        let mut nps = Vec::new();
        for el in [4096u32, 32_768] {
            let r = run_ft(
                &image,
                el,
                ProtocolVariant::Old,
                LinkSpec::ethernet_10mbps(),
                20_000_000_000,
            );
            nps.push(r.completion_time.as_nanos() as f64 / bare.as_nanos() as f64);
        }
        println!("| {compute:>16} | {:>13.2} | {:>14.2} |", nps[0], nps[1]);
    }
    println!();
    println!("As compute grows, NP migrates from the I/O workload's value toward");
    println!("the CPU workload's value at the same epoch length — dramatic at");
    println!("short epochs (toward 6.5 at 4 K), gentle at long ones (toward 1.9");
    println!("at 32 K). With epochs at the HP-UX cap, where the CPU workload sits");
    println!("at 1.19, added compute indeed *ameliorates* NP as §4.2 says.\n");
}

fn delay_bound() {
    println!("== Ablation 2: interrupt-delivery delay vs epoch length ==");
    println!("(buffered interrupts wait out the rest of the epoch; this is the");
    println!(" \"practical upper-bound for epoch length\" of §4.1)\n");
    println!("| EL (insns) | worst-case buffering | epoch boundary rate |");
    println!("|-----------:|---------------------:|--------------------:|");
    for el in [1024u64, 8192, 32_768, 385_000, 2_000_000] {
        let worst_us = el as f64 * 0.02;
        let per_sec = 50_000_000.0 / el as f64;
        println!("| {el:>10} | {worst_us:>17.0} µs | {per_sec:>15.0} /s |");
    }
    println!();
    println!("At HP-UX's 385 000-instruction cap an interrupt can be held 7.7 ms");
    println!("— just under the 10 ms clock tick, which is exactly why the kernel's");
    println!("clock maintenance sets the bound.\n");
}

fn cost_decomposition() {
    println!("== Ablation 3: where the overhead comes from (CPU workload, EL=4096) ==\n");
    let image = build_image(&paper_kernel(), &hvft_guest::dhrystone_source(40_000, 0)).unwrap();
    let (bare, _) = run_bare(&image, 3_000_000_000);

    let np_with = |label: &str, cost: CostModel, protocol: ProtocolVariant| {
        let r = Scenario::builder()
            .image(image.clone())
            .cost(cost)
            .protocol(protocol)
            .lockstep(false)
            .epoch_len(4096)
            .build()
            .expect("ablation scenario is valid")
            .run();
        let np = r.completion_time.as_nanos() as f64 / bare.as_nanos() as f64;
        println!("| {label:<44} | {np:>6.2} |");
        np
    };

    println!("| configuration                                |     NP |");
    println!("|----------------------------------------------|-------:|");
    let full = np_with(
        "full cost model (paper constants)",
        CostModel::hp9000_720(),
        ProtocolVariant::Old,
    );
    let mut no_sim = CostModel::hp9000_720();
    no_sim.hv_entry_exit = hvft_sim::time::SimDuration::from_nanos(1);
    no_sim.hv_sim_work = hvft_sim::time::SimDuration::ZERO;
    let without_sim = np_with(
        "free privileged-instruction simulation",
        no_sim,
        ProtocolVariant::Old,
    );
    let mut no_epoch = CostModel::hp9000_720();
    no_epoch.hv_epoch_cpu = hvft_sim::time::SimDuration::from_nanos(1);
    no_epoch.hv_msg_recv = hvft_sim::time::SimDuration::from_nanos(1);
    let without_epoch = np_with(
        "free boundary/message CPU (wire unchanged)",
        no_epoch,
        ProtocolVariant::Old,
    );
    let new_proto = np_with(
        "revised protocol (no boundary ack wait)",
        CostModel::hp9000_720(),
        ProtocolVariant::New,
    );
    let _ = (full, without_sim, without_epoch, new_proto);
    println!();
    println!("With 4 K epochs the boundary wait dominates, and most of it is the");
    println!("ack round trip on the wire — which is exactly the cost the revised");
    println!("protocol (§4.3) removes. At the 385 K cap the ranking flips and");
    println!("instruction simulation is ~0.18 of the 0.24 overhead (§4.1).");
}
