//! Figure 4: faster replica coordination — normalized performance of the
//! CPU-intensive workload over 10 Mbps Ethernet versus 155 Mbps ATM.
//!
//! Unlike the paper, which only *predicted* the ATM curve, the simulator
//! can also measure it: we run the same workload over both link models.
//!
//! ```text
//! cargo run --release -p hvft-bench --bin fig4_comm [--full|--sample]
//! ```

use hvft_bench::{measure_cpu_np, Scale};
use hvft_core::config::ProtocolVariant;
use hvft_model::comm::predict_fig4;
use hvft_net::link::LinkSpec;

fn main() {
    let scale = Scale::from_args();
    let els: Vec<u64> = scale.curve_els().iter().map(|&e| e as u64).collect();
    let predicted = predict_fig4(&els);

    println!("== Figure 4: faster communication (CPU workload, original protocol) ==");
    println!("(workload scale: {scale:?})\n");
    println!("| EL (insns) | Ethernet measured | ATM measured | Ethernet paper model | ATM paper model |");
    println!("|-----------:|------------------:|-------------:|---------------------:|----------------:|");
    for (i, el) in scale.curve_els().iter().enumerate() {
        let eth = measure_cpu_np(
            *el,
            ProtocolVariant::Old,
            LinkSpec::ethernet_10mbps(),
            scale,
        );
        let atm = measure_cpu_np(*el, ProtocolVariant::Old, LinkSpec::atm_155mbps(), scale);
        let (_, p_eth, p_atm) = predicted[i];
        println!(
            "| {:>10} | {:>17.2} | {:>12.2} | {:>20.2} | {:>15.2} |",
            el, eth.np, atm.np, p_eth, p_atm
        );
    }
    // The paper's comparison point: EL = 32 768, 1.84 vs 1.66.
    println!("\n(paper at EL = 32768: Ethernet 1.84, ATM 1.66)");
}
