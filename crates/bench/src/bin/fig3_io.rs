//! Figure 3: the disk read and write workloads — measured and predicted
//! normalized performance versus epoch length.
//!
//! ```text
//! cargo run --release -p hvft-bench --bin fig3_io [--full|--sample] [--micro]
//! ```

use hvft_bench::{bare_disk_op_time, measure_io_np, Scale};
use hvft_core::config::ProtocolVariant;
use hvft_guest::IoMode;
use hvft_model::io::NpIoModel;
use hvft_net::link::LinkSpec;

fn paper_measured(mode: IoMode, el: u32) -> Option<f64> {
    match (mode, el) {
        (IoMode::Write, 1024) => Some(1.87),
        (IoMode::Write, 2048) => Some(1.71),
        (IoMode::Write, 4096) => Some(1.67),
        (IoMode::Write, 8192) => Some(1.64),
        (IoMode::Read, 1024) => Some(2.32),
        (IoMode::Read, 2048) => Some(2.10),
        (IoMode::Read, 4096) => Some(2.03),
        (IoMode::Read, 8192) => Some(1.98),
        _ => None,
    }
}

fn main() {
    let scale = Scale::from_args();
    let micro = std::env::args().any(|a| a == "--micro");
    let link = LinkSpec::ethernet_10mbps();

    for (mode, model) in [
        (IoMode::Write, NpIoModel::paper_write()),
        (IoMode::Read, NpIoModel::paper_read()),
    ] {
        let label = match mode {
            IoMode::Write => "Disk Write",
            IoMode::Read => "Disk Read",
        };
        println!("== Figure 3: {label} workload, original protocol ==");
        println!("(workload scale: {scale:?})\n");
        println!("| EL (insns) | NP measured (sim) | NP paper measured | model paper |");
        println!("|-----------:|------------------:|------------------:|------------:|");
        let mut at_4k = None;
        for &el in scale.curve_els() {
            let m = measure_io_np(el, mode, ProtocolVariant::Old, link, scale);
            let paper = paper_measured(mode, el).map_or("-".to_owned(), |v| format!("{v:.2}"));
            println!(
                "| {:>10} | {:>17.2} | {:>17} | {:>11.2} |",
                el,
                m.np,
                paper,
                model.np(el as u64)
            );
            if el == 4096 {
                at_4k = Some(m);
            }
        }
        println!();

        if micro {
            let m = at_4k.expect("4K point measured");
            let bare_op = bare_disk_op_time(mode);
            let (paper_bare, paper_ft) = match mode {
                IoMode::Write => (26.0, 27.8),
                IoMode::Read => (24.2, 33.4),
            };
            println!("== §4.2 microbenchmark: per-operation latency at EL = 4096 ==");
            println!("bare {label} op        : {bare_op}   (paper: {paper_bare} ms)");
            if let Some(lat) = m.ft_op_latency {
                println!("FT   {label} op        : {lat}   (paper: {paper_ft} ms)");
            }
            println!();
        }
    }
}
