//! Figure 2: CPU-intensive workload — measured and predicted normalized
//! performance versus epoch length.
//!
//! ```text
//! cargo run --release -p hvft-bench --bin fig2_cpu [--full|--sample] [--micro]
//! ```

use hvft_bench::{measure_cpu_np, Scale};
use hvft_core::config::ProtocolVariant;
use hvft_model::cpu::NpcModel;
use hvft_net::link::LinkSpec;

/// Paper's Figure 2 values for comparison.
fn paper_measured(el: u32) -> Option<f64> {
    match el {
        1024 => Some(22.24),
        2048 => Some(11.83),
        4096 => Some(6.50),
        8192 => Some(3.83),
        _ => None,
    }
}

fn main() {
    let scale = Scale::from_args();
    let micro = std::env::args().any(|a| a == "--micro");
    let paper_model = NpcModel::paper();

    println!("== Figure 2: CPU-intensive workload, original protocol ==");
    println!("(workload scale: {scale:?}; NP = FT time / bare time)\n");
    println!("| EL (insns) | NP measured (sim) | NP paper measured | NPC(EL) paper model |");
    println!("|-----------:|------------------:|------------------:|--------------------:|");

    let mut measured = Vec::new();
    for &el in scale.curve_els() {
        let m = measure_cpu_np(el, ProtocolVariant::Old, LinkSpec::ethernet_10mbps(), scale);
        let paper = paper_measured(el).map_or("-".to_owned(), |v| format!("{v:.2}"));
        println!(
            "| {:>10} | {:>17.2} | {:>17} | {:>19.2} |",
            el,
            m.np,
            paper,
            paper_model.np(el as u64)
        );
        measured.push(m);
    }

    // The paper's practical endpoint: HP-UX bounds epochs at 385 000
    // instructions, where the model predicts 1.24.
    let endpoint = measure_cpu_np(
        385_000,
        ProtocolVariant::Old,
        LinkSpec::ethernet_10mbps(),
        scale,
    );
    println!(
        "| {:>10} | {:>17.2} | {:>17} | {:>19.2} |",
        385_000,
        endpoint.np,
        "-",
        paper_model.np(385_000)
    );

    if micro {
        println!("\n== §4.1 microbenchmark counters (simulator) ==");
        let m = &measured[2]; // EL = 4096 like the paper's detailed run
        println!("bare runtime RT       : {}", m.bare);
        println!("FT runtime N'         : {}", m.ft);
        println!("instructions (VI)     : {}", m.retired);
        println!("simulated insns (nsim): {}", m.nsim);
        println!("epochs                : {}", m.epochs);
        println!(
            "nsim/VI               : 1 per {:.0} instructions (paper: 1 per ~4000)",
            m.retired as f64 / m.nsim as f64
        );
    }
}
