//! Table 1: normalized performance of the original and revised
//! protocols for all three workloads at epoch lengths 1 K – 8 K.
//!
//! ```text
//! cargo run --release -p hvft-bench --bin table1 [--full|--sample]
//! ```

use hvft_bench::{measure_cpu_np, measure_io_np, Scale, MEASURED_ELS};
use hvft_core::config::ProtocolVariant;
use hvft_guest::IoMode;
use hvft_net::link::LinkSpec;

/// The paper's Table 1, as `(EL, [cpu_old, cpu_new, w_old, w_new, r_old, r_new])`.
const PAPER: [(u32, [f64; 6]); 4] = [
    (1024, [22.24, 11.67, 1.87, 1.70, 2.32, 1.92]),
    (2048, [11.83, 4.49, 1.71, 1.66, 2.10, 1.76]),
    (4096, [6.50, 3.21, 1.67, 1.66, 2.03, 1.72]),
    (8192, [3.83, 2.20, 1.64, 1.64, 1.98, 1.70]),
];

fn main() {
    let scale = Scale::from_args();
    let link = LinkSpec::ethernet_10mbps();

    println!("== Table 1: normalized performance, original (Old) vs revised (New) protocol ==");
    println!("(workload scale: {scale:?}; paper values in parentheses)\n");
    println!("| Epoch Len | CPU Old | CPU New | Write Old | Write New | Read Old | Read New |");
    println!("|----------:|--------:|--------:|----------:|----------:|---------:|---------:|");

    for (idx, el) in MEASURED_ELS.iter().enumerate() {
        let cpu_old = measure_cpu_np(*el, ProtocolVariant::Old, link, scale).np;
        let cpu_new = measure_cpu_np(*el, ProtocolVariant::New, link, scale).np;
        let w_old = measure_io_np(*el, IoMode::Write, ProtocolVariant::Old, link, scale).np;
        let w_new = measure_io_np(*el, IoMode::Write, ProtocolVariant::New, link, scale).np;
        let r_old = measure_io_np(*el, IoMode::Read, ProtocolVariant::Old, link, scale).np;
        let r_new = measure_io_np(*el, IoMode::Read, ProtocolVariant::New, link, scale).np;
        let p = PAPER[idx].1;
        println!(
            "| {el:>9} | {cpu_old:>4.2} ({:>5.2}) | {cpu_new:>4.2} ({:>5.2}) | {w_old:>4.2} ({:>4.2}) | {w_new:>4.2} ({:>4.2}) | {r_old:>4.2} ({:>4.2}) | {r_new:>4.2} ({:>4.2}) |",
            p[0], p[1], p[2], p[3], p[4], p[5]
        );
    }
    println!("\nExpected shape: New ≤ Old everywhere; the gap is largest for the");
    println!("CPU-intensive workload at short epochs, and nearly vanishes for");
    println!("writes at 8 K — exactly the paper's observations.");
}
