//! Property tests: every encodable instruction decodes back to itself, and
//! the assembler emits instruction streams that decode to what was written.

use hvft_isa::codec::{decode, encode};
use hvft_isa::instruction::{AluImmOp, AluOp, BranchCond, Instruction, MemWidth};
use hvft_isa::reg::{ControlReg, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::of)
}

fn arb_ctl() -> impl Strategy<Value = ControlReg> {
    (0u8..10).prop_map(|i| ControlReg::from_index(i).unwrap())
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Mul),
        Just(AluOp::Divu),
        Just(AluOp::Remu),
    ]
}

fn arb_branch_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instruction::Alu { op, rd, rs1, rs2 }),
        (arb_reg(), arb_reg(), -8192i32..=8191).prop_map(|(rd, rs1, imm)| Instruction::AluImm {
            op: AluImmOp::Addi,
            rd,
            rs1,
            imm
        }),
        (arb_reg(), arb_reg(), 0i32..=16383).prop_map(|(rd, rs1, imm)| Instruction::AluImm {
            op: AluImmOp::Ori,
            rd,
            rs1,
            imm
        }),
        (arb_reg(), arb_reg(), 0i32..=31).prop_map(|(rd, rs1, imm)| Instruction::AluImm {
            op: AluImmOp::Slli,
            rd,
            rs1,
            imm
        }),
        (arb_reg(), 0u32..(1 << 19)).prop_map(|(rd, imm)| Instruction::Lui { rd, imm }),
        (arb_reg(), arb_reg(), -8192i32..=8191).prop_map(|(rd, base, disp)| Instruction::Load {
            width: MemWidth::Word,
            rd,
            base,
            disp
        }),
        (arb_reg(), arb_reg(), -8192i32..=8191).prop_map(|(rs, base, disp)| Instruction::Store {
            width: MemWidth::Byte,
            rs,
            base,
            disp
        }),
        (arb_branch_cond(), arb_reg(), arb_reg(), -8192i32..=8191).prop_map(
            |(cond, rs1, rs2, w)| Instruction::Branch {
                cond,
                rs1,
                rs2,
                offset: w * 4
            }
        ),
        (arb_reg(), -(1i32 << 18)..(1 << 18))
            .prop_map(|(rd, w)| Instruction::Jal { rd, offset: w * 4 }),
        (arb_reg(), arb_reg(), -8192i32..=8191).prop_map(|(rd, base, disp)| Instruction::Jalr {
            rd,
            base,
            disp
        }),
        arb_reg().prop_map(|rd| Instruction::MfTod { rd }),
        arb_reg().prop_map(|rs| Instruction::MtIt { rs }),
        (arb_ctl(), arb_reg()).prop_map(|(cr, rs)| Instruction::MtCtl { cr, rs }),
        (arb_reg(), arb_ctl()).prop_map(|(rd, cr)| Instruction::MfCtl { rd, cr }),
        Just(Instruction::Rfi),
        (arb_reg(), arb_reg()).prop_map(|(rs1, rs2)| Instruction::Tlbi { rs1, rs2 }),
        arb_reg().prop_map(|rs| Instruction::Tlbp { rs }),
        (0u32..(1 << 14)).prop_map(|imm| Instruction::Gate { imm }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instruction::Probe { rd, rs }),
        Just(Instruction::Halt),
        Just(Instruction::Idle),
        (arb_reg(), 0u32..(1 << 14)).prop_map(|(rs, imm)| Instruction::Diag { rs, imm }),
        Just(Instruction::Nop),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trip(insn in arb_instruction()) {
        let word = encode(insn).expect("generated instruction must encode");
        let back = decode(word).expect("encoded word must decode");
        prop_assert_eq!(insn, back);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        // Arbitrary words either decode or produce a structured error.
        let _ = decode(word);
    }

    #[test]
    fn display_then_assemble_round_trip(insn in arb_instruction()) {
        // Displayed assembly re-assembles to the identical encoding, except
        // for pc-relative forms whose display shows a raw offset.
        let is_pc_relative = matches!(
            insn,
            Instruction::Branch { .. } | Instruction::Jal { .. }
        );
        prop_assume!(!is_pc_relative);
        let src = format!("x: {insn}\n");
        let prog = hvft_isa::asm::assemble(&src)
            .unwrap_or_else(|e| panic!("re-assembling {insn:?} ({src:?}): {e}"));
        let words: Vec<u32> = prog.words().map(|(_, w)| w).collect();
        prop_assert_eq!(words.len(), 1);
        prop_assert_eq!(decode(words[0]).unwrap(), insn);
    }
}
