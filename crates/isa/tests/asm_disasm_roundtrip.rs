//! assemble → encode → disassemble-to-source → re-assemble is a
//! fixpoint.
//!
//! `disasm::to_source` must hand back source the assembler maps to the
//! *same image* (words, symbols, entry), and a second `to_source` must
//! be string-identical. The snippets cover every instruction form the
//! hvft-lang compiler emits, the pc-relative forms whose `Display` is
//! deliberately **not** re-assemblable (raw offsets), privileged
//! kernel forms, pseudo-instruction expansions, and data directives.

use hvft_isa::asm::assemble;
use hvft_isa::disasm::to_source;
use hvft_isa::program::Program;

fn words(p: &Program) -> Vec<(u32, u32)> {
    p.words().collect()
}

/// The fixpoint property: one round re-assembles bit-identically and
/// the rendering stabilizes.
fn assert_fixpoint(label: &str, src: &str) {
    let p = assemble(src).unwrap_or_else(|e| panic!("{label}: source does not assemble: {e}"));
    let rendered = to_source(&p);
    let q = assemble(&rendered)
        .unwrap_or_else(|e| panic!("{label}: to_source output does not assemble: {e}\n{rendered}"));
    assert_eq!(words(&p), words(&q), "{label}: words changed");
    assert_eq!(p.symbols, q.symbols, "{label}: symbols changed");
    assert_eq!(p.entry, q.entry, "{label}: entry changed");
    let rendered2 = to_source(&q);
    assert_eq!(rendered, rendered2, "{label}: to_source is not a fixpoint");
}

/// Every ALU, ALU-immediate, load/store, branch, jump, and syscall
/// form the hvft-lang emitter produces.
#[test]
fn compiler_output_forms_round_trip() {
    assert_fixpoint(
        "compiler forms",
        r"
        .org 0x10000
        u_main:
            li   sp, 0x2F000
            call fn_main
            gate 5
            halt
        fn_main:
            addi sp, sp, -32
            sw   ra, 0(sp)
            sw   r20, 4(sp)
            mv   r20, r4
            addi r8, r0, 42
            li   r9, 0xDEADBEEF
            add  r10, r8, r9
            sub  r10, r0, r8
            mul  r10, r8, r9
            divu r10, r8, r9
            remu r10, r8, r9
            and  r10, r8, r9
            or   r10, r8, r9
            xor  r10, r8, r9
            sll  r10, r8, r9
            srl  r10, r8, r9
            slt  r10, r8, r9
            sltu r10, r0, r8
            xori r10, r10, 1
            lw   r26, 8(sp)
            sw   r26, 12(sp)
            lw   r11, 0(r26)
        loop_head:
            beq  r8, r0, loop_end
            b    loop_head
        loop_end:
            mv   r4, r10
            lw   ra, 0(sp)
            addi sp, sp, 32
            ret
        ",
    );
}

/// The pc-relative family specifically: `Display` prints raw offsets
/// (not re-assemblable); `to_source` must print absolute targets.
/// Branches in both directions, `jal` with a non-`ra` link register.
#[test]
fn pc_relative_forms_print_absolute_targets() {
    let src = r"
        .org 0x2000
        top:
            beq  r1, r2, fwd
            bne  r3, r4, top
            blt  r5, r6, fwd
            bge  r7, r8, top
            bltu r9, r10, fwd
            bgeu r11, r12, top
            jal  r5, top
        fwd:
            jal  ra, top
            halt
        ";
    let p = assemble(src).unwrap();
    let rendered = to_source(&p);
    // Raw-offset operands like `beq r1, r2, 28` must not appear.
    assert!(
        rendered.contains("beq r1, r2, 0x"),
        "branch target should be absolute hex:\n{rendered}"
    );
    assert!(
        rendered.contains("jal r5, 0x2000"),
        "jal target should be absolute hex:\n{rendered}"
    );
    assert_fixpoint("pc-relative", src);
}

/// Privileged/kernel forms: control registers, rfi, TLB ops, masks,
/// diagnostics — the forms a whole-image round trip will meet.
#[test]
fn kernel_forms_round_trip() {
    assert_fixpoint(
        "kernel forms",
        r"
        .org 0x1000
        k_boot:
            mftod  r4
            mftodh r5
            mtit   r6
            mfit   r7
            mtctl  eiem, r5
            mfctl  r8, eiem
            ssm    1
            rsm    1
            tlbi   r6, r7
            tlbp   r6
            probe  r9, r10
            diag   r4, 1
            brk    0
            idle
            nop
            rfi
        ",
    );
}

/// Data directives, tail bytes (len % 4 != 0), `.equ` constants and
/// words that do not decode must all survive as data.
#[test]
fn data_and_equates_round_trip() {
    assert_fixpoint(
        "data",
        r#"
        .equ magic, 0xCAFE
        .org 0x3000
        table:
            .word 0xFFFFFFFF
            .word 0x00000000
            .ascii "ab"
        tail:
            .byte 0x7F
        end_sym:
        .org 0x4000
        second_segment:
            halt
        .entry 0x4000
        "#,
    );
}

/// `li`/`la`/`call`/`ret`/`mv`/`b` pseudo-instructions expand to real
/// forms; the round trip is over the *expansion*, which must itself be
/// stable.
#[test]
fn pseudo_expansions_round_trip() {
    assert_fixpoint(
        "pseudos",
        r"
        .org 0
        start:
            li   r4, 0x12345678
            la   r5, start
            mv   r6, r4
            call start
            b    start
            j    start
            ret
        ",
    );
}
