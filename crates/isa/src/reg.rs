//! General-purpose and control registers of the hvft ISA.

use core::fmt;

/// One of the 32 general-purpose registers.
///
/// `r0` is hardwired to zero, as on most RISC machines: writes to it are
/// discarded, reads return 0.
///
/// # Examples
///
/// ```
/// use hvft_isa::reg::Reg;
///
/// let r = Reg::new(5).unwrap();
/// assert_eq!(r.index(), 5);
/// assert_eq!(format!("{r}"), "r5");
/// assert!(Reg::new(32).is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Conventional link register (return address), `r1`.
    pub const RA: Reg = Reg(1);
    /// Conventional stack pointer, `r2`.
    pub const SP: Reg = Reg(2);
    /// Conventional global pointer, `r3`.
    pub const GP: Reg = Reg(3);

    /// Creates a register from its index; `None` if out of range.
    pub const fn new(index: u8) -> Option<Reg> {
        if index < 32 {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// Creates a register, panicking on out-of-range indices.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub const fn of(index: u8) -> Reg {
        match Reg::new(index) {
            Some(r) => r,
            None => panic!("register index out of range"),
        }
    }

    /// The register's index, 0..=31.
    pub const fn index(self) -> u8 {
        // The mask is a no-op (construction guarantees `< 32`) but
        // proves the range to the optimizer, eliding bounds checks on
        // the interpreter's register-file accesses.
        self.0 & 31
    }

    /// Parses a register name: `r0`..`r31` or an ABI alias
    /// (`zero`, `ra`, `sp`, `gp`).
    pub fn parse(name: &str) -> Option<Reg> {
        match name {
            "zero" => return Some(Reg::ZERO),
            "ra" => return Some(Reg::RA),
            "sp" => return Some(Reg::SP),
            "gp" => return Some(Reg::GP),
            _ => {}
        }
        let rest = name.strip_prefix('r')?;
        // Reject forms like "r01" to keep names canonical.
        if rest.len() > 1 && rest.starts_with('0') {
            return None;
        }
        let idx: u8 = rest.parse().ok()?;
        Reg::new(idx)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Control registers, accessible only via the privileged `mtctl`/`mfctl`.
///
/// These mirror the PA-RISC control space at the granularity the paper's
/// protocols need: trap shadow registers, the interrupt mask/request pair,
/// the page-table base for TLB-miss handling, and the **recovery counter**
/// that delimits epochs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ControlReg {
    /// Interrupt vector address: base of the trap handler table.
    Iva,
    /// Saved processor status word at the last trap.
    Ipsw,
    /// Saved program counter at the last trap (the interruption IP).
    Iip,
    /// Recovery counter: decremented once per completed instruction; a
    /// `RecoveryCounter` trap fires when it would go negative.
    Rctr,
    /// External-interrupt enable mask (bit per source).
    Eiem,
    /// External-interrupt request register (pending bits, write-1-to-clear).
    Eirr,
    /// Page-table base register for the software TLB-miss handler.
    Ptbr,
    /// Trap argument (e.g. faulting virtual address, gate/break immediate).
    TrapArg,
    /// Scratch register 0 for trap handlers.
    Scratch0,
    /// Scratch register 1 for trap handlers.
    Scratch1,
}

impl ControlReg {
    /// All control registers in encoding order.
    pub const ALL: [ControlReg; 10] = [
        ControlReg::Iva,
        ControlReg::Ipsw,
        ControlReg::Iip,
        ControlReg::Rctr,
        ControlReg::Eiem,
        ControlReg::Eirr,
        ControlReg::Ptbr,
        ControlReg::TrapArg,
        ControlReg::Scratch0,
        ControlReg::Scratch1,
    ];

    /// Encoding index of this control register.
    pub const fn index(self) -> u8 {
        match self {
            ControlReg::Iva => 0,
            ControlReg::Ipsw => 1,
            ControlReg::Iip => 2,
            ControlReg::Rctr => 3,
            ControlReg::Eiem => 4,
            ControlReg::Eirr => 5,
            ControlReg::Ptbr => 6,
            ControlReg::TrapArg => 7,
            ControlReg::Scratch0 => 8,
            ControlReg::Scratch1 => 9,
        }
    }

    /// Decodes a control-register index.
    pub const fn from_index(idx: u8) -> Option<ControlReg> {
        match idx {
            0 => Some(ControlReg::Iva),
            1 => Some(ControlReg::Ipsw),
            2 => Some(ControlReg::Iip),
            3 => Some(ControlReg::Rctr),
            4 => Some(ControlReg::Eiem),
            5 => Some(ControlReg::Eirr),
            6 => Some(ControlReg::Ptbr),
            7 => Some(ControlReg::TrapArg),
            8 => Some(ControlReg::Scratch0),
            9 => Some(ControlReg::Scratch1),
            _ => None,
        }
    }

    /// Assembly-language name.
    pub const fn name(self) -> &'static str {
        match self {
            ControlReg::Iva => "iva",
            ControlReg::Ipsw => "ipsw",
            ControlReg::Iip => "iip",
            ControlReg::Rctr => "rctr",
            ControlReg::Eiem => "eiem",
            ControlReg::Eirr => "eirr",
            ControlReg::Ptbr => "ptbr",
            ControlReg::TrapArg => "traparg",
            ControlReg::Scratch0 => "scratch0",
            ControlReg::Scratch1 => "scratch1",
        }
    }

    /// Parses an assembly-language control-register name.
    pub fn parse(name: &str) -> Option<ControlReg> {
        ControlReg::ALL.into_iter().find(|cr| cr.name() == name)
    }
}

impl fmt::Display for ControlReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_bounds() {
        assert!(Reg::new(31).is_some());
        assert!(Reg::new(32).is_none());
        assert_eq!(Reg::of(7).index(), 7);
    }

    #[test]
    fn reg_parse_names_and_aliases() {
        assert_eq!(Reg::parse("r0"), Some(Reg::ZERO));
        assert_eq!(Reg::parse("r31"), Reg::new(31));
        assert_eq!(Reg::parse("zero"), Some(Reg::ZERO));
        assert_eq!(Reg::parse("ra"), Some(Reg::RA));
        assert_eq!(Reg::parse("sp"), Some(Reg::SP));
        assert_eq!(Reg::parse("gp"), Some(Reg::GP));
        assert_eq!(Reg::parse("r32"), None);
        assert_eq!(Reg::parse("x1"), None);
        assert_eq!(Reg::parse("r01"), None, "non-canonical names rejected");
        assert_eq!(Reg::parse(""), None);
    }

    #[test]
    fn ctl_round_trip() {
        for cr in ControlReg::ALL {
            assert_eq!(ControlReg::from_index(cr.index()), Some(cr));
            assert_eq!(ControlReg::parse(cr.name()), Some(cr));
        }
        assert_eq!(ControlReg::from_index(10), None);
        assert_eq!(ControlReg::parse("nope"), None);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Reg::of(13)), "r13");
        assert_eq!(format!("{}", ControlReg::Rctr), "rctr");
    }
}
