//! Assembled program images.

use std::collections::BTreeMap;

/// A contiguous chunk of an assembled image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Physical load address of the first byte.
    pub base: u32,
    /// Raw bytes (instructions are little-endian words).
    pub data: Vec<u8>,
}

impl Segment {
    /// Address one past the last byte.
    pub fn end(&self) -> u32 {
        self.base + self.data.len() as u32
    }
}

/// An assembled program: load segments plus the symbol table.
///
/// # Examples
///
/// ```
/// use hvft_isa::asm::assemble;
///
/// let prog = assemble(
///     "
///     .org 0x1000
///     start:
///         addi r1, r0, 7
///         halt
///     ",
/// )
/// .unwrap();
/// assert_eq!(prog.symbol("start"), Some(0x1000));
/// assert_eq!(prog.entry, 0x1000);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Load segments in ascending address order.
    pub segments: Vec<Segment>,
    /// Label → address map.
    pub symbols: BTreeMap<String, u32>,
    /// Initial program counter (the first label or explicit `.entry`).
    pub entry: u32,
}

impl Program {
    /// Looks up a symbol's address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Total bytes across all segments.
    pub fn size(&self) -> usize {
        self.segments.iter().map(|s| s.data.len()).sum()
    }

    /// Copies all segments into a flat memory buffer.
    ///
    /// # Panics
    ///
    /// Panics if any segment extends beyond `mem.len()`.
    pub fn load_into(&self, mem: &mut [u8]) {
        for seg in &self.segments {
            let base = seg.base as usize;
            let end = base + seg.data.len();
            assert!(
                end <= mem.len(),
                "segment {:#x}..{:#x} exceeds memory of {} bytes",
                seg.base,
                end,
                mem.len()
            );
            mem[base..end].copy_from_slice(&seg.data);
        }
    }

    /// Iterates over `(address, word)` pairs of all whole words in the image.
    pub fn words(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.segments.iter().flat_map(|seg| {
            seg.data.chunks_exact(4).enumerate().map(move |(i, b)| {
                (
                    seg.base + (i * 4) as u32,
                    u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_into_places_segments() {
        let prog = Program {
            segments: vec![
                Segment {
                    base: 4,
                    data: vec![1, 2, 3, 4],
                },
                Segment {
                    base: 12,
                    data: vec![9],
                },
            ],
            symbols: BTreeMap::new(),
            entry: 4,
        };
        let mut mem = vec![0u8; 16];
        prog.load_into(&mut mem);
        assert_eq!(&mem[4..8], &[1, 2, 3, 4]);
        assert_eq!(mem[12], 9);
        assert_eq!(prog.size(), 5);
    }

    #[test]
    #[should_panic(expected = "exceeds memory")]
    fn load_into_checks_bounds() {
        let prog = Program {
            segments: vec![Segment {
                base: 14,
                data: vec![0; 4],
            }],
            symbols: BTreeMap::new(),
            entry: 0,
        };
        let mut mem = vec![0u8; 16];
        prog.load_into(&mut mem);
    }

    #[test]
    fn words_iterates_le() {
        let prog = Program {
            segments: vec![Segment {
                base: 0,
                data: vec![0x78, 0x56, 0x34, 0x12],
            }],
            symbols: BTreeMap::new(),
            entry: 0,
        };
        let ws: Vec<_> = prog.words().collect();
        assert_eq!(ws, vec![(0, 0x1234_5678)]);
    }
}
