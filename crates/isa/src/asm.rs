//! A two-pass assembler for the hvft ISA.
//!
//! The guest mini-OS and the benchmark programs are written in this
//! assembly dialect. Syntax:
//!
//! ```text
//! ; comment (also "//")
//! .org 0x1000              ; set location counter
//! .equ BUFSZ, 4096         ; constant definition
//! .entry main              ; initial PC (defaults to first label)
//! .word expr, expr         ; literal words
//! .byte 1, 2, 3            ; literal bytes
//! .space 64                ; zero fill
//! .ascii "hi"              ; string bytes (\n, \0, \\, \" escapes)
//! .asciiz "hi"             ; NUL-terminated string
//! .align 8                 ; pad to power-of-two boundary
//! main:
//!     li   r5, 0xDEADBEEF  ; pseudo: lui+ori
//!     la   r6, buffer      ; pseudo: address of symbol
//!     lw   r7, 4(r6)
//!     beq  r7, r0, done
//!     call subroutine      ; pseudo: jal ra, …
//!     b    main            ; pseudo: unconditional branch
//! done:
//!     ret                  ; pseudo: jalr r0, ra, 0
//! ```
//!
//! Expressions are a symbol or integer optionally followed by `+`/`-`
//! integer terms. Pseudo-instructions always occupy a fixed number of
//! words so the two passes agree on layout.

use crate::codec::encode;
use crate::instruction::{AluImmOp, AluOp, BranchCond, Instruction, MemWidth};
use crate::program::{Program, Segment};
use crate::reg::{ControlReg, Reg};
use std::collections::BTreeMap;
use std::fmt;

/// An assembly error with its source line (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line number.
    pub line: usize,
    /// Problem description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

type Result<T> = std::result::Result<T, AsmError>;

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T> {
    Err(AsmError {
        line,
        msg: msg.into(),
    })
}

/// Assembles source text into a [`Program`].
///
/// # Examples
///
/// ```
/// use hvft_isa::asm::assemble;
///
/// let p = assemble(".org 0\nstart: addi r1, r0, 1\n halt\n").unwrap();
/// assert_eq!(p.size(), 8);
/// ```
pub fn assemble(source: &str) -> Result<Program> {
    let stmts = parse(source)?;
    let symbols = layout(&stmts)?;
    emit(&stmts, symbols)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Stmt {
    Label(String),
    Org(Expr),
    Entry(Expr),
    Equ(String, Expr),
    Word(Vec<Expr>),
    Byte(Vec<Expr>),
    Space(Expr),
    Ascii(Vec<u8>),
    Align(Expr),
    Insn {
        mnemonic: String,
        operands: Vec<Operand>,
    },
}

#[derive(Clone, Debug)]
struct Line {
    number: usize,
    stmt: Stmt,
}

#[derive(Clone, Debug)]
enum Operand {
    Reg(Reg),
    Ctl(ControlReg),
    Expr(Expr),
    /// `disp(base)` memory operand.
    Mem(Expr, Reg),
}

#[derive(Clone, Debug)]
struct Expr {
    terms: Vec<(i64, Term)>,
}

#[derive(Clone, Debug)]
enum Term {
    Num(i64),
    Sym(String),
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b';' if !in_str => return &line[..i],
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn parse(source: &str) -> Result<Vec<Line>> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let mut text = strip_comment(raw).trim();
        // Labels (possibly several) at line start.
        while let Some(colon) = find_label_colon(text) {
            let name = text[..colon].trim();
            if !is_ident(name) {
                return err(number, format!("invalid label name {name:?}"));
            }
            out.push(Line {
                number,
                stmt: Stmt::Label(name.to_owned()),
            });
            text = text[colon + 1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let stmt = if let Some(rest) = text.strip_prefix('.') {
            parse_directive(number, rest)?
        } else {
            parse_insn(number, text)?
        };
        out.push(Line { number, stmt });
    }
    Ok(out)
}

/// Finds the colon ending a leading label, if the line starts with one.
fn find_label_colon(text: &str) -> Option<usize> {
    let colon = text.find(':')?;
    let head = &text[..colon];
    if !head.is_empty() && is_ident(head.trim()) && !head.contains(' ') {
        Some(colon)
    } else {
        None
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_directive(number: usize, rest: &str) -> Result<Stmt> {
    let (name, args) = match rest.find(char::is_whitespace) {
        Some(i) => (&rest[..i], rest[i..].trim()),
        None => (rest, ""),
    };
    match name {
        "org" => Ok(Stmt::Org(parse_expr(number, args)?)),
        "entry" => Ok(Stmt::Entry(parse_expr(number, args)?)),
        "equ" => {
            let (sym, val) = args.split_once(',').ok_or_else(|| AsmError {
                line: number,
                msg: ".equ needs NAME, value".into(),
            })?;
            let sym = sym.trim();
            if !is_ident(sym) {
                return err(number, format!("invalid .equ name {sym:?}"));
            }
            Ok(Stmt::Equ(sym.to_owned(), parse_expr(number, val.trim())?))
        }
        "word" => Ok(Stmt::Word(parse_expr_list(number, args)?)),
        "byte" => Ok(Stmt::Byte(parse_expr_list(number, args)?)),
        "space" => Ok(Stmt::Space(parse_expr(number, args)?)),
        "align" => Ok(Stmt::Align(parse_expr(number, args)?)),
        "ascii" => Ok(Stmt::Ascii(parse_string(number, args)?)),
        "asciiz" => {
            let mut bytes = parse_string(number, args)?;
            bytes.push(0);
            Ok(Stmt::Ascii(bytes))
        }
        _ => err(number, format!("unknown directive .{name}")),
    }
}

fn parse_string(number: usize, args: &str) -> Result<Vec<u8>> {
    let args = args.trim();
    if !(args.len() >= 2 && args.starts_with('"') && args.ends_with('"')) {
        return err(number, "expected quoted string");
    }
    let inner = &args[1..args.len() - 1];
    let mut out = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push(b'\n'),
                Some('t') => out.push(b'\t'),
                Some('0') => out.push(0),
                Some('\\') => out.push(b'\\'),
                Some('"') => out.push(b'"'),
                other => return err(number, format!("bad escape \\{other:?}")),
            }
        } else {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
    }
    Ok(out)
}

fn parse_expr_list(number: usize, args: &str) -> Result<Vec<Expr>> {
    args.split(',')
        .map(|a| parse_expr(number, a.trim()))
        .collect()
}

fn parse_expr(number: usize, text: &str) -> Result<Expr> {
    let text = text.trim();
    if text.is_empty() {
        return err(number, "expected expression");
    }
    let mut terms = Vec::new();
    let mut rest = text;
    let mut sign = 1i64;
    loop {
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix('-') {
            sign = -sign;
            rest = r;
            continue;
        }
        if let Some(r) = rest.strip_prefix('+') {
            rest = r;
            continue;
        }
        // Consume one atom.
        let end = rest
            .char_indices()
            .find(|&(_, c)| c == '+' || c == '-' || c.is_whitespace())
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        let atom = &rest[..end];
        if atom.is_empty() {
            return err(number, format!("malformed expression {text:?}"));
        }
        let term = parse_atom(number, atom)?;
        terms.push((sign, term));
        sign = 1;
        rest = &rest[end..];
        let r = rest.trim_start();
        if r.is_empty() {
            break;
        }
        rest = r;
        if !(rest.starts_with('+') || rest.starts_with('-')) {
            return err(number, format!("unexpected token in expression {text:?}"));
        }
    }
    Ok(Expr { terms })
}

fn parse_atom(number: usize, atom: &str) -> Result<Term> {
    if let Some(hex) = atom.strip_prefix("0x").or_else(|| atom.strip_prefix("0X")) {
        return match i64::from_str_radix(hex, 16) {
            Ok(v) => Ok(Term::Num(v)),
            Err(_) => err(number, format!("bad hex literal {atom:?}")),
        };
    }
    if atom.starts_with(|c: char| c.is_ascii_digit()) {
        return match atom.parse::<i64>() {
            Ok(v) => Ok(Term::Num(v)),
            Err(_) => err(number, format!("bad number {atom:?}")),
        };
    }
    if atom.len() == 3 && atom.starts_with('\'') && atom.ends_with('\'') {
        return Ok(Term::Num(i64::from(atom.as_bytes()[1])));
    }
    if is_ident(atom) {
        return Ok(Term::Sym(atom.to_owned()));
    }
    err(number, format!("bad expression atom {atom:?}"))
}

fn parse_insn(number: usize, text: &str) -> Result<Stmt> {
    let (mnemonic, rest) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let mnemonic = mnemonic.to_ascii_lowercase();
    let mut operands = Vec::new();
    if !rest.is_empty() {
        for part in rest.split(',') {
            operands.push(parse_operand(number, part.trim())?);
        }
    }
    Ok(Stmt::Insn { mnemonic, operands })
}

fn parse_operand(number: usize, text: &str) -> Result<Operand> {
    if let Some(r) = Reg::parse(text) {
        return Ok(Operand::Reg(r));
    }
    if let Some(cr) = ControlReg::parse(text) {
        return Ok(Operand::Ctl(cr));
    }
    // Memory operand: expr(base)
    if text.ends_with(')') {
        if let Some(open) = text.rfind('(') {
            let base = text[open + 1..text.len() - 1].trim();
            let Some(base) = Reg::parse(base) else {
                return err(number, format!("bad base register in {text:?}"));
            };
            let disp_text = text[..open].trim();
            let disp = if disp_text.is_empty() {
                Expr { terms: vec![] }
            } else {
                parse_expr(number, disp_text)?
            };
            return Ok(Operand::Mem(disp, base));
        }
    }
    Ok(Operand::Expr(parse_expr(number, text)?))
}

// ---------------------------------------------------------------------------
// Layout (pass 1)
// ---------------------------------------------------------------------------

/// Size in bytes each statement occupies; pseudo-instructions have a fixed
/// expansion so both passes agree.
fn stmt_size(line: &Line, lc: u32, symbols: &BTreeMap<String, i64>) -> Result<u32> {
    Ok(match &line.stmt {
        Stmt::Label(_) | Stmt::Org(_) | Stmt::Entry(_) | Stmt::Equ(..) => 0,
        Stmt::Word(es) => 4 * es.len() as u32,
        Stmt::Byte(es) => es.len() as u32,
        Stmt::Ascii(bytes) => bytes.len() as u32,
        Stmt::Space(e) => eval_const(line.number, e, symbols)? as u32,
        Stmt::Align(e) => {
            let a = eval_const(line.number, e, symbols)? as u32;
            if a == 0 || !a.is_power_of_two() {
                return err(line.number, ".align argument must be a power of two");
            }
            (a - (lc % a)) % a
        }
        Stmt::Insn { mnemonic, .. } => match mnemonic.as_str() {
            "li" | "la" => 8,
            _ => 4,
        },
    })
}

/// Pass 1: resolve `.equ` constants and label addresses.
fn layout(lines: &[Line]) -> Result<BTreeMap<String, i64>> {
    let mut symbols: BTreeMap<String, i64> = BTreeMap::new();
    let mut lc: u32 = 0;
    for line in lines {
        match &line.stmt {
            Stmt::Label(name) => {
                if symbols.contains_key(name) {
                    return err(line.number, format!("duplicate symbol {name:?}"));
                }
                symbols.insert(name.clone(), i64::from(lc));
            }
            Stmt::Equ(name, e) => {
                let v = eval_const(line.number, e, &symbols)?;
                if symbols.contains_key(name) {
                    return err(line.number, format!("duplicate symbol {name:?}"));
                }
                symbols.insert(name.clone(), v);
            }
            Stmt::Org(e) => {
                lc = eval_const(line.number, e, &symbols)? as u32;
            }
            _ => {
                lc = lc
                    .checked_add(stmt_size(line, lc, &symbols)?)
                    .ok_or_else(|| AsmError {
                        line: line.number,
                        msg: "address overflow".into(),
                    })?;
            }
        }
    }
    Ok(symbols)
}

fn eval_const(number: usize, e: &Expr, symbols: &BTreeMap<String, i64>) -> Result<i64> {
    let mut total = 0i64;
    for (sign, term) in &e.terms {
        let v = match term {
            Term::Num(n) => *n,
            Term::Sym(s) => *symbols.get(s).ok_or_else(|| AsmError {
                line: number,
                msg: format!("undefined symbol {s:?}"),
            })?,
        };
        total += sign * v;
    }
    Ok(total)
}

// ---------------------------------------------------------------------------
// Emission (pass 2)
// ---------------------------------------------------------------------------

struct Emitter {
    segments: Vec<Segment>,
    lc: u32,
    open: Option<(u32, Vec<u8>)>,
}

impl Emitter {
    fn new() -> Self {
        Emitter {
            segments: Vec::new(),
            lc: 0,
            open: None,
        }
    }

    fn set_lc(&mut self, lc: u32) {
        self.flush();
        self.lc = lc;
    }

    fn bytes(&mut self, data: &[u8]) {
        let (_, buf) = self.open.get_or_insert_with(|| (self.lc, Vec::new()));
        buf.extend_from_slice(data);
        self.lc += data.len() as u32;
    }

    fn word(&mut self, w: u32) {
        self.bytes(&w.to_le_bytes());
    }

    fn flush(&mut self) {
        if let Some((base, data)) = self.open.take() {
            if !data.is_empty() {
                self.segments.push(Segment { base, data });
            }
        }
    }

    fn finish(mut self) -> Vec<Segment> {
        self.flush();
        self.segments.sort_by_key(|s| s.base);
        self.segments
    }
}

fn emit(lines: &[Line], symbols: BTreeMap<String, i64>) -> Result<Program> {
    let mut em = Emitter::new();
    let mut entry: Option<u32> = None;
    let mut first_label: Option<u32> = None;

    for line in lines {
        let n = line.number;
        match &line.stmt {
            Stmt::Label(name) => {
                if first_label.is_none() {
                    first_label = Some(symbols[name] as u32);
                }
            }
            Stmt::Equ(..) => {}
            Stmt::Org(e) => em.set_lc(eval_const(n, e, &symbols)? as u32),
            Stmt::Entry(e) => entry = Some(eval_const(n, e, &symbols)? as u32),
            Stmt::Word(es) => {
                for e in es {
                    let v = eval_const(n, e, &symbols)?;
                    em.word(v as u32);
                }
            }
            Stmt::Byte(es) => {
                for e in es {
                    let v = eval_const(n, e, &symbols)?;
                    if !(-128..=255).contains(&v) {
                        return err(n, format!("byte value {v} out of range"));
                    }
                    em.bytes(&[(v & 0xFF) as u8]);
                }
            }
            Stmt::Ascii(bytes) => em.bytes(bytes),
            Stmt::Space(e) => {
                let len = eval_const(n, e, &symbols)? as usize;
                em.bytes(&vec![0u8; len]);
            }
            Stmt::Align(e) => {
                let a = eval_const(n, e, &symbols)? as u32;
                let pad = (a - (em.lc % a)) % a;
                em.bytes(&vec![0u8; pad as usize]);
            }
            Stmt::Insn { mnemonic, operands } => {
                let pc = em.lc;
                for insn in lower(n, mnemonic, operands, pc, &symbols)? {
                    let w = encode(insn).map_err(|e| AsmError {
                        line: n,
                        msg: format!("{insn}: {e}"),
                    })?;
                    em.word(w);
                }
            }
        }
    }

    let symbols_u32: BTreeMap<String, u32> =
        symbols.into_iter().map(|(k, v)| (k, v as u32)).collect();
    Ok(Program {
        segments: em.finish(),
        entry: entry.or(first_label).unwrap_or(0),
        symbols: symbols_u32,
    })
}

// ---------------------------------------------------------------------------
// Instruction lowering
// ---------------------------------------------------------------------------

struct Ops<'a> {
    line: usize,
    mnemonic: &'a str,
    operands: &'a [Operand],
    pc: u32,
    symbols: &'a BTreeMap<String, i64>,
}

impl<'a> Ops<'a> {
    fn count(&self, want: usize) -> Result<()> {
        if self.operands.len() == want {
            Ok(())
        } else {
            err(
                self.line,
                format!(
                    "{} expects {want} operand(s), got {}",
                    self.mnemonic,
                    self.operands.len()
                ),
            )
        }
    }

    fn reg(&self, i: usize) -> Result<Reg> {
        match self.operands.get(i) {
            Some(Operand::Reg(r)) => Ok(*r),
            _ => err(
                self.line,
                format!("{} operand {} must be a register", self.mnemonic, i + 1),
            ),
        }
    }

    fn ctl(&self, i: usize) -> Result<ControlReg> {
        match self.operands.get(i) {
            Some(Operand::Ctl(c)) => Ok(*c),
            _ => err(
                self.line,
                format!(
                    "{} operand {} must be a control register",
                    self.mnemonic,
                    i + 1
                ),
            ),
        }
    }

    fn imm(&self, i: usize) -> Result<i64> {
        match self.operands.get(i) {
            Some(Operand::Expr(e)) => eval_const(self.line, e, self.symbols),
            _ => err(
                self.line,
                format!("{} operand {} must be an expression", self.mnemonic, i + 1),
            ),
        }
    }

    fn mem(&self, i: usize) -> Result<(i32, Reg)> {
        match self.operands.get(i) {
            Some(Operand::Mem(e, base)) => {
                let d = eval_const(self.line, e, self.symbols)?;
                Ok((d as i32, *base))
            }
            // Bare symbol/number treated as absolute address off r0.
            Some(Operand::Expr(e)) => {
                let d = eval_const(self.line, e, self.symbols)?;
                Ok((d as i32, Reg::ZERO))
            }
            _ => err(
                self.line,
                format!("{} operand {} must be disp(base)", self.mnemonic, i + 1),
            ),
        }
    }

    fn rel(&self, i: usize) -> Result<i32> {
        let target = self.imm(i)?;
        Ok((target - i64::from(self.pc)) as i32)
    }
}

fn lower(
    line: usize,
    mnemonic: &str,
    operands: &[Operand],
    pc: u32,
    symbols: &BTreeMap<String, i64>,
) -> Result<Vec<Instruction>> {
    use Instruction as I;
    let o = Ops {
        line,
        mnemonic,
        operands,
        pc,
        symbols,
    };

    let alu = |op: AluOp| -> Result<Vec<Instruction>> {
        o.count(3)?;
        Ok(vec![I::Alu {
            op,
            rd: o.reg(0)?,
            rs1: o.reg(1)?,
            rs2: o.reg(2)?,
        }])
    };
    let alui = |op: AluImmOp| -> Result<Vec<Instruction>> {
        o.count(3)?;
        Ok(vec![I::AluImm {
            op,
            rd: o.reg(0)?,
            rs1: o.reg(1)?,
            imm: o.imm(2)? as i32,
        }])
    };
    let load = |w: MemWidth| -> Result<Vec<Instruction>> {
        o.count(2)?;
        let (disp, base) = o.mem(1)?;
        Ok(vec![I::Load {
            width: w,
            rd: o.reg(0)?,
            base,
            disp,
        }])
    };
    let store = |w: MemWidth| -> Result<Vec<Instruction>> {
        o.count(2)?;
        let (disp, base) = o.mem(1)?;
        Ok(vec![I::Store {
            width: w,
            rs: o.reg(0)?,
            base,
            disp,
        }])
    };
    let branch = |c: BranchCond| -> Result<Vec<Instruction>> {
        o.count(3)?;
        Ok(vec![I::Branch {
            cond: c,
            rs1: o.reg(0)?,
            rs2: o.reg(1)?,
            offset: o.rel(2)?,
        }])
    };

    match mnemonic {
        "add" => alu(AluOp::Add),
        "sub" => alu(AluOp::Sub),
        "and" => alu(AluOp::And),
        "or" => alu(AluOp::Or),
        "xor" => alu(AluOp::Xor),
        "sll" => alu(AluOp::Sll),
        "srl" => alu(AluOp::Srl),
        "sra" => alu(AluOp::Sra),
        "slt" => alu(AluOp::Slt),
        "sltu" => alu(AluOp::Sltu),
        "mul" => alu(AluOp::Mul),
        "divu" => alu(AluOp::Divu),
        "remu" => alu(AluOp::Remu),

        "addi" => alui(AluImmOp::Addi),
        "andi" => alui(AluImmOp::Andi),
        "ori" => alui(AluImmOp::Ori),
        "xori" => alui(AluImmOp::Xori),
        "slti" => alui(AluImmOp::Slti),
        "slli" => alui(AluImmOp::Slli),
        "srli" => alui(AluImmOp::Srli),
        "srai" => alui(AluImmOp::Srai),
        "lui" => {
            o.count(2)?;
            Ok(vec![I::Lui {
                rd: o.reg(0)?,
                imm: o.imm(1)? as u32,
            }])
        }

        "lw" => load(MemWidth::Word),
        "lb" => load(MemWidth::Byte),
        "lbu" => load(MemWidth::ByteU),
        "sw" => store(MemWidth::Word),
        "sb" => store(MemWidth::Byte),

        "beq" => branch(BranchCond::Eq),
        "bne" => branch(BranchCond::Ne),
        "blt" => branch(BranchCond::Lt),
        "bge" => branch(BranchCond::Ge),
        "bltu" => branch(BranchCond::Ltu),
        "bgeu" => branch(BranchCond::Geu),

        "jal" => {
            o.count(2)?;
            Ok(vec![I::Jal {
                rd: o.reg(0)?,
                offset: o.rel(1)?,
            }])
        }
        "jalr" => {
            o.count(3)?;
            Ok(vec![I::Jalr {
                rd: o.reg(0)?,
                base: o.reg(1)?,
                disp: o.imm(2)? as i32,
            }])
        }

        "mftod" => {
            o.count(1)?;
            Ok(vec![I::MfTod { rd: o.reg(0)? }])
        }
        "mftodh" => {
            o.count(1)?;
            Ok(vec![I::MfTodH { rd: o.reg(0)? }])
        }
        "mtit" => {
            o.count(1)?;
            Ok(vec![I::MtIt { rs: o.reg(0)? }])
        }
        "mfit" => {
            o.count(1)?;
            Ok(vec![I::MfIt { rd: o.reg(0)? }])
        }
        "mtctl" => {
            o.count(2)?;
            Ok(vec![I::MtCtl {
                cr: o.ctl(0)?,
                rs: o.reg(1)?,
            }])
        }
        "mfctl" => {
            o.count(2)?;
            Ok(vec![I::MfCtl {
                rd: o.reg(0)?,
                cr: o.ctl(1)?,
            }])
        }
        "rfi" => {
            o.count(0)?;
            Ok(vec![I::Rfi])
        }
        "tlbi" => {
            o.count(2)?;
            Ok(vec![I::Tlbi {
                rs1: o.reg(0)?,
                rs2: o.reg(1)?,
            }])
        }
        "tlbp" => {
            o.count(1)?;
            Ok(vec![I::Tlbp { rs: o.reg(0)? }])
        }
        "gate" => {
            o.count(1)?;
            Ok(vec![I::Gate {
                imm: o.imm(0)? as u32,
            }])
        }
        "ssm" => {
            o.count(1)?;
            Ok(vec![I::Ssm {
                imm: o.imm(0)? as u32,
            }])
        }
        "rsm" => {
            o.count(1)?;
            Ok(vec![I::Rsm {
                imm: o.imm(0)? as u32,
            }])
        }
        "probe" => {
            o.count(2)?;
            Ok(vec![I::Probe {
                rd: o.reg(0)?,
                rs: o.reg(1)?,
            }])
        }
        "halt" => {
            o.count(0)?;
            Ok(vec![I::Halt])
        }
        "idle" => {
            o.count(0)?;
            Ok(vec![I::Idle])
        }
        "brk" => {
            o.count(1)?;
            Ok(vec![I::Brk {
                imm: o.imm(0)? as u32,
            }])
        }
        "diag" => {
            o.count(2)?;
            Ok(vec![I::Diag {
                rs: o.reg(0)?,
                imm: o.imm(1)? as u32,
            }])
        }
        "nop" => {
            o.count(0)?;
            Ok(vec![I::Nop])
        }

        // -------------------------------------------------------------
        // Pseudo-instructions
        // -------------------------------------------------------------
        "li" | "la" => {
            o.count(2)?;
            let rd = o.reg(0)?;
            let value = o.imm(1)? as u32;
            Ok(vec![
                I::Lui {
                    rd,
                    imm: value >> 13,
                },
                I::AluImm {
                    op: AluImmOp::Ori,
                    rd,
                    rs1: rd,
                    imm: (value & 0x1FFF) as i32,
                },
            ])
        }
        "mv" => {
            o.count(2)?;
            Ok(vec![I::AluImm {
                op: AluImmOp::Addi,
                rd: o.reg(0)?,
                rs1: o.reg(1)?,
                imm: 0,
            }])
        }
        "b" | "j" => {
            o.count(1)?;
            let offset = o.rel(0)?;
            Ok(vec![I::Jal {
                rd: Reg::ZERO,
                offset,
            }])
        }
        "call" => {
            o.count(1)?;
            Ok(vec![I::Jal {
                rd: Reg::RA,
                offset: o.rel(0)?,
            }])
        }
        "ret" => {
            o.count(0)?;
            Ok(vec![I::Jalr {
                rd: Reg::ZERO,
                base: Reg::RA,
                disp: 0,
            }])
        }

        _ => err(line, format!("unknown mnemonic {mnemonic:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode;

    fn words_of(src: &str) -> Vec<Instruction> {
        let p = assemble(src).unwrap_or_else(|e| panic!("assemble failed: {e}"));
        p.words().map(|(_, w)| decode(w).unwrap()).collect()
    }

    #[test]
    fn simple_program() {
        let insns = words_of("start: addi r1, r0, 42\n halt\n");
        assert_eq!(insns.len(), 2);
        assert_eq!(
            insns[0],
            Instruction::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::RA,
                rs1: Reg::ZERO,
                imm: 42
            }
        );
        assert_eq!(insns[1], Instruction::Halt);
    }

    #[test]
    fn org_and_labels() {
        let p = assemble(".org 0x1000\nmain:\n nop\nnext:\n nop\n").unwrap();
        assert_eq!(p.symbol("main"), Some(0x1000));
        assert_eq!(p.symbol("next"), Some(0x1004));
        assert_eq!(p.entry, 0x1000);
    }

    #[test]
    fn entry_directive_overrides() {
        let p = assemble(".org 0\nfoo: nop\nbar: nop\n.entry bar\n").unwrap();
        assert_eq!(p.entry, 4);
    }

    #[test]
    fn equ_and_expressions() {
        let p = assemble(".equ BASE, 0x100\n.equ OFF, BASE + 8\n.org OFF\nx: nop\n").unwrap();
        assert_eq!(p.symbol("x"), Some(0x108));
    }

    #[test]
    fn branch_offsets_are_pc_relative() {
        let insns = words_of("top: nop\n beq r1, r2, top\n bne r1, r2, bottom\nbottom: nop\n");
        match insns[1] {
            Instruction::Branch {
                cond: BranchCond::Eq,
                offset,
                ..
            } => assert_eq!(offset, -4),
            ref other => panic!("expected beq, got {other}"),
        }
        match insns[2] {
            Instruction::Branch {
                cond: BranchCond::Ne,
                offset,
                ..
            } => assert_eq!(offset, 4),
            ref other => panic!("expected bne, got {other}"),
        }
    }

    #[test]
    fn li_expands_to_lui_ori() {
        let insns = words_of("start: li r5, 0xDEADBEEF\n");
        assert_eq!(insns.len(), 2);
        assert_eq!(
            insns[0],
            Instruction::Lui {
                rd: Reg::of(5),
                imm: 0xDEADBEEF >> 13
            }
        );
        assert_eq!(
            insns[1],
            Instruction::AluImm {
                op: AluImmOp::Ori,
                rd: Reg::of(5),
                rs1: Reg::of(5),
                imm: (0xDEADBEEFu32 & 0x1FFF) as i32
            }
        );
    }

    #[test]
    fn la_resolves_labels() {
        let p = assemble(".org 0x2000\nmain: la r4, data\n halt\ndata: .word 7\n").unwrap();
        let insns: Vec<_> = p.words().take(3).map(|(_, w)| decode(w).unwrap()).collect();
        // data is at 0x2000 + 12.
        let addr = 0x200Cu32;
        assert_eq!(
            insns[0],
            Instruction::Lui {
                rd: Reg::of(4),
                imm: addr >> 13
            }
        );
    }

    #[test]
    fn memory_operands() {
        let insns = words_of("f: lw r1, 8(r2)\n sw r1, -4(sp)\n lw r3, 16(r0)\n");
        assert_eq!(
            insns[0],
            Instruction::Load {
                width: MemWidth::Word,
                rd: Reg::RA,
                base: Reg::SP,
                disp: 8
            }
        );
        assert_eq!(
            insns[2],
            Instruction::Load {
                width: MemWidth::Word,
                rd: Reg::GP,
                base: Reg::ZERO,
                disp: 16
            }
        );
    }

    #[test]
    fn data_directives() {
        let p =
            assemble(".org 0\nd: .word 0x11223344, 5\n .byte 1, 2\n .space 2\n .asciiz \"ab\"\n")
                .unwrap();
        let seg = &p.segments[0];
        assert_eq!(&seg.data[0..4], &[0x44, 0x33, 0x22, 0x11]);
        assert_eq!(&seg.data[4..8], &[5, 0, 0, 0]);
        assert_eq!(&seg.data[8..10], &[1, 2]);
        assert_eq!(&seg.data[10..12], &[0, 0]);
        assert_eq!(&seg.data[12..15], b"ab\0");
    }

    #[test]
    fn align_pads() {
        let p = assemble(".org 0\n .byte 1\n .align 4\nx: nop\n").unwrap();
        assert_eq!(p.symbol("x"), Some(4));
    }

    #[test]
    fn call_and_ret() {
        let insns = words_of("main: call f\n halt\nf: ret\n");
        assert_eq!(
            insns[0],
            Instruction::Jal {
                rd: Reg::RA,
                offset: 8
            }
        );
        assert_eq!(
            insns[2],
            Instruction::Jalr {
                rd: Reg::ZERO,
                base: Reg::RA,
                disp: 0
            }
        );
    }

    #[test]
    fn ctl_registers() {
        let insns = words_of("t: mtctl rctr, r7\n mfctl r8, eirr\n");
        assert_eq!(
            insns[0],
            Instruction::MtCtl {
                cr: ControlReg::Rctr,
                rs: Reg::of(7)
            }
        );
        assert_eq!(
            insns[1],
            Instruction::MfCtl {
                rd: Reg::of(8),
                cr: ControlReg::Eirr
            }
        );
    }

    #[test]
    fn comments_are_stripped() {
        let insns = words_of("x: nop ; trailing\n // whole line\n nop\n");
        assert_eq!(insns.len(), 2);
    }

    #[test]
    fn errors_have_line_numbers() {
        let e = assemble("one: nop\n bogus r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("bogus"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a: nop\na: nop\n").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn undefined_symbol_rejected() {
        let e = assemble("x: jal ra, nowhere\n").unwrap_err();
        assert!(e.msg.contains("undefined"), "{e}");
    }

    #[test]
    fn branch_out_of_range_rejected() {
        // A branch across > 32 KB must fail to encode.
        let src = format!("a: beq r0, r0, far\n .space {}\nfar: nop\n", 40_000);
        let e = assemble(&src).unwrap_err();
        assert!(e.msg.contains("does not fit"), "{e}");
    }

    #[test]
    fn multiple_labels_one_line() {
        let p = assemble("a: b_label: nop\n").unwrap();
        assert_eq!(p.symbol("a"), p.symbol("b_label"));
    }

    #[test]
    fn char_literals() {
        let insns = words_of("x: addi r1, r0, 'A'\n");
        assert_eq!(
            insns[0],
            Instruction::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::RA,
                rs1: Reg::ZERO,
                imm: 65
            }
        );
    }
}
