//! The hvft instruction set.
//!
//! A 32-bit fixed-width RISC ISA modelled on the features of HP PA-RISC
//! that the paper's protocols depend on:
//!
//! - **ordinary instructions** (ALU, memory, control transfer) whose effect
//!   is fully determined by the virtual-machine state;
//! - **environment instructions** (time-of-day clock, interval timer,
//!   `halt`/`idle`) whose effect is not, and which must therefore be
//!   simulated by the hypervisor;
//! - the PA-RISC *virtualization holes* the paper's §3 works around:
//!   `jal`/`jalr` deposit the current privilege level in the low bits of the
//!   return address, and `probe`/`gate` reveal the privilege level;
//! - a **recovery counter** control register for epoch delimitation.
//!
//! I/O is memory-mapped: loads and stores to device pages reach the devices
//! (or trap to the hypervisor), exactly as on PA-RISC.

use crate::reg::{ControlReg, Reg};
use core::fmt;

/// Three-register ALU operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Two's-complement addition (wrapping).
    Add,
    /// Two's-complement subtraction (wrapping).
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left by `rs2 & 31`.
    Sll,
    /// Logical shift right by `rs2 & 31`.
    Srl,
    /// Arithmetic shift right by `rs2 & 31`.
    Sra,
    /// Signed less-than (result 0 or 1).
    Slt,
    /// Unsigned less-than (result 0 or 1).
    Sltu,
    /// Wrapping multiplication (low 32 bits).
    Mul,
    /// Unsigned division; divide-by-zero raises an arithmetic trap.
    Divu,
    /// Unsigned remainder; divide-by-zero raises an arithmetic trap.
    Remu,
}

/// Register-immediate ALU operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluImmOp {
    /// Add sign-extended 14-bit immediate.
    Addi,
    /// AND with zero-extended 14-bit immediate.
    Andi,
    /// OR with zero-extended 14-bit immediate.
    Ori,
    /// XOR with zero-extended 14-bit immediate.
    Xori,
    /// Signed less-than against sign-extended immediate.
    Slti,
    /// Shift left logical by immediate (0..=31).
    Slli,
    /// Shift right logical by immediate (0..=31).
    Srli,
    /// Shift right arithmetic by immediate (0..=31).
    Srai,
}

/// Memory access widths.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemWidth {
    /// 32-bit word (must be 4-byte aligned).
    Word,
    /// Sign-extended byte.
    Byte,
    /// Zero-extended byte (loads only).
    ByteU,
}

/// Branch conditions comparing two registers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// A decoded hvft instruction.
///
/// Displayed in assembler syntax:
///
/// ```
/// use hvft_isa::instruction::Instruction;
/// use hvft_isa::reg::Reg;
///
/// let i = Instruction::Jalr { rd: Reg::ZERO, base: Reg::RA, disp: 0 };
/// assert_eq!(format!("{i}"), "jalr r0, r1, 0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Instruction {
    /// Three-register ALU operation: `rd := rs1 op rs2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Register-immediate ALU operation: `rd := rs1 op imm`.
    AluImm {
        /// Operation.
        op: AluImmOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Immediate; interpretation (sign/zero extension) depends on `op`.
        imm: i32,
    },
    /// Load upper immediate: `rd := imm19 << 13`.
    Lui {
        /// Destination.
        rd: Reg,
        /// 19-bit immediate (stored unshifted).
        imm: u32,
    },
    /// Load from memory: `rd := mem[rs1 + disp]`.
    Load {
        /// Access width.
        width: MemWidth,
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed 14-bit displacement.
        disp: i32,
    },
    /// Store to memory: `mem[rs1 + disp] := rs`.
    Store {
        /// Access width (`ByteU` is invalid for stores).
        width: MemWidth,
        /// Value register.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Signed 14-bit displacement.
        disp: i32,
    },
    /// Conditional branch, PC-relative: `if rs1 cond rs2 then pc += offset`.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First comparand.
        rs1: Reg,
        /// Second comparand.
        rs2: Reg,
        /// Byte offset from the branch instruction (multiple of 4).
        offset: i32,
    },
    /// Jump and link, PC-relative.
    ///
    /// **PA-RISC quirk (paper §3.1):** the return address written to `rd`
    /// is `(pc + 4) | cpl` — the current privilege level leaks into the
    /// low bits, which is exactly why HP-UX's boot-time `branch-and-link`
    /// use had to be patched.
    Jal {
        /// Link register (receives `(pc+4) | cpl`).
        rd: Reg,
        /// Byte offset from this instruction (multiple of 4).
        offset: i32,
    },
    /// Jump and link register: `pc := (rs1 + disp) & !3`, same link quirk.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Base register.
        base: Reg,
        /// Signed displacement.
        disp: i32,
    },
    /// Read low 32 bits of the time-of-day clock (environment; privileged).
    MfTod {
        /// Destination.
        rd: Reg,
    },
    /// Read high 32 bits of the time-of-day clock (environment; privileged).
    MfTodH {
        /// Destination.
        rd: Reg,
    },
    /// Load the interval timer: an external interrupt fires after `rs`
    /// microseconds (environment; privileged).
    MtIt {
        /// Countdown in microseconds.
        rs: Reg,
    },
    /// Read the interval timer's remaining microseconds (environment;
    /// privileged).
    MfIt {
        /// Destination.
        rd: Reg,
    },
    /// Move to control register (privileged).
    MtCtl {
        /// Destination control register.
        cr: ControlReg,
        /// Source.
        rs: Reg,
    },
    /// Move from control register (privileged).
    MfCtl {
        /// Destination.
        rd: Reg,
        /// Source control register.
        cr: ControlReg,
    },
    /// Return from interruption: `psw := ipsw; pc := iip` (privileged).
    Rfi,
    /// TLB insert: map the page of vaddr `rs1` per PTE word `rs2`
    /// (privileged).
    Tlbi {
        /// Virtual address whose page is being mapped.
        rs1: Reg,
        /// PTE word: `pfn << 12 | flags`.
        rs2: Reg,
    },
    /// TLB purge: remove the entry for vaddr `rs`; purge all if `rs` is
    /// `r0` (privileged).
    Tlbp {
        /// Virtual address selector.
        rs: Reg,
    },
    /// Controlled privilege promotion — traps to the kernel's gate vector
    /// with `imm` as the service number (non-privileged; reveals privilege
    /// by its very semantics, one of the paper's virtualization holes).
    Gate {
        /// Service number, available to the kernel in `traparg`.
        imm: u32,
    },
    /// Probe read access to vaddr `rs` at the current privilege level:
    /// `rd := 1` if readable else 0 (non-privileged; reveals privilege).
    Probe {
        /// Result register.
        rd: Reg,
        /// Address to test.
        rs: Reg,
    },
    /// Set system-mask bits in the PSW (privileged): bit 0 enables
    /// interrupts, bit 1 enables translation.
    Ssm {
        /// Mask of PSW bits to set.
        imm: u32,
    },
    /// Reset system-mask bits in the PSW (privileged); same bit layout as
    /// [`Instruction::Ssm`].
    Rsm {
        /// Mask of PSW bits to clear.
        imm: u32,
    },
    /// Stop the processor (environment; privileged).
    Halt,
    /// Wait until an external interrupt is pending (environment;
    /// privileged).
    Idle,
    /// Breakpoint trap.
    Brk {
        /// Debugger tag.
        imm: u32,
    },
    /// Diagnostic escape: signals the simulation harness (privileged).
    ///
    /// Used by benchmark guests to mark iteration boundaries; a real
    /// machine would treat it as a no-op diagnose instruction.
    Diag {
        /// Argument register.
        rs: Reg,
        /// Marker code.
        imm: u32,
    },
    /// No operation.
    Nop,
}

impl Instruction {
    /// Whether this instruction is **privileged**: executing it at any
    /// privilege level other than 0 raises a `PrivilegedOp` trap.
    ///
    /// Under the hypervisor the guest kernel runs at (real) level 1, so
    /// every privileged instruction traps and is simulated — this is the
    /// mechanism behind the paper's Environment Instruction Assumption.
    pub const fn is_privileged(self) -> bool {
        matches!(
            self,
            Instruction::MfTod { .. }
                | Instruction::MfTodH { .. }
                | Instruction::MtIt { .. }
                | Instruction::MfIt { .. }
                | Instruction::MtCtl { .. }
                | Instruction::MfCtl { .. }
                | Instruction::Rfi
                | Instruction::Tlbi { .. }
                | Instruction::Tlbp { .. }
                | Instruction::Ssm { .. }
                | Instruction::Rsm { .. }
                | Instruction::Halt
                | Instruction::Idle
                | Instruction::Diag { .. }
        )
    }

    /// Whether this instruction ends a predecoded basic block.
    ///
    /// A block is a straight-line run of instructions that a block
    /// interpreter may execute without re-checking anything between
    /// them. That requires every non-final instruction to (a) fall
    /// through to `pc + 4` and (b) leave the fetch/translation and
    /// interrupt machinery untouched. Terminators are therefore:
    ///
    /// - control transfers (`branch`, `jal`, `jalr`) and trapping
    ///   transfers (`gate`, `brk`), whose successor is not `pc + 4`;
    /// - every privileged instruction: executed at level 0 these can
    ///   rewrite the PSW (`ssm`/`rsm`/`rfi`), the TLB (`tlbi`/`tlbp`),
    ///   control registers, or stop the machine, and executed above
    ///   level 0 they trap — either way the block interpreter must
    ///   re-establish its invariants afterwards.
    ///
    /// Ordinary ALU/memory instructions, `lui`, `nop` and `probe` never
    /// terminate a block (faults they raise are reported per
    /// instruction regardless).
    pub const fn is_block_terminator(self) -> bool {
        self.is_privileged()
            || matches!(
                self,
                Instruction::Branch { .. }
                    | Instruction::Jal { .. }
                    | Instruction::Jalr { .. }
                    | Instruction::Gate { .. }
                    | Instruction::Brk { .. }
            )
    }

    /// Whether this is an **environment instruction** in the paper's sense:
    /// its behaviour is *not* fully determined by the virtual-machine state,
    /// so the hypervisor must simulate it identically at primary and backup.
    pub const fn is_environment(self) -> bool {
        matches!(
            self,
            Instruction::MfTod { .. }
                | Instruction::MfTodH { .. }
                | Instruction::MtIt { .. }
                | Instruction::MfIt { .. }
                | Instruction::Halt
                | Instruction::Idle
        )
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction as I;
        match *self {
            I::Alu { op, rd, rs1, rs2 } => {
                let name = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::And => "and",
                    AluOp::Or => "or",
                    AluOp::Xor => "xor",
                    AluOp::Sll => "sll",
                    AluOp::Srl => "srl",
                    AluOp::Sra => "sra",
                    AluOp::Slt => "slt",
                    AluOp::Sltu => "sltu",
                    AluOp::Mul => "mul",
                    AluOp::Divu => "divu",
                    AluOp::Remu => "remu",
                };
                write!(f, "{name} {rd}, {rs1}, {rs2}")
            }
            I::AluImm { op, rd, rs1, imm } => {
                let name = match op {
                    AluImmOp::Addi => "addi",
                    AluImmOp::Andi => "andi",
                    AluImmOp::Ori => "ori",
                    AluImmOp::Xori => "xori",
                    AluImmOp::Slti => "slti",
                    AluImmOp::Slli => "slli",
                    AluImmOp::Srli => "srli",
                    AluImmOp::Srai => "srai",
                };
                write!(f, "{name} {rd}, {rs1}, {imm}")
            }
            I::Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            I::Load {
                width,
                rd,
                base,
                disp,
            } => {
                let name = match width {
                    MemWidth::Word => "lw",
                    MemWidth::Byte => "lb",
                    MemWidth::ByteU => "lbu",
                };
                write!(f, "{name} {rd}, {disp}({base})")
            }
            I::Store {
                width,
                rs,
                base,
                disp,
            } => {
                let name = match width {
                    MemWidth::Word => "sw",
                    MemWidth::Byte | MemWidth::ByteU => "sb",
                };
                write!(f, "{name} {rs}, {disp}({base})")
            }
            I::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let name = match cond {
                    BranchCond::Eq => "beq",
                    BranchCond::Ne => "bne",
                    BranchCond::Lt => "blt",
                    BranchCond::Ge => "bge",
                    BranchCond::Ltu => "bltu",
                    BranchCond::Geu => "bgeu",
                };
                write!(f, "{name} {rs1}, {rs2}, {offset}")
            }
            I::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            I::Jalr { rd, base, disp } => write!(f, "jalr {rd}, {base}, {disp}"),
            I::MfTod { rd } => write!(f, "mftod {rd}"),
            I::MfTodH { rd } => write!(f, "mftodh {rd}"),
            I::MtIt { rs } => write!(f, "mtit {rs}"),
            I::MfIt { rd } => write!(f, "mfit {rd}"),
            I::MtCtl { cr, rs } => write!(f, "mtctl {cr}, {rs}"),
            I::MfCtl { rd, cr } => write!(f, "mfctl {rd}, {cr}"),
            I::Rfi => write!(f, "rfi"),
            I::Tlbi { rs1, rs2 } => write!(f, "tlbi {rs1}, {rs2}"),
            I::Tlbp { rs } => write!(f, "tlbp {rs}"),
            I::Gate { imm } => write!(f, "gate {imm}"),
            I::Ssm { imm } => write!(f, "ssm {imm}"),
            I::Rsm { imm } => write!(f, "rsm {imm}"),
            I::Probe { rd, rs } => write!(f, "probe {rd}, {rs}"),
            I::Halt => write!(f, "halt"),
            I::Idle => write!(f, "idle"),
            I::Brk { imm } => write!(f, "brk {imm}"),
            I::Diag { rs, imm } => write!(f, "diag {rs}, {imm}"),
            I::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privileged_classification() {
        assert!(Instruction::Halt.is_privileged());
        assert!(Instruction::Rfi.is_privileged());
        assert!(Instruction::MfTod { rd: Reg::of(1) }.is_privileged());
        assert!(!Instruction::Gate { imm: 3 }.is_privileged());
        assert!(!Instruction::Probe {
            rd: Reg::of(1),
            rs: Reg::of(2)
        }
        .is_privileged());
        assert!(!Instruction::Nop.is_privileged());
        assert!(!Instruction::Alu {
            op: AluOp::Add,
            rd: Reg::of(1),
            rs1: Reg::of(2),
            rs2: Reg::of(3)
        }
        .is_privileged());
    }

    #[test]
    fn environment_classification() {
        // Environment instructions are exactly those whose results depend on
        // state outside the virtual machine.
        assert!(Instruction::MfTod { rd: Reg::of(1) }.is_environment());
        assert!(Instruction::MtIt { rs: Reg::of(1) }.is_environment());
        assert!(Instruction::Idle.is_environment());
        // Control-register moves are privileged but their effects are part
        // of the VM state, hence not environment instructions.
        assert!(!Instruction::MtCtl {
            cr: ControlReg::Rctr,
            rs: Reg::of(1)
        }
        .is_environment());
        assert!(!Instruction::Rfi.is_environment());
    }

    #[test]
    fn block_terminator_classification() {
        use Instruction as I;
        // Control transfers and trap-raising instructions end blocks.
        assert!(I::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::of(1),
            rs2: Reg::of(2),
            offset: 8
        }
        .is_block_terminator());
        assert!(I::Jal {
            rd: Reg::RA,
            offset: 4
        }
        .is_block_terminator());
        assert!(I::Jalr {
            rd: Reg::ZERO,
            base: Reg::RA,
            disp: 0
        }
        .is_block_terminator());
        assert!(I::Gate { imm: 1 }.is_block_terminator());
        assert!(I::Brk { imm: 0 }.is_block_terminator());
        // Every privileged instruction is a terminator.
        assert!(I::Rfi.is_block_terminator());
        assert!(I::Ssm { imm: 3 }.is_block_terminator());
        assert!(I::Tlbp { rs: Reg::ZERO }.is_block_terminator());
        assert!(I::Halt.is_block_terminator());
        // Straight-line instructions are not.
        assert!(!I::Nop.is_block_terminator());
        assert!(!I::Lui {
            rd: Reg::of(1),
            imm: 1
        }
        .is_block_terminator());
        assert!(!I::Load {
            width: MemWidth::Word,
            rd: Reg::of(1),
            base: Reg::of(2),
            disp: 0
        }
        .is_block_terminator());
        assert!(!I::Store {
            width: MemWidth::Word,
            rs: Reg::of(1),
            base: Reg::of(2),
            disp: 0
        }
        .is_block_terminator());
        assert!(!I::Probe {
            rd: Reg::of(1),
            rs: Reg::of(2)
        }
        .is_block_terminator());
    }

    #[test]
    fn decoded_storage_is_compact() {
        // Blocks store predecoded instructions by value; keep the enum
        // small enough that a cached block stays cache-friendly.
        assert!(std::mem::size_of::<Instruction>() <= 16);
    }

    #[test]
    fn display_forms() {
        use Instruction as I;
        let cases: Vec<(I, &str)> = vec![
            (
                I::Alu {
                    op: AluOp::Add,
                    rd: Reg::of(1),
                    rs1: Reg::of(2),
                    rs2: Reg::of(3),
                },
                "add r1, r2, r3",
            ),
            (
                I::AluImm {
                    op: AluImmOp::Addi,
                    rd: Reg::of(4),
                    rs1: Reg::ZERO,
                    imm: -5,
                },
                "addi r4, r0, -5",
            ),
            (
                I::Lui {
                    rd: Reg::of(5),
                    imm: 0x1f,
                },
                "lui r5, 0x1f",
            ),
            (
                I::Load {
                    width: MemWidth::Word,
                    rd: Reg::of(6),
                    base: Reg::SP,
                    disp: 8,
                },
                "lw r6, 8(r2)",
            ),
            (
                I::Store {
                    width: MemWidth::Byte,
                    rs: Reg::of(7),
                    base: Reg::GP,
                    disp: -4,
                },
                "sb r7, -4(r3)",
            ),
            (
                I::Branch {
                    cond: BranchCond::Ne,
                    rs1: Reg::of(1),
                    rs2: Reg::ZERO,
                    offset: -8,
                },
                "bne r1, r0, -8",
            ),
            (
                I::Jal {
                    rd: Reg::RA,
                    offset: 16,
                },
                "jal r1, 16",
            ),
            (
                I::MtCtl {
                    cr: ControlReg::Eiem,
                    rs: Reg::of(9),
                },
                "mtctl eiem, r9",
            ),
            (I::Rfi, "rfi"),
            (I::Halt, "halt"),
        ];
        for (insn, expect) in cases {
            assert_eq!(format!("{insn}"), expect);
        }
    }
}
