//! Disassembly helpers for debugging guest images.

use crate::codec::decode;
use crate::program::Program;

/// One disassembled line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DisasmLine {
    /// Word address.
    pub addr: u32,
    /// Raw word.
    pub word: u32,
    /// Assembly text, or `None` for data words that do not decode.
    pub text: Option<String>,
    /// Labels (from the program's symbol table) at this address.
    pub labels: Vec<String>,
}

/// Disassembles every whole word of a program image, annotating
/// addresses with symbol-table labels.
///
/// # Examples
///
/// ```
/// use hvft_isa::asm::assemble;
/// use hvft_isa::disasm::disassemble;
///
/// let p = assemble(".org 0\nmain: addi r1, r0, 7\n halt\n").unwrap();
/// let lines = disassemble(&p);
/// assert_eq!(lines[0].labels, vec!["main".to_owned()]);
/// assert_eq!(lines[0].text.as_deref(), Some("addi r1, r0, 7"));
/// assert_eq!(lines[1].text.as_deref(), Some("halt"));
/// ```
pub fn disassemble(program: &Program) -> Vec<DisasmLine> {
    program
        .words()
        .map(|(addr, word)| {
            let labels: Vec<String> = program
                .symbols
                .iter()
                .filter(|&(_, &a)| a == addr)
                .map(|(name, _)| name.clone())
                .collect();
            let text = decode(word).ok().map(|i| i.to_string());
            DisasmLine {
                addr,
                word,
                text,
                labels,
            }
        })
        .collect()
}

/// Renders a disassembly as printable lines.
pub fn render(program: &Program) -> String {
    let mut out = String::new();
    for line in disassemble(program) {
        for label in &line.labels {
            out.push_str(&format!("{label}:\n"));
        }
        match &line.text {
            Some(t) => out.push_str(&format!("  {:#010x}: {:08x}  {t}\n", line.addr, line.word)),
            None => out.push_str(&format!(
                "  {:#010x}: {:08x}  .word\n",
                line.addr, line.word
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn round_trips_a_small_program() {
        let p = assemble(
            ".org 0x100
            start:
                addi r4, r0, 1
                beq  r4, r0, start
            done:
                halt
            data:
                .word 0xFFFFFFFF",
        )
        .unwrap();
        let lines = disassemble(&p);
        assert_eq!(lines.len(), 4);
        assert!(lines[0].labels.contains(&"start".to_owned()));
        assert_eq!(lines[2].labels, vec!["done".to_owned()]);
        // 0xFFFFFFFF has an invalid opcode → data.
        assert!(lines[3].text.is_none());
    }

    #[test]
    fn render_is_printable() {
        let p = assemble("main: nop\n halt\n").unwrap();
        let text = render(&p);
        assert!(text.contains("main:"));
        assert!(text.contains("nop"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn whole_kernel_disassembles() {
        // Every instruction the kernel generator emits must decode back.
        let src = r"
        .org 0x1000
        k:  mftod r4
            mtctl eiem, r5
            ssm 1
            rsm 1
            tlbi r6, r7
            gate 3
            rfi
        ";
        let p = assemble(src).unwrap();
        for line in disassemble(&p) {
            assert!(
                line.text.is_some(),
                "word {:#010x} at {:#x} failed",
                line.word,
                line.addr
            );
        }
    }
}
