//! Disassembly helpers for debugging guest images.

use crate::codec::{decode, encode};
use crate::instruction::Instruction;
use crate::program::Program;

/// One disassembled line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DisasmLine {
    /// Word address.
    pub addr: u32,
    /// Raw word.
    pub word: u32,
    /// Assembly text, or `None` for data words that do not decode.
    pub text: Option<String>,
    /// Labels (from the program's symbol table) at this address.
    pub labels: Vec<String>,
}

/// Disassembles every whole word of a program image, annotating
/// addresses with symbol-table labels.
///
/// # Examples
///
/// ```
/// use hvft_isa::asm::assemble;
/// use hvft_isa::disasm::disassemble;
///
/// let p = assemble(".org 0\nmain: addi r1, r0, 7\n halt\n").unwrap();
/// let lines = disassemble(&p);
/// assert_eq!(lines[0].labels, vec!["main".to_owned()]);
/// assert_eq!(lines[0].text.as_deref(), Some("addi r1, r0, 7"));
/// assert_eq!(lines[1].text.as_deref(), Some("halt"));
/// ```
pub fn disassemble(program: &Program) -> Vec<DisasmLine> {
    program
        .words()
        .map(|(addr, word)| {
            let labels: Vec<String> = program
                .symbols
                .iter()
                .filter(|&(_, &a)| a == addr)
                .map(|(name, _)| name.clone())
                .collect();
            let text = decode(word).ok().map(|i| i.to_string());
            DisasmLine {
                addr,
                word,
                text,
                labels,
            }
        })
        .collect()
}

/// Renders a disassembly as printable lines.
pub fn render(program: &Program) -> String {
    let mut out = String::new();
    for line in disassemble(program) {
        for label in &line.labels {
            out.push_str(&format!("{label}:\n"));
        }
        match &line.text {
            Some(t) => out.push_str(&format!("  {:#010x}: {:08x}  {t}\n", line.addr, line.word)),
            None => out.push_str(&format!(
                "  {:#010x}: {:08x}  .word\n",
                line.addr, line.word
            )),
        }
    }
    out
}

/// The text of one instruction as *re-assemblable* source.
///
/// [`Instruction`]'s `Display` prints PC-relative branch/jump operands
/// as raw byte offsets, but the assembler's branch operand is an
/// **absolute target expression** — so offsets are converted back to
/// absolute addresses here. Everything else reuses `Display`, whose
/// grammar the assembler parses (pinned by the `proptest_roundtrip`
/// suite).
fn source_text(addr: u32, insn: &Instruction) -> String {
    let target = |offset: i32| addr.wrapping_add_signed(offset);
    match insn {
        Instruction::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => {
            let shown = Instruction::Branch {
                cond: *cond,
                rs1: *rs1,
                rs2: *rs2,
                offset: 0,
            };
            let mnemonic = shown.to_string();
            let head = mnemonic
                .rsplit_once(' ')
                .map_or(mnemonic.as_str(), |(h, _)| h);
            format!("{head} {:#x}", target(*offset))
        }
        Instruction::Jal { rd, offset } => format!("jal {rd}, {:#x}", target(*offset)),
        other => other.to_string(),
    }
}

/// Renders a program as **assembler source**: `.org` per segment,
/// labels from the symbol table, `.equ` for off-image symbols,
/// `.word`/`.byte` for data that does not decode, and a final
/// `.entry`. Feeding the result back through [`crate::asm::assemble`]
/// reproduces the image bit-for-bit (same words, symbols and entry),
/// and a second `to_source` is string-identical — the fixpoint the
/// `asm_disasm_roundtrip` integration test pins.
///
/// # Examples
///
/// ```
/// use hvft_isa::asm::assemble;
/// use hvft_isa::disasm::to_source;
///
/// let p = assemble(".org 0x100\nmain: addi r4, r0, 7\nloop: beq r4, r0, loop\n halt\n").unwrap();
/// let src = to_source(&p);
/// let q = assemble(&src).unwrap();
/// assert_eq!(p.words().collect::<Vec<_>>(), q.words().collect::<Vec<_>>());
/// assert_eq!(p.symbols, q.symbols);
/// assert_eq!(src, to_source(&q));
/// ```
pub fn to_source(program: &Program) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let mut labelled: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();

    for seg in &program.segments {
        let _ = writeln!(out, ".org {:#x}", seg.base);
        let whole_words = seg.data.len() / 4;
        let emit_labels =
            |out: &mut String, labelled: &mut std::collections::BTreeSet<String>, addr: u32| {
                for (name, _) in program.symbols.iter().filter(|&(_, &a)| a == addr) {
                    if labelled.insert(name.clone()) {
                        let _ = writeln!(out, "{name}:");
                    }
                }
            };
        for i in 0..whole_words {
            let addr = seg.base + (i as u32) * 4;
            let word = u32::from_le_bytes([
                seg.data[i * 4],
                seg.data[i * 4 + 1],
                seg.data[i * 4 + 2],
                seg.data[i * 4 + 3],
            ]);
            emit_labels(&mut out, &mut labelled, addr);
            // Only print as an instruction when the encoding round
            // trips exactly; a data word that happens to decode (but
            // with, say, ignored bits set) must stay a `.word`.
            match decode(word) {
                Ok(insn) if encode(insn) == Ok(word) => {
                    let _ = writeln!(out, "    {}", source_text(addr, &insn));
                }
                _ => {
                    let _ = writeln!(out, "    .word {word:#010x}");
                }
            }
        }
        for (i, byte) in seg.data[whole_words * 4..].iter().enumerate() {
            let addr = seg.base + (whole_words * 4 + i) as u32;
            emit_labels(&mut out, &mut labelled, addr);
            let _ = writeln!(out, "    .byte {byte:#04x}");
        }
        emit_labels(&mut out, &mut labelled, seg.end());
    }

    // Symbols that did not land on an emittable boundary (`.equ`
    // constants, addresses outside any segment) are preserved as
    // explicit equates.
    for (name, &addr) in &program.symbols {
        if !labelled.contains(name) {
            let _ = writeln!(out, ".equ {name}, {addr:#x}");
        }
    }
    let _ = writeln!(out, ".entry {:#x}", program.entry);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn round_trips_a_small_program() {
        let p = assemble(
            ".org 0x100
            start:
                addi r4, r0, 1
                beq  r4, r0, start
            done:
                halt
            data:
                .word 0xFFFFFFFF",
        )
        .unwrap();
        let lines = disassemble(&p);
        assert_eq!(lines.len(), 4);
        assert!(lines[0].labels.contains(&"start".to_owned()));
        assert_eq!(lines[2].labels, vec!["done".to_owned()]);
        // 0xFFFFFFFF has an invalid opcode → data.
        assert!(lines[3].text.is_none());
    }

    #[test]
    fn render_is_printable() {
        let p = assemble("main: nop\n halt\n").unwrap();
        let text = render(&p);
        assert!(text.contains("main:"));
        assert!(text.contains("nop"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn whole_kernel_disassembles() {
        // Every instruction the kernel generator emits must decode back.
        let src = r"
        .org 0x1000
        k:  mftod r4
            mtctl eiem, r5
            ssm 1
            rsm 1
            tlbi r6, r7
            gate 3
            rfi
        ";
        let p = assemble(src).unwrap();
        for line in disassemble(&p) {
            assert!(
                line.text.is_some(),
                "word {:#010x} at {:#x} failed",
                line.word,
                line.addr
            );
        }
    }
}
