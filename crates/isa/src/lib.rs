//! `hvft-isa` — the instruction-set architecture of the hvft virtual
//! machine.
//!
//! A 32-bit fixed-width RISC ISA whose design mirrors the PA-RISC features
//! the paper's protocols rest on: ordinary vs. environment instructions,
//! four privilege levels with leaky `jal`/`probe`/`gate` semantics, a
//! software-managed TLB, and a recovery counter. See [`instruction`] for
//! the full catalogue, [`codec`] for the binary format, and [`asm`] for
//! the assembler in which the guest mini-OS is written.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod codec;
pub mod disasm;
pub mod instruction;
pub mod program;
pub mod reg;

pub use asm::{assemble, AsmError};
pub use codec::{decode, encode, DecodeError, EncodeError};
pub use disasm::{disassemble, DisasmLine};
pub use instruction::{AluImmOp, AluOp, BranchCond, Instruction, MemWidth};
pub use program::{Program, Segment};
pub use reg::{ControlReg, Reg};
