//! Binary encoding and decoding of instructions.
//!
//! Every instruction is one little-endian 32-bit word:
//!
//! ```text
//!  31      24 23   19 18   14 13      9 8        0
//! +----------+-------+-------+---------+----------+
//! |  opcode  |  rd   |  rs1  |   rs2   |  unused  |   R-type
//! |  opcode  |  rd   |  rs1  |      imm14         |   I-type (signed/unsigned per op)
//! |  opcode  |  rd   |          imm19             |   LUI / JAL (JAL: signed words)
//! |  opcode  |  rs1  |  rs2  |      imm14         |   branches (signed words)
//! +----------+-------+-------+--------------------+
//! ```

use crate::instruction::{AluImmOp, AluOp, BranchCond, Instruction, MemWidth};
use crate::reg::{ControlReg, Reg};
use core::fmt;

/// Errors from [`encode`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EncodeError {
    /// An immediate does not fit its field.
    ImmOutOfRange {
        /// The offending value.
        value: i64,
        /// Number of bits available (after any implicit scaling).
        bits: u32,
        /// Whether the field is signed.
        signed: bool,
    },
    /// A branch or jump offset is not a multiple of 4.
    MisalignedOffset {
        /// The offending offset.
        offset: i32,
    },
    /// A store with `ByteU` width (loads only).
    InvalidStoreWidth,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EncodeError::ImmOutOfRange {
                value,
                bits,
                signed,
            } => {
                let kind = if signed { "signed" } else { "unsigned" };
                write!(f, "immediate {value} does not fit in {bits} {kind} bits")
            }
            EncodeError::MisalignedOffset { offset } => {
                write!(f, "control-transfer offset {offset} is not a multiple of 4")
            }
            EncodeError::InvalidStoreWidth => write!(f, "stores cannot use unsigned byte width"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Errors from [`decode`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Unknown opcode byte.
    BadOpcode {
        /// The opcode field.
        opcode: u8,
    },
    /// A field held an invalid value (e.g. control-register index).
    BadField {
        /// The raw word.
        word: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::BadOpcode { opcode } => write!(f, "unknown opcode {opcode:#04x}"),
            DecodeError::BadField { word } => write!(f, "invalid field in word {word:#010x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Opcode space.
mod op {
    pub const ADD: u8 = 0x01;
    pub const SUB: u8 = 0x02;
    pub const AND: u8 = 0x03;
    pub const OR: u8 = 0x04;
    pub const XOR: u8 = 0x05;
    pub const SLL: u8 = 0x06;
    pub const SRL: u8 = 0x07;
    pub const SRA: u8 = 0x08;
    pub const SLT: u8 = 0x09;
    pub const SLTU: u8 = 0x0A;
    pub const MUL: u8 = 0x0B;
    pub const DIVU: u8 = 0x0C;
    pub const REMU: u8 = 0x0D;

    pub const ADDI: u8 = 0x10;
    pub const ANDI: u8 = 0x11;
    pub const ORI: u8 = 0x12;
    pub const XORI: u8 = 0x13;
    pub const SLTI: u8 = 0x14;
    pub const SLLI: u8 = 0x15;
    pub const SRLI: u8 = 0x16;
    pub const SRAI: u8 = 0x17;
    pub const LUI: u8 = 0x18;

    pub const LW: u8 = 0x20;
    pub const LB: u8 = 0x21;
    pub const LBU: u8 = 0x22;
    pub const SW: u8 = 0x23;
    pub const SB: u8 = 0x24;

    pub const BEQ: u8 = 0x28;
    pub const BNE: u8 = 0x29;
    pub const BLT: u8 = 0x2A;
    pub const BGE: u8 = 0x2B;
    pub const BLTU: u8 = 0x2C;
    pub const BGEU: u8 = 0x2D;

    pub const JAL: u8 = 0x30;
    pub const JALR: u8 = 0x31;

    pub const MFTOD: u8 = 0x40;
    pub const MFTODH: u8 = 0x41;
    pub const MTIT: u8 = 0x42;
    pub const MFIT: u8 = 0x43;
    pub const MTCTL: u8 = 0x44;
    pub const MFCTL: u8 = 0x45;
    pub const RFI: u8 = 0x46;
    pub const TLBI: u8 = 0x47;
    pub const TLBP: u8 = 0x48;
    pub const GATE: u8 = 0x49;
    pub const PROBE: u8 = 0x4A;
    pub const HALT: u8 = 0x4B;
    pub const IDLE: u8 = 0x4C;
    pub const BRK: u8 = 0x4D;
    pub const DIAG: u8 = 0x4E;
    pub const NOP: u8 = 0x4F;
    pub const SSM: u8 = 0x50;
    pub const RSM: u8 = 0x51;
}

const IMM14_MIN: i32 = -(1 << 13);
const IMM14_MAX: i32 = (1 << 13) - 1;
const IMM14_UMAX: u32 = (1 << 14) - 1;
const IMM19_UMAX: u32 = (1 << 19) - 1;
const JAL_WORD_MIN: i32 = -(1 << 18);
const JAL_WORD_MAX: i32 = (1 << 18) - 1;

fn check_simm14(v: i32) -> Result<u32, EncodeError> {
    if (IMM14_MIN..=IMM14_MAX).contains(&v) {
        Ok((v as u32) & IMM14_UMAX)
    } else {
        Err(EncodeError::ImmOutOfRange {
            value: v as i64,
            bits: 14,
            signed: true,
        })
    }
}

fn check_uimm14(v: i32) -> Result<u32, EncodeError> {
    if (0..=IMM14_UMAX as i32).contains(&v) {
        Ok(v as u32)
    } else {
        Err(EncodeError::ImmOutOfRange {
            value: v as i64,
            bits: 14,
            signed: false,
        })
    }
}

fn check_shamt(v: i32) -> Result<u32, EncodeError> {
    if (0..=31).contains(&v) {
        Ok(v as u32)
    } else {
        Err(EncodeError::ImmOutOfRange {
            value: v as i64,
            bits: 5,
            signed: false,
        })
    }
}

fn check_branch_offset(offset: i32) -> Result<u32, EncodeError> {
    if offset % 4 != 0 {
        return Err(EncodeError::MisalignedOffset { offset });
    }
    check_simm14(offset / 4)
}

fn check_jal_offset(offset: i32) -> Result<u32, EncodeError> {
    if offset % 4 != 0 {
        return Err(EncodeError::MisalignedOffset { offset });
    }
    let words = offset / 4;
    if (JAL_WORD_MIN..=JAL_WORD_MAX).contains(&words) {
        Ok((words as u32) & IMM19_UMAX)
    } else {
        Err(EncodeError::ImmOutOfRange {
            value: offset as i64,
            bits: 19,
            signed: true,
        })
    }
}

fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

#[inline]
fn r3(opc: u8, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    (u32::from(opc) << 24)
        | (u32::from(rd.index()) << 19)
        | (u32::from(rs1.index()) << 14)
        | (u32::from(rs2.index()) << 9)
}

#[inline]
fn ri(opc: u8, rd: Reg, rs1: Reg, imm14: u32) -> u32 {
    debug_assert!(imm14 <= IMM14_UMAX);
    (u32::from(opc) << 24) | (u32::from(rd.index()) << 19) | (u32::from(rs1.index()) << 14) | imm14
}

#[inline]
fn rl(opc: u8, rd: Reg, imm19: u32) -> u32 {
    debug_assert!(imm19 <= IMM19_UMAX);
    (u32::from(opc) << 24) | (u32::from(rd.index()) << 19) | imm19
}

/// Encodes an instruction into its 32-bit word.
///
/// # Examples
///
/// ```
/// use hvft_isa::codec::{encode, decode};
/// use hvft_isa::instruction::Instruction;
///
/// let word = encode(Instruction::Nop).unwrap();
/// assert_eq!(decode(word).unwrap(), Instruction::Nop);
/// ```
pub fn encode(insn: Instruction) -> Result<u32, EncodeError> {
    use Instruction as I;
    Ok(match insn {
        I::Alu {
            op: a,
            rd,
            rs1,
            rs2,
        } => {
            let opc = match a {
                AluOp::Add => op::ADD,
                AluOp::Sub => op::SUB,
                AluOp::And => op::AND,
                AluOp::Or => op::OR,
                AluOp::Xor => op::XOR,
                AluOp::Sll => op::SLL,
                AluOp::Srl => op::SRL,
                AluOp::Sra => op::SRA,
                AluOp::Slt => op::SLT,
                AluOp::Sltu => op::SLTU,
                AluOp::Mul => op::MUL,
                AluOp::Divu => op::DIVU,
                AluOp::Remu => op::REMU,
            };
            r3(opc, rd, rs1, rs2)
        }
        I::AluImm {
            op: a,
            rd,
            rs1,
            imm,
        } => {
            let (opc, field) = match a {
                AluImmOp::Addi => (op::ADDI, check_simm14(imm)?),
                AluImmOp::Slti => (op::SLTI, check_simm14(imm)?),
                AluImmOp::Andi => (op::ANDI, check_uimm14(imm)?),
                AluImmOp::Ori => (op::ORI, check_uimm14(imm)?),
                AluImmOp::Xori => (op::XORI, check_uimm14(imm)?),
                AluImmOp::Slli => (op::SLLI, check_shamt(imm)?),
                AluImmOp::Srli => (op::SRLI, check_shamt(imm)?),
                AluImmOp::Srai => (op::SRAI, check_shamt(imm)?),
            };
            ri(opc, rd, rs1, field)
        }
        I::Lui { rd, imm } => {
            if imm > IMM19_UMAX {
                return Err(EncodeError::ImmOutOfRange {
                    value: i64::from(imm),
                    bits: 19,
                    signed: false,
                });
            }
            rl(op::LUI, rd, imm)
        }
        I::Load {
            width,
            rd,
            base,
            disp,
        } => {
            let opc = match width {
                MemWidth::Word => op::LW,
                MemWidth::Byte => op::LB,
                MemWidth::ByteU => op::LBU,
            };
            ri(opc, rd, base, check_simm14(disp)?)
        }
        I::Store {
            width,
            rs,
            base,
            disp,
        } => {
            let opc = match width {
                MemWidth::Word => op::SW,
                MemWidth::Byte => op::SB,
                MemWidth::ByteU => return Err(EncodeError::InvalidStoreWidth),
            };
            ri(opc, rs, base, check_simm14(disp)?)
        }
        I::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => {
            let opc = match cond {
                BranchCond::Eq => op::BEQ,
                BranchCond::Ne => op::BNE,
                BranchCond::Lt => op::BLT,
                BranchCond::Ge => op::BGE,
                BranchCond::Ltu => op::BLTU,
                BranchCond::Geu => op::BGEU,
            };
            ri(opc, rs1, rs2, check_branch_offset(offset)?)
        }
        I::Jal { rd, offset } => rl(op::JAL, rd, check_jal_offset(offset)?),
        I::Jalr { rd, base, disp } => ri(op::JALR, rd, base, check_simm14(disp)?),
        I::MfTod { rd } => r3(op::MFTOD, rd, Reg::ZERO, Reg::ZERO),
        I::MfTodH { rd } => r3(op::MFTODH, rd, Reg::ZERO, Reg::ZERO),
        I::MtIt { rs } => r3(op::MTIT, Reg::ZERO, rs, Reg::ZERO),
        I::MfIt { rd } => r3(op::MFIT, rd, Reg::ZERO, Reg::ZERO),
        I::MtCtl { cr, rs } => {
            (u32::from(op::MTCTL) << 24)
                | (u32::from(cr.index()) << 19)
                | (u32::from(rs.index()) << 14)
        }
        I::MfCtl { rd, cr } => {
            (u32::from(op::MFCTL) << 24)
                | (u32::from(rd.index()) << 19)
                | (u32::from(cr.index()) << 14)
        }
        I::Rfi => u32::from(op::RFI) << 24,
        I::Tlbi { rs1, rs2 } => r3(op::TLBI, Reg::ZERO, rs1, rs2),
        I::Tlbp { rs } => r3(op::TLBP, Reg::ZERO, rs, Reg::ZERO),
        I::Gate { imm } => {
            if imm > IMM14_UMAX {
                return Err(EncodeError::ImmOutOfRange {
                    value: i64::from(imm),
                    bits: 14,
                    signed: false,
                });
            }
            (u32::from(op::GATE) << 24) | imm
        }
        I::Probe { rd, rs } => r3(op::PROBE, rd, rs, Reg::ZERO),
        I::Halt => u32::from(op::HALT) << 24,
        I::Idle => u32::from(op::IDLE) << 24,
        I::Brk { imm } => {
            if imm > IMM14_UMAX {
                return Err(EncodeError::ImmOutOfRange {
                    value: i64::from(imm),
                    bits: 14,
                    signed: false,
                });
            }
            (u32::from(op::BRK) << 24) | imm
        }
        I::Diag { rs, imm } => {
            if imm > IMM14_UMAX {
                return Err(EncodeError::ImmOutOfRange {
                    value: i64::from(imm),
                    bits: 14,
                    signed: false,
                });
            }
            (u32::from(op::DIAG) << 24) | (u32::from(rs.index()) << 14) | imm
        }
        I::Ssm { imm } => {
            if imm > IMM14_UMAX {
                return Err(EncodeError::ImmOutOfRange {
                    value: i64::from(imm),
                    bits: 14,
                    signed: false,
                });
            }
            (u32::from(op::SSM) << 24) | imm
        }
        I::Rsm { imm } => {
            if imm > IMM14_UMAX {
                return Err(EncodeError::ImmOutOfRange {
                    value: i64::from(imm),
                    bits: 14,
                    signed: false,
                });
            }
            (u32::from(op::RSM) << 24) | imm
        }
        I::Nop => u32::from(op::NOP) << 24,
    })
}

fn field_rd(word: u32) -> Reg {
    Reg::of(((word >> 19) & 0x1F) as u8)
}
fn field_rs1(word: u32) -> Reg {
    Reg::of(((word >> 14) & 0x1F) as u8)
}
fn field_rs2(word: u32) -> Reg {
    Reg::of(((word >> 9) & 0x1F) as u8)
}
fn field_imm14(word: u32) -> u32 {
    word & IMM14_UMAX
}
fn field_imm19(word: u32) -> u32 {
    word & IMM19_UMAX
}

/// Decodes a 32-bit word into an instruction.
pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
    use Instruction as I;
    let opc = (word >> 24) as u8;
    let alu = |o: AluOp| I::Alu {
        op: o,
        rd: field_rd(word),
        rs1: field_rs1(word),
        rs2: field_rs2(word),
    };
    let alui_s = |o: AluImmOp| I::AluImm {
        op: o,
        rd: field_rd(word),
        rs1: field_rs1(word),
        imm: sext(field_imm14(word), 14),
    };
    let alui_u = |o: AluImmOp| I::AluImm {
        op: o,
        rd: field_rd(word),
        rs1: field_rs1(word),
        imm: field_imm14(word) as i32,
    };
    let load = |w: MemWidth| I::Load {
        width: w,
        rd: field_rd(word),
        base: field_rs1(word),
        disp: sext(field_imm14(word), 14),
    };
    let store = |w: MemWidth| I::Store {
        width: w,
        rs: field_rd(word),
        base: field_rs1(word),
        disp: sext(field_imm14(word), 14),
    };
    let branch = |c: BranchCond| I::Branch {
        cond: c,
        rs1: field_rd(word),
        rs2: field_rs1(word),
        offset: sext(field_imm14(word), 14) * 4,
    };
    let shamt = |o: AluImmOp| -> Result<Instruction, DecodeError> {
        let imm = field_imm14(word);
        if imm > 31 {
            return Err(DecodeError::BadField { word });
        }
        Ok(I::AluImm {
            op: o,
            rd: field_rd(word),
            rs1: field_rs1(word),
            imm: imm as i32,
        })
    };

    Ok(match opc {
        op::ADD => alu(AluOp::Add),
        op::SUB => alu(AluOp::Sub),
        op::AND => alu(AluOp::And),
        op::OR => alu(AluOp::Or),
        op::XOR => alu(AluOp::Xor),
        op::SLL => alu(AluOp::Sll),
        op::SRL => alu(AluOp::Srl),
        op::SRA => alu(AluOp::Sra),
        op::SLT => alu(AluOp::Slt),
        op::SLTU => alu(AluOp::Sltu),
        op::MUL => alu(AluOp::Mul),
        op::DIVU => alu(AluOp::Divu),
        op::REMU => alu(AluOp::Remu),

        op::ADDI => alui_s(AluImmOp::Addi),
        op::SLTI => alui_s(AluImmOp::Slti),
        op::ANDI => alui_u(AluImmOp::Andi),
        op::ORI => alui_u(AluImmOp::Ori),
        op::XORI => alui_u(AluImmOp::Xori),
        op::SLLI => shamt(AluImmOp::Slli)?,
        op::SRLI => shamt(AluImmOp::Srli)?,
        op::SRAI => shamt(AluImmOp::Srai)?,
        op::LUI => I::Lui {
            rd: field_rd(word),
            imm: field_imm19(word),
        },

        op::LW => load(MemWidth::Word),
        op::LB => load(MemWidth::Byte),
        op::LBU => load(MemWidth::ByteU),
        op::SW => store(MemWidth::Word),
        op::SB => store(MemWidth::Byte),

        op::BEQ => branch(BranchCond::Eq),
        op::BNE => branch(BranchCond::Ne),
        op::BLT => branch(BranchCond::Lt),
        op::BGE => branch(BranchCond::Ge),
        op::BLTU => branch(BranchCond::Ltu),
        op::BGEU => branch(BranchCond::Geu),

        op::JAL => I::Jal {
            rd: field_rd(word),
            offset: sext(field_imm19(word), 19) * 4,
        },
        op::JALR => I::Jalr {
            rd: field_rd(word),
            base: field_rs1(word),
            disp: sext(field_imm14(word), 14),
        },

        op::MFTOD => I::MfTod { rd: field_rd(word) },
        op::MFTODH => I::MfTodH { rd: field_rd(word) },
        op::MTIT => I::MtIt {
            rs: field_rs1(word),
        },
        op::MFIT => I::MfIt { rd: field_rd(word) },
        op::MTCTL => {
            let cr = ControlReg::from_index(((word >> 19) & 0x1F) as u8)
                .ok_or(DecodeError::BadField { word })?;
            I::MtCtl {
                cr,
                rs: field_rs1(word),
            }
        }
        op::MFCTL => {
            let cr = ControlReg::from_index(((word >> 14) & 0x1F) as u8)
                .ok_or(DecodeError::BadField { word })?;
            I::MfCtl {
                rd: field_rd(word),
                cr,
            }
        }
        op::RFI => I::Rfi,
        op::TLBI => I::Tlbi {
            rs1: field_rs1(word),
            rs2: field_rs2(word),
        },
        op::TLBP => I::Tlbp {
            rs: field_rs1(word),
        },
        op::GATE => I::Gate {
            imm: field_imm14(word),
        },
        op::PROBE => I::Probe {
            rd: field_rd(word),
            rs: field_rs1(word),
        },
        op::HALT => I::Halt,
        op::IDLE => I::Idle,
        op::BRK => I::Brk {
            imm: field_imm14(word),
        },
        op::DIAG => I::Diag {
            rs: field_rs1(word),
            imm: field_imm14(word),
        },
        op::NOP => I::Nop,
        op::SSM => I::Ssm {
            imm: field_imm14(word),
        },
        op::RSM => I::Rsm {
            imm: field_imm14(word),
        },

        _ => return Err(DecodeError::BadOpcode { opcode: opc }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::Instruction as I;

    fn rt(insn: I) {
        let w = encode(insn).unwrap_or_else(|e| panic!("encode {insn}: {e}"));
        let back = decode(w).unwrap_or_else(|e| panic!("decode {insn}: {e}"));
        assert_eq!(insn, back, "round trip of {insn} via {w:#010x}");
    }

    #[test]
    fn round_trip_representatives() {
        let r = Reg::of;
        rt(I::Alu {
            op: AluOp::Add,
            rd: r(1),
            rs1: r(2),
            rs2: r(3),
        });
        rt(I::Alu {
            op: AluOp::Remu,
            rd: r(31),
            rs1: r(30),
            rs2: r(29),
        });
        rt(I::AluImm {
            op: AluImmOp::Addi,
            rd: r(4),
            rs1: r(5),
            imm: -8192,
        });
        rt(I::AluImm {
            op: AluImmOp::Addi,
            rd: r(4),
            rs1: r(5),
            imm: 8191,
        });
        rt(I::AluImm {
            op: AluImmOp::Ori,
            rd: r(4),
            rs1: r(5),
            imm: 16383,
        });
        rt(I::AluImm {
            op: AluImmOp::Srai,
            rd: r(4),
            rs1: r(5),
            imm: 31,
        });
        rt(I::Lui {
            rd: r(6),
            imm: (1 << 19) - 1,
        });
        rt(I::Load {
            width: MemWidth::ByteU,
            rd: r(7),
            base: r(8),
            disp: -1,
        });
        rt(I::Store {
            width: MemWidth::Word,
            rs: r(9),
            base: r(10),
            disp: 4,
        });
        rt(I::Branch {
            cond: BranchCond::Geu,
            rs1: r(11),
            rs2: r(12),
            offset: -32768,
        });
        rt(I::Branch {
            cond: BranchCond::Eq,
            rs1: r(11),
            rs2: r(12),
            offset: 32764,
        });
        rt(I::Jal {
            rd: r(1),
            offset: -(1 << 20),
        });
        rt(I::Jal {
            rd: r(0),
            offset: (1 << 20) - 4,
        });
        rt(I::Jalr {
            rd: r(0),
            base: r(1),
            disp: 0,
        });
        rt(I::MfTod { rd: r(13) });
        rt(I::MfTodH { rd: r(14) });
        rt(I::MtIt { rs: r(15) });
        rt(I::MfIt { rd: r(16) });
        for cr in ControlReg::ALL {
            rt(I::MtCtl { cr, rs: r(17) });
            rt(I::MfCtl { rd: r(18), cr });
        }
        rt(I::Rfi);
        rt(I::Tlbi {
            rs1: r(19),
            rs2: r(20),
        });
        rt(I::Tlbp { rs: r(21) });
        rt(I::Gate { imm: 16383 });
        rt(I::Probe {
            rd: r(22),
            rs: r(23),
        });
        rt(I::Halt);
        rt(I::Idle);
        rt(I::Brk { imm: 7 });
        rt(I::Diag { rs: r(24), imm: 99 });
        rt(I::Nop);
        rt(I::Ssm { imm: 3 });
        rt(I::Rsm { imm: 1 });
    }

    #[test]
    fn rejects_out_of_range_immediates() {
        let r = Reg::of;
        assert!(encode(I::AluImm {
            op: AluImmOp::Addi,
            rd: r(1),
            rs1: r(1),
            imm: 8192
        })
        .is_err());
        assert!(encode(I::AluImm {
            op: AluImmOp::Addi,
            rd: r(1),
            rs1: r(1),
            imm: -8193
        })
        .is_err());
        assert!(encode(I::AluImm {
            op: AluImmOp::Ori,
            rd: r(1),
            rs1: r(1),
            imm: -1
        })
        .is_err());
        assert!(encode(I::AluImm {
            op: AluImmOp::Slli,
            rd: r(1),
            rs1: r(1),
            imm: 32
        })
        .is_err());
        assert!(encode(I::Lui {
            rd: r(1),
            imm: 1 << 19
        })
        .is_err());
        assert!(encode(I::Gate { imm: 1 << 14 }).is_err());
    }

    #[test]
    fn rejects_misaligned_offsets() {
        assert_eq!(
            encode(I::Branch {
                cond: BranchCond::Eq,
                rs1: Reg::ZERO,
                rs2: Reg::ZERO,
                offset: 2
            }),
            Err(EncodeError::MisalignedOffset { offset: 2 })
        );
        assert!(encode(I::Jal {
            rd: Reg::RA,
            offset: 5
        })
        .is_err());
    }

    #[test]
    fn rejects_store_byteu() {
        assert_eq!(
            encode(I::Store {
                width: MemWidth::ByteU,
                rs: Reg::ZERO,
                base: Reg::ZERO,
                disp: 0
            }),
            Err(EncodeError::InvalidStoreWidth)
        );
    }

    #[test]
    fn decode_bad_opcode() {
        assert_eq!(
            decode(0xFF00_0000),
            Err(DecodeError::BadOpcode { opcode: 0xFF })
        );
        assert_eq!(
            decode(0x0000_0000),
            Err(DecodeError::BadOpcode { opcode: 0x00 })
        );
    }

    #[test]
    fn decode_bad_control_register() {
        // MTCTL with cr index 15 (invalid).
        let word = (u32::from(super::op::MTCTL) << 24) | (15 << 19);
        assert_eq!(decode(word), Err(DecodeError::BadField { word }));
        // Shift with shamt > 31.
        let word = (u32::from(super::op::SLLI) << 24) | 40;
        assert_eq!(decode(word), Err(DecodeError::BadField { word }));
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sext(0x3FFF, 14), -1);
        assert_eq!(sext(0x2000, 14), -8192);
        assert_eq!(sext(0x1FFF, 14), 8191);
        assert_eq!(sext(0x7FFFF, 19), -1);
    }
}
