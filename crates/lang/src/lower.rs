//! Lowering: typed AST → a linear, label-based IR.
//!
//! Expressions lower onto an *evaluation stack* of virtual temporaries
//! `t0, t1, …` in strict left-to-right order: an expression rooted at
//! depth `d` leaves its value in `t(d)` and may clobber only `t(>d)`.
//! Statements always evaluate at depth 0. This stack discipline is
//! what makes register allocation ([`crate::regalloc`]) trivially
//! deterministic: `t(i)` maps to a fixed register or spill slot.

use crate::ast::{BinOp, UnOp};
use crate::check::{Intrinsic, TExpr, TFn, TProgram, TStmt};

/// One lowered operation. `usize` operands named `d` are evaluation
/// depths (virtual temporaries); `slot` are function-local slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ir {
    /// `t(d) = imm`
    Const {
        /// Destination depth.
        d: usize,
        /// Immediate value.
        imm: u32,
    },
    /// `t(d) = local[slot]`
    LoadLocal {
        /// Destination depth.
        d: usize,
        /// Source local slot.
        slot: usize,
    },
    /// `local[slot] = t(d)`
    StoreLocal {
        /// Destination local slot.
        slot: usize,
        /// Source depth.
        d: usize,
    },
    /// `t(d) = op t(d)` (in place).
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand and destination depth.
        d: usize,
    },
    /// `t(d) = t(d) op t(d+1)`.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left-operand / destination depth; right operand is `d + 1`.
        d: usize,
    },
    /// `t(d) = funcs[index](t(d), …, t(d + nargs - 1))`.
    Call {
        /// Destination depth (arguments start here too).
        d: usize,
        /// Callee index in the program's function table.
        index: usize,
        /// Argument count.
        nargs: usize,
    },
    /// `t(d) = intrinsic(t(d), …, t(d + nargs - 1))`.
    Intr {
        /// Destination depth (arguments start here too).
        d: usize,
        /// Which intrinsic.
        intr: Intrinsic,
        /// Argument count.
        nargs: usize,
    },
    /// A local jump label (function-unique id).
    Label(usize),
    /// Unconditional jump to a label.
    Jump(usize),
    /// Jump to `label` if `t(d) == 0`.
    Branch0 {
        /// Tested depth.
        d: usize,
        /// Target label.
        label: usize,
    },
    /// Return. If `has_value`, the value is in `t0`; else return 0.
    Ret {
        /// Whether `t0` holds the return value.
        has_value: bool,
    },
}

/// A lowered function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrFn {
    /// Function name (for labels and diagnostics).
    pub name: String,
    /// Parameter count.
    pub params: usize,
    /// Local slot count (parameters included).
    pub locals: usize,
    /// One past the deepest temporary used (`t0..t(max_depth)`).
    pub max_depth: usize,
    /// Whether the body contains any user-function call (drives the
    /// caller-save frame area in the allocator).
    pub has_calls: bool,
    /// The operations.
    pub body: Vec<Ir>,
}

/// A lowered program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrProgram {
    /// Functions, same order/indices as the typed program.
    pub funcs: Vec<IrFn>,
    /// Entry (`main`) index.
    pub entry: usize,
}

struct Lowerer {
    body: Vec<Ir>,
    next_label: usize,
    max_depth: usize,
    has_calls: bool,
}

impl Lowerer {
    fn fresh(&mut self) -> usize {
        self.next_label += 1;
        self.next_label - 1
    }

    fn touch(&mut self, d: usize) {
        self.max_depth = self.max_depth.max(d + 1);
    }

    fn expr(&mut self, e: &TExpr, d: usize) {
        self.touch(d);
        match e {
            TExpr::Num(n) => self.body.push(Ir::Const { d, imm: *n }),
            TExpr::Local(slot) => self.body.push(Ir::LoadLocal { d, slot: *slot }),
            TExpr::Unary(op, a) => {
                self.expr(a, d);
                self.body.push(Ir::Unary { op: *op, d });
            }
            TExpr::Bin(op, a, b) => {
                self.expr(a, d);
                self.expr(b, d + 1);
                self.body.push(Ir::Bin { op: *op, d });
            }
            TExpr::Call(index, args) => {
                for (i, a) in args.iter().enumerate() {
                    self.expr(a, d + i);
                }
                self.has_calls = true;
                self.body.push(Ir::Call {
                    d,
                    index: *index,
                    nargs: args.len(),
                });
            }
            TExpr::Intr(intr, args) => {
                for (i, a) in args.iter().enumerate() {
                    self.expr(a, d + i);
                }
                self.body.push(Ir::Intr {
                    d,
                    intr: *intr,
                    nargs: args.len(),
                });
            }
        }
    }

    fn block(&mut self, body: &[TStmt]) {
        for s in body {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &TStmt) {
        match s {
            TStmt::Assign(slot, e) => {
                self.expr(e, 0);
                self.body.push(Ir::StoreLocal { slot: *slot, d: 0 });
            }
            TStmt::Expr(e) => self.expr(e, 0),
            TStmt::Return(e) => {
                let has_value = if let Some(e) = e {
                    self.expr(e, 0);
                    true
                } else {
                    false
                };
                self.body.push(Ir::Ret { has_value });
            }
            TStmt::If(c, t, o) => {
                let l_else = self.fresh();
                let l_end = self.fresh();
                self.expr(c, 0);
                self.body.push(Ir::Branch0 {
                    d: 0,
                    label: l_else,
                });
                self.block(t);
                self.body.push(Ir::Jump(l_end));
                self.body.push(Ir::Label(l_else));
                self.block(o);
                self.body.push(Ir::Label(l_end));
            }
            TStmt::While(c, body) => {
                let l_head = self.fresh();
                let l_end = self.fresh();
                self.body.push(Ir::Label(l_head));
                self.expr(c, 0);
                self.body.push(Ir::Branch0 { d: 0, label: l_end });
                self.block(body);
                self.body.push(Ir::Jump(l_head));
                self.body.push(Ir::Label(l_end));
            }
        }
    }
}

fn lower_fn(f: &TFn) -> IrFn {
    let mut l = Lowerer {
        body: Vec::new(),
        next_label: 0,
        max_depth: 0,
        has_calls: false,
    };
    l.block(&f.body);
    // Falling off the end returns 0.
    l.body.push(Ir::Ret { has_value: false });
    IrFn {
        name: f.name.clone(),
        params: f.params,
        locals: f.locals,
        max_depth: l.max_depth,
        has_calls: l.has_calls,
        body: l.body,
    }
}

/// Lower a checked program to IR.
pub fn lower(p: &TProgram) -> IrProgram {
    IrProgram {
        funcs: p.funcs.iter().map(lower_fn).collect(),
        entry: p.entry,
    }
}
