//! Abstract syntax of hvft-lang.
//!
//! The surface language is deliberately tiny: every value is a `u32`
//! with wrapping arithmetic, there is one flat scope of function
//! definitions, and control flow is `while`/`if`/`return` only. The
//! `Display` impls pretty-print a program back to parseable source —
//! with every compound expression fully parenthesized — which is how
//! the seed-deterministic generator ([`crate::genprog`]) feeds the
//! compiler through its real front door (lexer and parser included).

use std::fmt;

/// A binary operator. `<`/`<=`/`>`/`>=` compare signed, `==`/`!=` are
/// bitwise, shifts mask their count to 5 bits, `/`/`%` are unsigned
/// (zero divisor traps), and `&&`/`||` evaluate **both** operands
/// (no short-circuit) and normalize to 0/1 — exactly the hvft ALU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping addition `+`.
    Add,
    /// Wrapping subtraction `-`.
    Sub,
    /// Wrapping multiplication `*`.
    Mul,
    /// Unsigned division `/` (traps on zero divisor).
    Div,
    /// Unsigned remainder `%` (traps on zero divisor).
    Rem,
    /// Bitwise and `&`.
    And,
    /// Bitwise or `|`.
    Or,
    /// Bitwise xor `^`.
    Xor,
    /// Logical shift left `<<` (count masked to 5 bits).
    Shl,
    /// Logical shift right `>>` (count masked to 5 bits).
    Shr,
    /// Equality `==` (result 0 or 1).
    Eq,
    /// Inequality `!=` (result 0 or 1).
    Ne,
    /// Signed less-than `<` (result 0 or 1).
    Lt,
    /// Signed less-or-equal `<=` (result 0 or 1).
    Le,
    /// Signed greater-than `>` (result 0 or 1).
    Gt,
    /// Signed greater-or-equal `>=` (result 0 or 1).
    Ge,
    /// Logical and `&&`: both sides evaluate, result is 0 or 1.
    LAnd,
    /// Logical or `||`: both sides evaluate, result is 0 or 1.
    LOr,
}

impl BinOp {
    /// The surface-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::LAnd => "&&",
            BinOp::LOr => "||",
        }
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Two's-complement negation `-`.
    Neg,
    /// Logical not `!`: `!e` is 1 if `e == 0`, else 0.
    Not,
}

/// An expression. Every expression evaluates to a `u32`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// An integer literal.
    Num(u32),
    /// A variable reference (parameter or `let`-bound local).
    Var(String),
    /// A call to a user function or intrinsic, by name.
    Call(String, Vec<Expr>),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `let name = expr;` — declares a function-scoped local.
    Let(String, Expr),
    /// `name = expr;` — assigns an already-declared local.
    Assign(String, Expr),
    /// `while cond { body }` — loops while `cond` is nonzero.
    While(Expr, Vec<Stmt>),
    /// `if cond { then } else { other }` — the `else` arm may be empty.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `return;` or `return expr;` — a bare return yields 0.
    Return(Option<Expr>),
    /// An expression evaluated for effect, value discarded.
    Expr(Expr),
}

/// A function definition: `fn name(p0, p1) { body }`. Falling off the
/// end of the body returns 0. At most [`crate::MAX_ARITY`] parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// Function name; `main` (zero parameters) is the entry point.
    pub name: String,
    /// Parameter names, in order.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A whole program: a flat list of function definitions, one of which
/// must be `main()`. `main`'s return value is the guest exit code
/// (unless `exit(e)` fires first).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// The function definitions, in source order.
    pub funcs: Vec<FnDef>,
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(n) => {
                if *n > 9 {
                    write!(f, "{n:#x}")
                } else {
                    write!(f, "{n}")
                }
            }
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Unary(op, e) => match op {
                UnOp::Neg => write!(f, "(-{e})"),
                UnOp::Not => write!(f, "(!{e})"),
            },
            Expr::Bin(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
        }
    }
}

fn fmt_block(f: &mut fmt::Formatter<'_>, body: &[Stmt], indent: usize) -> fmt::Result {
    for s in body {
        fmt_stmt(f, s, indent)?;
    }
    Ok(())
}

fn fmt_stmt(f: &mut fmt::Formatter<'_>, s: &Stmt, indent: usize) -> fmt::Result {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Let(n, e) => writeln!(f, "{pad}let {n} = {e};"),
        Stmt::Assign(n, e) => writeln!(f, "{pad}{n} = {e};"),
        Stmt::While(c, body) => {
            writeln!(f, "{pad}while {c} {{")?;
            fmt_block(f, body, indent + 1)?;
            writeln!(f, "{pad}}}")
        }
        Stmt::If(c, t, e) => {
            writeln!(f, "{pad}if {c} {{")?;
            fmt_block(f, t, indent + 1)?;
            if e.is_empty() {
                writeln!(f, "{pad}}}")
            } else {
                writeln!(f, "{pad}}} else {{")?;
                fmt_block(f, e, indent + 1)?;
                writeln!(f, "{pad}}}")
            }
        }
        Stmt::Return(None) => writeln!(f, "{pad}return;"),
        Stmt::Return(Some(e)) => writeln!(f, "{pad}return {e};"),
        Stmt::Expr(e) => writeln!(f, "{pad}{e};"),
    }
}

impl fmt::Display for FnDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        writeln!(f, ") {{")?;
        fmt_block(f, &self.body, 1)?;
        writeln!(f, "}}")
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, func) in self.funcs.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{func}")?;
        }
        Ok(())
    }
}
