//! # hvft-lang — a tiny workload language for the hvft guest
//!
//! Hand-written assembly caps the workload registry at a handful of
//! programs; this crate is the unlock for *scenario diversity*. It
//! compiles a small imperative language (u32 expressions, `let`,
//! `while`/`if`, fixed-arity functions, MMIO intrinsics for
//! console/disk) down to `hvft-isa::asm` source that links against the
//! guest kernel's syscall gates, via classic passes:
//!
//! ```text
//! source ──parse──▶ AST ──check──▶ typed AST ──lower──▶ stack IR
//!        ──regalloc──▶ locations ──emit──▶ hvft assembly
//! ```
//!
//! Two consumers matter:
//!
//! - `hvft-guest` registers compiled programs as first-class
//!   [`Workload`]s (`CompiledWorkload`), so scenarios can run them by
//!   name like any hand-written guest;
//! - the differential-fuzz tests pair [`genprog`] (a
//!   seed-deterministic generator of well-formed, terminating
//!   programs) with [`eval`] (the reference interpreter — the
//!   language's operational semantics) to mint *oracles*: a generated
//!   program must behave bit-identically under the interpreter, the
//!   Step/Block/Jit execution tiers, and the replication protocol.
//!
//! [`Workload`]: https://docs.rs/hvft-guest
//!
//! ## Example
//!
//! ```
//! let src = "
//!     fn main() {
//!         let n = 10;
//!         let sum = 0;
//!         let i = 0;
//!         while i < n {
//!             sum = sum + i * i;
//!             i = i + 1;
//!         }
//!         exit(sum);
//!     }
//! ";
//! let asm = hvft_lang::compile(src).unwrap();
//! assert!(asm.contains("u_main:"));
//! // The reference interpreter agrees on the exit code.
//! let out = hvft_lang::interpret(src, 100_000).unwrap();
//! assert_eq!(out.exit, 285);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod check;
pub mod emit;
pub mod eval;
pub mod genprog;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod regalloc;

use std::fmt;

/// The ABI caps function arity: arguments travel in `r4..r7`.
pub const MAX_ARITY: usize = 4;

/// A compilation error, with the 1-based source line when known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// 1-based source line, if the pass tracks lines.
    pub line: Option<usize>,
    /// Human-readable description.
    pub msg: String,
}

impl LangError {
    pub(crate) fn at(line: usize, msg: String) -> LangError {
        LangError {
            line: Some(line),
            msg,
        }
    }

    pub(crate) fn new(msg: String) -> LangError {
        LangError { line: None, msg }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(l) => write!(f, "line {l}: {}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for LangError {}

/// Target-environment constants the emitter bakes into the assembly.
///
/// The defaults mirror the `hvft-guest` memory layout and syscall
/// numbers (a guest-side test pins the agreement); override them only
/// for exotic images.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenOptions {
    /// Load address of the user program (`u_main` must land here).
    pub org: u32,
    /// Initial stack pointer (grows down).
    pub stack_top: u32,
    /// Base of the user data segment (`peek`/`poke` window).
    pub user_data: u32,
    /// Size in bytes of the `peek`/`poke` window (kept clear of the
    /// stack).
    pub data_window: u32,
    /// DMA buffer address used by `read_block`/`write_block`.
    pub dma_buf: u32,
    /// `putc` syscall gate number.
    pub sys_putc: u32,
    /// `time` syscall gate number.
    pub sys_gettime: u32,
    /// `read_block` syscall gate number.
    pub sys_read_block: u32,
    /// `write_block` syscall gate number.
    pub sys_write_block: u32,
    /// `exit` syscall gate number.
    pub sys_exit: u32,
    /// `mark` syscall gate number.
    pub sys_mark: u32,
    /// `ticks` syscall gate number.
    pub sys_getticks: u32,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            org: 0x10000,
            stack_top: 0x2F000,
            user_data: 0x20000,
            data_window: 0xC000,
            dma_buf: 0x30000,
            sys_putc: 1,
            sys_gettime: 2,
            sys_read_block: 3,
            sys_write_block: 4,
            sys_exit: 5,
            sys_mark: 6,
            sys_getticks: 7,
        }
    }
}

/// Compile source text to guest assembly with the default options.
pub fn compile(src: &str) -> Result<String, LangError> {
    compile_with(src, &CodegenOptions::default())
}

/// Compile source text to guest assembly.
pub fn compile_with(src: &str, opts: &CodegenOptions) -> Result<String, LangError> {
    let ast = parser::parse(src)?;
    let typed = check::check(&ast)?;
    let ir = lower::lower(&typed);
    Ok(emit::emit(&ir, opts))
}

/// Compile and assemble into a standalone [`hvft_isa::Program`]
/// (user-half only — no kernel; mostly useful for inspecting or
/// round-tripping the generated code).
pub fn compile_to_program(
    src: &str,
    opts: &CodegenOptions,
) -> Result<hvft_isa::Program, LangError> {
    let asm = compile_with(src, opts)?;
    hvft_isa::asm::assemble(&asm).map_err(|e| {
        LangError::new(format!(
            "internal: emitted assembly does not assemble ({e}); this is a compiler bug"
        ))
    })
}

/// Parse, check, and run a program on the reference interpreter.
///
/// This is hvft-lang's *operational semantics* — the behaviour the
/// compiled image must reproduce bit-for-bit (exit code, console
/// bytes, `mark` sequence).
pub fn interpret(src: &str, fuel: u64) -> Result<eval::Outcome, LangError> {
    interpret_with(src, &CodegenOptions::default(), fuel)
}

/// [`interpret`] with explicit target options (the data-window bounds
/// feed the `peek`/`poke` checks).
pub fn interpret_with(
    src: &str,
    opts: &CodegenOptions,
    fuel: u64,
) -> Result<eval::Outcome, LangError> {
    let ast = parser::parse(src)?;
    let typed = check::check(&ast)?;
    eval::eval(&typed, opts, fuel).map_err(|e| LangError::new(format!("evaluation failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_print_then_parse_is_identity() {
        for seed in 0..200u64 {
            let prog = genprog::generate(seed, &genprog::GenConfig::default());
            let text = prog.to_string();
            let reparsed = parser::parse(&text).unwrap_or_else(|e| {
                panic!("seed {seed}: generated source fails to parse: {e}\n{text}")
            });
            assert_eq!(prog, reparsed, "seed {seed}: pretty-print round trip");
        }
    }

    #[test]
    fn generated_programs_compile_assemble_and_terminate() {
        let cfg = genprog::GenConfig {
            disk_ops: true,
            ..Default::default()
        };
        for seed in 0..100u64 {
            let text = genprog::source(seed, &cfg);
            compile_to_program(&text, &CodegenOptions::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            interpret(&text, 2_000_000).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        }
    }

    #[test]
    fn interpreter_pins_the_semantics() {
        // Signed comparison, both-sides logical ops, wrapping, shifts.
        let out = interpret(
            "fn main() {
                let a = 0 - 1;          // 0xFFFFFFFF
                let lt = a < 1;         // signed: -1 < 1
                let ltu = 1 < a;        // signed: 1 < -1 is false
                let both = (a != 0) && (putc('x') == 0);
                let sh = 1 << 33;       // count masked to 1
                exit((lt << 3) | (ltu << 2) | (both << 1) | (sh == 2));
            }",
            10_000,
        )
        .unwrap();
        // lt=1, ltu=0, both=1 (putc evaluated!), sh==2.
        assert_eq!(out.exit, 0b1011);
        assert_eq!(out.console, b"x");
    }

    #[test]
    fn division_by_zero_is_an_error_not_a_value() {
        let err = interpret("fn main() { exit(1 / 0); }", 1_000).unwrap_err();
        assert!(err.msg.contains("division by zero"), "{err}");
    }

    #[test]
    fn functions_fall_off_returning_zero_and_args_pass_in_order() {
        let out = interpret(
            "fn sub3(a, b, c) { return a - b - c; }
             fn nothing() { }
             fn main() { exit(sub3(100, 30, 7) + nothing()); }",
            10_000,
        )
        .unwrap();
        assert_eq!(out.exit, 63);
    }

    #[test]
    fn arity_and_name_errors_are_reported() {
        assert!(parser::parse("fn main() { let x = ; }").is_err());
        assert!(compile("fn main() { y = 1; }").is_err());
        assert!(compile("fn main() { mark(); }").is_err());
        assert!(compile("fn f(a, b, c, d, e) { } fn main() { }").is_err());
        assert!(compile("fn g() { } fn g() { } fn main() { }").is_err());
        assert!(compile("fn nomain() { }").is_err());
    }

    #[test]
    fn deep_expressions_force_spills_and_still_compile() {
        // 16 nested additions push the evaluation stack past the 12
        // temp registers.
        let mut e = String::from("1");
        for i in 2..=20 {
            e = format!("({e} + {i})");
        }
        let src = format!("fn main() {{ exit({e}); }}");
        let p = compile_to_program(&src, &CodegenOptions::default()).unwrap();
        assert!(p.symbol("u_main").is_some());
        let out = interpret(&src, 10_000).unwrap();
        assert_eq!(out.exit, (1..=20).sum::<u32>());
    }
}
