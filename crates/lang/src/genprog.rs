//! Seed-deterministic generator of random, well-formed programs.
//!
//! Every program this module emits is guaranteed (by construction, not
//! by luck) to terminate and to stay within the reference semantics:
//!
//! - loops are counter-driven with a literal bound ≤ 8, and the
//!   counter is reserved — no other statement assigns it;
//! - the call graph is acyclic (function `i` may only call functions
//!   with larger indices), so recursion is impossible;
//! - every `/` and `%` divisor is wrapped `(e | 1)`, so arithmetic
//!   traps cannot fire;
//! - `peek`/`poke` addresses are masked into a 16 KiB window of the
//!   user data segment;
//! - `time()`/`ticks()` are never emitted — their values depend on the
//!   cost model, which would break interpreter parity.
//!
//! The generator returns an [`crate::ast::Program`] and the differential
//! tests feed its **pretty-printed source** back through the real
//! lexer and parser, so the whole front end is on the fuzzing path.

use crate::ast::{BinOp, Expr, FnDef, Program, Stmt, UnOp};

/// Knobs for program generation.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Allow `read_block`/`write_block` (needs a host with ≥ 8 disk
    /// blocks; off by default so cluster scenarios stay disk-free).
    pub disk_ops: bool,
    /// Maximum expression depth.
    pub max_expr_depth: usize,
    /// Maximum statements in `main`'s top-level body.
    pub max_stmts: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            disk_ops: false,
            max_expr_depth: 4,
            max_stmts: 8,
        }
    }
}

/// splitmix64 — tiny, deterministic, and self-contained.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }
}

/// Per-function generation context.
struct FnCtx {
    /// Variables that may be *read*.
    readable: Vec<String>,
    /// Variables that may be *assigned* (excludes loop counters).
    writable: Vec<String>,
    next_var: usize,
    next_loop: usize,
    /// `(name, arity)` of callable functions (strictly later ones).
    callees: Vec<(String, usize)>,
}

struct Gen<'a> {
    rng: Rng,
    cfg: &'a GenConfig,
}

const INTERESTING: [u32; 8] = [0, 1, 2, 3, 7, 0xFF, 0x7FFF_FFFF, 0xFFFF_FFFF];

impl Gen<'_> {
    fn num(&mut self) -> Expr {
        let v = if self.rng.chance(50) {
            INTERESTING[self.rng.below(INTERESTING.len())]
        } else {
            (self.rng.next() & 0xFFFF) as u32
        };
        Expr::Num(v)
    }

    fn leaf(&mut self, ctx: &FnCtx) -> Expr {
        if !ctx.readable.is_empty() && self.rng.chance(60) {
            Expr::Var(ctx.readable[self.rng.below(ctx.readable.len())].clone())
        } else {
            self.num()
        }
    }

    fn expr(&mut self, ctx: &FnCtx, depth: usize) -> Expr {
        if depth == 0 || self.rng.chance(25) {
            return self.leaf(ctx);
        }
        match self.rng.below(10) {
            0..=3 => {
                // Binary operator, divisors made nonzero at AST level.
                const OPS: [BinOp; 18] = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Rem,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                    BinOp::Shl,
                    BinOp::Shr,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                    BinOp::LAnd,
                    BinOp::LOr,
                ];
                let op = OPS[self.rng.below(OPS.len())];
                let a = self.expr(ctx, depth - 1);
                let mut b = self.expr(ctx, depth - 1);
                if matches!(op, BinOp::Div | BinOp::Rem) {
                    b = Expr::Bin(BinOp::Or, Box::new(b), Box::new(Expr::Num(1)));
                }
                Expr::Bin(op, Box::new(a), Box::new(b))
            }
            4 => {
                let op = if self.rng.chance(50) {
                    UnOp::Neg
                } else {
                    UnOp::Not
                };
                Expr::Unary(op, Box::new(self.expr(ctx, depth - 1)))
            }
            5 if !ctx.callees.is_empty() => {
                let (name, arity) = ctx.callees[self.rng.below(ctx.callees.len())].clone();
                let args = (0..arity).map(|_| self.expr(ctx, depth - 1)).collect();
                Expr::Call(name, args)
            }
            6 => self.peek(ctx, depth),
            _ => self.leaf(ctx),
        }
    }

    /// `peek(0x20000 + (e & 0x3FFC))` — always in-window, aligned.
    fn masked_addr(&mut self, ctx: &FnCtx, depth: usize) -> Expr {
        let e = self.expr(ctx, depth.saturating_sub(1));
        Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Num(crate::CodegenOptions::default().user_data)),
            Box::new(Expr::Bin(
                BinOp::And,
                Box::new(e),
                Box::new(Expr::Num(0x3FFC)),
            )),
        )
    }

    fn peek(&mut self, ctx: &FnCtx, depth: usize) -> Expr {
        Expr::Call("peek".into(), vec![self.masked_addr(ctx, depth)])
    }

    fn stmt(&mut self, ctx: &mut FnCtx, body: &mut Vec<Stmt>, loop_depth: usize) {
        match self.rng.below(12) {
            0 | 1 => {
                // Declare a fresh variable.
                let name = format!("v{}", ctx.next_var);
                ctx.next_var += 1;
                let e = self.expr(ctx, self.cfg.max_expr_depth);
                ctx.readable.push(name.clone());
                ctx.writable.push(name.clone());
                body.push(Stmt::Let(name, e));
            }
            2..=4 => {
                if let Some(name) = self.pick_writable(ctx) {
                    let e = self.expr(ctx, self.cfg.max_expr_depth);
                    body.push(Stmt::Assign(name, e));
                }
            }
            5 | 6 if loop_depth < 2 => {
                // Bounded counter loop; the counter is read-only for
                // the body, so termination is structural.
                let counter = format!("l{}", ctx.next_loop);
                ctx.next_loop += 1;
                let bound = 1 + self.rng.below(8) as u32;
                body.push(Stmt::Let(counter.clone(), Expr::Num(0)));
                ctx.readable.push(counter.clone());
                let mut inner = Vec::new();
                for _ in 0..1 + self.rng.below(3) {
                    self.stmt(ctx, &mut inner, loop_depth + 1);
                }
                inner.push(Stmt::Assign(
                    counter.clone(),
                    Expr::Bin(
                        BinOp::Add,
                        Box::new(Expr::Var(counter.clone())),
                        Box::new(Expr::Num(1)),
                    ),
                ));
                body.push(Stmt::While(
                    Expr::Bin(
                        BinOp::Lt,
                        Box::new(Expr::Var(counter)),
                        Box::new(Expr::Num(bound)),
                    ),
                    inner,
                ));
            }
            7 => {
                let cond = self.expr(ctx, 2);
                let mut then = Vec::new();
                self.stmt(ctx, &mut then, loop_depth + 1);
                let mut other = Vec::new();
                if self.rng.chance(50) {
                    self.stmt(ctx, &mut other, loop_depth + 1);
                }
                body.push(Stmt::If(cond, then, other));
            }
            8 => {
                // Console output, masked printable so transcripts stay
                // readable in failure dumps.
                let e = self.expr(ctx, 2);
                body.push(Stmt::Expr(Expr::Call(
                    "putc".into(),
                    vec![Expr::Bin(
                        BinOp::Add,
                        Box::new(Expr::Num(0x41)),
                        Box::new(Expr::Bin(BinOp::And, Box::new(e), Box::new(Expr::Num(15)))),
                    )],
                )));
            }
            9 => {
                let addr = self.masked_addr(ctx, 2);
                let val = self.expr(ctx, 2);
                body.push(Stmt::Expr(Expr::Call("poke".into(), vec![addr, val])));
            }
            10 if self.cfg.disk_ops => {
                let block = Expr::Num(self.rng.below(8) as u32);
                let call = if self.rng.chance(50) {
                    Expr::Call("write_block".into(), vec![block])
                } else {
                    Expr::Call("read_block".into(), vec![block])
                };
                body.push(Stmt::Expr(call));
            }
            _ => {
                if let Some(name) = self.pick_writable(ctx) {
                    let e = self.expr(ctx, 2);
                    body.push(Stmt::Assign(
                        name.clone(),
                        Expr::Bin(
                            BinOp::Xor,
                            Box::new(Expr::Bin(
                                BinOp::Shl,
                                Box::new(Expr::Var(name)),
                                Box::new(Expr::Num(1)),
                            )),
                            Box::new(e),
                        ),
                    ));
                }
            }
        }
    }

    fn pick_writable(&mut self, ctx: &FnCtx) -> Option<String> {
        if ctx.writable.is_empty() {
            None
        } else {
            Some(ctx.writable[self.rng.below(ctx.writable.len())].clone())
        }
    }

    /// Fold every declared variable into an accumulator expression so
    /// the exit code observes the whole program state.
    fn checksum(&mut self, ctx: &FnCtx) -> Expr {
        let mut acc = Expr::Num(0x9E37);
        for v in &ctx.readable {
            acc = Expr::Bin(
                BinOp::Xor,
                Box::new(Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Bin(BinOp::Shl, Box::new(acc), Box::new(Expr::Num(3)))),
                    Box::new(Expr::Var(v.clone())),
                )),
                Box::new(Expr::Num(0x55)),
            );
        }
        acc
    }

    fn helper(&mut self, index: usize, callees: Vec<(String, usize)>) -> FnDef {
        let arity = self.rng.below(4); // 0..=3
        let params: Vec<String> = (0..arity).map(|i| format!("a{i}")).collect();
        let mut ctx = FnCtx {
            readable: params.clone(),
            writable: params.clone(),
            next_var: 0,
            next_loop: 0,
            callees,
        };
        let mut body = Vec::new();
        for _ in 0..1 + self.rng.below(4) {
            self.stmt(&mut ctx, &mut body, 1);
        }
        let ret = self.checksum(&ctx);
        body.push(Stmt::Return(Some(ret)));
        FnDef {
            name: format!("f{index}"),
            params,
            body,
        }
    }

    fn main_fn(&mut self, callees: Vec<(String, usize)>) -> FnDef {
        let mut ctx = FnCtx {
            readable: Vec::new(),
            writable: Vec::new(),
            next_var: 0,
            next_loop: 0,
            callees,
        };
        let mut body = Vec::new();
        for _ in 0..3 + self.rng.below(self.cfg.max_stmts.saturating_sub(2).max(1)) {
            self.stmt(&mut ctx, &mut body, 0);
        }
        let checksum = self.checksum(&ctx);
        if self.rng.chance(30) {
            body.push(Stmt::Expr(Expr::Call(
                "mark".into(),
                vec![checksum.clone()],
            )));
        }
        if self.rng.chance(50) {
            body.push(Stmt::Expr(Expr::Call("exit".into(), vec![checksum])));
        } else {
            body.push(Stmt::Return(Some(checksum)));
        }
        FnDef {
            name: "main".into(),
            params: Vec::new(),
            body,
        }
    }
}

/// Generate a random, well-formed, terminating program from `seed`.
pub fn generate(seed: u64, cfg: &GenConfig) -> Program {
    let mut g = Gen {
        rng: Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA076_1D64_78BD_642F),
        cfg,
    };
    let n_helpers = g.rng.below(3); // 0..=2
                                    // Generate back-to-front so each function knows its callees.
    let mut funcs: Vec<FnDef> = Vec::new();
    let mut callable: Vec<(String, usize)> = Vec::new();
    for i in (0..n_helpers).rev() {
        let f = g.helper(i, callable.clone());
        callable.push((f.name.clone(), f.params.len()));
        funcs.push(f);
    }
    funcs.push(g.main_fn(callable));
    funcs.reverse();
    Program { funcs }
}

/// Generate a program and pretty-print it to source text.
pub fn source(seed: u64, cfg: &GenConfig) -> String {
    generate(seed, cfg).to_string()
}
