//! Register allocation over the hvft register file.
//!
//! The allocator is deterministic and table-driven — the IR's stack
//! discipline means no liveness analysis is needed:
//!
//! | registers | role |
//! |-----------|------|
//! | `r0`      | hardwired zero |
//! | `r1`      | return address (`ra`) |
//! | `r2`      | stack pointer (`sp`) |
//! | `r3`      | reserved (unused) |
//! | `r4..r7`  | call/syscall arguments and return value (volatile) |
//! | `r8..r19` | evaluation stack `t0..t11`; deeper temps spill |
//! | `r20..r25`| first six locals (callee-saved) |
//! | `r26,r27` | emitter scratch, never live across a call or gate |
//! | `r28..r31`| kernel-owned — user code must not touch them |
//!
//! The frame layout (offsets from `sp` after the prologue) is
//! `[ra, saved locals regs…, memory locals…, temp spills…,
//! call-save area (12 words, only if the function calls)]`.

use crate::lower::IrFn;

/// First evaluation-stack register.
pub const TMP_BASE: u8 = 8;
/// Number of evaluation-stack registers (`r8..r19`).
pub const TMP_REGS: usize = 12;
/// First local register.
pub const LOCAL_BASE: u8 = 20;
/// Number of local registers (`r20..r25`).
pub const LOCAL_REGS: usize = 6;
/// First scratch register for the emitter.
pub const SCRATCH0: u8 = 26;
/// Second scratch register for the emitter.
pub const SCRATCH1: u8 = 27;

/// Where a value lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// In a register.
    Reg(u8),
    /// In the frame, at `offset(sp)`.
    Frame(u32),
}

/// The allocation decisions for one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnAlloc {
    /// Location of each local slot.
    pub locals: Vec<Loc>,
    /// Frame offset of each spilled temp (`t(TMP_REGS + i)`).
    spill_base: u32,
    /// Frame offset of the call-save area (12 words), if any calls.
    call_save_base: Option<u32>,
    /// Callee-saved registers this function uses, with their save
    /// slots, in save order.
    pub saved: Vec<(u8, u32)>,
    /// Total frame size in bytes (16-byte aligned).
    pub frame_size: u32,
}

impl FnAlloc {
    /// Allocate for one lowered function.
    pub fn of(f: &IrFn) -> FnAlloc {
        let mut off = 4u32; // 0(sp) holds ra
        let reg_locals = f.locals.min(LOCAL_REGS);
        let mut saved = Vec::new();
        for i in 0..reg_locals {
            saved.push((LOCAL_BASE + i as u8, off));
            off += 4;
        }
        let mut locals = Vec::with_capacity(f.locals);
        for i in 0..f.locals {
            if i < LOCAL_REGS {
                locals.push(Loc::Reg(LOCAL_BASE + i as u8));
            } else {
                locals.push(Loc::Frame(off));
                off += 4;
            }
        }
        let spill_base = off;
        off += 4 * f.max_depth.saturating_sub(TMP_REGS) as u32;
        let call_save_base = f.has_calls.then(|| {
            let base = off;
            off += 4 * TMP_REGS as u32;
            base
        });
        FnAlloc {
            locals,
            spill_base,
            call_save_base,
            saved,
            frame_size: (off + 15) & !15,
        }
    }

    /// Location of evaluation-stack temp `t(d)`.
    pub fn tmp(&self, d: usize) -> Loc {
        if d < TMP_REGS {
            Loc::Reg(TMP_BASE + d as u8)
        } else {
            Loc::Frame(self.spill_base + 4 * (d - TMP_REGS) as u32)
        }
    }

    /// Save slot for live temp register `t(i)` (`i < TMP_REGS`) around
    /// a call. Panics if the function was allocated without calls.
    pub fn call_save(&self, i: usize) -> u32 {
        debug_assert!(i < TMP_REGS);
        self.call_save_base.expect("function has no calls") + 4 * i as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::IrFn;

    fn dummy(locals: usize, max_depth: usize, has_calls: bool) -> IrFn {
        IrFn {
            name: "f".into(),
            params: 0,
            locals,
            max_depth,
            has_calls,
            body: Vec::new(),
        }
    }

    #[test]
    fn leaf_frames_are_small_and_aligned() {
        let a = FnAlloc::of(&dummy(2, 3, false));
        assert_eq!(a.locals, vec![Loc::Reg(20), Loc::Reg(21)]);
        assert_eq!(a.tmp(0), Loc::Reg(8));
        assert_eq!(a.tmp(11), Loc::Reg(19));
        assert_eq!(a.frame_size % 16, 0);
        assert!(a.frame_size >= 12); // ra + two saved locals
    }

    #[test]
    fn deep_temps_spill_past_twelve() {
        let a = FnAlloc::of(&dummy(0, 15, false));
        assert!(matches!(a.tmp(12), Loc::Frame(_)));
        let (Loc::Frame(s0), Loc::Frame(s1)) = (a.tmp(12), a.tmp(13)) else {
            panic!("expected frame spills");
        };
        assert_eq!(s1, s0 + 4);
    }

    #[test]
    fn overflow_locals_go_to_frame_and_calls_reserve_save_area() {
        let a = FnAlloc::of(&dummy(8, 2, true));
        assert!(matches!(a.locals[6], Loc::Frame(_)));
        assert!(matches!(a.locals[7], Loc::Frame(_)));
        // 12-word call-save area fits inside the frame.
        assert!(a.call_save(11) + 4 <= a.frame_size);
    }
}
