//! Name resolution and static checks.
//!
//! Produces a *typed* program in which every variable is a local slot
//! index and every call target is either a user-function index or an
//! [`Intrinsic`]. Locals are **function-scoped**: a `let` introduces a
//! slot visible from its textual declaration to the end of the
//! function (re-declaring a name in the same function is an error),
//! which keeps the compiled slot model and the reference interpreter
//! trivially in agreement.

use crate::ast::{BinOp, Expr, FnDef, Program, Stmt, UnOp};
use crate::{LangError, MAX_ARITY};
use std::collections::HashMap;

/// An MMIO/syscall intrinsic, callable like a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intrinsic {
    /// `putc(c)` — write the low byte of `c` to the console; yields 0.
    Putc,
    /// `mark(v)` — emit the checkpoint diagnostic `(v, MARK)`; yields 0.
    Mark,
    /// `exit(code)` — terminate the guest with `code`; never returns.
    Exit,
    /// `ticks()` — kernel timer-tick count so far.
    Ticks,
    /// `time()` — low word of the time-of-day register.
    Time,
    /// `read_block(b)` — DMA disk block `b` into the DMA buffer; yields
    /// the buffer's first word.
    ReadBlock,
    /// `write_block(b)` — DMA the buffer out to disk block `b`; yields 0.
    WriteBlock,
    /// `peek(addr)` — load the word at `addr` (word-aligned).
    Peek,
    /// `poke(addr, v)` — store `v` at `addr` (word-aligned); yields 0.
    Poke,
}

impl Intrinsic {
    /// All intrinsics with their surface names and arities.
    pub const ALL: [(&'static str, Intrinsic, usize); 9] = [
        ("putc", Intrinsic::Putc, 1),
        ("mark", Intrinsic::Mark, 1),
        ("exit", Intrinsic::Exit, 1),
        ("ticks", Intrinsic::Ticks, 0),
        ("time", Intrinsic::Time, 0),
        ("read_block", Intrinsic::ReadBlock, 1),
        ("write_block", Intrinsic::WriteBlock, 1),
        ("peek", Intrinsic::Peek, 1),
        ("poke", Intrinsic::Poke, 2),
    ];

    fn by_name(name: &str) -> Option<(Intrinsic, usize)> {
        Self::ALL
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|&(_, i, a)| (i, a))
    }
}

/// A resolved expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TExpr {
    /// Integer literal.
    Num(u32),
    /// Local slot (parameters occupy slots `0..params`).
    Local(usize),
    /// Call of user function `funcs[i]`.
    Call(usize, Vec<TExpr>),
    /// Intrinsic invocation.
    Intr(Intrinsic, Vec<TExpr>),
    /// Unary operation.
    Unary(UnOp, Box<TExpr>),
    /// Binary operation.
    Bin(BinOp, Box<TExpr>, Box<TExpr>),
}

/// A resolved statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TStmt {
    /// Store into a local slot (covers both `let` and assignment).
    Assign(usize, TExpr),
    /// `while` loop.
    While(TExpr, Vec<TStmt>),
    /// Two-armed conditional (missing `else` becomes an empty arm).
    If(TExpr, Vec<TStmt>, Vec<TStmt>),
    /// Return; `None` yields 0.
    Return(Option<TExpr>),
    /// Expression for effect.
    Expr(TExpr),
}

/// A resolved function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TFn {
    /// Name (kept for labels and diagnostics).
    pub name: String,
    /// Number of parameters (slots `0..params`).
    pub params: usize,
    /// Total local slots, parameters included.
    pub locals: usize,
    /// Resolved body.
    pub body: Vec<TStmt>,
}

/// A resolved program; `funcs[entry]` is `main`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TProgram {
    /// The functions, in source order.
    pub funcs: Vec<TFn>,
    /// Index of `main` in `funcs`.
    pub entry: usize,
}

struct FnChecker<'a> {
    fn_ids: &'a HashMap<String, (usize, usize)>, // name -> (index, arity)
    slots: HashMap<String, usize>,
    locals: usize,
}

impl FnChecker<'_> {
    fn expr(&mut self, e: &Expr) -> Result<TExpr, LangError> {
        Ok(match e {
            Expr::Num(n) => TExpr::Num(*n),
            Expr::Var(name) => {
                TExpr::Local(*self.slots.get(name).ok_or_else(|| {
                    LangError::new(format!("use of undeclared variable `{name}`"))
                })?)
            }
            Expr::Unary(op, a) => TExpr::Unary(*op, Box::new(self.expr(a)?)),
            Expr::Bin(op, a, b) => {
                TExpr::Bin(*op, Box::new(self.expr(a)?), Box::new(self.expr(b)?))
            }
            Expr::Call(name, args) => {
                let targs = args
                    .iter()
                    .map(|a| self.expr(a))
                    .collect::<Result<Vec<_>, _>>()?;
                if let Some((intr, arity)) = Intrinsic::by_name(name) {
                    if targs.len() != arity {
                        return Err(LangError::new(format!(
                            "intrinsic `{name}` takes {arity} argument(s), got {}",
                            targs.len()
                        )));
                    }
                    TExpr::Intr(intr, targs)
                } else {
                    let (idx, arity) = *self.fn_ids.get(name).ok_or_else(|| {
                        LangError::new(format!("call to unknown function `{name}`"))
                    })?;
                    if targs.len() != arity {
                        return Err(LangError::new(format!(
                            "function `{name}` takes {arity} argument(s), got {}",
                            targs.len()
                        )));
                    }
                    TExpr::Call(idx, targs)
                }
            }
        })
    }

    fn block(&mut self, body: &[Stmt]) -> Result<Vec<TStmt>, LangError> {
        body.iter().map(|s| self.stmt(s)).collect()
    }

    fn stmt(&mut self, s: &Stmt) -> Result<TStmt, LangError> {
        Ok(match s {
            Stmt::Let(name, e) => {
                // Resolve the initializer *before* declaring, so
                // `let x = x;` is rejected unless an outer x exists.
                let te = self.expr(e)?;
                if self.slots.contains_key(name) {
                    return Err(LangError::new(format!(
                        "variable `{name}` is already declared in this function"
                    )));
                }
                if Intrinsic::by_name(name).is_some() {
                    return Err(LangError::new(format!(
                        "`{name}` is an intrinsic and cannot be a variable"
                    )));
                }
                let slot = self.locals;
                self.locals += 1;
                self.slots.insert(name.clone(), slot);
                TStmt::Assign(slot, te)
            }
            Stmt::Assign(name, e) => {
                let slot = *self.slots.get(name).ok_or_else(|| {
                    LangError::new(format!("assignment to undeclared variable `{name}`"))
                })?;
                TStmt::Assign(slot, self.expr(e)?)
            }
            Stmt::While(c, body) => TStmt::While(self.expr(c)?, self.block(body)?),
            Stmt::If(c, t, e) => TStmt::If(self.expr(c)?, self.block(t)?, self.block(e)?),
            Stmt::Return(e) => TStmt::Return(e.as_ref().map(|e| self.expr(e)).transpose()?),
            Stmt::Expr(e) => TStmt::Expr(self.expr(e)?),
        })
    }
}

fn check_fn(f: &FnDef, fn_ids: &HashMap<String, (usize, usize)>) -> Result<TFn, LangError> {
    if f.params.len() > MAX_ARITY {
        return Err(LangError::new(format!(
            "function `{}` has {} parameters; the ABI caps arity at {MAX_ARITY}",
            f.name,
            f.params.len()
        )));
    }
    let mut c = FnChecker {
        fn_ids,
        slots: HashMap::new(),
        locals: 0,
    };
    for p in &f.params {
        if c.slots.insert(p.clone(), c.locals).is_some() {
            return Err(LangError::new(format!(
                "duplicate parameter `{p}` in function `{}`",
                f.name
            )));
        }
        c.locals += 1;
    }
    let body = c.block(&f.body)?;
    Ok(TFn {
        name: f.name.clone(),
        params: f.params.len(),
        locals: c.locals,
        body,
    })
}

/// Resolve and check a parsed program.
pub fn check(p: &Program) -> Result<TProgram, LangError> {
    let mut fn_ids = HashMap::new();
    for (i, f) in p.funcs.iter().enumerate() {
        if Intrinsic::by_name(&f.name).is_some() {
            return Err(LangError::new(format!(
                "`{}` is an intrinsic and cannot be redefined",
                f.name
            )));
        }
        if fn_ids.insert(f.name.clone(), (i, f.params.len())).is_some() {
            return Err(LangError::new(format!(
                "function `{}` is defined twice",
                f.name
            )));
        }
    }
    let funcs = p
        .funcs
        .iter()
        .map(|f| check_fn(f, &fn_ids))
        .collect::<Result<Vec<_>, _>>()?;
    let entry = match fn_ids.get("main") {
        Some(&(i, 0)) => i,
        Some(_) => return Err(LangError::new("`main` must take no parameters".into())),
        None => return Err(LangError::new("program has no `main` function".into())),
    };
    Ok(TProgram { funcs, entry })
}
