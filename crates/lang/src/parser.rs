//! Recursive-descent parser with precedence climbing.
//!
//! Grammar (all operators left-associative, loosest first):
//!
//! ```text
//! program := fn*
//! fn      := "fn" ident "(" [ident ("," ident)*] ")" block
//! block   := "{" stmt* "}"
//! stmt    := "let" ident "=" expr ";"
//!          | ident "=" expr ";"
//!          | "while" expr block
//!          | "if" expr block ["else" block]
//!          | "return" [expr] ";"
//!          | expr ";"
//! expr    := binary operators over unary / primary
//! primary := number | ident | ident "(" args ")" | "(" expr ")"
//! ```

use crate::ast::{BinOp, Expr, FnDef, Program, Stmt, UnOp};
use crate::lexer::{lex, Spanned, Tok};
use crate::LangError;

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

/// Binding power of a binary operator token; higher binds tighter.
fn binop_of(tok: &Tok) -> Option<(BinOp, u8)> {
    Some(match tok {
        Tok::OrOr => (BinOp::LOr, 1),
        Tok::AndAnd => (BinOp::LAnd, 2),
        Tok::EqEq => (BinOp::Eq, 3),
        Tok::NotEq => (BinOp::Ne, 3),
        Tok::Lt => (BinOp::Lt, 3),
        Tok::Le => (BinOp::Le, 3),
        Tok::Gt => (BinOp::Gt, 3),
        Tok::Ge => (BinOp::Ge, 3),
        Tok::Pipe => (BinOp::Or, 4),
        Tok::Caret => (BinOp::Xor, 5),
        Tok::Amp => (BinOp::And, 6),
        Tok::Shl => (BinOp::Shl, 7),
        Tok::Shr => (BinOp::Shr, 7),
        Tok::Plus => (BinOp::Add, 8),
        Tok::Minus => (BinOp::Sub, 8),
        Tok::Star => (BinOp::Mul, 9),
        Tok::Slash => (BinOp::Div, 9),
        Tok::Percent => (BinOp::Rem, 9),
        _ => return None,
    })
}

impl Parser {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(1, |s| s.line)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn next(&mut self) -> Result<Tok, LangError> {
        let s = self
            .toks
            .get(self.pos)
            .ok_or_else(|| LangError::at(self.line(), "unexpected end of input".into()))?;
        self.pos += 1;
        Ok(s.tok.clone())
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), LangError> {
        let line = self.line();
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            Err(LangError::at(line, format!("expected {what}, got {got:?}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, LangError> {
        let line = self.line();
        match self.next()? {
            Tok::Ident(name) => Ok(name),
            other => Err(LangError::at(
                line,
                format!("expected {what}, got {other:?}"),
            )),
        }
    }

    fn program(&mut self) -> Result<Program, LangError> {
        let mut funcs = Vec::new();
        while self.peek().is_some() {
            self.expect(Tok::Fn, "`fn`")?;
            let name = self.ident("function name")?;
            self.expect(Tok::LParen, "`(`")?;
            let mut params = Vec::new();
            if self.peek() != Some(&Tok::RParen) {
                loop {
                    params.push(self.ident("parameter name")?);
                    if self.peek() == Some(&Tok::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
            }
            self.expect(Tok::RParen, "`)`")?;
            let body = self.block()?;
            funcs.push(FnDef { name, params, body });
        }
        Ok(Program { funcs })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.expect(Tok::LBrace, "`{`")?;
        let mut body = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(LangError::at(self.line(), "unclosed block".into()));
            }
            body.push(self.stmt()?);
        }
        self.pos += 1; // consume `}`
        Ok(body)
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        match self.peek() {
            Some(Tok::Let) => {
                self.pos += 1;
                let name = self.ident("variable name")?;
                self.expect(Tok::Assign, "`=`")?;
                let e = self.expr(0)?;
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Let(name, e))
            }
            Some(Tok::While) => {
                self.pos += 1;
                let cond = self.expr(0)?;
                Ok(Stmt::While(cond, self.block()?))
            }
            Some(Tok::If) => {
                self.pos += 1;
                let cond = self.expr(0)?;
                let then = self.block()?;
                let other = if self.peek() == Some(&Tok::Else) {
                    self.pos += 1;
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then, other))
            }
            Some(Tok::Return) => {
                self.pos += 1;
                if self.peek() == Some(&Tok::Semi) {
                    self.pos += 1;
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr(0)?;
                    self.expect(Tok::Semi, "`;`")?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            // `ident = ...` is an assignment; anything else (including
            // `ident(...)` calls) is an expression statement.
            Some(Tok::Ident(_))
                if matches!(
                    self.toks.get(self.pos + 1).map(|s| &s.tok),
                    Some(Tok::Assign)
                ) =>
            {
                let name = self.ident("variable name")?;
                self.pos += 1; // consume `=`
                let e = self.expr(0)?;
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Assign(name, e))
            }
            _ => {
                let e = self.expr(0)?;
                self.expect(Tok::Semi, "`;`")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn expr(&mut self, min_bp: u8) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        while let Some((op, bp)) = self.peek().and_then(binop_of) {
            if bp < min_bp {
                break;
            }
            self.pos += 1;
            let rhs = self.expr(bp + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.pos += 1;
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)))
            }
            Some(Tok::Bang) => {
                self.pos += 1;
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let line = self.line();
        match self.next()? {
            Tok::Num(n) => Ok(Expr::Num(n)),
            Tok::LParen => {
                let e = self.expr(0)?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.expr(0)?);
                            if self.peek() == Some(&Tok::Comma) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen, "`)`")?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(LangError::at(
                line,
                format!("expected an expression, got {other:?}"),
            )),
        }
    }
}

/// Parse hvft-lang source text into an AST.
pub fn parse(src: &str) -> Result<Program, LangError> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
    };
    p.program()
}
