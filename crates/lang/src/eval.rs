//! The reference interpreter — hvft-lang's operational semantics.
//!
//! This is the SOS-style contract the compiler must preserve: a
//! program's observable behaviour is its exit code, the byte stream it
//! `putc`s, and the sequence of `mark` checkpoints. The differential
//! tests run this interpreter against the compiled image on a real
//! `BareHost` and demand exact agreement, which is what turns randomly
//! generated programs into oracles.
//!
//! The machine model mirrors the guest environment: memory words read
//! as 0 until written (guest RAM is zeroed at boot), `peek`/`poke` are
//! confined to the user data window and the DMA buffer, and disk
//! blocks read as zeros until written.

use crate::check::{Intrinsic, TExpr, TProgram, TStmt};
use crate::{ast, CodegenOptions};
use std::collections::BTreeMap;
use std::fmt;

/// Words per disk block (8 KiB blocks).
const BLOCK_WORDS: usize = 2048;
/// Maximum call depth before the interpreter gives up.
const MAX_CALL_DEPTH: usize = 64;

/// Everything a program can observe about its own run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Outcome {
    /// Exit code: `main`'s return value, or `exit(code)`'s argument.
    pub exit: u32,
    /// Bytes written via `putc`, in order.
    pub console: Vec<u8>,
    /// Values passed to `mark`, in order.
    pub marks: Vec<u32>,
    /// Interpreter steps spent (an abstract cost, **not** retired
    /// instructions — useful only for relative sizing of programs).
    pub steps: u64,
}

/// Why evaluation could not produce an [`Outcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The fuel budget ran out — the program loops too long.
    OutOfFuel,
    /// Division or remainder by zero (the guest would trap fatally).
    DivideByZero,
    /// `peek`/`poke` outside the data window or unaligned.
    BadAddress(u32),
    /// Call nesting exceeded the interpreter's depth limit.
    CallDepth,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::OutOfFuel => write!(f, "out of fuel (program runs too long)"),
            EvalError::DivideByZero => write!(f, "division by zero"),
            EvalError::BadAddress(a) => write!(f, "bad memory address {a:#x}"),
            EvalError::CallDepth => write!(f, "call depth limit exceeded"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Early-termination channel threaded through evaluation.
enum Stop {
    Exit(u32),
    Err(EvalError),
}

/// Statement-level control flow.
enum Flow {
    Normal,
    Return(u32),
}

struct Machine<'a> {
    prog: &'a TProgram,
    opts: &'a CodegenOptions,
    mem: BTreeMap<u32, u32>,
    disk: BTreeMap<u32, Vec<u32>>,
    console: Vec<u8>,
    marks: Vec<u32>,
    ticks: u64,
    fuel: u64,
    spent: u64,
    depth: usize,
}

fn apply_bin(op: ast::BinOp, a: u32, b: u32) -> Result<u32, Stop> {
    use ast::BinOp::*;
    Ok(match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Mul => a.wrapping_mul(b),
        Div => a.checked_div(b).ok_or(Stop::Err(EvalError::DivideByZero))?,
        Rem => a.checked_rem(b).ok_or(Stop::Err(EvalError::DivideByZero))?,
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Shl => a << (b & 31),
        Shr => a >> (b & 31),
        Eq => u32::from(a == b),
        Ne => u32::from(a != b),
        Lt => u32::from((a as i32) < (b as i32)),
        Le => u32::from((a as i32) <= (b as i32)),
        Gt => u32::from((a as i32) > (b as i32)),
        Ge => u32::from((a as i32) >= (b as i32)),
        LAnd => u32::from(a != 0 && b != 0),
        LOr => u32::from(a != 0 || b != 0),
    })
}

impl Machine<'_> {
    fn burn(&mut self) -> Result<(), Stop> {
        if self.fuel == 0 {
            return Err(Stop::Err(EvalError::OutOfFuel));
        }
        self.fuel -= 1;
        self.spent += 1;
        Ok(())
    }

    /// `peek`/`poke` must land word-aligned inside the data window or
    /// the DMA buffer; anywhere else is undefined behaviour on the
    /// real guest (it would fault), so the interpreter rejects it.
    fn check_addr(&self, addr: u32) -> Result<u32, Stop> {
        let o = self.opts;
        let in_data = addr >= o.user_data && addr < o.user_data + o.data_window;
        let in_dma = addr >= o.dma_buf && addr < o.dma_buf + (BLOCK_WORDS as u32) * 4;
        if !addr.is_multiple_of(4) || !(in_data || in_dma) {
            return Err(Stop::Err(EvalError::BadAddress(addr)));
        }
        Ok(addr)
    }

    fn intrinsic(&mut self, intr: Intrinsic, args: &[u32]) -> Result<u32, Stop> {
        Ok(match intr {
            Intrinsic::Putc => {
                self.console.push((args[0] & 0xFF) as u8);
                0
            }
            Intrinsic::Mark => {
                self.marks.push(args[0]);
                0
            }
            Intrinsic::Exit => return Err(Stop::Exit(args[0])),
            // The guest's timer state is nondeterministic relative to
            // the abstract semantics, so the interpreter models both
            // clocks as a simple monotonic counter. Programs that
            // branch on these values can't be interpreter oracles
            // (the generator never emits them), but they still work as
            // tier-differential oracles.
            Intrinsic::Ticks | Intrinsic::Time => {
                self.ticks += 1;
                (self.ticks - 1) as u32
            }
            Intrinsic::ReadBlock => {
                let block = self.disk.get(&args[0]).cloned();
                for i in 0..BLOCK_WORDS {
                    let addr = self.opts.dma_buf + (i as u32) * 4;
                    let w = block.as_ref().map_or(0, |b| b[i]);
                    self.mem.insert(addr, w);
                }
                *self.mem.get(&self.opts.dma_buf).unwrap_or(&0)
            }
            Intrinsic::WriteBlock => {
                let words = (0..BLOCK_WORDS)
                    .map(|i| {
                        let addr = self.opts.dma_buf + (i as u32) * 4;
                        *self.mem.get(&addr).unwrap_or(&0)
                    })
                    .collect();
                self.disk.insert(args[0], words);
                0
            }
            Intrinsic::Peek => {
                let addr = self.check_addr(args[0])?;
                *self.mem.get(&addr).unwrap_or(&0)
            }
            Intrinsic::Poke => {
                let addr = self.check_addr(args[0])?;
                self.mem.insert(addr, args[1]);
                0
            }
        })
    }

    fn expr(&mut self, e: &TExpr, locals: &mut [u32]) -> Result<u32, Stop> {
        self.burn()?;
        Ok(match e {
            TExpr::Num(n) => *n,
            TExpr::Local(slot) => locals[*slot],
            TExpr::Unary(op, a) => {
                let v = self.expr(a, locals)?;
                match op {
                    ast::UnOp::Neg => 0u32.wrapping_sub(v),
                    ast::UnOp::Not => u32::from(v == 0),
                }
            }
            TExpr::Bin(op, a, b) => {
                let av = self.expr(a, locals)?;
                let bv = self.expr(b, locals)?;
                apply_bin(*op, av, bv)?
            }
            TExpr::Intr(intr, args) => {
                let vals = args
                    .iter()
                    .map(|a| self.expr(a, locals))
                    .collect::<Result<Vec<_>, _>>()?;
                self.intrinsic(*intr, &vals)?
            }
            TExpr::Call(idx, args) => {
                let vals = args
                    .iter()
                    .map(|a| self.expr(a, locals))
                    .collect::<Result<Vec<_>, _>>()?;
                self.call(*idx, &vals)?
            }
        })
    }

    fn call(&mut self, idx: usize, args: &[u32]) -> Result<u32, Stop> {
        if self.depth >= MAX_CALL_DEPTH {
            return Err(Stop::Err(EvalError::CallDepth));
        }
        self.depth += 1;
        let f = &self.prog.funcs[idx];
        let mut locals = vec![0u32; f.locals];
        locals[..args.len()].copy_from_slice(args);
        let r = self.block(&f.body, &mut locals);
        self.depth -= 1;
        Ok(match r? {
            Flow::Return(v) => v,
            Flow::Normal => 0,
        })
    }

    fn block(&mut self, body: &[TStmt], locals: &mut [u32]) -> Result<Flow, Stop> {
        for s in body {
            match self.stmt(s, locals)? {
                Flow::Normal => {}
                ret => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    fn stmt(&mut self, s: &TStmt, locals: &mut [u32]) -> Result<Flow, Stop> {
        self.burn()?;
        Ok(match s {
            TStmt::Assign(slot, e) => {
                locals[*slot] = self.expr(e, locals)?;
                Flow::Normal
            }
            TStmt::Expr(e) => {
                self.expr(e, locals)?;
                Flow::Normal
            }
            TStmt::Return(e) => {
                let v = match e {
                    Some(e) => self.expr(e, locals)?,
                    None => 0,
                };
                Flow::Return(v)
            }
            TStmt::If(c, t, o) => {
                if self.expr(c, locals)? != 0 {
                    self.block(t, locals)?
                } else {
                    self.block(o, locals)?
                }
            }
            TStmt::While(c, body) => {
                while self.expr(c, locals)? != 0 {
                    match self.block(body, locals)? {
                        Flow::Normal => {}
                        ret => return Ok(ret),
                    }
                }
                Flow::Normal
            }
        })
    }
}

/// Evaluate a checked program under a fuel budget.
///
/// `fuel` bounds the number of AST nodes visited; well-formed generated
/// programs finish in a few thousand steps, so a budget of ~1 M
/// distinguishes "loops forever" from "slow" with a wide margin.
pub fn eval(prog: &TProgram, opts: &CodegenOptions, fuel: u64) -> Result<Outcome, EvalError> {
    let mut m = Machine {
        prog,
        opts,
        mem: BTreeMap::new(),
        disk: BTreeMap::new(),
        console: Vec::new(),
        marks: Vec::new(),
        ticks: 0,
        fuel,
        spent: 0,
        depth: 0,
    };
    let exit = match m.call(prog.entry, &[]) {
        Ok(v) => v,
        Err(Stop::Exit(code)) => code,
        Err(Stop::Err(e)) => return Err(e),
    };
    Ok(Outcome {
        exit,
        console: m.console,
        marks: m.marks,
        steps: m.spent,
    })
}
