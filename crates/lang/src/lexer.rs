//! Hand-rolled lexer for hvft-lang.
//!
//! Tokens carry the 1-based source line they started on so parse and
//! check errors can point back into generated or corpus programs.

use crate::LangError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword candidate.
    Ident(String),
    /// An integer literal (decimal, `0x` hex, or `'c'` char).
    Num(u32),
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `while`
    While,
    /// `if`
    If,
    /// `else`
    Else,
    /// `return`
    Return,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

/// A token plus the 1-based line it started on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

fn keyword(s: &str) -> Option<Tok> {
    Some(match s {
        "fn" => Tok::Fn,
        "let" => Tok::Let,
        "while" => Tok::While,
        "if" => Tok::If,
        "else" => Tok::Else,
        "return" => Tok::Return,
        _ => return None,
    })
}

/// Tokenize `src`. `//` comments run to end of line.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LangError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let bytes = src.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = line;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let s = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[s..i];
                out.push(Spanned {
                    tok: keyword(word).unwrap_or_else(|| Tok::Ident(word.to_string())),
                    line: start,
                });
            }
            c if c.is_ascii_digit() => {
                let s = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_alphanumeric() {
                    i += 1;
                }
                let text = &src[s..i];
                let value =
                    if let Some(hex) = text.strip_prefix("0x").or(text.strip_prefix("0X")) {
                        u32::from_str_radix(hex, 16)
                    } else {
                        text.parse::<u32>()
                    }
                    .map_err(|_| LangError::at(start, format!("bad integer literal `{text}`")))?;
                out.push(Spanned {
                    tok: Tok::Num(value),
                    line: start,
                });
            }
            '\'' => {
                // 'c' or '\n' style char literal, value = the byte.
                let (value, len) = match (bytes.get(i + 1), bytes.get(i + 2), bytes.get(i + 3)) {
                    (Some(b'\\'), Some(&esc), Some(b'\'')) => {
                        let v = match esc {
                            b'n' => b'\n',
                            b't' => b'\t',
                            b'0' => 0,
                            b'\\' => b'\\',
                            b'\'' => b'\'',
                            _ => {
                                return Err(LangError::at(
                                    start,
                                    format!("unknown escape `\\{}`", esc as char),
                                ))
                            }
                        };
                        (v as u32, 4)
                    }
                    (Some(&ch), Some(b'\''), _) if ch != b'\\' && ch != b'\'' => (ch as u32, 3),
                    _ => return Err(LangError::at(start, "unterminated char literal".into())),
                };
                out.push(Spanned {
                    tok: Tok::Num(value),
                    line: start,
                });
                i += len;
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let tok2 = match two {
                    "<<" => Some(Tok::Shl),
                    ">>" => Some(Tok::Shr),
                    "==" => Some(Tok::EqEq),
                    "!=" => Some(Tok::NotEq),
                    "<=" => Some(Tok::Le),
                    ">=" => Some(Tok::Ge),
                    "&&" => Some(Tok::AndAnd),
                    "||" => Some(Tok::OrOr),
                    _ => None,
                };
                if let Some(t) = tok2 {
                    out.push(Spanned {
                        tok: t,
                        line: start,
                    });
                    i += 2;
                    continue;
                }
                let tok1 = match c {
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    ',' => Tok::Comma,
                    ';' => Tok::Semi,
                    '=' => Tok::Assign,
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '*' => Tok::Star,
                    '/' => Tok::Slash,
                    '%' => Tok::Percent,
                    '&' => Tok::Amp,
                    '|' => Tok::Pipe,
                    '^' => Tok::Caret,
                    '<' => Tok::Lt,
                    '>' => Tok::Gt,
                    '!' => Tok::Bang,
                    other => {
                        return Err(LangError::at(
                            start,
                            format!("unexpected character `{other}`"),
                        ))
                    }
                };
                out.push(Spanned {
                    tok: tok1,
                    line: start,
                });
                i += 1;
            }
        }
    }
    Ok(out)
}
