//! Assembly emission: lowered IR → `hvft-isa::asm` source text.
//!
//! The emitter walks each function's IR once, materializing the
//! evaluation stack onto the registers chosen by [`crate::regalloc`].
//! Spilled operands bounce through the two scratch registers
//! (`r26`/`r27`), which are never live across a call or gate — the
//! guest kernel's syscall path clobbers exactly `r4` and `r26..r31`
//! and preserves `r5..r25`, so evaluation registers survive gates
//! without caller saves; only real `call`s save the live window.

use crate::ast::{BinOp, UnOp};
use crate::check::Intrinsic;
use crate::lower::{Ir, IrProgram};
use crate::regalloc::{FnAlloc, Loc, SCRATCH0, SCRATCH1, TMP_BASE, TMP_REGS};
use crate::CodegenOptions;
use std::fmt::Write;

struct Emitter<'a> {
    out: String,
    alloc: &'a FnAlloc,
    fi: usize,
    opts: &'a CodegenOptions,
}

impl Emitter<'_> {
    fn line(&mut self, text: &str) {
        let _ = writeln!(self.out, "    {text}");
    }

    fn label(&mut self, l: usize) {
        let fi = self.fi;
        let _ = writeln!(self.out, "Lf{fi}_{l}:");
    }

    /// Load an immediate into a register; `addi` for small values,
    /// `li` (lui+ori) otherwise.
    fn imm(&mut self, rd: u8, v: u32) {
        if v < 0x1000 {
            self.line(&format!("addi r{rd}, r0, {v}"));
        } else {
            self.line(&format!("li   r{rd}, {v:#x}"));
        }
    }

    /// Ensure temp `t(d)` is in a register, loading spills into
    /// `scratch`; returns the register holding the value.
    fn read_tmp(&mut self, d: usize, scratch: u8) -> u8 {
        match self.alloc.tmp(d) {
            Loc::Reg(r) => r,
            Loc::Frame(off) => {
                self.line(&format!("lw   r{scratch}, {off}(sp)"));
                scratch
            }
        }
    }

    /// Register to compute `t(d)` into ([`SCRATCH0`] when spilled —
    /// follow with [`Self::finish_dst`]).
    fn dst_reg(&self, d: usize) -> u8 {
        match self.alloc.tmp(d) {
            Loc::Reg(r) => r,
            Loc::Frame(_) => SCRATCH0,
        }
    }

    /// Write back `t(d)` if it lives in the frame.
    fn finish_dst(&mut self, d: usize, computed_in: u8) {
        if let Loc::Frame(off) = self.alloc.tmp(d) {
            self.line(&format!("sw   r{computed_in}, {off}(sp)"));
        }
    }

    fn bin(&mut self, op: BinOp, d: usize) {
        let a = self.read_tmp(d, SCRATCH0);
        let b = self.read_tmp(d + 1, SCRATCH1);
        let dd = self.dst_reg(d);
        let simple = |m: &str| format!("{m:<4} r{dd}, r{a}, r{b}");
        match op {
            BinOp::Add => self.line(&simple("add")),
            BinOp::Sub => self.line(&simple("sub")),
            BinOp::Mul => self.line(&simple("mul")),
            BinOp::Div => self.line(&simple("divu")),
            BinOp::Rem => self.line(&simple("remu")),
            BinOp::And => self.line(&simple("and")),
            BinOp::Or => self.line(&simple("or")),
            BinOp::Xor => self.line(&simple("xor")),
            BinOp::Shl => self.line(&simple("sll")),
            BinOp::Shr => self.line(&simple("srl")),
            BinOp::Lt => self.line(&simple("slt")),
            BinOp::Gt => self.line(&format!("slt  r{dd}, r{b}, r{a}")),
            BinOp::Le => {
                self.line(&format!("slt  r{dd}, r{b}, r{a}"));
                self.line(&format!("xori r{dd}, r{dd}, 1"));
            }
            BinOp::Ge => {
                self.line(&format!("slt  r{dd}, r{a}, r{b}"));
                self.line(&format!("xori r{dd}, r{dd}, 1"));
            }
            BinOp::Eq => {
                self.line(&format!("xor  r{dd}, r{a}, r{b}"));
                self.line(&format!("sltu r{dd}, r0, r{dd}"));
                self.line(&format!("xori r{dd}, r{dd}, 1"));
            }
            BinOp::Ne => {
                self.line(&format!("xor  r{dd}, r{a}, r{b}"));
                self.line(&format!("sltu r{dd}, r0, r{dd}"));
            }
            BinOp::LOr => {
                self.line(&format!("or   r{dd}, r{a}, r{b}"));
                self.line(&format!("sltu r{dd}, r0, r{dd}"));
            }
            BinOp::LAnd => {
                // Normalize both sides to 0/1; `b`'s register is dead
                // after this op, so it can hold the normalized right
                // side (it is never the destination register).
                self.line(&format!("sltu r{dd}, r0, r{a}"));
                self.line(&format!("sltu r{b}, r0, r{b}"));
                self.line(&format!("and  r{dd}, r{dd}, r{b}"));
            }
        }
        self.finish_dst(d, dd);
    }

    fn unary(&mut self, op: UnOp, d: usize) {
        let a = self.read_tmp(d, SCRATCH0);
        let dd = self.dst_reg(d);
        match op {
            UnOp::Neg => self.line(&format!("sub  r{dd}, r0, r{a}")),
            UnOp::Not => {
                self.line(&format!("sltu r{dd}, r0, r{a}"));
                self.line(&format!("xori r{dd}, r{dd}, 1"));
            }
        }
        self.finish_dst(d, dd);
    }

    /// Move temp `t(d)` into argument register `r(4 + k)`.
    fn arg(&mut self, d: usize, k: usize) {
        match self.alloc.tmp(d) {
            Loc::Reg(r) => self.line(&format!("mv   r{}, r{r}", 4 + k)),
            Loc::Frame(off) => self.line(&format!("lw   r{}, {off}(sp)", 4 + k)),
        }
    }

    /// Store the syscall result (`r4`) into `t(d)`.
    fn result_from_r4(&mut self, d: usize) {
        match self.alloc.tmp(d) {
            Loc::Reg(r) => self.line(&format!("mv   r{r}, r4")),
            Loc::Frame(off) => self.line(&format!("sw   r4, {off}(sp)")),
        }
    }

    /// Intrinsics that "return" 0 still define `t(d)`.
    fn result_zero(&mut self, d: usize) {
        match self.alloc.tmp(d) {
            Loc::Reg(r) => self.line(&format!("mv   r{r}, r0")),
            Loc::Frame(off) => self.line(&format!("sw   r0, {off}(sp)")),
        }
    }

    fn intrinsic(&mut self, intr: Intrinsic, d: usize) {
        let o = self.opts;
        match intr {
            Intrinsic::Putc => {
                self.arg(d, 0);
                self.line(&format!("gate {}", o.sys_putc));
                self.result_zero(d);
            }
            Intrinsic::Mark => {
                self.arg(d, 0);
                self.line(&format!("gate {}", o.sys_mark));
                self.result_zero(d);
            }
            Intrinsic::Exit => {
                self.arg(d, 0);
                self.line(&format!("gate {}", o.sys_exit));
            }
            Intrinsic::Time => {
                self.line(&format!("gate {}", o.sys_gettime));
                self.result_from_r4(d);
            }
            Intrinsic::Ticks => {
                self.line(&format!("gate {}", o.sys_getticks));
                self.result_from_r4(d);
            }
            Intrinsic::ReadBlock => {
                self.arg(d, 0);
                self.line(&format!("li   r5, {:#x}", o.dma_buf));
                self.line(&format!("gate {}", o.sys_read_block));
                // Yield the buffer's first word so reads are visible
                // to pure-integer programs.
                let dd = self.dst_reg(d);
                self.line(&format!("li   r{SCRATCH0}, {:#x}", o.dma_buf));
                self.line(&format!("lw   r{dd}, 0(r{SCRATCH0})"));
                self.finish_dst(d, dd);
            }
            Intrinsic::WriteBlock => {
                self.arg(d, 0);
                self.line(&format!("li   r5, {:#x}", o.dma_buf));
                self.line(&format!("gate {}", o.sys_write_block));
                self.result_zero(d);
            }
            Intrinsic::Peek => {
                let a = self.read_tmp(d, SCRATCH0);
                let dd = self.dst_reg(d);
                self.line(&format!("lw   r{dd}, 0(r{a})"));
                self.finish_dst(d, dd);
            }
            Intrinsic::Poke => {
                let a = self.read_tmp(d, SCRATCH0);
                let v = self.read_tmp(d + 1, SCRATCH1);
                self.line(&format!("sw   r{v}, 0(r{a})"));
                self.result_zero(d);
            }
        }
    }

    fn call(&mut self, d: usize, callee: &str, nargs: usize) {
        // Registers t0..t(d-1) are live across the call; the callee
        // owns the whole evaluation window, so park them in the
        // caller's call-save area.
        let live = d.min(TMP_REGS);
        for i in 0..live {
            let off = self.alloc.call_save(i);
            self.line(&format!("sw   r{}, {off}(sp)", TMP_BASE + i as u8));
        }
        for k in 0..nargs {
            self.arg(d + k, k);
        }
        self.line(&format!("call fn_{callee}"));
        self.result_from_r4(d);
        for i in 0..live {
            let off = self.alloc.call_save(i);
            self.line(&format!("lw   r{}, {off}(sp)", TMP_BASE + i as u8));
        }
    }

    fn op(&mut self, op: &Ir, prog: &IrProgram) {
        let fi = self.fi;
        match op {
            Ir::Const { d, imm } => {
                let dd = self.dst_reg(*d);
                self.imm(dd, *imm);
                self.finish_dst(*d, dd);
            }
            Ir::LoadLocal { d, slot } => match (self.alloc.tmp(*d), self.alloc.locals[*slot]) {
                (Loc::Reg(r), Loc::Reg(l)) => self.line(&format!("mv   r{r}, r{l}")),
                (Loc::Reg(r), Loc::Frame(off)) => self.line(&format!("lw   r{r}, {off}(sp)")),
                (Loc::Frame(off), Loc::Reg(l)) => self.line(&format!("sw   r{l}, {off}(sp)")),
                (Loc::Frame(doff), Loc::Frame(soff)) => {
                    self.line(&format!("lw   r{SCRATCH0}, {soff}(sp)"));
                    self.line(&format!("sw   r{SCRATCH0}, {doff}(sp)"));
                }
            },
            Ir::StoreLocal { slot, d } => {
                let src = self.read_tmp(*d, SCRATCH0);
                match self.alloc.locals[*slot] {
                    Loc::Reg(l) => self.line(&format!("mv   r{l}, r{src}")),
                    Loc::Frame(off) => self.line(&format!("sw   r{src}, {off}(sp)")),
                }
            }
            Ir::Unary { op, d } => self.unary(*op, *d),
            Ir::Bin { op, d } => self.bin(*op, *d),
            Ir::Call { d, index, nargs } => {
                let callee = prog.funcs[*index].name.clone();
                self.call(*d, &callee, *nargs);
            }
            Ir::Intr { d, intr, nargs: _ } => self.intrinsic(*intr, *d),
            Ir::Label(l) => self.label(*l),
            Ir::Jump(l) => self.line(&format!("b    Lf{fi}_{l}")),
            Ir::Branch0 { d, label } => {
                let r = self.read_tmp(*d, SCRATCH0);
                self.line(&format!("beq  r{r}, r0, Lf{fi}_{label}"));
            }
            Ir::Ret { has_value } => {
                if *has_value {
                    let r = self.read_tmp(0, SCRATCH0);
                    self.line(&format!("mv   r4, r{r}"));
                } else {
                    self.line("mv   r4, r0");
                }
                self.line(&format!("b    Lret{fi}"));
            }
        }
    }
}

fn emit_fn(out: &mut String, prog: &IrProgram, fi: usize, opts: &CodegenOptions) {
    let f = &prog.funcs[fi];
    let alloc = FnAlloc::of(f);
    let mut e = Emitter {
        out: String::new(),
        alloc: &alloc,
        fi,
        opts,
    };
    let _ = writeln!(e.out, "fn_{}:", f.name);
    e.line(&format!("addi sp, sp, -{}", alloc.frame_size));
    e.line("sw   ra, 0(sp)");
    for (reg, off) in alloc.saved.clone() {
        e.line(&format!("sw   r{reg}, {off}(sp)"));
    }
    // Marshal incoming arguments into their local slots.
    for p in 0..f.params {
        match alloc.locals[p] {
            Loc::Reg(l) => e.line(&format!("mv   r{l}, r{}", 4 + p)),
            Loc::Frame(off) => e.line(&format!("sw   r{}, {off}(sp)", 4 + p)),
        }
    }
    for op in &f.body {
        e.op(op, prog);
    }
    let _ = writeln!(e.out, "Lret{fi}:");
    for (reg, off) in alloc.saved.clone() {
        e.line(&format!("lw   r{reg}, {off}(sp)"));
    }
    e.line("lw   ra, 0(sp)");
    e.line(&format!("addi sp, sp, {}", alloc.frame_size));
    e.line("ret");
    out.push_str(&e.out);
    out.push('\n');
}

/// Emit a whole program as `hvft-isa::asm` source.
///
/// The entry shim `u_main` sits first at `opts.org` (the guest kernel
/// expects the user program's entry symbol there), sets up the stack,
/// calls `fn_main`, and exits with its return value.
pub fn emit(prog: &IrProgram, opts: &CodegenOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; generated by hvft-lang");
    let _ = writeln!(out, ".org {:#x}", opts.org);
    let _ = writeln!(out, "u_main:");
    let _ = writeln!(out, "    li   sp, {:#x}", opts.stack_top);
    let _ = writeln!(out, "    call fn_{}", prog.funcs[prog.entry].name);
    let _ = writeln!(out, "    gate {}", opts.sys_exit);
    let _ = writeln!(out, "    halt");
    out.push('\n');
    for fi in 0..prog.funcs.len() {
        emit_fn(&mut out, prog, fi, opts);
    }
    out
}
