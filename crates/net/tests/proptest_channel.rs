//! Property tests for the FIFO channel — the §2 protocols assume FIFO
//! delivery, so the channel must preserve send order under every
//! schedule of message sizes and send times.

use hvft_net::channel::Channel;
use hvft_net::link::LinkSpec;
use hvft_sim::time::SimTime;
use proptest::prelude::*;

fn arb_link() -> impl Strategy<Value = LinkSpec> {
    prop_oneof![
        Just(LinkSpec::ethernet_10mbps()),
        Just(LinkSpec::atm_155mbps()),
        Just(LinkSpec::instant()),
    ]
}

proptest! {
    #[test]
    fn fifo_order_for_any_schedule(
        link in arb_link(),
        sends in prop::collection::vec((0u64..1_000_000, 0usize..20_000), 1..60),
    ) {
        let mut ch: Channel<usize> = Channel::new(link, 1);
        let mut now = SimTime::ZERO;
        let mut deliveries = Vec::new();
        for (i, (dt, bytes)) in sends.iter().enumerate() {
            now += hvft_sim::time::SimDuration::from_nanos(*dt);
            if let Some(t) = ch.send(now, *bytes, i) {
                deliveries.push(t);
            }
        }
        // Delivery times never regress (FIFO).
        for w in deliveries.windows(2) {
            prop_assert!(w[0] <= w[1], "delivery order violated: {w:?}");
        }
        // Draining yields ascending payload indices.
        let far = SimTime::from_nanos(u64::MAX / 2);
        let mut last = None;
        while let Some(idx) = ch.pop_ready(far) {
            if let Some(prev) = last {
                prop_assert!(idx > prev, "payload {idx} after {prev}");
            }
            last = Some(idx);
        }
    }

    #[test]
    fn delivery_never_precedes_minimum_latency(
        link in arb_link(),
        bytes in 0usize..10_000,
        at_ns in 0u64..1_000_000,
    ) {
        let mut ch: Channel<u8> = Channel::new(link, 2);
        let at = SimTime::from_nanos(at_ns);
        if let Some(t) = ch.send(at, bytes, 0) {
            prop_assert!(t >= at + link.min_latency() || bytes == 0,
                "delivered at {t}, sent {at}, min latency {}", link.min_latency());
            prop_assert!(t >= at, "delivery {t} precedes send {at}");
        }
    }

    #[test]
    fn lossy_channel_delivers_a_subsequence(
        loss in 0.0f64..1.0,
        n in 1usize..100,
    ) {
        let mut ch: Channel<usize> = Channel::new(LinkSpec::instant(), 3);
        ch.set_loss_probability(loss);
        for i in 0..n {
            let _ = ch.send(SimTime::ZERO, 8, i);
        }
        let far = SimTime::from_nanos(u64::MAX / 2);
        let mut got = Vec::new();
        while let Some(i) = ch.pop_ready(far) {
            got.push(i);
        }
        // In-order subsequence of 0..n.
        prop_assert!(got.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(got.iter().all(|&i| i < n));
        let s = ch.stats();
        prop_assert_eq!(s.sent, n as u64);
        prop_assert_eq!(s.delivered + s.dropped, n as u64);
    }
}
