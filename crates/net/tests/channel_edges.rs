//! Edge-path coverage for `Channel` — the behaviours the lossy-LAN
//! subsystem (reliable layer, shared `Lan`, cluster driver) builds on:
//! loss-probability clamping and statistics, sever semantics, and
//! `pop_ready` ordering when deliveries tie in time.

use hvft_net::channel::Channel;
use hvft_net::link::LinkSpec;
use hvft_sim::time::{SimDuration, SimTime};

fn t(ns: u64) -> SimTime {
    SimTime::from_nanos(ns)
}

#[test]
fn loss_probability_clamps_to_unit_interval() {
    let mut ch: Channel<u8> = Channel::new(LinkSpec::instant(), 1);
    // Above 1.0 clamps to certain loss…
    ch.set_loss_probability(7.5);
    for i in 0..50 {
        assert_eq!(ch.send(SimTime::ZERO, 1, i), None, "p=1: all lost");
    }
    assert_eq!(ch.stats().dropped, 50);
    // …and below 0.0 clamps to lossless.
    ch.set_loss_probability(-3.0);
    for i in 0..50 {
        assert!(ch.send(SimTime::ZERO, 1, i).is_some(), "p=0: none lost");
    }
    assert_eq!(ch.stats().dropped, 50, "no further drops at p=0");
    assert_eq!(ch.stats().sent, 100);
}

#[test]
fn certain_loss_still_occupies_the_link() {
    // Drops burn air time: a message after a dropped one starts late.
    let mut ch: Channel<u8> = Channel::new(LinkSpec::ethernet_10mbps(), 1);
    ch.set_loss_probability(1.0);
    assert_eq!(ch.send(SimTime::ZERO, 8192, 1), None);
    ch.set_loss_probability(0.0);
    let d = ch.send(SimTime::ZERO, 4, 2).expect("lossless now");
    assert!(
        d - SimTime::ZERO > ch.link().transfer_time(8192),
        "survivor delayed by the dropped transfer: {d}"
    );
}

#[test]
fn loss_is_per_message_and_deterministic_per_seed() {
    let pattern = |seed: u64| -> Vec<bool> {
        let mut ch: Channel<u32> = Channel::new(LinkSpec::instant(), seed);
        ch.set_loss_probability(0.5);
        (0..64)
            .map(|i| ch.send(SimTime::ZERO, 4, i).is_none())
            .collect()
    };
    assert_eq!(pattern(11), pattern(11), "same seed, same drops");
    assert_ne!(pattern(11), pattern(12), "different seed, different drops");
    let drops = pattern(11).iter().filter(|&&d| d).count();
    assert!((10..55).contains(&drops), "rate wildly off: {drops}/64");
}

#[test]
fn sever_is_reported_and_permanent() {
    let mut ch: Channel<u8> = Channel::new(LinkSpec::ethernet_10mbps(), 0);
    assert!(!ch.is_severed());
    ch.sever();
    assert!(ch.is_severed());
    // Severing is idempotent and permanent; sends never resume.
    ch.sever();
    assert!(ch.is_severed());
    assert_eq!(ch.send(t(1_000_000_000), 4, 1), None);
    assert_eq!(
        ch.stats().sent,
        0,
        "severed sends are not counted as offered traffic"
    );
}

#[test]
fn sever_keeps_draining_but_blocks_new_traffic() {
    let mut ch: Channel<&str> = Channel::new(LinkSpec::ethernet_10mbps(), 0);
    let d1 = ch.send(SimTime::ZERO, 64, "first").unwrap();
    let d2 = ch.send(SimTime::ZERO, 64, "second").unwrap();
    ch.sever();
    assert_eq!(ch.send(d1, 64, "late"), None);
    // Both in-flight messages arrive in order after the sever.
    assert_eq!(ch.pop_ready(d1), Some("first"));
    assert_eq!(ch.pop_ready(d1), None, "second not due yet");
    assert_eq!(ch.pop_ready(d2), Some("second"));
    assert_eq!(ch.in_flight(), 0);
}

#[test]
fn equal_delivery_times_pop_in_send_order() {
    // An instant link serializes in zero time, so every message sent at
    // one instant becomes deliverable at the same instant: pop_ready
    // must hand them back in send (FIFO) order, one per call.
    let mut ch: Channel<u32> = Channel::new(LinkSpec::instant(), 0);
    let times: Vec<SimTime> = (0..8)
        .map(|i| ch.send(SimTime::ZERO, 4, i).unwrap())
        .collect();
    assert!(
        times.windows(2).all(|w| w[0] == w[1]),
        "instant link must tie all deliveries: {times:?}"
    );
    assert_eq!(ch.next_delivery(), Some(times[0]));
    for expect in 0..8 {
        assert_eq!(ch.pop_ready(times[0]), Some(expect));
    }
    assert_eq!(ch.pop_ready(times[0]), None);
    assert_eq!(ch.stats().delivered, 8);
}

#[test]
fn pop_ready_is_strict_about_time() {
    let mut ch: Channel<u8> = Channel::new(LinkSpec::ethernet_10mbps(), 0);
    let d = ch.send(SimTime::ZERO, 128, 1).unwrap();
    assert_eq!(ch.pop_ready(SimTime::ZERO), None);
    assert_eq!(ch.pop_ready(d - SimDuration::from_nanos(1)), None);
    assert_eq!(
        ch.next_delivery(),
        Some(d),
        "peek unaffected by failed pops"
    );
    assert_eq!(ch.pop_ready(d), Some(1));
    assert_eq!(ch.next_delivery(), None);
}
