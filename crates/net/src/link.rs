//! Link performance models.
//!
//! The paper evaluates replica coordination over a 10 Mbps Ethernet and
//! models a 155 Mbps ATM alternative (§4.3, Figure 4). A link is
//! characterized by bandwidth, propagation delay, and a fixed
//! per-message CPU/controller overhead ("I/O controller set-up time",
//! which §4.3 assumes identical for both technologies).

use hvft_sim::time::SimDuration;

/// Performance parameters of a point-to-point link.
///
/// # Examples
///
/// ```
/// use hvft_net::link::LinkSpec;
///
/// let e = LinkSpec::ethernet_10mbps();
/// // An 8 KB disk block (+48 header bytes) crosses as the paper's
/// // "9 messages for the data" (§4.2)…
/// assert_eq!(e.messages_for(8192 + 48), 9);
/// // …and its end-to-end latency is dominated by serialization.
/// assert!(e.payload_latency(8192) > e.transfer_time(8192));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkSpec {
    /// Raw bandwidth in bits per second.
    pub bits_per_sec: u64,
    /// One-way propagation delay.
    pub propagation: SimDuration,
    /// Fixed per-message overhead (controller set-up + protocol stack),
    /// charged once per message on the send side.
    pub per_message: SimDuration,
    /// Maximum payload bytes per message; larger transfers are split.
    pub mtu: usize,
}

impl LinkSpec {
    /// The prototype's 10 Mbps Ethernet.
    ///
    /// The per-message overhead is calibrated so that (a) an 8 KB disk
    /// block crosses as 9 messages + 1 ack in ≈ 9.2 ms — the paper's
    /// measured read penalty (33.4 ms vs 24.2 ms bare) — and (b) a
    /// small-message ack round trip plus epoch processing lands near the
    /// measured 443 µs epoch boundary.
    pub fn ethernet_10mbps() -> Self {
        LinkSpec {
            bits_per_sec: 10_000_000,
            propagation: SimDuration::from_micros(25),
            per_message: SimDuration::from_micros(35),
            mtu: 1024,
        }
    }

    /// The §4.3 alternative: 155 Mbps ATM with the same controller
    /// set-up time (the paper's explicit assumption).
    pub fn atm_155mbps() -> Self {
        LinkSpec {
            bits_per_sec: 155_000_000,
            propagation: SimDuration::from_micros(25),
            per_message: SimDuration::from_micros(35),
            mtu: 1024,
        }
    }

    /// An idealized near-instant link, useful in unit tests.
    pub fn instant() -> Self {
        LinkSpec {
            bits_per_sec: u64::MAX,
            propagation: SimDuration::from_nanos(1),
            per_message: SimDuration::ZERO,
            mtu: usize::MAX,
        }
    }

    /// Pure serialization time for `bytes` on the wire.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        if self.bits_per_sec == u64::MAX {
            return SimDuration::ZERO;
        }
        let bits = bytes as u64 * 8;
        // Round up to whole nanoseconds.
        let ns = bits
            .saturating_mul(1_000_000_000)
            .div_ceil(self.bits_per_sec);
        SimDuration::from_nanos(ns)
    }

    /// Number of link-level messages needed for a `bytes`-sized payload.
    /// A forwarded 8 KB disk block (8192 data + 48 header bytes) becomes
    /// the paper's "9 messages for the data".
    pub fn messages_for(&self, bytes: usize) -> usize {
        if bytes == 0 || self.mtu == usize::MAX {
            1
        } else {
            bytes.div_ceil(self.mtu)
        }
    }

    /// End-to-end one-way latency for a single message of `bytes` bytes
    /// on an idle link.
    pub fn one_way(&self, bytes: usize) -> SimDuration {
        self.per_message + self.transfer_time(bytes) + self.propagation
    }

    /// Total one-way latency for a (possibly multi-message) payload on an
    /// idle link: messages serialize back-to-back, each paying the
    /// per-message overhead, and the last bit's arrival governs.
    pub fn payload_latency(&self, bytes: usize) -> SimDuration {
        let n = self.messages_for(bytes) as u64;
        self.per_message * n + self.transfer_time(bytes) + self.propagation
    }

    /// The minimum over all messages of the one-way latency; the
    /// conservative-DES lookahead.
    pub fn min_latency(&self) -> SimDuration {
        // A zero-byte message is the fastest thing that can cross.
        let l = self.one_way(0);
        if l == SimDuration::ZERO {
            SimDuration::from_nanos(1)
        } else {
            l
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_block_transfer_matches_paper_shape() {
        let e = LinkSpec::ethernet_10mbps();
        // 8 KB at 10 Mbps is 6.5536 ms of pure serialization.
        let t = e.transfer_time(8192);
        assert_eq!(t.as_nanos(), 6_553_600);
        // The paper's 9 messages (+1 ack handled by the caller): the
        // forwarded block is 8192 payload + 48 header bytes.
        assert_eq!(e.messages_for(8192 + 48), 9);
        // Full payload latency lands in the high-single-millisecond range
        // the paper measured (read penalty 9.2 ms including the ack).
        let total = e.payload_latency(8192);
        assert!(
            (6_500_000..10_000_000).contains(&total.as_nanos()),
            "got {total}"
        );
    }

    #[test]
    fn atm_is_much_faster_for_bulk() {
        let e = LinkSpec::ethernet_10mbps();
        let a = LinkSpec::atm_155mbps();
        assert!(a.transfer_time(8192) < e.transfer_time(8192) / 10);
        // Same controller set-up assumption: small-message latency is
        // nearly identical.
        let d = e.one_way(16).as_nanos() as i64 - a.one_way(16).as_nanos() as i64;
        assert!(d.abs() < 20_000, "small messages differ by {d} ns");
    }

    #[test]
    fn transfer_time_rounds_up() {
        let l = LinkSpec {
            bits_per_sec: 3,
            propagation: SimDuration::ZERO,
            per_message: SimDuration::ZERO,
            mtu: 64,
        };
        // 1 byte = 8 bits at 3 bps = 2.66… s, rounds to whole ns above.
        assert_eq!(l.transfer_time(1).as_nanos(), 2_666_666_667);
    }

    #[test]
    fn instant_link_has_positive_lookahead() {
        let l = LinkSpec::instant();
        assert!(l.min_latency() > SimDuration::ZERO);
        assert_eq!(l.transfer_time(1_000_000), SimDuration::ZERO);
        assert_eq!(l.messages_for(1_000_000), 1);
    }

    #[test]
    fn zero_byte_message() {
        let e = LinkSpec::ethernet_10mbps();
        assert_eq!(e.messages_for(0), 1);
        assert_eq!(e.one_way(0), e.per_message + e.propagation);
    }
}
