//! `hvft-net` — the coordination network between the hypervisors.
//!
//! Provides the FIFO channel abstraction the §2 protocols assume,
//! parameterized by a [`link::LinkSpec`] performance model (10 Mbps
//! Ethernet as in the prototype, or the 155 Mbps ATM of §4.3), plus the
//! timeout [`detector::FailureDetector`] that realizes the failstop
//! detection assumption.
//!
//! Two further layers extend the model to the paper's lossy-network
//! setting (§4.3) and to many fault-tolerant systems on one wire:
//!
//! - [`reliable`] — sequence-numbered frames with cumulative
//!   acknowledgments, per-link retransmit timers and duplicate
//!   suppression, so protocol messages survive a network that "can
//!   lose messages";
//! - [`lan`] — a shared-medium [`lan::Lan`] multiplexing many directed
//!   links over one [`link::LinkSpec`], with bandwidth contention and
//!   per-link loss/sever injection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod detector;
pub mod lan;
pub mod link;
pub mod reliable;
pub mod transport;

pub use channel::{Channel, ChannelStats};
pub use detector::FailureDetector;
pub use lan::{Lan, LanStats, NodeId};
pub use link::LinkSpec;
pub use reliable::{Frame, Outgoing, RecvWindow, SendWindow};
pub use transport::{InstantLink, Transport};
