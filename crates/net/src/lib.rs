//! `hvft-net` — the coordination network between the two hypervisors.
//!
//! Provides the FIFO channel abstraction the §2 protocols assume,
//! parameterized by a [`link::LinkSpec`] performance model (10 Mbps
//! Ethernet as in the prototype, or the 155 Mbps ATM of §4.3), plus the
//! timeout [`detector::FailureDetector`] that realizes the failstop
//! detection assumption.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod detector;
pub mod link;
pub mod transport;

pub use channel::{Channel, ChannelStats};
pub use detector::FailureDetector;
pub use link::LinkSpec;
pub use transport::{InstantLink, Transport};
