//! A unidirectional FIFO message channel over a modelled link.
//!
//! The protocol exposition in §2 assumes "FIFO communications channels"
//! between the processors. [`Channel`] provides exactly that: messages
//! are delivered in send order, never earlier than the link model allows,
//! with optional loss injection (used to probe the revised protocol of
//! §4.3, which tolerates unacknowledged messages until the next I/O).

use crate::link::LinkSpec;
use hvft_sim::rng::SimRng;
use hvft_sim::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Channel statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages accepted for transmission.
    pub sent: u64,
    /// Messages dropped by loss injection.
    pub dropped: u64,
    /// Messages delivered to the receiver.
    pub delivered: u64,
    /// Total payload bytes accepted.
    pub bytes: u64,
}

/// The per-link state and semantics shared by [`Channel`] (a private
/// point-to-point medium) and [`crate::lan::Lan`] (a shared one): FIFO
/// delivery no earlier than serialization + propagation allow, loss
/// drawn per message *after* the air time is charged, and
/// sever-with-drain. The serialization clock (`busy_until`) is owned
/// by the caller — per channel for a private link, per medium for a
/// shared one — which is the only difference between the two media.
#[derive(Clone)]
pub(crate) struct FifoCore<M> {
    queue: VecDeque<(SimTime, M)>,
    rng: SimRng,
    loss_prob: f64,
    severed: bool,
    stats: ChannelStats,
}

impl<M> FifoCore<M> {
    pub(crate) fn new(rng: SimRng) -> Self {
        FifoCore {
            queue: VecDeque::new(),
            rng,
            loss_prob: 0.0,
            severed: false,
            stats: ChannelStats::default(),
        }
    }

    pub(crate) fn set_loss_probability(&mut self, p: f64) {
        self.loss_prob = p.clamp(0.0, 1.0);
    }

    pub(crate) fn sever(&mut self) {
        self.severed = true;
    }

    pub(crate) fn unsever(&mut self) {
        self.severed = false;
    }

    pub(crate) fn is_severed(&self) -> bool {
        self.severed
    }

    /// Offers a message for transmission at `now`, advancing the
    /// caller's serialization clock. Severed links accept (and count)
    /// nothing; lost messages still burn air time.
    pub(crate) fn offer(
        &mut self,
        spec: &LinkSpec,
        busy_until: &mut SimTime,
        now: SimTime,
        bytes: usize,
        msg: M,
    ) -> Option<SimTime> {
        if self.severed {
            return None;
        }
        self.stats.sent += 1;
        self.stats.bytes += bytes as u64;
        // Serialization occupies the medium even if the message is then
        // lost (collisions/drops still burn air time).
        let n_msgs = spec.messages_for(bytes) as u64;
        let tx_time = spec.per_message * n_msgs + spec.transfer_time(bytes);
        let start = (*busy_until).max(now);
        let tx_end = start + tx_time;
        *busy_until = tx_end;
        if self.loss_prob > 0.0 && self.rng.gen_bool(self.loss_prob) {
            self.stats.dropped += 1;
            return None;
        }
        let deliver = tx_end + spec.propagation;
        self.queue.push_back((deliver, msg));
        Some(deliver)
    }

    pub(crate) fn next_delivery(&self) -> Option<SimTime> {
        self.queue.front().map(|(t, _)| *t)
    }

    pub(crate) fn pop_ready(&mut self, now: SimTime) -> Option<M> {
        match self.queue.front() {
            Some((t, _)) if *t <= now => {
                self.stats.delivered += 1;
                self.queue.pop_front().map(|(_, m)| m)
            }
            _ => None,
        }
    }

    pub(crate) fn in_flight(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn stats(&self) -> ChannelStats {
        self.stats
    }
}

/// A unidirectional FIFO channel carrying messages of type `M`.
///
/// # Examples
///
/// ```
/// use hvft_net::channel::Channel;
/// use hvft_net::link::LinkSpec;
/// use hvft_sim::time::SimTime;
///
/// let mut ch: Channel<&str> = Channel::new(LinkSpec::ethernet_10mbps(), 1);
/// let t = ch.send(SimTime::ZERO, 16, "hello").unwrap();
/// assert!(ch.pop_ready(SimTime::ZERO).is_none(), "not delivered instantly");
/// assert_eq!(ch.pop_ready(t), Some("hello"));
/// ```
#[derive(Clone)]
pub struct Channel<M> {
    link: LinkSpec,
    /// Time the transmitter finishes serializing the last accepted
    /// message (models link occupancy).
    busy_until: SimTime,
    core: FifoCore<M>,
}

impl<M> Channel<M> {
    /// Creates an idle channel over `link`.
    pub fn new(link: LinkSpec, seed: u64) -> Self {
        Channel {
            link,
            busy_until: SimTime::ZERO,
            core: FifoCore::new(SimRng::seed_from_label(seed, "channel")),
        }
    }

    /// The underlying link model.
    pub fn link(&self) -> &LinkSpec {
        &self.link
    }

    /// Enables random message loss with probability `p` per message.
    pub fn set_loss_probability(&mut self, p: f64) {
        self.core.set_loss_probability(p);
    }

    /// Permanently severs the channel: future sends vanish, but messages
    /// already in flight are still delivered. This models a sender crash:
    /// the paper assumes the backup "detects the primary's processor
    /// failure only after receiving the last message sent".
    pub fn sever(&mut self) {
        self.core.sever();
    }

    /// Whether the channel has been severed.
    pub fn is_severed(&self) -> bool {
        self.core.is_severed()
    }

    /// Reopens a severed channel — the physical repair that precedes a
    /// failstopped station rejoining service. Messages offered while the
    /// channel was down stay lost; only future sends go through.
    pub fn unsever(&mut self) {
        self.core.unsever();
    }

    /// Sends a message of `bytes` payload bytes at time `now`.
    ///
    /// Returns the delivery time, or `None` if the message was lost
    /// (loss injection) or the channel is severed. Delivery order is
    /// FIFO even when a short message follows a long one.
    pub fn send(&mut self, now: SimTime, bytes: usize, msg: M) -> Option<SimTime> {
        self.core
            .offer(&self.link, &mut self.busy_until, now, bytes, msg)
    }

    /// Time the next message becomes deliverable, if any.
    pub fn next_delivery(&self) -> Option<SimTime> {
        self.core.next_delivery()
    }

    /// Pops the next message if its delivery time has arrived.
    pub fn pop_ready(&mut self, now: SimTime) -> Option<M> {
        self.core.pop_ready(now)
    }

    /// Number of messages in flight.
    pub fn in_flight(&self) -> usize {
        self.core.in_flight()
    }

    /// The instant the transmitter finishes serializing everything
    /// accepted so far — when the last bit of the most recent send left
    /// the adapter. A sender's NIC knows this exactly, which is what
    /// makes serialization-aware retransmit timers honest (see
    /// [`crate::reliable::SendWindow::arm`]).
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Counters.
    pub fn stats(&self) -> ChannelStats {
        self.core.stats()
    }

    /// The earliest a message sent *now* could arrive (DES lookahead).
    pub fn lookahead(&self) -> SimDuration {
        self.link.min_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn fifo_order_preserved() {
        let mut ch: Channel<u32> = Channel::new(LinkSpec::ethernet_10mbps(), 0);
        // A big message then a small one: the small one must not overtake.
        let d1 = ch.send(SimTime::ZERO, 8192, 1).unwrap();
        let d2 = ch.send(SimTime::ZERO, 4, 2).unwrap();
        assert!(d2 > d1, "FIFO: {d2} must follow {d1}");
        let far = t(1_000_000_000);
        assert_eq!(ch.pop_ready(far), Some(1));
        assert_eq!(ch.pop_ready(far), Some(2));
    }

    #[test]
    fn delivery_respects_latency() {
        let mut ch: Channel<&str> = Channel::new(LinkSpec::ethernet_10mbps(), 0);
        let d = ch.send(SimTime::ZERO, 100, "m").unwrap();
        assert!(ch.pop_ready(d - SimDuration::from_nanos(1)).is_none());
        assert_eq!(ch.pop_ready(d), Some("m"));
    }

    #[test]
    fn link_occupancy_serializes_sends() {
        let mut ch: Channel<u8> = Channel::new(LinkSpec::ethernet_10mbps(), 0);
        let d1 = ch.send(SimTime::ZERO, 1024, 1).unwrap();
        let d2 = ch.send(SimTime::ZERO, 1024, 2).unwrap();
        // Second message's delivery is pushed by the first's serialization.
        let gap = d2 - d1;
        assert!(gap >= ch.link().transfer_time(1024), "gap {gap} too small");
    }

    #[test]
    fn loss_injection_drops_messages() {
        let mut ch: Channel<u32> = Channel::new(LinkSpec::instant(), 42);
        ch.set_loss_probability(0.5);
        let mut lost = 0;
        for i in 0..100 {
            if ch.send(SimTime::ZERO, 8, i).is_none() {
                lost += 1;
            }
        }
        assert!(lost > 20 && lost < 80, "loss rate wildly off: {lost}/100");
        assert_eq!(ch.stats().dropped, lost);
        assert_eq!(ch.stats().sent, 100);
    }

    #[test]
    fn sever_stops_new_but_delivers_in_flight() {
        let mut ch: Channel<&str> = Channel::new(LinkSpec::ethernet_10mbps(), 0);
        let d = ch.send(SimTime::ZERO, 8, "in-flight").unwrap();
        ch.sever();
        assert_eq!(ch.send(d, 8, "late"), None);
        assert_eq!(ch.pop_ready(d), Some("in-flight"));
        assert_eq!(ch.in_flight(), 0);
    }

    #[test]
    fn next_delivery_peeks() {
        let mut ch: Channel<u8> = Channel::new(LinkSpec::ethernet_10mbps(), 0);
        assert_eq!(ch.next_delivery(), None);
        let d = ch.send(SimTime::ZERO, 8, 1).unwrap();
        assert_eq!(ch.next_delivery(), Some(d));
    }

    #[test]
    fn stats_track_delivery() {
        let mut ch: Channel<u8> = Channel::new(LinkSpec::instant(), 0);
        let d = ch.send(SimTime::ZERO, 3, 1).unwrap();
        ch.pop_ready(d);
        let s = ch.stats();
        assert_eq!(s.sent, 1);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.bytes, 3);
    }
}
