//! A shared-medium LAN multiplexing many FIFO links.
//!
//! The paper's prototype coordinates one primary/backup pair over a
//! private 10 Mbps Ethernet. Scaling to many fault-tolerant systems on
//! one physical network changes the model in exactly one way: the
//! medium is shared, so every transmission — whichever directed link it
//! belongs to — occupies the same air time and delays everyone else's.
//! [`Lan`] models that: one [`LinkSpec`]-governed medium, any number of
//! registered [`NodeId`]s, and a FIFO queue per directed link with
//! per-link loss injection and severing (plus node-level severing for
//! failstops).
//!
//! Delivery semantics per link are identical to [`Channel`]'s — FIFO,
//! never earlier than serialization + propagation allow, loss burns air
//! time — so a single-system driver behaves the same over a private
//! channel mesh or an uncontended `Lan`. Loss draws come from a
//! per-link RNG seeded from the link's endpoints, so one link's loss
//! pattern depends only on its own traffic, not on how other nodes'
//! sends interleave.
//!
//! [`Channel`]: crate::channel::Channel
//!
//! # Examples
//!
//! ```
//! use hvft_net::lan::Lan;
//! use hvft_net::link::LinkSpec;
//! use hvft_sim::time::SimTime;
//!
//! let mut lan: Lan<&str> = Lan::new(LinkSpec::ethernet_10mbps(), 1);
//! let a = lan.add_node();
//! let b = lan.add_node();
//! let c = lan.add_node();
//!
//! // Two senders contend for the one medium: b's message serializes
//! // after a's even though both were offered at t = 0.
//! let d1 = lan.send(SimTime::ZERO, a, b, 1024, "a to b").unwrap();
//! let d2 = lan.send(SimTime::ZERO, c, b, 1024, "c to b").unwrap();
//! assert!(d2 > d1, "shared medium serializes transmissions");
//! assert_eq!(lan.pop_ready(d1), Some((a, b, "a to b")));
//! assert_eq!(lan.pop_ready(d2), Some((c, b, "c to b")));
//! ```

use crate::channel::{ChannelStats, FifoCore};
use crate::link::LinkSpec;
use hvft_sim::rng::SimRng;
use hvft_sim::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Identifies a station on the LAN (assigned by [`Lan::add_node`]).
pub type NodeId = usize;

/// Aggregate counters for the whole medium.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LanStats {
    /// Messages accepted for transmission (all links).
    pub sent: u64,
    /// Messages dropped by loss injection.
    pub dropped: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Payload bytes accepted.
    pub bytes: u64,
}

/// A shared-medium LAN: one link model, many stations, FIFO delivery
/// per directed link, bandwidth contention across all of them.
///
/// Each directed link is the very state machine behind
/// [`Channel`](crate::channel::Channel) (the crate-internal
/// `FifoCore`), so per-link delivery semantics cannot drift between
/// the private-mesh and shared-LAN media; only the serialization clock
/// differs (one per medium here, one per channel there).
#[derive(Clone)]
pub struct Lan<M> {
    link: LinkSpec,
    seed: u64,
    nodes: usize,
    /// Time the medium finishes serializing the last accepted message.
    busy_until: SimTime,
    links: BTreeMap<(NodeId, NodeId), FifoCore<M>>,
    /// Ready-time index: one `(front delivery time, link)` entry per
    /// link with pending deliveries, kept in sync with the links' FIFO
    /// heads. `pop_ready*`/`next_delivery*` walk this set in time order
    /// instead of scanning every link per call — the difference between
    /// O(pending links) and O(registered links²) per pop once a cluster
    /// grows past a few dozen nodes. Iteration order `(time, (from,
    /// to))` is exactly the `(t, pair)` minimum the scan computed, so
    /// delivery order (and thus every seeded simulation) is unchanged.
    ready: BTreeSet<(SimTime, (NodeId, NodeId))>,
    severed_nodes: Vec<bool>,
}

impl<M> Lan<M> {
    /// An empty LAN over `link`; `seed` feeds every link's loss RNG.
    pub fn new(link: LinkSpec, seed: u64) -> Self {
        Lan {
            link,
            seed,
            nodes: 0,
            busy_until: SimTime::ZERO,
            links: BTreeMap::new(),
            ready: BTreeSet::new(),
            severed_nodes: Vec::new(),
        }
    }

    /// Registers a new station and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.nodes;
        self.nodes += 1;
        self.severed_nodes.push(false);
        id
    }

    /// Number of registered stations.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The underlying link model.
    pub fn link(&self) -> &LinkSpec {
        &self.link
    }

    fn link_mut(&mut self, from: NodeId, to: NodeId) -> &mut FifoCore<M> {
        assert!(
            from < self.nodes && to < self.nodes && from != to,
            "bad link ({from}, {to})"
        );
        let seed = self.seed;
        self.links.entry((from, to)).or_insert_with(|| {
            FifoCore::new(SimRng::seed_from_label(
                seed ^ ((from as u64) << 32) ^ (to as u64),
                "lan-link",
            ))
        })
    }

    /// Sets the per-message loss probability of the directed link
    /// `from → to`.
    pub fn set_loss_probability(&mut self, from: NodeId, to: NodeId, p: f64) {
        self.link_mut(from, to).set_loss_probability(p);
    }

    /// Sets the loss probability of every link between registered nodes.
    pub fn set_loss_probability_all(&mut self, p: f64) {
        for from in 0..self.nodes {
            for to in 0..self.nodes {
                if from != to {
                    self.set_loss_probability(from, to, p);
                }
            }
        }
    }

    /// Permanently severs the directed link `from → to`: future sends
    /// vanish, in-flight messages still arrive.
    pub fn sever_link(&mut self, from: NodeId, to: NodeId) {
        self.link_mut(from, to).sever();
    }

    /// Severs every link touching `node` (the station failstopped).
    pub fn sever_node(&mut self, node: NodeId) {
        assert!(node < self.nodes, "no node {node}");
        self.severed_nodes[node] = true;
        for (&(f, t), link) in self.links.iter_mut() {
            if f == node || t == node {
                link.sever();
            }
        }
    }

    /// Reconnects a previously severed station: clears the node-level
    /// flag and reopens every link touching `node` (the physical repair
    /// that precedes reintegration). Links severed *individually* via
    /// [`Lan::sever_link`] on other node pairs are untouched.
    pub fn unsever_node(&mut self, node: NodeId) {
        assert!(node < self.nodes, "no node {node}");
        self.severed_nodes[node] = false;
        for (&(f, t), link) in self.links.iter_mut() {
            if f == node || t == node {
                link.unsever();
            }
        }
    }

    /// Whether the directed link `from → to` is severed (either
    /// explicitly or via a severed endpoint).
    pub fn is_severed(&self, from: NodeId, to: NodeId) -> bool {
        self.severed_nodes[from]
            || self.severed_nodes[to]
            || self.links.get(&(from, to)).is_some_and(|l| l.is_severed())
    }

    /// Offers a message of `bytes` payload bytes on `from → to` at
    /// `now`. Returns the delivery time, or `None` if the link is
    /// severed or loss injection dropped the message. The medium's
    /// occupancy is charged either way (drops still burn air time).
    pub fn send(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        msg: M,
    ) -> Option<SimTime> {
        if self.severed_nodes[from] || self.severed_nodes[to] {
            return None;
        }
        let spec = self.link;
        self.link_mut(from, to); // materialize the link
        let link = self.links.get_mut(&(from, to)).expect("just materialized");
        let before = link.next_delivery();
        let delivery = link.offer(&spec, &mut self.busy_until, now, bytes, msg);
        let after = link.next_delivery();
        self.reindex((from, to), before, after);
        delivery
    }

    /// Restores the ready-time index invariant for one link after its
    /// FIFO head may have changed.
    fn reindex(&mut self, pair: (NodeId, NodeId), before: Option<SimTime>, after: Option<SimTime>) {
        if before == after {
            return;
        }
        if let Some(t) = before {
            self.ready.remove(&(t, pair));
        }
        if let Some(t) = after {
            self.ready.insert((t, pair));
        }
    }

    /// Earliest pending delivery across every link, if any.
    pub fn next_delivery(&self) -> Option<SimTime> {
        self.ready.first().map(|&(t, _)| t)
    }

    /// Earliest pending delivery whose *receiver* lies in
    /// `[lo, hi)` — the view of one fault-tolerant system sharing the
    /// LAN with others.
    pub fn next_delivery_within(&self, lo: NodeId, hi: NodeId) -> Option<SimTime> {
        self.ready
            .iter()
            .find(|(_, (_, to))| (lo..hi).contains(to))
            .map(|&(t, _)| t)
    }

    /// Pops the earliest deliverable message at `now`, if any; ties
    /// break in `(from, to)` order for determinism.
    pub fn pop_ready(&mut self, now: SimTime) -> Option<(NodeId, NodeId, M)> {
        self.pop_ready_within(0, self.nodes, now)
    }

    /// Like [`Lan::pop_ready`], restricted to receivers in `[lo, hi)`.
    ///
    /// Resolved through the ready-time index: the first in-window entry
    /// at or before `now`, in `(time, (from, to))` order — identical to
    /// the minimum a full link scan would select.
    pub fn pop_ready_within(
        &mut self,
        lo: NodeId,
        hi: NodeId,
        now: SimTime,
    ) -> Option<(NodeId, NodeId, M)> {
        let (_, (from, to)) = self
            .ready
            .iter()
            .take_while(|&&(t, _)| t <= now)
            .find(|(_, (_, to))| (lo..hi).contains(to))
            .copied()?;
        let link = self.links.get_mut(&(from, to)).expect("due link");
        let before = link.next_delivery();
        let msg = link.pop_ready(now).expect("due message");
        let after = link.next_delivery();
        self.reindex((from, to), before, after);
        Some((from, to, msg))
    }

    /// The earliest a message sent *now* could arrive on an idle
    /// medium (conservative-DES lookahead).
    pub fn lookahead(&self) -> SimDuration {
        self.link.min_latency()
    }

    /// The instant the medium finishes serializing everything accepted
    /// so far (see [`crate::channel::Channel::busy_until`]).
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Medium-wide counters, aggregated over every link.
    pub fn stats(&self) -> LanStats {
        let mut total = LanStats::default();
        for l in self.links.values() {
            let s = l.stats();
            total.sent += s.sent;
            total.dropped += s.dropped;
            total.delivered += s.delivered;
            total.bytes += s.bytes;
        }
        total
    }

    /// Counters of one directed link (zeroes if it never carried
    /// traffic).
    pub fn link_stats(&self, from: NodeId, to: NodeId) -> ChannelStats {
        self.links
            .get(&(from, to))
            .map(|l| l.stats())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lan() -> Lan<u32> {
        Lan::new(LinkSpec::ethernet_10mbps(), 3)
    }

    #[test]
    fn per_link_fifo_is_preserved() {
        let mut l = lan();
        let (a, b) = (l.add_node(), l.add_node());
        let d1 = l.send(SimTime::ZERO, a, b, 8192, 1).unwrap();
        let d2 = l.send(SimTime::ZERO, a, b, 4, 2).unwrap();
        assert!(d2 > d1);
        let far = SimTime::from_nanos(1_000_000_000);
        assert_eq!(l.pop_ready(far), Some((a, b, 1)));
        assert_eq!(l.pop_ready(far), Some((a, b, 2)));
        assert_eq!(l.pop_ready(far), None);
    }

    #[test]
    fn contention_couples_unrelated_links() {
        let mut l = lan();
        let nodes: Vec<_> = (0..4).map(|_| l.add_node()).collect();
        // a→b then c→d: different links, same medium.
        let d1 = l.send(SimTime::ZERO, nodes[0], nodes[1], 1024, 1).unwrap();
        let d2 = l.send(SimTime::ZERO, nodes[2], nodes[3], 1024, 2).unwrap();
        let gap = d2 - d1;
        assert!(
            gap >= l.link().transfer_time(1024),
            "second transmission must wait out the first: gap {gap}"
        );
    }

    #[test]
    fn loss_burns_air_time() {
        let mut l: Lan<u32> = Lan::new(LinkSpec::ethernet_10mbps(), 42);
        let (a, b) = (l.add_node(), l.add_node());
        l.set_loss_probability(a, b, 1.0);
        assert_eq!(l.send(SimTime::ZERO, a, b, 1024, 1), None);
        // The drop still occupied the medium: a follow-up on another
        // link starts after it.
        let c = l.add_node();
        let d = l.send(SimTime::ZERO, a, c, 4, 2).unwrap();
        assert!(d - SimTime::ZERO > l.link().one_way(4), "medium was busy");
        assert_eq!(l.stats().dropped, 1);
        assert_eq!(l.link_stats(a, b).dropped, 1);
    }

    #[test]
    fn sever_node_kills_both_directions() {
        let mut l = lan();
        let (a, b, c) = (l.add_node(), l.add_node(), l.add_node());
        let inflight = l.send(SimTime::ZERO, a, b, 64, 9).unwrap();
        l.sever_node(a);
        assert!(l.is_severed(a, b) && l.is_severed(b, a));
        assert!(!l.is_severed(b, c));
        assert_eq!(l.send(inflight, a, b, 64, 1), None);
        assert_eq!(l.send(inflight, b, a, 64, 2), None);
        // The in-flight message still arrives (failstop semantics).
        assert_eq!(l.pop_ready(inflight), Some((a, b, 9)));
    }

    #[test]
    fn windowed_views_partition_traffic() {
        let mut l = lan();
        let nodes: Vec<_> = (0..4).map(|_| l.add_node()).collect();
        let d1 = l.send(SimTime::ZERO, nodes[0], nodes[1], 64, 1).unwrap();
        let d2 = l.send(SimTime::ZERO, nodes[2], nodes[3], 64, 2).unwrap();
        // System A owns nodes [0, 2); system B owns [2, 4).
        assert_eq!(l.next_delivery_within(0, 2), Some(d1));
        assert_eq!(l.next_delivery_within(2, 4), Some(d2));
        let far = SimTime::from_nanos(1_000_000_000);
        assert_eq!(l.pop_ready_within(2, 4, far), Some((nodes[2], nodes[3], 2)));
        assert_eq!(l.pop_ready_within(2, 4, far), None, "b's view is drained");
        assert_eq!(l.pop_ready_within(0, 2, far), Some((nodes[0], nodes[1], 1)));
    }

    #[test]
    fn equal_time_ties_break_by_link_id() {
        // Instant link: no serialization, both deliveries land at the
        // same instant; (from, to) order decides.
        let mut l: Lan<u32> = Lan::new(LinkSpec::instant(), 0);
        let (a, b, c) = (l.add_node(), l.add_node(), l.add_node());
        let d1 = l.send(SimTime::ZERO, c, b, 4, 1).unwrap();
        let d2 = l.send(SimTime::ZERO, a, b, 4, 2).unwrap();
        assert_eq!(d1, d2, "instant link delivers both at once");
        assert_eq!(l.pop_ready(d1), Some((a, b, 2)), "(0,1) pops before (2,1)");
        assert_eq!(l.pop_ready(d1), Some((c, b, 1)));
    }

    #[test]
    fn loss_pattern_is_per_link_deterministic() {
        // The same link must see the same loss pattern regardless of
        // what other links do in between.
        let drops = |interleave: bool| {
            let mut l: Lan<u32> = Lan::new(LinkSpec::instant(), 99);
            let (a, b, c) = (l.add_node(), l.add_node(), l.add_node());
            l.set_loss_probability(a, b, 0.5);
            let mut pattern = Vec::new();
            for i in 0..64 {
                if interleave {
                    let _ = l.send(SimTime::ZERO, c, b, 4, 0);
                }
                pattern.push(l.send(SimTime::ZERO, a, b, 4, i).is_none());
            }
            pattern
        };
        assert_eq!(drops(false), drops(true));
    }

    #[test]
    fn ready_index_matches_brute_force_scan() {
        // Drive a LAN through an interleaved send/pop/sever workload and
        // check, at every step, that the index-backed queries agree with
        // a brute-force scan over the links (the pre-index algorithm).
        let mut l: Lan<u32> = Lan::new(LinkSpec::ethernet_10mbps(), 17);
        let nodes: Vec<_> = (0..5).map(|_| l.add_node()).collect();
        l.set_loss_probability(nodes[0], nodes[1], 0.3);
        let brute = |l: &Lan<u32>, lo: usize, hi: usize| -> Option<SimTime> {
            l.links
                .iter()
                .filter(|(&(_, to), _)| (lo..hi).contains(&to))
                .filter_map(|(_, link)| link.next_delivery())
                .min()
        };
        let mut now = SimTime::ZERO;
        for i in 0..400u64 {
            let from = nodes[(i % 5) as usize];
            let to = nodes[((i * 3 + 1) % 5) as usize];
            if from != to {
                if let Some(d) = l.send(now, from, to, 64 + (i % 512) as usize, i as u32) {
                    now = now.max(d - l.link().min_latency());
                }
            }
            if i == 150 {
                l.sever_node(nodes[4]);
            }
            if i % 3 == 0 {
                let _ = l.pop_ready(now);
            }
            assert_eq!(l.next_delivery(), brute(&l, 0, 5), "step {i}");
            assert_eq!(l.next_delivery_within(1, 3), brute(&l, 1, 3), "step {i}");
        }
        // Drain everything; the index must empty out with the queues.
        let far = now + SimDuration::from_secs(10);
        while l.pop_ready(far).is_some() {}
        assert_eq!(l.next_delivery(), None);
        assert!(l.ready.is_empty(), "stale index entries: {:?}", l.ready);
    }

    #[test]
    #[should_panic(expected = "bad link")]
    fn self_link_rejected() {
        let mut l = lan();
        let a = l.add_node();
        let _ = l.send(SimTime::ZERO, a, a, 4, 1);
    }
}
