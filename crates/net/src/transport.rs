//! The transport interface shared by every replica-coordination medium.
//!
//! The protocol engines in `hvft-core` are transport-agnostic: the same
//! P1–P7 rule logic drives the realistic DES (whose [`Channel`] models a
//! 10 Mbps Ethernet with occupancy and propagation) and the round-
//! synchronous t-fault chain (whose [`InstantLink`] abstracts messages
//! to their information content). [`Transport`] is the small interface
//! both provide: FIFO delivery of typed messages with a delivery
//! timestamp and a conservative lookahead.

use crate::channel::Channel;
use hvft_sim::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A unidirectional FIFO message transport.
///
/// Implementations must deliver messages in send order and never before
/// the send time; [`Transport::lookahead`] bounds how soon after a send
/// a delivery can occur (the conservative-DES horizon).
///
/// # Examples
///
/// Code written against the trait runs over any medium:
///
/// ```
/// use hvft_net::channel::Channel;
/// use hvft_net::link::LinkSpec;
/// use hvft_net::transport::{InstantLink, Transport};
/// use hvft_sim::time::SimTime;
///
/// fn round_trip<T: Transport<u8>>(t: &mut T) -> Option<u8> {
///     let at = t.send(SimTime::ZERO, 1, 7)?;
///     t.pop_ready(at)
/// }
/// assert_eq!(round_trip(&mut InstantLink::new()), Some(7));
/// let mut ch = Channel::new(LinkSpec::ethernet_10mbps(), 0);
/// assert_eq!(round_trip(&mut ch), Some(7));
/// ```
pub trait Transport<M> {
    /// Offers `msg` (`bytes` payload bytes) for transmission at `now`.
    /// Returns the delivery time, or `None` if the transport dropped it
    /// (loss, severed link).
    fn send(&mut self, now: SimTime, bytes: usize, msg: M) -> Option<SimTime>;

    /// Time the next queued message becomes deliverable, if any.
    fn next_delivery(&self) -> Option<SimTime>;

    /// Pops the next message once its delivery time has arrived.
    fn pop_ready(&mut self, now: SimTime) -> Option<M>;

    /// The earliest a message sent *now* could arrive.
    fn lookahead(&self) -> SimDuration;

    /// Permanently stops accepting new messages; in-flight messages are
    /// still delivered (a crashed sender's last words arrive).
    fn sever(&mut self);
}

impl<M> Transport<M> for Channel<M> {
    fn send(&mut self, now: SimTime, bytes: usize, msg: M) -> Option<SimTime> {
        Channel::send(self, now, bytes, msg)
    }

    fn next_delivery(&self) -> Option<SimTime> {
        Channel::next_delivery(self)
    }

    fn pop_ready(&mut self, now: SimTime) -> Option<M> {
        Channel::pop_ready(self, now)
    }

    fn lookahead(&self) -> SimDuration {
        Channel::lookahead(self)
    }

    fn sever(&mut self) {
        Channel::sever(self)
    }
}

/// The t-fault chain's abstract link: FIFO, lossless, and instantaneous.
///
/// Messages are delivered at the send time (the chain is round-
/// synchronous, so "instantaneous" means "within the same round"). The
/// lookahead is one nanosecond — a transport cannot predict the future.
pub struct InstantLink<M> {
    queue: VecDeque<(SimTime, M)>,
    severed: bool,
    sent: u64,
}

impl<M> InstantLink<M> {
    /// An empty link.
    pub fn new() -> Self {
        InstantLink {
            queue: VecDeque::new(),
            severed: false,
            sent: 0,
        }
    }

    /// Messages accepted over the link's lifetime.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Number of messages queued for delivery.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

impl<M> Default for InstantLink<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Transport<M> for InstantLink<M> {
    fn send(&mut self, now: SimTime, _bytes: usize, msg: M) -> Option<SimTime> {
        if self.severed {
            return None;
        }
        self.sent += 1;
        self.queue.push_back((now, msg));
        Some(now)
    }

    fn next_delivery(&self) -> Option<SimTime> {
        self.queue.front().map(|(t, _)| *t)
    }

    fn pop_ready(&mut self, now: SimTime) -> Option<M> {
        match self.queue.front() {
            Some((t, _)) if *t <= now => self.queue.pop_front().map(|(_, m)| m),
            _ => None,
        }
    }

    fn lookahead(&self) -> SimDuration {
        SimDuration::from_nanos(1)
    }

    fn sever(&mut self) {
        self.severed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;

    fn drain<M, T: Transport<M>>(t: &mut T, now: SimTime) -> Vec<M> {
        let mut out = Vec::new();
        while let Some(m) = t.pop_ready(now) {
            out.push(m);
        }
        out
    }

    #[test]
    fn instant_link_is_fifo_and_immediate() {
        let mut l: InstantLink<u32> = InstantLink::new();
        let now = SimTime::from_nanos(5);
        assert_eq!(l.send(now, 100, 1), Some(now));
        assert_eq!(l.send(now, 1, 2), Some(now));
        assert_eq!(l.next_delivery(), Some(now));
        assert_eq!(drain(&mut l, now), vec![1, 2]);
        assert_eq!(l.sent(), 2);
    }

    #[test]
    fn instant_link_severs_like_a_channel() {
        let mut l: InstantLink<u8> = InstantLink::new();
        let now = SimTime::ZERO;
        l.send(now, 1, 7);
        l.sever();
        assert_eq!(l.send(now, 1, 8), None);
        // The in-flight message still arrives.
        assert_eq!(drain(&mut l, now), vec![7]);
    }

    #[test]
    fn channel_satisfies_the_same_interface() {
        fn exercise<T: Transport<u8>>(t: &mut T) -> Option<SimTime> {
            t.send(SimTime::ZERO, 16, 9)
        }
        let mut ch: Channel<u8> = Channel::new(LinkSpec::ethernet_10mbps(), 0);
        let d = exercise(&mut ch).expect("lossless channel delivers");
        assert!(d >= SimTime::ZERO + Transport::<u8>::lookahead(&ch));
        assert_eq!(ch.pop_ready(d), Some(9));
    }

    #[test]
    fn lookahead_is_always_positive() {
        let l: InstantLink<u8> = InstantLink::new();
        assert!(Transport::<u8>::lookahead(&l) > SimDuration::ZERO);
        let ch: Channel<u8> = Channel::new(LinkSpec::instant(), 0);
        assert!(Transport::<u8>::lookahead(&ch) > SimDuration::ZERO);
    }
}
