//! Timeout-based failure detection.
//!
//! The primary/backup approach requires failstop behaviour: a failed
//! primary halts detectably (Schlichting & Schneider 1983). The paper
//! assumes the backup detects
//! the failure "only after receiving the last message sent by the
//! primary's hypervisor (as would be the case were timeouts used for
//! failure detection)" — which is precisely a heartbeat timeout layered
//! over a FIFO channel.

use hvft_sim::time::{SimDuration, SimTime};

/// A simple timeout failure detector.
///
/// # Examples
///
/// ```
/// use hvft_net::detector::FailureDetector;
/// use hvft_sim::time::{SimDuration, SimTime};
///
/// let mut d = FailureDetector::new(SimDuration::from_millis(10));
/// d.heard(SimTime::ZERO);
/// assert!(!d.expired(SimTime::from_nanos(9_999_999)));
/// assert!(d.expired(SimTime::from_nanos(10_000_000)));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct FailureDetector {
    timeout: SimDuration,
    last_heard: SimTime,
    suspected: bool,
}

impl FailureDetector {
    /// Creates a detector; the peer is considered heard-from at t=0.
    pub fn new(timeout: SimDuration) -> Self {
        assert!(timeout > SimDuration::ZERO, "timeout must be positive");
        FailureDetector {
            timeout,
            last_heard: SimTime::ZERO,
            suspected: false,
        }
    }

    /// Records communication from the peer.
    pub fn heard(&mut self, now: SimTime) {
        if !self.suspected {
            self.last_heard = self.last_heard.max(now);
        }
    }

    /// Whether the peer has been silent past the timeout. Once expired,
    /// the suspicion is permanent (failstop: crashed processors do not
    /// come back as the same incarnation).
    pub fn expired(&mut self, now: SimTime) -> bool {
        if !self.suspected && now >= self.deadline() {
            self.suspected = true;
        }
        self.suspected
    }

    /// The instant suspicion would set in absent further messages.
    pub fn deadline(&self) -> SimTime {
        self.last_heard.saturating_add(self.timeout)
    }

    /// Whether the peer is currently suspected.
    pub fn is_suspected(&self) -> bool {
        self.suspected
    }

    /// The configured timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    fn at(n: u64) -> SimTime {
        SimTime::ZERO + ms(n)
    }

    #[test]
    fn stays_quiet_while_hearing() {
        let mut d = FailureDetector::new(ms(5));
        for i in 0..10 {
            d.heard(at(i));
            assert!(!d.expired(at(i + 1)));
        }
    }

    #[test]
    fn expires_after_silence() {
        let mut d = FailureDetector::new(ms(5));
        d.heard(at(3));
        assert!(!d.expired(at(7)));
        assert!(d.expired(at(8)));
    }

    #[test]
    fn suspicion_is_permanent() {
        let mut d = FailureDetector::new(ms(5));
        assert!(d.expired(at(100)));
        // A late message does not rescind suspicion (failstop model).
        d.heard(at(101));
        assert!(d.expired(at(101)));
        assert!(d.is_suspected());
    }

    #[test]
    fn deadline_tracks_last_heard() {
        let mut d = FailureDetector::new(ms(5));
        d.heard(at(10));
        assert_eq!(d.deadline(), at(15));
        // Out-of-order heard() calls cannot move the deadline backwards.
        d.heard(at(8));
        assert_eq!(d.deadline(), at(15));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_timeout_rejected() {
        let _ = FailureDetector::new(SimDuration::ZERO);
    }
}
