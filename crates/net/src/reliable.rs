//! An ack/retransmission layer over lossy FIFO media.
//!
//! §4.3 of the paper drops the assumption that the coordination network
//! never loses messages: "the network used by the hypervisors … can
//! lose messages", so every sequenced protocol message must be
//! acknowledged and retransmitted until it is. This module is the
//! transport half of that machinery, deliberately kept below the
//! replica-coordination protocol: frames carry *any* payload type, and
//! the P1–P7 engines never learn that a drop happened.
//!
//! Three pieces cooperate, wired together by a driver that owns the
//! simulated clock:
//!
//! - [`Frame`] — the wire envelope: either a sequence-numbered
//!   [`Frame::Data`] carrying one payload, or a cumulative
//!   [`Frame::Ack`];
//! - [`SendWindow`] — the sender side of one directed link: stamps
//!   sequence numbers, keeps unacknowledged frames, and exposes a
//!   retransmit deadline the driver treats as an event source;
//! - [`RecvWindow`] — the receiver side: accepts exactly the next
//!   expected sequence number, suppresses duplicates and gaps, and
//!   says what cumulative acknowledgment to return.
//!
//! The split mirrors how acknowledgments actually travel: data frames
//! cross on the `(a → b)` channel while their acks return on `(b → a)`,
//! so a single object cannot own both directions. Drivers — see
//! `FtSystem` in `hvft-core` — hold one `SendWindow`/`RecvWindow` pair
//! per directed link.
//!
//! # Congestion sanity
//!
//! A naive fixed-interval, whole-tail retransmitter melts down the
//! moment the medium saturates: if the timeout is shorter than the
//! backlog's drain time, every firing re-sends everything, which grows
//! the backlog, which guarantees the next firing — a quadratic storm.
//! Three standard defenses keep recovery cheap no matter how loaded
//! the wire is:
//!
//! - **serialization-aware arming** — the driver arms the timer from
//!   the instant the frame finished serializing ([`SendWindow::arm`]),
//!   which a real NIC knows exactly, so a frame queued behind a long
//!   backlog is not declared lost while it is still waiting its turn;
//! - **bounded-burst retransmission** — a timeout re-sends the oldest
//!   unacknowledged frames, at most [`RETX_BURST`] of them, so each
//!   firing adds a hard-bounded amount of traffic (closer to TCP's
//!   RTO behaviour than to naive whole-window go-back-N);
//! - **exponential backoff** — each consecutive timeout without ack
//!   progress doubles the effective timeout (capped); progress resets
//!   it.
//!
//! # Examples
//!
//! A full lose-retransmit-deliver cycle, clocks driven by hand:
//!
//! ```
//! use hvft_net::reliable::{Frame, RecvWindow, SendWindow};
//! use hvft_sim::time::{SimDuration, SimTime};
//!
//! let rto = SimDuration::from_millis(5);
//! let mut tx: SendWindow<&str> = SendWindow::new(rto);
//! let mut rx = RecvWindow::new();
//!
//! // Sender wraps a payload; suppose the network drops it. The driver
//! // arms the timer from the frame's serialization end.
//! let t0 = SimTime::ZERO;
//! let _lost = tx.wrap(16, "hello");
//! tx.arm(t0);
//! assert_eq!(tx.deadline(), Some(t0 + rto));
//!
//! // The retransmit timer fires: the head frame is re-sent, arrives,
//! // and the receiver's cumulative ack drains the sender's window.
//! let t1 = t0 + rto;
//! let resent = tx.retransmit();
//! tx.rearm(t1);
//! let Frame::Data { seq, payload } = resent[0].frame.clone() else {
//!     unreachable!()
//! };
//! assert!(rx.accept(seq), "first delivery of seq 1 is fresh");
//! assert_eq!(payload, "hello");
//! tx.on_ack(t1, rx.cumulative_ack());
//! assert_eq!(tx.deadline(), None, "nothing left to retransmit");
//! ```

use hvft_sim::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Wire size of a [`Frame::Ack`], matching the calibration of the other
/// small control messages (protocol acks are 26 bytes).
pub const ACK_WIRE_BYTES: usize = 26;

/// Most frames a single timeout firing re-sends.
///
/// One would be TCP-style head-of-line recovery, but this receiver
/// discards gap frames outright (no out-of-order buffer), so a deep
/// backlog behind one loss would then drain at a single frame per
/// timeout. A small burst recovers a lost prefix quickly while still
/// bounding the worst-case traffic a firing can add to a saturated
/// medium.
pub const RETX_BURST: usize = 8;

/// Consecutive no-progress timeouts after which the backoff multiplier
/// stops doubling (`rto × 2^2 = 4 × rto`).
///
/// The cap is deliberately low. Retransmissions double as the
/// *heartbeat* a waiting backup's failure detector listens for: while a
/// primary is stalled awaiting acknowledgments it sends nothing new,
/// so retransmitted copies are its only signs of life. An aggressive
/// backoff would open silence gaps approaching the detection timeout
/// and turn an unlucky loss streak into a false promotion; the
/// [`RETX_BURST`] bound already caps the recovery traffic each timeout
/// can add, so there is little congestion left for backoff to fight.
/// Detection timeouts must still dominate `4 × rto` by a comfortable
/// multiple (see `FtConfig::retransmit` in `hvft-core`).
pub const MAX_BACKOFF_EXP: u32 = 2;

/// The wire envelope of the reliable layer.
///
/// `Data` frames are sequence-numbered per directed link (starting at
/// 1); `Ack` frames cumulatively acknowledge every sequence number up
/// to and including `cum`. Acks are themselves unsequenced and may be
/// lost — a lost ack is recovered by the sender's retransmission, which
/// provokes a fresh (duplicate-suppressed) delivery and a re-ack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame<M> {
    /// A sequenced payload frame.
    Data {
        /// Link-level sequence number (1-based, per directed link).
        seq: u64,
        /// The payload being carried.
        payload: M,
    },
    /// Cumulative acknowledgment of every `Data` frame up to `cum`.
    Ack {
        /// Highest sequence number delivered in order.
        cum: u64,
    },
    /// A liveness beacon: unsequenced, unacknowledged, carrying
    /// nothing. A protocol-stalled sender emits these periodically so
    /// that timeout failure detectors measure *liveness* rather than
    /// protocol progress — retransmissions alone stop flowing the
    /// moment every outstanding frame is acknowledged, which is
    /// precisely when a stalled-but-live sender falls silent.
    Heartbeat,
}

impl<M> Frame<M> {
    /// Wire size of this frame given the payload's own wire size.
    ///
    /// `Data` framing is considered part of the payload's calibrated
    /// size (the protocol messages already budget their headers), so a
    /// data frame costs exactly `payload_bytes`; an ack costs
    /// [`ACK_WIRE_BYTES`].
    pub fn wire_bytes(&self, payload_bytes: usize) -> usize {
        match self {
            Frame::Data { .. } => payload_bytes,
            Frame::Ack { .. } | Frame::Heartbeat => ACK_WIRE_BYTES,
        }
    }
}

/// One frame queued for (re)transmission: the envelope plus the payload
/// size the link model should charge for it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outgoing<M> {
    /// The frame to put on the wire.
    pub frame: Frame<M>,
    /// Payload wire size in bytes (see [`Frame::wire_bytes`]).
    pub bytes: usize,
}

/// Counters kept by a [`SendWindow`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SendWindowStats {
    /// Fresh data frames stamped.
    pub sent: u64,
    /// Frames re-sent by retransmission (counts every copy).
    pub retransmitted: u64,
    /// Retransmit-timer firings.
    pub timeouts: u64,
}

/// One retained unacknowledged frame.
#[derive(Clone, Debug)]
struct Pending<M> {
    seq: u64,
    bytes: usize,
    payload: M,
    /// When this frame's first transmission finished serializing onto
    /// the medium (recorded by [`SendWindow::arm`]); `None` until the
    /// driver reports it. Re-arms after ack progress never set a
    /// deadline earlier than this — a frame still on the adapter's
    /// queue cannot be lost yet.
    tx_end: Option<SimTime>,
}

/// The sender half of one reliable directed link.
///
/// Stamps per-link sequence numbers and retains every unacknowledged
/// frame (payloads must therefore be `Clone`). The driver owns the
/// clock, so timer management is split into explicit calls:
/// [`SendWindow::wrap`] stamps and retains, [`SendWindow::arm`] starts
/// the timer from the frame's serialization end, the driver polls
/// [`SendWindow::deadline`] as an event source, and a firing calls
/// [`SendWindow::retransmit`] (head frame only) followed by
/// [`SendWindow::rearm`] from the copy's serialization end.
#[derive(Clone, Debug)]
pub struct SendWindow<M> {
    rto: SimDuration,
    next_seq: u64,
    unacked: VecDeque<Pending<M>>,
    deadline: Option<SimTime>,
    /// Consecutive timeouts without ack progress.
    backoff: u32,
    stats: SendWindowStats,
}

impl<M: Clone> SendWindow<M> {
    /// A window with the given base retransmission timeout.
    ///
    /// # Panics
    ///
    /// Panics if `rto` is zero (a zero timeout would retransmit in a
    /// busy loop at one instant of simulated time).
    pub fn new(rto: SimDuration) -> Self {
        assert!(
            rto > SimDuration::ZERO,
            "retransmission timeout must be positive"
        );
        SendWindow {
            rto,
            next_seq: 0,
            unacked: VecDeque::new(),
            deadline: None,
            backoff: 0,
            stats: SendWindowStats::default(),
        }
    }

    /// The backoff-scaled effective timeout.
    fn effective_rto(&self) -> SimDuration {
        self.rto * (1u64 << self.backoff.min(MAX_BACKOFF_EXP))
    }

    /// Stamps `payload` with the next sequence number and retains a
    /// copy for retransmission; returns the frame to transmit now. The
    /// driver must follow up with [`SendWindow::arm`] once it knows
    /// when the frame's serialization completes.
    pub fn wrap(&mut self, bytes: usize, payload: M) -> Frame<M> {
        self.next_seq += 1;
        let seq = self.next_seq;
        self.unacked.push_back(Pending {
            seq,
            bytes,
            payload: payload.clone(),
            tx_end: None,
        });
        self.stats.sent += 1;
        Frame::Data { seq, payload }
    }

    /// Arms the retransmit timer at `tx_end + rto`, where `tx_end` is
    /// the instant the just-wrapped frame finished serializing onto the
    /// medium. A timer already running (for an older frame) is left
    /// alone — the oldest unacknowledged frame's deadline governs — but
    /// the serialization end is recorded on the frame either way, so
    /// later re-arms know when it actually left the adapter.
    pub fn arm(&mut self, tx_end: SimTime) {
        if let Some(last) = self.unacked.back_mut() {
            if last.tx_end.is_none() {
                last.tx_end = Some(tx_end);
            }
            if self.deadline.is_none() {
                self.deadline = Some(tx_end + self.effective_rto());
            }
        }
    }

    /// Processes a cumulative acknowledgment: frames up to `cum` are
    /// dropped from the window. Progress resets the backoff and
    /// restarts the timer; a stale ack changes nothing.
    ///
    /// The restarted deadline is anchored at the *later* of `now` and
    /// the oldest remaining frame's serialization end: during a bulk
    /// burst (say, a reintegration state transfer) acks for early
    /// frames arrive while later frames are still serializing, and
    /// `now + rto` alone would declare those queued frames lost on a
    /// medium slower than the rto — a spurious-retransmit storm that
    /// feeds itself by adding yet more backlog.
    pub fn on_ack(&mut self, now: SimTime, cum: u64) {
        let before = self.unacked.len();
        while self.unacked.front().is_some_and(|p| p.seq <= cum) {
            self.unacked.pop_front();
        }
        if self.unacked.is_empty() {
            self.deadline = None;
            self.backoff = 0;
        } else if self.unacked.len() != before {
            self.backoff = 0;
            let pending = self
                .unacked
                .front()
                .and_then(|p| p.tx_end)
                .map_or(now, |t| t.max(now));
            self.deadline = Some(pending + self.effective_rto());
        }
    }

    /// The instant the retransmit timer fires, if armed.
    pub fn deadline(&self) -> Option<SimTime> {
        self.deadline
    }

    /// The retransmit timer fired: returns copies of the oldest (up to
    /// [`RETX_BURST`]) unacknowledged frames, oldest first, and
    /// escalates the backoff. The driver must transmit the copies in
    /// order and then call [`SendWindow::rearm`] with the last copy's
    /// serialization end. Returns an empty vector (and disarms) if
    /// nothing is pending.
    pub fn retransmit(&mut self) -> Vec<Outgoing<M>> {
        if self.unacked.is_empty() {
            self.deadline = None;
            return Vec::new();
        }
        self.stats.timeouts += 1;
        self.backoff = self.backoff.saturating_add(1);
        // The driver rearms; clear so a driver that forgets cannot spin
        // at one instant forever.
        self.deadline = None;
        let out: Vec<Outgoing<M>> = self
            .unacked
            .iter()
            .take(RETX_BURST)
            .map(|p| Outgoing {
                frame: Frame::Data {
                    seq: p.seq,
                    payload: p.payload.clone(),
                },
                bytes: p.bytes,
            })
            .collect();
        self.stats.retransmitted += out.len() as u64;
        out
    }

    /// Restarts the timer after a retransmission whose copy finished
    /// serializing at `tx_end`.
    pub fn rearm(&mut self, tx_end: SimTime) {
        if !self.unacked.is_empty() {
            self.deadline = Some(tx_end + self.effective_rto());
        }
    }

    /// Permanently disarms the window (the peer failstopped or the link
    /// was severed): pending frames are dropped and the timer cleared.
    pub fn disarm(&mut self) {
        self.unacked.clear();
        self.deadline = None;
        self.backoff = 0;
    }

    /// Whether any frame awaits acknowledgment.
    pub fn has_unacked(&self) -> bool {
        !self.unacked.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> SendWindowStats {
        self.stats
    }
}

/// Counters kept by a [`RecvWindow`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecvWindowStats {
    /// Frames accepted in order.
    pub accepted: u64,
    /// Duplicate or out-of-order frames suppressed.
    pub suppressed: u64,
}

/// The receiver half of one reliable directed link.
///
/// Accepts data frames strictly in sequence: `seq == cum + 1` is fresh,
/// anything at or below `cum` is a duplicate (the ack acknowledging it
/// was lost), anything above `cum + 1` is a gap (an earlier frame was
/// lost and will be retransmitted first — FIFO links mean a gap can
/// only follow a drop). Both are suppressed; the receiver answers every
/// data frame, fresh or not, with [`RecvWindow::cumulative_ack`].
#[derive(Clone, Debug, Default)]
pub struct RecvWindow {
    cum: u64,
    stats: RecvWindowStats,
}

impl RecvWindow {
    /// A window expecting sequence number 1 first.
    pub fn new() -> Self {
        RecvWindow::default()
    }

    /// Offers a received sequence number; `true` means the frame is
    /// fresh and its payload should be delivered upward.
    pub fn accept(&mut self, seq: u64) -> bool {
        if seq == self.cum + 1 {
            self.cum = seq;
            self.stats.accepted += 1;
            true
        } else {
            self.stats.suppressed += 1;
            false
        }
    }

    /// The cumulative acknowledgment to send back: the highest sequence
    /// number delivered in order so far.
    pub fn cumulative_ack(&self) -> u64 {
        self.cum
    }

    /// Counters.
    pub fn stats(&self) -> RecvWindowStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    fn at(n: u64) -> SimTime {
        SimTime::ZERO + ms(n)
    }

    #[test]
    fn sequences_start_at_one_and_increment() {
        let mut tx: SendWindow<u8> = SendWindow::new(ms(5));
        for expect in 1..=4u64 {
            match tx.wrap(1, expect as u8) {
                Frame::Data { seq, .. } => assert_eq!(seq, expect),
                f => panic!("{f:?}"),
            }
        }
    }

    #[test]
    fn arm_uses_serialization_end_not_send_time() {
        let mut tx: SendWindow<u8> = SendWindow::new(ms(5));
        tx.wrap(1, 1);
        // The frame sat behind a 30 ms backlog; the timer starts when
        // it actually left the adapter.
        tx.arm(at(30));
        assert_eq!(tx.deadline(), Some(at(35)));
        // A second frame does not move the older frame's deadline.
        tx.wrap(1, 2);
        tx.arm(at(60));
        assert_eq!(tx.deadline(), Some(at(35)));
    }

    #[test]
    fn ack_prunes_resets_backoff_and_rearms() {
        let mut tx: SendWindow<u8> = SendWindow::new(ms(5));
        tx.wrap(1, 1);
        tx.arm(at(0));
        tx.wrap(1, 2);
        tx.wrap(1, 3);
        // Two timeouts escalate the backoff.
        let _ = tx.retransmit();
        tx.rearm(at(5));
        assert_eq!(tx.deadline(), Some(at(15)), "backoff doubles: 5 + 2×5");
        let _ = tx.retransmit();
        tx.rearm(at(15));
        assert_eq!(tx.deadline(), Some(at(35)), "15 + 4×5");
        // Partial ack: window shrinks, backoff resets, timer restarts.
        tx.on_ack(at(20), 2);
        assert!(tx.has_unacked());
        assert_eq!(tx.deadline(), Some(at(25)), "progress resets to base rto");
        // Full ack clears the timer.
        tx.on_ack(at(21), 3);
        assert!(!tx.has_unacked());
        assert_eq!(tx.deadline(), None);
    }

    #[test]
    fn stale_ack_does_not_rearm() {
        let mut tx: SendWindow<u8> = SendWindow::new(ms(5));
        tx.wrap(1, 1);
        tx.arm(at(0));
        let d = tx.deadline();
        // A duplicate ack for nothing new must not push the deadline out
        // (otherwise a chatty duplicate stream could starve recovery).
        tx.on_ack(at(4), 0);
        assert_eq!(tx.deadline(), d);
    }

    #[test]
    fn retransmit_bursts_oldest_first_and_bounded() {
        let mut tx: SendWindow<u32> = SendWindow::new(ms(5));
        for p in 0..12u32 {
            tx.wrap(10 + p as usize, p);
        }
        tx.arm(at(0));
        let out = tx.retransmit();
        assert_eq!(out.len(), RETX_BURST, "burst is bounded");
        let seqs: Vec<u64> = out
            .iter()
            .map(|o| match o.frame {
                Frame::Data { seq, .. } => seq,
                _ => panic!(),
            })
            .collect();
        assert_eq!(seqs, (1..=RETX_BURST as u64).collect::<Vec<_>>());
        assert_eq!(out[0].bytes, 10);
        tx.rearm(at(5));
        assert_eq!(tx.stats().retransmitted, RETX_BURST as u64);
        assert_eq!(tx.stats().timeouts, 1);
        // The cumulative ack for the burst covers later frames too if
        // they arrived meanwhile.
        tx.on_ack(at(6), 12);
        assert!(!tx.has_unacked());
    }

    #[test]
    fn backoff_caps() {
        let mut tx: SendWindow<u8> = SendWindow::new(ms(1));
        tx.wrap(1, 1);
        tx.arm(at(0));
        for _ in 0..10 {
            let _ = tx.retransmit();
            tx.rearm(at(100));
        }
        assert_eq!(
            tx.deadline(),
            Some(at(100) + ms(1) * (1 << MAX_BACKOFF_EXP)),
            "backoff saturates at 2^{MAX_BACKOFF_EXP}"
        );
    }

    /// A bulk burst on a medium slower than the rto: each frame takes
    /// 3 ms to serialize against a 2 ms rto, and acks land 1 ms after
    /// each serialization end. The re-armed deadline must respect the
    /// next frame's still-pending serialization instead of firing in
    /// the gap between consecutive acks — the spurious-retransmit storm
    /// that would otherwise melt a reintegration state transfer.
    #[test]
    fn in_order_acks_on_slow_medium_never_time_out() {
        let mut tx: SendWindow<u8> = SendWindow::new(ms(2));
        for p in 0..10u8 {
            tx.wrap(1, p);
            tx.arm(at(3 * (p as u64 + 1)));
        }
        for p in 0..10u64 {
            let ack_at = at(3 * (p + 1) + 1);
            assert!(
                tx.deadline().is_none_or(|d| d > ack_at),
                "timer would fire before the ack for frame {} arrived",
                p + 1
            );
            tx.on_ack(ack_at, p + 1);
        }
        assert!(!tx.has_unacked());
        assert_eq!(tx.stats().timeouts, 0);
    }

    #[test]
    fn retransmit_when_empty_disarms() {
        let mut tx: SendWindow<u8> = SendWindow::new(ms(5));
        assert!(tx.retransmit().is_empty());
        assert_eq!(tx.deadline(), None);
        assert_eq!(tx.stats().timeouts, 0);
    }

    #[test]
    fn disarm_clears_everything() {
        let mut tx: SendWindow<u8> = SendWindow::new(ms(5));
        tx.wrap(1, 1);
        tx.arm(at(0));
        tx.disarm();
        assert!(!tx.has_unacked());
        assert_eq!(tx.deadline(), None);
        assert!(tx.retransmit().is_empty());
    }

    #[test]
    fn receiver_accepts_in_order_only() {
        let mut rx = RecvWindow::new();
        assert!(rx.accept(1));
        assert!(!rx.accept(1), "duplicate suppressed");
        assert!(!rx.accept(3), "gap suppressed (2 was lost)");
        assert_eq!(rx.cumulative_ack(), 1);
        assert!(rx.accept(2));
        assert!(rx.accept(3), "retransmitted 3 is fresh after 2 arrives");
        assert_eq!(rx.cumulative_ack(), 3);
        assert_eq!(rx.stats().accepted, 3);
        assert_eq!(rx.stats().suppressed, 2);
    }

    #[test]
    fn frame_wire_bytes() {
        let d: Frame<u8> = Frame::Data { seq: 1, payload: 0 };
        assert_eq!(d.wire_bytes(512), 512);
        let a: Frame<u8> = Frame::Ack { cum: 7 };
        assert_eq!(a.wire_bytes(512), ACK_WIRE_BYTES);
        let h: Frame<u8> = Frame::Heartbeat;
        assert_eq!(h.wire_bytes(512), ACK_WIRE_BYTES);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rto_rejected() {
        let _: SendWindow<u8> = SendWindow::new(SimDuration::ZERO);
    }

    /// End-to-end over a lossy `Channel`: every payload is eventually
    /// delivered exactly once, in order, despite drops of data and acks.
    #[test]
    fn survives_a_lossy_channel() {
        use crate::channel::Channel;
        use crate::link::LinkSpec;

        let rto = ms(2);
        let mut data_ch: Channel<Frame<u32>> = Channel::new(LinkSpec::ethernet_10mbps(), 7);
        let mut ack_ch: Channel<Frame<u32>> = Channel::new(LinkSpec::ethernet_10mbps(), 8);
        data_ch.set_loss_probability(0.4);
        ack_ch.set_loss_probability(0.4);
        let mut tx: SendWindow<u32> = SendWindow::new(rto);
        let mut rx = RecvWindow::new();

        let mut now = SimTime::ZERO;
        let mut delivered: Vec<u32> = Vec::new();
        for p in 0..20 {
            let f = tx.wrap(64, p);
            let bytes = f.wire_bytes(64);
            let _ = data_ch.send(now, bytes, f);
            tx.arm(data_ch.busy_until());
        }
        // Drive the three event sources to quiescence.
        while tx.has_unacked() {
            let next = [
                data_ch.next_delivery(),
                ack_ch.next_delivery(),
                tx.deadline(),
            ]
            .into_iter()
            .flatten()
            .min()
            .expect("retransmission keeps the system live");
            now = now.max(next);
            while let Some(Frame::Data { seq, payload }) = data_ch.pop_ready(now) {
                if rx.accept(seq) {
                    delivered.push(payload);
                }
                let ack: Frame<u32> = Frame::Ack {
                    cum: rx.cumulative_ack(),
                };
                let bytes = ack.wire_bytes(0);
                let _ = ack_ch.send(now, bytes, ack);
            }
            while let Some(Frame::Ack { cum }) = ack_ch.pop_ready(now) {
                tx.on_ack(now, cum);
            }
            if tx.deadline().is_some_and(|d| d <= now) {
                for o in tx.retransmit() {
                    let bytes = o.frame.wire_bytes(o.bytes);
                    let _ = data_ch.send(now, bytes, o.frame);
                }
                tx.rearm(data_ch.busy_until());
            }
        }
        assert_eq!(delivered, (0..20).collect::<Vec<u32>>());
        assert!(
            tx.stats().retransmitted > 0,
            "loss at 0.4 must cause resends"
        );
        assert!(
            rx.stats().suppressed > 0,
            "dup/gap suppression must trigger"
        );
    }
}
