//! The unified scenario API: one validated, observable front door for
//! every way this reproduction can run a guest.
//!
//! The paper evaluates one protocol under three workloads; the harness
//! around this crate wants *arbitrary* combinations — any registered
//! [`Workload`], any driver (bare baseline, the realistic DES
//! [`FtSystem`], the round-synchronous [`TChain`], a sharded
//! [`FtCluster`]), any protocol variant, loss model and failure
//! schedule. Historically each harness hand-rolled an [`FtConfig`]
//! struct literal and called one of four incompatible entry points;
//! invalid combinations panicked from asserts buried in the drivers.
//!
//! [`Scenario`] replaces that:
//!
//! - [`ScenarioBuilder`] is the typed, validating constructor — invalid
//!   combinations come back as structured [`ConfigError`]s instead of
//!   panics;
//! - workloads plug in by value or **by name** from the
//!   [`hvft_guest::workload::registry`];
//! - every driver yields the same [`RunReport`] (exit, console, epochs,
//!   failovers, per-replica stats, timing histogram), so harnesses
//!   compare runs across drivers without per-driver adapters;
//! - [`Runner`] accepts [`Observer`]s for protocol-event hooks.
//!
//! # Examples
//!
//! ```
//! use hvft_core::scenario::Scenario;
//! use hvft_guest::workload::Dhrystone;
//!
//! // The paper's prototype: 1 backup, §2 protocol, 10 Mbps Ethernet.
//! let report = Scenario::builder()
//!     .workload(Dhrystone { iters: 200, ..Default::default() })
//!     .build()
//!     .expect("valid configuration")
//!     .run();
//! assert!(report.exit.is_clean_exit());
//! assert!(report.lockstep_clean);
//!
//! // Invalid combinations are structured errors, not panics.
//! use hvft_core::scenario::ConfigError;
//! let err = Scenario::builder()
//!     .workload(Dhrystone::default())
//!     .lossy(0.2) // loss without retransmission can never finish
//!     .build()
//!     .unwrap_err();
//! assert_eq!(err, ConfigError::LossWithoutRetransmit);
//! ```
//!
//! Selecting a workload by name (the CLI/CI path):
//!
//! ```
//! use hvft_core::scenario::Scenario;
//!
//! let report = Scenario::builder()
//!     .workload_named("sieve")
//!     .backups(2)
//!     .build()
//!     .unwrap()
//!     .run();
//! assert!(report.exit.is_clean_exit());
//! ```

use crate::chain::{ChainEnd, TChain};
use crate::cluster::FtCluster;
use crate::config::{FailureSpec, FtConfig, ProtocolVariant};
use crate::observer::Observer;
use crate::system::{FailoverInfo, FtRunResult, FtSystem, ReintegrationInfo, RunEnd};
use hvft_devices::disk::DiskLogEntry;
use hvft_guest::workload::{by_name, UnknownWorkload, Workload};
use hvft_hypervisor::bare::{BareExit, BareHost};
use hvft_hypervisor::cost::CostModel;
use hvft_hypervisor::hvguest::{HvConfig, HvStats};
use hvft_isa::program::Program;
use hvft_net::link::LinkSpec;
use hvft_sim::stats::DurationHistogram;
use hvft_sim::time::{SimDuration, SimTime};
use std::fmt;

// The knobs a builder user names directly, re-exported so scenario
// call sites need only this module.
pub use crate::cluster::Parallelism;
pub use crate::config::ProtocolVariant as Protocol;
pub use hvft_machine::{ExecStats, ExecTier};

/// Upper bound on the configurable disk size. The simulated medium is
/// held in memory (8 KB per block); a configuration above this bound is
/// almost certainly a typo and would silently allocate gigabytes.
pub const MAX_DISK_BLOCKS: u32 = 1 << 15;

/// Why a scenario configuration was rejected.
///
/// Every variant corresponds to a combination the drivers previously
/// rejected with a panic (or worse, accepted and hung on).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// No workload (or raw image) was supplied.
    MissingWorkload,
    /// [`ScenarioBuilder::workload_named`] named nothing in the
    /// [`hvft_guest::workload::registry`]; the payload carries the
    /// failed name *and* every registered name.
    UnknownWorkload(UnknownWorkload),
    /// The workload's guest image failed to assemble.
    WorkloadImage(String),
    /// A replicated driver was configured with zero backups.
    NoBackups,
    /// Message loss was enabled without the ack/retransmission layer: a
    /// single lost `[Tme]` or `[end]` would stall its epoch boundary
    /// forever.
    LossWithoutRetransmit,
    /// A rejoin schedule was configured without the ack/retransmission
    /// layer. Reintegration rides the reliable-framed transport, and
    /// only reliable mode sends the heartbeats that keep backup
    /// detectors quiet while the boundary stalls behind a state
    /// transfer.
    RejoinWithoutRetransmit,
    /// The failure-detection timeout does not dominate worst-case loss
    /// recovery, so an unlucky drop burst would promote a backup under
    /// a live primary.
    DetectorTooShort {
        /// The configured detection timeout.
        detector: SimDuration,
        /// The minimum the retransmission timeout demands (32 × rto).
        required: SimDuration,
    },
    /// The disk exceeds [`MAX_DISK_BLOCKS`].
    DiskTooLarge {
        /// Configured number of blocks.
        blocks: u32,
        /// The bound.
        max: u32,
    },
    /// A zero-block disk cannot complete any I/O workload.
    EmptyDisk,
    /// A zero-length epoch never reaches a boundary.
    ZeroEpochLen,
    /// [`ScenarioBuilder::block_exec`] and [`ScenarioBuilder::exec_tier`]
    /// were both called and disagree about the engine.
    ExecTierConflict {
        /// What `block_exec(..)` asked for.
        block_exec: bool,
        /// What `exec_tier(..)` asked for.
        tier: ExecTier,
    },
    /// An option was combined with a driver that cannot honour it (the
    /// payload says which and why).
    DriverMismatch(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::MissingWorkload => {
                write!(
                    f,
                    "no workload: call workload(..), workload_named(..) or image(..)"
                )
            }
            ConfigError::UnknownWorkload(e) => write!(f, "{e}"),
            ConfigError::WorkloadImage(e) => write!(f, "workload image failed to assemble: {e}"),
            ConfigError::NoBackups => {
                write!(f, "a fault-tolerant scenario needs backups >= 1")
            }
            ConfigError::LossWithoutRetransmit => write!(
                f,
                "message loss without retransmission stalls the first dropped \
                 epoch boundary forever (add retransmit(..))"
            ),
            ConfigError::RejoinWithoutRetransmit => write!(
                f,
                "reintegration needs the reliable layer: state transfers ride \
                 its framing and its heartbeats keep detectors quiet during \
                 the transfer (add retransmit(..))"
            ),
            ConfigError::DetectorTooShort { detector, required } => write!(
                f,
                "detector_timeout ({detector}) must be at least 32x the \
                 retransmission timeout ({required} required) or loss bursts \
                 falsely promote a backup under a live primary"
            ),
            ConfigError::DiskTooLarge { blocks, max } => {
                write!(f, "disk of {blocks} blocks exceeds the {max}-block bound")
            }
            ConfigError::EmptyDisk => write!(f, "a disk needs at least one block"),
            ConfigError::ZeroEpochLen => write!(f, "epoch length must be at least 1 instruction"),
            ConfigError::ExecTierConflict { block_exec, tier } => write!(
                f,
                "block_exec({block_exec}) and exec_tier({tier}) disagree: drop \
                 the legacy block_exec(..) call and keep exec_tier(..)"
            ),
            ConfigError::DriverMismatch(why) => write!(f, "driver mismatch: {why}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which machinery executes the scenario.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Driver {
    /// The guest directly on simulated hardware — the paper's `RT`
    /// baseline. No replication, no protocol.
    Bare,
    /// The realistic discrete-event system ([`FtSystem`]): modelled
    /// link timing, timeout failure detectors, shared disk and console.
    #[default]
    Replicated,
    /// The round-synchronous t-fault chain ([`TChain`]) on instant
    /// links: same engines, abstract machinery, failures scheduled by
    /// epoch.
    Chain,
}

/// How a scenario's workload ended, uniform across drivers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExitStatus {
    /// The workload called `SYS_EXIT` with this code (checksum).
    Exit(u32),
    /// The guest halted without a clean exit (kernel fatal path, or a
    /// bare guest with no wake-up source).
    Fatal(Option<u32>),
    /// The per-guest instruction limit tripped.
    InsnLimit,
    /// More processors failed than the chain tolerates.
    Exhausted,
    /// Replicas diverged at this epoch boundary (protocol violation).
    Diverged(u64),
    /// The chain's epoch budget ran out.
    EpochLimit,
}

impl ExitStatus {
    /// Whether the workload finished with a clean `SYS_EXIT`.
    pub fn is_clean_exit(&self) -> bool {
        matches!(self, ExitStatus::Exit(_))
    }

    /// The exit code, if the workload exited cleanly.
    pub fn code(&self) -> Option<u32> {
        match self {
            ExitStatus::Exit(c) => Some(*c),
            _ => None,
        }
    }
}

/// The uniform result of running any scenario under any driver.
///
/// Fields a driver cannot measure are empty/zero and documented per
/// driver on [`Runner::run`].
#[derive(Clone, Debug)]
pub struct RunReport {
    /// `workload@driver` label, for logs and bench records.
    pub label: String,
    /// How the workload ended.
    pub exit: ExitStatus,
    /// Simulated completion time on the acting primary's clock (the
    /// paper's `N′`; the bare driver's `N`).
    pub completion_time: SimDuration,
    /// Bytes the environment's console received, in order.
    pub console: Vec<u8>,
    /// Replicas that wrote to the console, in order of first write
    /// (more than one entry only across a failover).
    pub console_hosts: Vec<u8>,
    /// Epochs completed at the acting primary.
    pub epochs: u64,
    /// Guest instructions retired at the acting primary.
    pub retired: u64,
    /// Every failover, in promotion order.
    pub failovers: Vec<FailoverInfo>,
    /// Acting primary's hypervisor statistics.
    pub primary_stats: HvStats,
    /// Hypervisor statistics per replica, in chain order.
    pub replica_stats: Vec<HvStats>,
    /// Frames sent per replica (incl. retransmissions and acks).
    pub messages_per_replica: Vec<u64>,
    /// Data frames re-sent by the reliable layer.
    pub frames_retransmitted: u64,
    /// Duplicate frames suppressed by receivers.
    pub frames_suppressed: u64,
    /// Every completed backup reintegration, in completion order
    /// (replicated driver only).
    pub reintegrations: Vec<ReintegrationInfo>,
    /// Modelled bytes of completed reintegration state transfers.
    pub state_transfer_bytes: u64,
    /// Epoch-boundary state-hash comparisons performed.
    pub lockstep_compared: u64,
    /// Whether every compared boundary hashed identically.
    pub lockstep_clean: bool,
    /// The disk's environment-visible operation log.
    pub disk_log: Vec<DiskLogEntry>,
    /// Disk-driver retries recorded by the guest kernel.
    pub guest_retries: u32,
    /// Guest-visible latency of each completed disk operation.
    pub op_latencies: Vec<SimDuration>,
    /// The same latencies as a histogram (1 ms buckets — the paper's
    /// operations sit around 26 ms).
    pub op_latency_hist: DurationHistogram,
}

impl RunReport {
    /// The acting primary's execution-tier breakdown: instructions
    /// retired per engine, superblocks compiled, jit invalidations.
    /// Per-replica breakdowns live in each
    /// [`replica_stats`](RunReport::replica_stats) entry.
    pub fn exec_stats(&self) -> ExecStats {
        self.primary_stats.exec
    }
}

fn latency_hist(samples: &[SimDuration]) -> DurationHistogram {
    let mut h = DurationHistogram::new(SimDuration::from_millis(1), 64);
    for &d in samples {
        h.record(d);
    }
    h
}

/// What the builder was given as the guest.
enum WorkloadSpec {
    Named(String),
    Custom(Box<dyn Workload>),
    Image(Program),
}

/// Typed, validating builder for [`Scenario`] — the single public way
/// to configure a run. See the [module docs](self) for examples.
pub struct ScenarioBuilder {
    workload: Option<WorkloadSpec>,
    driver: Driver,
    cfg: FtConfig,
    backups: Option<usize>,
    extra_primary_failures: Vec<SimTime>,
    replica_failures: Vec<(SimTime, usize)>,
    rejoins: Vec<(SimTime, usize)>,
    chain_failures_at: Vec<u64>,
    max_epochs: u64,
    parallelism: Parallelism,
    block_exec_asked: Option<bool>,
    exec_tier_asked: Option<ExecTier>,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            workload: None,
            driver: Driver::default(),
            cfg: FtConfig::default(),
            backups: None,
            extra_primary_failures: Vec::new(),
            replica_failures: Vec::new(),
            rejoins: Vec::new(),
            chain_failures_at: Vec::new(),
            max_epochs: 1_000_000,
            parallelism: Parallelism::Sequential,
            block_exec_asked: None,
            exec_tier_asked: None,
        }
    }
}

impl ScenarioBuilder {
    /// Sets the guest workload by value.
    pub fn workload(mut self, w: impl Workload + 'static) -> Self {
        self.workload = Some(WorkloadSpec::Custom(Box::new(w)));
        self
    }

    /// Sets the guest workload by registry name (see
    /// [`hvft_guest::workload::names`]).
    pub fn workload_named(mut self, name: impl Into<String>) -> Self {
        self.workload = Some(WorkloadSpec::Named(name.into()));
        self
    }

    /// Escape hatch: run a pre-assembled guest image (differential
    /// tests with synthetic instruction streams).
    pub fn image(mut self, image: Program) -> Self {
        self.workload = Some(WorkloadSpec::Image(image));
        self
    }

    /// Selects the driver (default: [`Driver::Replicated`]).
    pub fn driver(mut self, driver: Driver) -> Self {
        self.driver = driver;
        self
    }

    /// Shorthand for `driver(Driver::Bare)`.
    pub fn bare(self) -> Self {
        self.driver(Driver::Bare)
    }

    /// Shorthand for `driver(Driver::Chain)`.
    pub fn chain(self) -> Self {
        self.driver(Driver::Chain)
    }

    /// Selects the protocol variant (default: the §2 original).
    pub fn protocol(mut self, p: ProtocolVariant) -> Self {
        self.cfg.protocol = p;
        self
    }

    /// Number of ordered backups (`t`); default 1, the paper's
    /// prototype.
    pub fn backups(mut self, t: usize) -> Self {
        self.backups = Some(t);
        self
    }

    /// Per-message loss probability on every coordination link
    /// (requires [`ScenarioBuilder::retransmit`]).
    pub fn lossy(mut self, p: f64) -> Self {
        self.cfg.loss_prob = p;
        self
    }

    /// Enables the link-level ack/retransmission layer with this
    /// timeout.
    pub fn retransmit(mut self, rto: SimDuration) -> Self {
        self.cfg.retransmit = Some(rto);
        self
    }

    /// Bounded NIC-queue backpressure: a sender whose outbound queueing
    /// delay (`busy_until - now`) exceeds `bound` blocks until the
    /// queue drains, making the §4.3 (New) saturated regime physical
    /// instead of infinite-buffer. Off by default, so Table 1 runs are
    /// unchanged. Replicated/cluster driver only.
    pub fn nic_queue_bound(mut self, bound: SimDuration) -> Self {
        self.cfg.nic_queue_bound = Some(bound);
        self
    }

    /// How a sharded cluster run executes this scenario's guest
    /// computations: [`Parallelism::Threads`] runs *replica slices* on
    /// the persistent worker pool with conservative synchronization,
    /// bit-identical to [`Parallelism::Sequential`] (see
    /// [`crate::cluster::FtCluster::run_with`]). The thread count is
    /// clamped to the cluster's slice slots
    /// (`shards × max replicas per shard`,
    /// [`ClusterScenario::slice_slots`]), so even a single-shard
    /// cluster with `t` backups can keep `t + 1` guests in flight.
    /// Applies when the scenario is added to a [`ClusterScenario`].
    /// Replicated driver only.
    pub fn parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = p;
        self
    }

    /// Backup failure-detection timeout (rank-scaled per backup).
    pub fn detector_timeout(mut self, d: SimDuration) -> Self {
        self.cfg.detector_timeout = d;
        self
    }

    /// Failstops the acting primary at `at` (repeatable: later calls
    /// schedule cascading failures of whoever is then primary).
    pub fn fail_primary_at(mut self, at: SimTime) -> Self {
        if self.cfg.failure == FailureSpec::None && self.extra_primary_failures.is_empty() {
            self.cfg.failure = FailureSpec::At(at);
        } else {
            self.extra_primary_failures.push(at);
        }
        self
    }

    /// Failstops a specific replica at `at` (backup processor death).
    pub fn fail_replica_at(mut self, at: SimTime, replica: usize) -> Self {
        self.replica_failures.push((at, replica));
        self
    }

    /// Puts a failstopped replica back on the LAN at `at` (the repaired
    /// processor of §5's future work). It waits for a whole-state
    /// snapshot the acting primary takes at its next epoch boundary,
    /// restores it, and rejoins the chain as a live backup — restoring
    /// `t`-fault coverage, so a *subsequent* primary failure can again
    /// be survived. A replica that is not failstopped at `at` is left
    /// alone. Requires [`ScenarioBuilder::retransmit`]; replicated
    /// driver only.
    pub fn rejoin_replica_at(mut self, at: SimTime, replica: usize) -> Self {
        self.rejoins.push((at, replica));
        self
    }

    /// Chain driver only: failstop the acting primary at this epoch
    /// (repeatable, ascending).
    pub fn fail_primary_at_epoch(mut self, epoch: u64) -> Self {
        self.chain_failures_at.push(epoch);
        self
    }

    /// Chain driver only: epoch budget guard (default 1 000 000).
    pub fn max_epochs(mut self, epochs: u64) -> Self {
        self.max_epochs = epochs;
        self
    }

    /// Epoch length in instructions.
    pub fn epoch_len(mut self, el: u32) -> Self {
        self.cfg.hv.epoch_len = el;
        self
    }

    /// Timing cost model (default: calibrated HP 9000/720).
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cfg.cost = cost;
        self
    }

    /// Shorthand for [`CostModel::functional`] — near-zero hypervisor
    /// overheads for functional (non-performance) runs.
    pub fn functional_cost(self) -> Self {
        self.cost(CostModel::functional())
    }

    /// Coordination link model (default: 10 Mbps Ethernet).
    pub fn link(mut self, link: LinkSpec) -> Self {
        self.cfg.link = link;
        self
    }

    /// Full per-guest hypervisor configuration (epoch length, TLB
    /// policy, block execution…), for knobs without a dedicated setter.
    pub fn hv(mut self, hv: HvConfig) -> Self {
        self.cfg.hv = hv;
        self
    }

    /// Whether the hypervisor manages the TLB (the §3.2 fix; default
    /// true — disabling reproduces the replica-divergence surprise).
    pub fn tlb_managed(mut self, managed: bool) -> Self {
        self.cfg.hv.tlb_managed = managed;
        self
    }

    /// TLB slots of the simulated machine.
    pub fn tlb_slots(mut self, slots: usize) -> Self {
        self.cfg.hv.tlb_slots = slots;
        self
    }

    /// Legacy two-way engine switch: whether guests use the
    /// predecoded-block fast path (default true; disabling single-steps
    /// — observably identical, and the knob lets differential tests
    /// prove that). Combining it with a disagreeing
    /// [`ScenarioBuilder::exec_tier`] is a [`ConfigError`].
    pub fn block_exec(mut self, enabled: bool) -> Self {
        self.block_exec_asked = Some(enabled);
        self.cfg.hv.exec_tier = if enabled {
            ExecTier::Block
        } else {
            ExecTier::Step
        };
        self
    }

    /// Selects the execution engine for every guest — the single-step
    /// reference interpreter, predecoded blocks (the default) or the
    /// threaded-code jit. All tiers are observably identical; see the
    /// three-way differential oracle in `tests/proptest_step_vs_block.rs`.
    pub fn exec_tier(mut self, tier: ExecTier) -> Self {
        self.exec_tier_asked = Some(tier);
        self.cfg.hv.exec_tier = tier;
        self
    }

    /// Disk size in blocks (1 ..= [`MAX_DISK_BLOCKS`]).
    pub fn disk_blocks(mut self, blocks: u32) -> Self {
        self.cfg.disk_blocks = blocks;
        self
    }

    /// Probability a disk operation reports an uncertain outcome (IO2).
    pub fn disk_fault_prob(mut self, p: f64) -> Self {
        self.cfg.disk_fault_prob = p;
        self
    }

    /// Base RNG seed for the environment (disk faults, loss draws).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Safety limit on retired instructions per guest.
    pub fn max_insns(mut self, n: u64) -> Self {
        self.cfg.max_insns = n;
        self
    }

    /// Whether to hash replica states at every boundary (default on;
    /// costs wall time, not simulated time).
    pub fn lockstep(mut self, check: bool) -> Self {
        self.cfg.lockstep_check = check;
        self
    }

    /// Validates the configuration and produces a runnable
    /// [`Scenario`].
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] the combination violates; see
    /// the variants for the rules.
    pub fn build(mut self) -> Result<Scenario, ConfigError> {
        let (image, name) = match self.workload.take() {
            None => return Err(ConfigError::MissingWorkload),
            Some(WorkloadSpec::Named(name)) => {
                let w = by_name(&name).map_err(ConfigError::UnknownWorkload)?;
                let img = w
                    .image()
                    .map_err(|e| ConfigError::WorkloadImage(e.to_string()))?;
                (img, w.name())
            }
            Some(WorkloadSpec::Custom(w)) => {
                let img = w
                    .image()
                    .map_err(|e| ConfigError::WorkloadImage(e.to_string()))?;
                (img, w.name())
            }
            Some(WorkloadSpec::Image(img)) => (img, "image".to_owned()),
        };
        if self.cfg.hv.epoch_len == 0 {
            return Err(ConfigError::ZeroEpochLen);
        }
        if let (Some(block_exec), Some(tier)) = (self.block_exec_asked, self.exec_tier_asked) {
            let implied = if block_exec {
                ExecTier::Block
            } else {
                ExecTier::Step
            };
            if tier != implied {
                return Err(ConfigError::ExecTierConflict { block_exec, tier });
            }
        }
        if self.cfg.disk_blocks == 0 {
            return Err(ConfigError::EmptyDisk);
        }
        if self.cfg.disk_blocks > MAX_DISK_BLOCKS {
            return Err(ConfigError::DiskTooLarge {
                blocks: self.cfg.disk_blocks,
                max: MAX_DISK_BLOCKS,
            });
        }
        if !self.rejoins.is_empty() {
            if self.driver != Driver::Replicated {
                return Err(ConfigError::DriverMismatch(
                    "reintegration rides the replicated DES's timed network \
                     (bare and chain runs cannot rejoin a repaired replica)",
                ));
            }
            if self.cfg.retransmit.is_none() {
                return Err(ConfigError::RejoinWithoutRetransmit);
            }
        }
        if self.driver != Driver::Replicated {
            if self.cfg.nic_queue_bound.is_some() {
                return Err(ConfigError::DriverMismatch(
                    "the NIC queue bound shapes the replicated DES's timed \
                     coordination network (bare and chain runs have none)",
                ));
            }
            if self.parallelism != Parallelism::Sequential {
                return Err(ConfigError::DriverMismatch(
                    "parallel execution distributes replicated cluster shards \
                     (bare and chain runs cannot shard onto a LAN)",
                ));
            }
        }
        match self.driver {
            Driver::Bare => {
                if self.backups.is_some() {
                    return Err(ConfigError::DriverMismatch(
                        "the bare baseline has no replicas (drop backups(..))",
                    ));
                }
                if self.cfg.failure != FailureSpec::None
                    || !self.replica_failures.is_empty()
                    || !self.chain_failures_at.is_empty()
                {
                    return Err(ConfigError::DriverMismatch(
                        "the bare baseline has no processors to failstop",
                    ));
                }
            }
            Driver::Replicated => {
                if !self.chain_failures_at.is_empty() {
                    return Err(ConfigError::DriverMismatch(
                        "epoch-scheduled failures need the chain driver \
                         (use fail_primary_at(..) with simulated times)",
                    ));
                }
            }
            Driver::Chain => {
                if self.cfg.failure != FailureSpec::None || !self.replica_failures.is_empty() {
                    return Err(ConfigError::DriverMismatch(
                        "the round-synchronous chain schedules failures by epoch \
                         (use fail_primary_at_epoch(..))",
                    ));
                }
            }
        }
        if let Some(t) = self.backups {
            if t == 0 && self.driver != Driver::Bare {
                return Err(ConfigError::NoBackups);
            }
            self.cfg.backups = t;
        }
        if self.cfg.loss_prob > 0.0 {
            let Some(rto) = self.cfg.retransmit else {
                return Err(ConfigError::LossWithoutRetransmit);
            };
            let required = rto * 32;
            if self.cfg.detector_timeout < required {
                return Err(ConfigError::DetectorTooShort {
                    detector: self.cfg.detector_timeout,
                    required,
                });
            }
        }
        self.chain_failures_at.sort_unstable();
        Ok(Scenario {
            label: format!("{name}@{:?}", self.driver).to_lowercase(),
            image,
            cfg: self.cfg,
            driver: self.driver,
            extra_primary_failures: self.extra_primary_failures,
            replica_failures: self.replica_failures,
            rejoins: self.rejoins,
            chain_failures_at: self.chain_failures_at,
            max_epochs: self.max_epochs,
            parallelism: self.parallelism,
        })
    }
}

/// A validated, runnable configuration: workload image + driver +
/// knobs. Obtained from [`Scenario::builder`]; immutable thereafter, so
/// one scenario can be run (or sharded into a cluster) any number of
/// times.
pub struct Scenario {
    label: String,
    image: Program,
    cfg: FtConfig,
    driver: Driver,
    extra_primary_failures: Vec<SimTime>,
    replica_failures: Vec<(SimTime, usize)>,
    rejoins: Vec<(SimTime, usize)>,
    chain_failures_at: Vec<u64>,
    max_epochs: u64,
    parallelism: Parallelism,
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("label", &self.label)
            .field("driver", &self.driver)
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl Scenario {
    /// Starts a builder with the paper-prototype defaults (1 backup, §2
    /// protocol, 10 Mbps Ethernet, lossless links, calibrated costs).
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// The scenario's `workload@driver` label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The validated low-level configuration (the scenario layer is the
    /// only sanctioned producer of these).
    pub fn config(&self) -> &FtConfig {
        &self.cfg
    }

    /// The assembled guest image.
    pub fn image(&self) -> &Program {
        &self.image
    }

    /// The parallelism this scenario requests when sharded into a
    /// [`ClusterScenario`].
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Instantiates the driver. Use this instead of [`Scenario::run`]
    /// to attach [`Observer`]s or to touch the underlying system
    /// (pre-filling disk blocks, enabling the tracer) before running.
    pub fn runner(&self) -> Runner {
        match self.driver {
            Driver::Bare => {
                let mut host = BareHost::new(
                    &self.image,
                    self.cfg.cost,
                    self.cfg.hv.ram_bytes,
                    self.cfg.disk_blocks,
                    self.cfg.seed,
                );
                host.set_exec_tier(self.cfg.hv.exec_tier);
                Runner::Bare {
                    host,
                    max_insns: self.cfg.max_insns,
                    label: self.label.clone(),
                }
            }
            Driver::Replicated => {
                let mut system = FtSystem::from_config(&self.image, self.cfg);
                for &at in &self.extra_primary_failures {
                    system.schedule_failure(at);
                }
                for &(at, replica) in &self.replica_failures {
                    system.schedule_replica_failure(at, replica);
                }
                for &(at, replica) in &self.rejoins {
                    system.schedule_rejoin(at, replica);
                }
                Runner::Replicated {
                    system,
                    label: self.label.clone(),
                }
            }
            Driver::Chain => Runner::Chain {
                chain: TChain::build(
                    &self.image,
                    self.cfg.backups,
                    self.cfg.cost,
                    self.cfg.hv,
                    self.cfg.protocol,
                ),
                failures_at: self.chain_failures_at.clone(),
                max_epochs: self.max_epochs,
                label: self.label.clone(),
            },
        }
    }

    /// Runs the scenario to completion.
    pub fn run(&self) -> RunReport {
        self.runner().run()
    }
}

/// A driver instance ready to run one scenario — the uniform wrapper
/// over [`BareHost`], [`FtSystem`] and [`TChain`] that makes every run
/// yield a [`RunReport`].
pub enum Runner {
    /// The bare baseline.
    Bare {
        /// The bare machine.
        host: BareHost,
        /// Instruction guard.
        max_insns: u64,
        /// Report label.
        label: String,
    },
    /// The realistic DES.
    Replicated {
        /// The t-replica system.
        system: FtSystem,
        /// Report label.
        label: String,
    },
    /// The round-synchronous chain.
    Chain {
        /// The replica chain.
        chain: TChain,
        /// Epochs at which the acting primary failstops.
        failures_at: Vec<u64>,
        /// Epoch budget guard.
        max_epochs: u64,
        /// Report label.
        label: String,
    },
}

impl Runner {
    /// Registers a run [`Observer`]. The replicated driver fires every
    /// hook; the chain fires epoch-boundary and failover hooks; the
    /// bare driver has no protocol events and accepts (but never
    /// invokes) observers.
    pub fn add_observer(&mut self, observer: Box<dyn Observer>) {
        match self {
            Runner::Bare { .. } => {}
            Runner::Replicated { system, .. } => system.add_observer(observer),
            Runner::Chain { chain, .. } => chain.add_observer(observer),
        }
    }

    /// Removes and returns the registered observers (to read their
    /// accumulated state after [`Runner::run`]).
    pub fn take_observers(&mut self) -> Vec<Box<dyn Observer>> {
        match self {
            Runner::Bare { .. } => Vec::new(),
            Runner::Replicated { system, .. } => system.take_observers(),
            Runner::Chain { chain, .. } => chain.take_observers(),
        }
    }

    /// The underlying [`FtSystem`], when the driver is replicated
    /// (disk pre-filling, tracer access, extra failure scheduling).
    pub fn ft_mut(&mut self) -> Option<&mut FtSystem> {
        match self {
            Runner::Replicated { system, .. } => Some(system),
            _ => None,
        }
    }

    /// The underlying [`BareHost`], when the driver is bare.
    pub fn bare_mut(&mut self) -> Option<&mut BareHost> {
        match self {
            Runner::Bare { host, .. } => Some(host),
            _ => None,
        }
    }

    /// The underlying [`TChain`], when the driver is the chain.
    pub fn chain_mut(&mut self) -> Option<&mut TChain> {
        match self {
            Runner::Chain { chain, .. } => Some(chain),
            _ => None,
        }
    }

    /// Runs to completion and reports uniformly.
    ///
    /// Driver-specific gaps in the report: the bare driver has no
    /// replicas (replica/lockstep/message fields are empty, epochs 0);
    /// the chain has no timed network or disk (message and latency
    /// fields empty, failover `at` is the promoted replica's guest
    /// time).
    pub fn run(&mut self) -> RunReport {
        match self {
            Runner::Bare {
                host,
                max_insns,
                label,
            } => {
                let r = host.run(*max_insns);
                RunReport {
                    label: label.clone(),
                    exit: match r.exit {
                        BareExit::Halted { code: Some(c) } => ExitStatus::Exit(c),
                        BareExit::Halted { code: None } | BareExit::Stuck => {
                            ExitStatus::Fatal(None)
                        }
                        BareExit::InstructionLimit => ExitStatus::InsnLimit,
                    },
                    completion_time: r.time,
                    console: host.console.output(),
                    console_hosts: host.console.hosts_seen(),
                    epochs: 0,
                    retired: r.retired,
                    failovers: Vec::new(),
                    primary_stats: HvStats {
                        exec: host.exec_stats(),
                        ..HvStats::default()
                    },
                    replica_stats: Vec::new(),
                    messages_per_replica: Vec::new(),
                    frames_retransmitted: 0,
                    frames_suppressed: 0,
                    reintegrations: Vec::new(),
                    state_transfer_bytes: 0,
                    lockstep_compared: 0,
                    lockstep_clean: true,
                    disk_log: host.disk.log().to_vec(),
                    guest_retries: host
                        .mem
                        .read_u32(hvft_guest::layout::kdata::RETRIES)
                        .unwrap_or(0),
                    op_latencies: Vec::new(),
                    op_latency_hist: latency_hist(&[]),
                }
            }
            Runner::Replicated { system, label } => {
                let r = system.run();
                report_from_ft(label.clone(), r, system.primary_retired())
            }
            Runner::Chain {
                chain,
                failures_at,
                max_epochs,
                label,
            } => {
                let r = chain.run(failures_at, *max_epochs);
                RunReport {
                    label: label.clone(),
                    exit: match r.end {
                        ChainEnd::Exit { code } => ExitStatus::Exit(code),
                        ChainEnd::Exhausted => ExitStatus::Exhausted,
                        ChainEnd::Diverged { epoch } => ExitStatus::Diverged(epoch),
                        ChainEnd::EpochLimit => ExitStatus::EpochLimit,
                    },
                    completion_time: r.completion_time,
                    console: r.console.iter().map(|&(_, b)| b).collect(),
                    console_hosts: {
                        let mut hosts: Vec<u8> = Vec::new();
                        for &(i, _) in &r.console {
                            if !hosts.contains(&(i as u8)) {
                                hosts.push(i as u8);
                            }
                        }
                        hosts
                    },
                    epochs: r.epochs,
                    retired: 0,
                    failovers: r.promotions,
                    primary_stats: r.replica_stats.last().copied().unwrap_or_default(),
                    replica_stats: r.replica_stats,
                    messages_per_replica: Vec::new(),
                    frames_retransmitted: 0,
                    frames_suppressed: 0,
                    reintegrations: Vec::new(),
                    state_transfer_bytes: 0,
                    lockstep_compared: r.comparisons,
                    lockstep_clean: !matches!(r.end, ChainEnd::Diverged { .. }),
                    disk_log: Vec::new(),
                    guest_retries: 0,
                    op_latencies: Vec::new(),
                    op_latency_hist: latency_hist(&[]),
                }
            }
        }
    }
}

/// Folds an [`FtRunResult`] into the uniform report shape.
fn report_from_ft(label: String, r: FtRunResult, retired: u64) -> RunReport {
    RunReport {
        label,
        exit: match r.outcome {
            RunEnd::Exit { code } => ExitStatus::Exit(code),
            RunEnd::Fatal { code } => ExitStatus::Fatal(code),
            RunEnd::InsnLimit => ExitStatus::InsnLimit,
        },
        completion_time: r.completion_time,
        console: r.console_output,
        console_hosts: r.console_hosts,
        epochs: r.primary_stats.epochs,
        retired,
        failovers: r.failovers,
        primary_stats: r.primary_stats,
        replica_stats: r.replica_stats,
        messages_per_replica: r.messages_per_replica,
        frames_retransmitted: r.frames_retransmitted,
        frames_suppressed: r.frames_suppressed,
        reintegrations: r.reintegrations,
        state_transfer_bytes: r.state_transfer_bytes,
        lockstep_compared: r.lockstep.compared(),
        lockstep_clean: r.lockstep.is_clean(),
        disk_log: r.disk_log,
        guest_retries: r.guest_retries,
        op_latency_hist: latency_hist(&r.op_latencies),
        op_latencies: r.op_latencies,
    }
}

/// Many replicated scenarios sharded onto one shared LAN — the
/// scenario-level face of [`FtCluster`].
///
/// # Examples
///
/// ```
/// use hvft_core::scenario::{ClusterScenario, Scenario};
/// use hvft_net::link::LinkSpec;
///
/// let mut cluster = ClusterScenario::new(LinkSpec::ethernet_10mbps(), 7);
/// for name in ["hello", "sieve"] {
///     cluster
///         .add(
///             Scenario::builder()
///                 .workload_named(name)
///                 .functional_cost()
///                 .build()
///                 .unwrap(),
///         )
///         .unwrap();
/// }
/// let reports = cluster.run();
/// assert!(reports.iter().all(|r| r.exit.is_clean_exit()));
/// ```
pub struct ClusterScenario {
    link: LinkSpec,
    seed: u64,
    shards: Vec<Scenario>,
    parallelism: Option<Parallelism>,
}

impl ClusterScenario {
    /// An empty cluster over a shared medium modelled by `link`; `seed`
    /// feeds the medium's per-link loss RNGs.
    pub fn new(link: LinkSpec, seed: u64) -> Self {
        ClusterScenario {
            link,
            seed,
            shards: Vec::new(),
            parallelism: None,
        }
    }

    /// Overrides how the cluster executes: by default the run adopts
    /// the widest [`Parallelism`] any shard requested through
    /// [`ScenarioBuilder::parallelism`]; this forces a specific mode.
    /// Either way the results are bit-identical to sequential (see
    /// [`crate::cluster::FtCluster::run_with`]).
    pub fn parallelism(&mut self, p: Parallelism) -> &mut Self {
        self.parallelism = Some(p);
        self
    }

    /// The mode [`ClusterScenario::run`] will use: the explicit
    /// override if set, else the widest shard request.
    pub fn effective_parallelism(&self) -> Parallelism {
        if let Some(p) = self.parallelism {
            return p;
        }
        self.shards
            .iter()
            .map(|s| s.parallelism)
            .fold(Parallelism::Sequential, |acc, p| match (acc, p) {
                (Parallelism::Threads(a), Parallelism::Threads(b)) => {
                    Parallelism::Threads(a.max(b))
                }
                (Parallelism::Threads(a), _) => Parallelism::Threads(a),
                (_, p) => p,
            })
    }

    /// Adds one shard. Only [`Driver::Replicated`] scenarios can share
    /// a LAN.
    ///
    /// # Errors
    ///
    /// [`ConfigError::DriverMismatch`] for bare or chain scenarios.
    pub fn add(&mut self, scenario: Scenario) -> Result<&mut Self, ConfigError> {
        if scenario.driver != Driver::Replicated {
            return Err(ConfigError::DriverMismatch(
                "only replicated scenarios can shard onto a shared LAN",
            ));
        }
        self.shards.push(scenario);
        Ok(self)
    }

    /// Number of shards added so far.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Upper bound on concurrently in-flight guest slices:
    /// `shards × max replicas per shard` — each shard's plan step
    /// yields up to one slice per replica, so this (not the shard
    /// count) is what [`Parallelism::Threads`] is clamped against.
    /// See [`crate::cluster::FtCluster::slice_slots`].
    pub fn slice_slots(&self) -> usize {
        self.shards
            .iter()
            .map(|s| 1 + s.cfg.backups)
            .max()
            .unwrap_or(1)
            * self.shards.len().max(1)
    }

    /// Runs every shard to completion over the shared medium and
    /// returns their reports in shard order.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no shards.
    pub fn run(&self) -> Vec<RunReport> {
        self.run_with_lan_stats().0
    }

    /// [`ClusterScenario::run`] plus the shared medium's traffic
    /// counters (sent/dropped/delivered across every link), for oracles
    /// that must prove the wire actually lost traffic.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no shards.
    pub fn run_with_lan_stats(&self) -> (Vec<RunReport>, hvft_net::lan::LanStats) {
        assert!(!self.shards.is_empty(), "empty cluster scenario");
        let mut cluster = FtCluster::new(self.link, self.seed);
        for shard in &self.shards {
            let i = cluster.add_system(&shard.image, shard.cfg);
            let sys = cluster.system_mut(i);
            for &at in &shard.extra_primary_failures {
                sys.schedule_failure(at);
            }
            for &(at, replica) in &shard.replica_failures {
                sys.schedule_replica_failure(at, replica);
            }
            for &(at, replica) in &shard.rejoins {
                sys.schedule_rejoin(at, replica);
            }
        }
        let results = cluster.run_with(self.effective_parallelism());
        let reports = results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let retired = cluster.system_mut(i).primary_retired();
                report_from_ft(self.shards[i].label.clone(), r, retired)
            })
            .collect();
        (reports, cluster.lan_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hvft_guest::workload::{Dhrystone, Hello};

    fn tiny_dhry() -> Dhrystone {
        Dhrystone {
            iters: 150,
            ..Default::default()
        }
    }

    #[test]
    fn default_scenario_is_the_paper_prototype() {
        let s = Scenario::builder()
            .workload(tiny_dhry())
            .build()
            .expect("defaults are valid");
        assert_eq!(s.config().backups, 1);
        assert_eq!(s.config().protocol, ProtocolVariant::Old);
        assert_eq!(s.label(), "dhrystone@replicated");
    }

    #[test]
    fn bare_and_replicated_agree_on_the_checksum() {
        let bare = Scenario::builder()
            .workload(tiny_dhry())
            .bare()
            .build()
            .unwrap()
            .run();
        let ft = Scenario::builder()
            .workload(tiny_dhry())
            .functional_cost()
            .build()
            .unwrap()
            .run();
        let chain = Scenario::builder()
            .workload(tiny_dhry())
            .chain()
            .functional_cost()
            .build()
            .unwrap()
            .run();
        assert!(bare.exit.is_clean_exit());
        assert_eq!(bare.exit.code(), ft.exit.code(), "bare vs DES");
        assert_eq!(bare.exit.code(), chain.exit.code(), "bare vs chain");
        assert!(ft.lockstep_clean && ft.lockstep_compared > 0);
        assert!(bare.retired > 0 && ft.retired > 0);
    }

    #[test]
    fn failure_scheduling_flows_through_the_builder() {
        let probe = Scenario::builder()
            .workload(Hello::default())
            .functional_cost()
            .build()
            .unwrap()
            .run();
        assert!(probe.exit.is_clean_exit());
        let half = SimTime::ZERO + probe.completion_time / 2;
        let r = Scenario::builder()
            .workload(Hello::default())
            .functional_cost()
            .backups(2)
            .fail_primary_at(half)
            .build()
            .unwrap()
            .run();
        assert_eq!(r.exit, ExitStatus::Exit(42));
        assert_eq!(r.failovers.len(), 1);
        assert_eq!(r.console, probe.console, "failover must stay transparent");
    }

    #[test]
    fn chain_failures_schedule_by_epoch() {
        let r = Scenario::builder()
            .workload(tiny_dhry())
            .chain()
            .functional_cost()
            .backups(2)
            .epoch_len(1024)
            .fail_primary_at_epoch(2)
            .fail_primary_at_epoch(4)
            .build()
            .unwrap()
            .run();
        assert!(r.exit.is_clean_exit(), "{:?}", r.exit);
        assert_eq!(r.failovers.len(), 2);
        assert_eq!(
            r.failovers.iter().map(|f| f.epoch).collect::<Vec<_>>(),
            vec![2, 4]
        );
    }

    #[test]
    fn exec_tier_is_selectable_on_every_driver() {
        let run = |driver: Driver| {
            Scenario::builder()
                .workload(tiny_dhry())
                .driver(driver)
                .functional_cost()
                .exec_tier(ExecTier::Jit)
                .build()
                .unwrap()
                .run()
        };
        let bare = run(Driver::Bare);
        let ft = run(Driver::Replicated);
        let chain = run(Driver::Chain);
        assert!(bare.exit.is_clean_exit());
        assert_eq!(bare.exit.code(), ft.exit.code(), "bare vs DES under jit");
        assert_eq!(
            bare.exit.code(),
            chain.exit.code(),
            "bare vs chain under jit"
        );
        assert!(ft.lockstep_clean && ft.lockstep_compared > 0);
        // The tier breakdown must prove the jit actually ran.
        for (r, who) in [(&bare, "bare"), (&ft, "replicated"), (&chain, "chain")] {
            let x = r.exec_stats();
            assert!(x.superblocks_compiled > 0, "{who}: no superblocks compiled");
            assert!(x.jit_retired > 0, "{who}: nothing retired in superblocks");
        }
    }

    #[test]
    fn conflicting_engine_knobs_are_a_structured_error() {
        let err = Scenario::builder()
            .workload(tiny_dhry())
            .block_exec(false)
            .exec_tier(ExecTier::Jit)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::ExecTierConflict {
                block_exec: false,
                tier: ExecTier::Jit
            }
        );
        // Agreement (redundant calls) is fine, in either order.
        assert!(Scenario::builder()
            .workload(tiny_dhry())
            .exec_tier(ExecTier::Step)
            .block_exec(false)
            .build()
            .is_ok());
        assert!(Scenario::builder()
            .workload(tiny_dhry())
            .block_exec(true)
            .exec_tier(ExecTier::Block)
            .build()
            .is_ok());
    }

    #[test]
    fn validation_rejects_the_classic_footguns() {
        let base = || Scenario::builder().workload(tiny_dhry());
        assert_eq!(
            base().lossy(0.1).build().unwrap_err(),
            ConfigError::LossWithoutRetransmit
        );
        assert_eq!(
            base().backups(0).build().unwrap_err(),
            ConfigError::NoBackups
        );
        assert!(matches!(
            base()
                .lossy(0.1)
                .retransmit(SimDuration::from_millis(5))
                .detector_timeout(SimDuration::from_millis(10))
                .build()
                .unwrap_err(),
            ConfigError::DetectorTooShort { .. }
        ));
        assert!(matches!(
            base().disk_blocks(MAX_DISK_BLOCKS + 1).build().unwrap_err(),
            ConfigError::DiskTooLarge { .. }
        ));
        assert_eq!(
            Scenario::builder().build().unwrap_err(),
            ConfigError::MissingWorkload
        );
        let err = Scenario::builder()
            .workload_named("no-such-guest")
            .build()
            .unwrap_err();
        match err {
            ConfigError::UnknownWorkload(u) => {
                assert_eq!(u.name, "no-such-guest");
                assert!(
                    u.registered.iter().any(|n| n == "lang-gcd"),
                    "error must list the registry: {u:?}"
                );
            }
            other => panic!("expected UnknownWorkload, got {other:?}"),
        }
    }

    #[test]
    fn observer_hooks_fire_on_the_replicated_driver() {
        use std::cell::Cell;
        use std::rc::Rc;

        #[derive(Default)]
        struct Counts {
            boundaries: Cell<u64>,
            sends: Cell<u64>,
            interrupts: Cell<u64>,
        }
        struct Obs(Rc<Counts>);
        impl Observer for Obs {
            fn epoch_boundary(&mut self, _r: usize, _e: u64, _at: SimTime) {
                self.0.boundaries.set(self.0.boundaries.get() + 1);
            }
            fn message_sent(&mut self, _f: usize, _t: usize, _b: usize, _at: SimTime) {
                self.0.sends.set(self.0.sends.get() + 1);
            }
            fn interrupt_delivered(&mut self, _r: usize, _irq: u32, _at: SimTime) {
                self.0.interrupts.set(self.0.interrupts.get() + 1);
            }
        }

        // An I/O workload: disk completions flow through the engines'
        // DeliverInterrupt effect (rule P1/P5), which the hook reports.
        let scenario = Scenario::builder()
            .workload(hvft_guest::workload::IoBench::default())
            .functional_cost()
            .build()
            .unwrap();
        let counts = Rc::new(Counts::default());
        let mut runner = scenario.runner();
        runner.add_observer(Box::new(Obs(Rc::clone(&counts))));
        let report = runner.run();
        assert!(report.exit.is_clean_exit());
        assert!(counts.boundaries.get() > 0, "no boundary events seen");
        assert!(counts.sends.get() > 0, "no send events seen");
        assert!(counts.interrupts.get() > 0, "no interrupt events seen");
        // The observer saw every frame the counters counted (a
        // lossless raw-channel run: every offered frame is scheduled,
        // so the two accountings coincide exactly).
        assert_eq!(
            counts.sends.get(),
            report.messages_per_replica.iter().sum::<u64>(),
            "observer and driver counters must agree"
        );
    }

    #[test]
    fn observer_accounting_is_complete_under_loss() {
        use std::cell::Cell;
        use std::rc::Rc;

        // Under loss injection every offered frame must surface through
        // exactly one of message_sent / message_dropped — including
        // retransmissions — so sent + dropped equals the media's own
        // offered-frame counters (no link is ever severed here).
        #[derive(Default)]
        struct Wire {
            sent: Cell<u64>,
            dropped: Cell<u64>,
            retransmit_bursts: Cell<u64>,
        }
        struct Obs(Rc<Wire>);
        impl Observer for Obs {
            fn message_sent(&mut self, _f: usize, _t: usize, _b: usize, _at: SimTime) {
                self.0.sent.set(self.0.sent.get() + 1);
            }
            fn message_dropped(
                &mut self,
                _f: usize,
                _t: usize,
                _at: SimTime,
                _reason: crate::observer::DropReason,
            ) {
                self.0.dropped.set(self.0.dropped.get() + 1);
            }
            fn retransmit(&mut self, _f: usize, _t: usize, _n: usize, _at: SimTime) {
                self.0
                    .retransmit_bursts
                    .set(self.0.retransmit_bursts.get() + 1);
            }
        }

        let scenario = Scenario::builder()
            .workload(tiny_dhry())
            .functional_cost()
            .lossy(0.25)
            .retransmit(SimDuration::from_millis(5))
            .detector_timeout(SimDuration::from_millis(300))
            .build()
            .unwrap();
        let wire = Rc::new(Wire::default());
        let mut runner = scenario.runner();
        runner.add_observer(Box::new(Obs(Rc::clone(&wire))));
        let report = runner.run();
        assert!(report.exit.is_clean_exit(), "{:?}", report.exit);
        assert!(wire.dropped.get() > 0, "the lossy wire must lose frames");
        assert!(
            report.frames_retransmitted > 0 && wire.retransmit_bursts.get() > 0,
            "recovery must happen and be observed"
        );
        assert_eq!(
            wire.sent.get() + wire.dropped.get(),
            report.messages_per_replica.iter().sum::<u64>(),
            "every offered frame must surface through exactly one hook"
        );
    }

    #[test]
    fn observers_do_not_change_the_run() {
        struct Noop;
        impl Observer for Noop {}
        let scenario = Scenario::builder()
            .workload(tiny_dhry())
            .functional_cost()
            .build()
            .unwrap();
        let plain = scenario.run();
        let mut runner = scenario.runner();
        runner.add_observer(Box::new(Noop));
        let observed = runner.run();
        assert_eq!(plain.exit, observed.exit);
        assert_eq!(plain.completion_time, observed.completion_time);
        assert_eq!(plain.messages_per_replica, observed.messages_per_replica);
    }
}
