//! The replica-coordination engine: rules P1–P7 and the §4.3 revision
//! as pure state machines.
//!
//! This module is the single home of the paper's protocol logic. The
//! engines know nothing about discrete-event scheduling, channels,
//! devices, or [`hvft_hypervisor::hvguest::HvGuest`]: they consume
//! *events* (an epoch boundary was reached, a message arrived, a device
//! interrupt was raised, an acknowledgment came in, the failure
//! detector fired) and emit *effects* (send a message, assign the
//! clock, deliver buffered interrupts, start the next epoch, release a
//! held I/O). Two very different drivers run the same engines:
//!
//! - [`crate::system::FtSystem`] — the realistic DES with modelled link
//!   timing, a shared disk, and a timeout failure detector;
//! - [`crate::chain::TChain`] — the round-synchronous t-fault chain
//!   whose transport is an instantaneous FIFO link.
//!
//! That both produce identical guest-visible behaviour is exactly the
//! paper's claim that the protocol is independent of the machinery
//! underneath — and it is enforced by an equivalence property test.
//!
//! # Rules, by their paper names
//!
//! - **P1**: an interrupt arriving at the primary during epoch `E` is
//!   buffered for delivery at the end of `E` and forwarded as `[E, Int]`
//!   ([`ReplicaEngine::interrupt_raised`]);
//! - **P2**: at the end of epoch `E` the primary sends `[Tme_p]`,
//!   (original protocol) awaits acknowledgments for everything sent,
//!   delivers buffered interrupts, sends `[end, E]`, and starts `E + 1`
//!   ([`ReplicaEngine::boundary_reached`]);
//! - **P3**: interrupts destined for an unpromoted backup VM are
//!   ignored — realized here by backup I/O suppression, which is the
//!   driver's half of the contract;
//! - **P4**: the backup acknowledges and buffers `[E, Int]`
//!   ([`ReplicaEngine::message_received`]);
//! - **P5**: at the end of its epoch `E` the backup awaits `[Tme_p]`,
//!   assigns it, awaits `[end, E]`, delivers the epoch-`E` buffer, and
//!   starts `E + 1`;
//! - **P6**: if instead the failure detector fires, the backup delivers
//!   what it buffered and promotes itself
//!   ([`ReplicaEngine::promote_at_boundary`]);
//! - **P7**: I/O outstanding at the failover epoch gets a synthesized
//!   *uncertain* interrupt so the replayed driver retries;
//! - **§4.3 revision**: the boundary ack-wait of P2 is dropped;
//!   acknowledgments must instead be complete before the primary
//!   initiates any I/O ([`ReplicaEngine::io_requested`]).
//!
//! # The t-fault generalization
//!
//! The paper calls generalizing to `t` backups "straightforward"; the
//! engine makes the three ingredients explicit. A primary broadcasts to
//! every live backup with per-peer sequence numbers and treats "all
//! acknowledged" as *every* live peer having acknowledged. A backup
//! always acknowledges toward whichever replica most recently sent it a
//! sequenced message (promotion transfers that role). On promotion with
//! survivors, the new primary completes the failover epoch `E` the way
//! the old primary would have: it re-issues `[Tme_p]` for `E` only if
//! the dead primary never managed to send it (every live backup saw the
//! same message prefix — FIFO channels deliver a crashed sender's
//! in-flight messages), forwards a synthesized uncertain interrupt for
//! outstanding I/O so *all* survivors retire it at the same stream
//! point, and announces `[end, E]`.

use crate::config::ProtocolVariant;
use crate::messages::{DiskCompletion, ForwardedInterrupt, Message};
use hvft_devices::mmio;
use hvft_hypervisor::guest_iface::GuestCtl;
use hvft_hypervisor::vclock::VClock;
use hvft_machine::trap::irq;
use std::collections::{BTreeMap, BTreeSet};

/// Identifies a replica by its position in the chain order (0 is the
/// initial primary; backups follow in promotion order).
pub type ReplicaId = usize;

/// What an engine asks its driver to do.
///
/// Effects are emitted in the exact order they must be carried out;
/// message sends on one FIFO transport preserve that order on the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum Effect {
    /// Transmit `msg` to replica `to` (sequence number already stamped).
    Send {
        /// Destination replica.
        to: ReplicaId,
        /// The protocol message.
        msg: Message,
    },
    /// `Tme_b := Tme_p` — assign the received clock state (rule P5).
    AssignClock(VClock),
    /// Deliver the interval-timer interrupt if the virtual timer has
    /// expired ("interrupts based on Tme", rules P2/P5).
    DeliverTimer,
    /// Deliver one buffered interrupt into the guest; the driver also
    /// applies any device payload (disk status/data) it carries.
    DeliverInterrupt(ForwardedInterrupt),
    /// Rule P7 with no surviving backups: synthesize an uncertain
    /// completion for the replica's outstanding I/O.
    SynthesizeUncertain,
    /// Re-arm the recovery counter: the next epoch begins.
    StartEpoch,
    /// §4.3: acknowledgments completed; perform the held I/O now and
    /// complete the guest's stalled MMIO instruction.
    ResumeHeldIo,
}

/// Verdict of [`ReplicaEngine::io_requested`] (§4.3 gate).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoGate {
    /// Perform the I/O immediately.
    Proceed,
    /// Hold the I/O; [`Effect::ResumeHeldIo`] will release it once all
    /// acknowledgments are in.
    Hold,
}

/// Details of a completed promotion (rules P6/P7).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Promotion {
    /// The failover epoch (P6's `E`).
    pub epoch: u64,
    /// Whether P7 synthesized an uncertain interrupt.
    pub uncertain_synthesized: bool,
}

/// Protocol phase of one replica.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// Guest instructions are executing.
    Running,
    /// Primary, original protocol: boundary of `epoch` reached, awaiting
    /// acknowledgments (rule P2).
    AwaitBoundaryAcks {
        /// The boundary's epoch.
        epoch: u64,
    },
    /// Primary, revised protocol: an I/O is held until acknowledgments
    /// complete (§4.3).
    AwaitIoAcks,
    /// Backup at the boundary of `epoch`, awaiting `[Tme_p]` (rule P5).
    AwaitTime {
        /// The boundary's epoch.
        epoch: u64,
    },
    /// Backup, clock assigned, awaiting `[end, epoch]` (rule P5).
    AwaitEnd {
        /// The boundary's epoch.
        epoch: u64,
    },
}

/// The pure protocol state machine for one replica.
///
/// A replica starts as the primary or as a backup and may switch role
/// exactly once per promotion; a `t`-fault system drives `t + 1` of
/// these, re-wiring roles as primaries failstop.
///
/// # Examples
///
/// One original-protocol epoch boundary between a primary and a
/// backup, the driver's message routing done by hand:
///
/// ```
/// use hvft_core::config::ProtocolVariant;
/// use hvft_core::protocol::{Effect, ReplicaEngine};
/// use hvft_hypervisor::vclock::VClock;
///
/// let mut primary = ReplicaEngine::new_primary(0, vec![1], ProtocolVariant::Old);
/// let mut backup = ReplicaEngine::new_backup(1, 0, ProtocolVariant::Old);
///
/// // The primary's guest reaches the end of epoch 0: [Tme] goes out
/// // and the boundary stalls awaiting its acknowledgment (rule P2).
/// let effects = primary.boundary_reached(0, VClock::new());
/// let Effect::Send { to: 1, msg } = &effects[0] else { unreachable!() };
/// assert!(!primary.is_running());
///
/// // The backup waits at its own boundary for [Tme] (rule P5), then
/// // assigns the clock and acknowledges.
/// assert!(backup.boundary_reached(0, VClock::new()).is_empty());
/// let replies = backup.message_received(0, msg.clone());
/// let Effect::Send { msg: ack, .. } = &replies[0] else { unreachable!() };
///
/// // The acknowledgment releases the primary into epoch 1.
/// let released = primary.message_received(1, ack.clone());
/// assert!(primary.is_running());
/// assert!(released.contains(&Effect::StartEpoch));
/// ```
#[derive(Clone, Debug)]
pub struct ReplicaEngine {
    id: ReplicaId,
    variant: ProtocolVariant,
    is_primary: bool,
    phase: Phase,
    /// Live backups, in chain order (primary role only).
    peers: Vec<ReplicaId>,
    /// Per-peer count of sequenced messages sent (primary role).
    next_seq: BTreeMap<ReplicaId, u64>,
    /// Per-peer highest cumulative acknowledgment received (primary).
    acked: BTreeMap<ReplicaId, u64>,
    /// The replica we acknowledge to (backup role): whoever most
    /// recently sent us a sequenced message.
    primary: ReplicaId,
    /// Highest sequence number received from the current primary.
    highest_recv: u64,
    /// `[Tme_p]` payloads received, by epoch (backup role).
    got_time: BTreeMap<u64, VClock>,
    /// `[end, E]` notices received (backup role).
    got_end: BTreeSet<u64>,
    /// Interrupts buffered for delivery, keyed by delivery epoch
    /// (rules P1/P4).
    buffered: BTreeMap<u64, Vec<ForwardedInterrupt>>,
}

impl ReplicaEngine {
    /// The engine for the initial primary, coordinating `peers` (the
    /// backups, in chain order).
    pub fn new_primary(id: ReplicaId, peers: Vec<ReplicaId>, variant: ProtocolVariant) -> Self {
        ReplicaEngine {
            id,
            variant,
            is_primary: true,
            phase: Phase::Running,
            peers,
            next_seq: BTreeMap::new(),
            acked: BTreeMap::new(),
            primary: id,
            highest_recv: 0,
            got_time: BTreeMap::new(),
            got_end: BTreeSet::new(),
            buffered: BTreeMap::new(),
        }
    }

    /// The engine for a backup acknowledging toward `primary`.
    pub fn new_backup(id: ReplicaId, primary: ReplicaId, variant: ProtocolVariant) -> Self {
        ReplicaEngine {
            id,
            variant,
            is_primary: false,
            phase: Phase::Running,
            peers: Vec::new(),
            next_seq: BTreeMap::new(),
            acked: BTreeMap::new(),
            primary,
            highest_recv: 0,
            got_time: BTreeMap::new(),
            got_end: BTreeSet::new(),
            buffered: BTreeMap::new(),
        }
    }

    /// This replica's chain position.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Whether this replica currently acts as the primary.
    pub fn is_primary(&self) -> bool {
        self.is_primary
    }

    /// Whether guest instructions may execute right now.
    pub fn is_running(&self) -> bool {
        self.phase == Phase::Running
    }

    /// Whether the replica is a backup waiting at an epoch boundary
    /// (the states from which rule P6 may promote it).
    pub fn is_waiting_backup(&self) -> bool {
        matches!(self.phase, Phase::AwaitTime { .. } | Phase::AwaitEnd { .. })
    }

    /// Whether a §4.3 held I/O is pending acknowledgment completion.
    pub fn holds_io(&self) -> bool {
        self.phase == Phase::AwaitIoAcks
    }

    /// Live backups this primary coordinates (empty for backups).
    pub fn peers(&self) -> &[ReplicaId] {
        &self.peers
    }

    fn all_acked(&self) -> bool {
        self.peers.iter().all(|p| {
            self.acked.get(p).copied().unwrap_or(0) >= self.next_seq.get(p).copied().unwrap_or(0)
        })
    }

    /// Stamps and queues one sequenced message per live peer.
    fn broadcast(&mut self, effects: &mut Vec<Effect>, make: impl Fn(u64) -> Message) {
        for &to in &self.peers {
            let seq = self.next_seq.entry(to).or_insert(0);
            *seq += 1;
            effects.push(Effect::Send {
                to,
                msg: make(*seq),
            });
        }
    }

    // -----------------------------------------------------------------
    // Boundary processing (rules P2 and P5)
    // -----------------------------------------------------------------

    /// The replica's guest reached the end of `epoch`; `vclock` is its
    /// clock snapshot at the boundary (used by the primary's `[Tme_p]`).
    pub fn boundary_reached(&mut self, epoch: u64, vclock: VClock) -> Vec<Effect> {
        debug_assert_eq!(self.phase, Phase::Running, "boundary while not running");
        if self.is_primary {
            let mut effects = Vec::new();
            if !self.peers.is_empty() {
                self.broadcast(&mut effects, |seq| Message::Time { seq, epoch, vclock });
                if self.variant == ProtocolVariant::Old && !self.all_acked() {
                    self.phase = Phase::AwaitBoundaryAcks { epoch };
                    return effects;
                }
            }
            self.finish_boundary(epoch, &mut effects);
            effects
        } else {
            self.phase = Phase::AwaitTime { epoch };
            self.try_advance()
        }
    }

    /// Rule P2, second half: deliver, announce, start the next epoch.
    fn finish_boundary(&mut self, epoch: u64, effects: &mut Vec<Effect>) {
        effects.push(Effect::DeliverTimer);
        for fwd in self.buffered.remove(&epoch).unwrap_or_default() {
            effects.push(Effect::DeliverInterrupt(fwd));
        }
        if !self.peers.is_empty() {
            self.broadcast(effects, |seq| Message::EpochEnd { seq, epoch });
        }
        effects.push(Effect::StartEpoch);
        self.phase = Phase::Running;
    }

    /// Rule P5's waiting sequence, re-evaluated whenever state changes.
    fn try_advance(&mut self) -> Vec<Effect> {
        let mut effects = Vec::new();
        loop {
            match self.phase {
                Phase::AwaitTime { epoch } => {
                    let Some(vc) = self.got_time.remove(&epoch) else {
                        return effects;
                    };
                    effects.push(Effect::AssignClock(vc));
                    self.phase = Phase::AwaitEnd { epoch };
                }
                Phase::AwaitEnd { epoch } if self.got_end.remove(&epoch) => {
                    effects.push(Effect::DeliverTimer);
                    for fwd in self.buffered.remove(&epoch).unwrap_or_default() {
                        effects.push(Effect::DeliverInterrupt(fwd));
                    }
                    effects.push(Effect::StartEpoch);
                    self.phase = Phase::Running;
                    return effects;
                }
                _ => return effects,
            }
        }
    }

    // -----------------------------------------------------------------
    // Messages (rules P2/P4 and acknowledgments)
    // -----------------------------------------------------------------

    /// A protocol message arrived from replica `from`.
    ///
    /// Sequenced messages are *resend-tolerant*: a message whose
    /// sequence number was already received (a retransmission whose
    /// original, or whose acknowledgment, the lossy network dropped) is
    /// re-acknowledged but changes no protocol state, so a driver may
    /// replay `[E, Int]`, `[Tme_p]` or `[end, E]` any number of times
    /// without double-buffering an interrupt or re-assigning a clock.
    pub fn message_received(&mut self, from: ReplicaId, msg: Message) -> Vec<Effect> {
        if let Some(seq) = msg.seq() {
            if self.is_duplicate(from, seq) {
                return vec![self.ack(from, seq)];
            }
        }
        match msg {
            Message::Ack { upto } => {
                let slot = self.acked.entry(from).or_insert(0);
                *slot = (*slot).max(upto);
                self.resume_if_acked()
            }
            Message::Interrupt {
                seq,
                epoch,
                interrupt,
            } => {
                let mut effects = vec![self.ack(from, seq)];
                self.buffered.entry(epoch).or_default().push(interrupt);
                effects.extend(self.try_advance());
                effects
            }
            Message::Time { seq, epoch, vclock } => {
                let mut effects = vec![self.ack(from, seq)];
                self.got_time.insert(epoch, vclock);
                effects.extend(self.try_advance());
                effects
            }
            Message::EpochEnd { seq, epoch } => {
                let mut effects = vec![self.ack(from, seq)];
                self.got_end.insert(epoch);
                effects.extend(self.try_advance());
                effects
            }
            Message::StateChunk { .. } => {
                // State-transfer chunks are driver traffic: the driver
                // intercepts them before the engine and restores the
                // replica itself. A stray chunk (e.g. one still in
                // flight from a primary that since died) is protocol
                // no-op.
                Vec::new()
            }
        }
    }

    /// Whether a sequenced message from `from` was already processed.
    /// A message from a *new* sender is never a duplicate — a new
    /// primary's sequence space starts fresh.
    fn is_duplicate(&self, from: ReplicaId, seq: u64) -> bool {
        from == self.primary && seq <= self.highest_recv
    }

    /// Cumulatively acknowledges everything received from the sender;
    /// a sequenced message from a *new* sender means a new primary has
    /// taken over (its sequence space starts fresh).
    fn ack(&mut self, from: ReplicaId, seq: u64) -> Effect {
        if from != self.primary {
            self.primary = from;
            self.highest_recv = 0;
        }
        self.highest_recv = self.highest_recv.max(seq);
        Effect::Send {
            to: self.primary,
            msg: Message::Ack {
                upto: self.highest_recv,
            },
        }
    }

    /// Resumes a primary stalled on acknowledgments, if they are in.
    fn resume_if_acked(&mut self) -> Vec<Effect> {
        if !self.all_acked() {
            return Vec::new();
        }
        match self.phase {
            Phase::AwaitBoundaryAcks { epoch } => {
                let mut effects = Vec::new();
                self.finish_boundary(epoch, &mut effects);
                effects
            }
            Phase::AwaitIoAcks => {
                self.phase = Phase::Running;
                vec![Effect::ResumeHeldIo]
            }
            _ => Vec::new(),
        }
    }

    /// A live peer failstopped or finished: stop counting it toward the
    /// acknowledgment condition (may resume a stalled primary).
    pub fn remove_peer(&mut self, peer: ReplicaId) -> Vec<Effect> {
        self.peers.retain(|&p| p != peer);
        if self.is_primary {
            self.resume_if_acked()
        } else {
            Vec::new()
        }
    }

    /// Reintegration: a repaired replica rejoins the chain as a live
    /// backup. Called by the driver at the epoch boundary whose
    /// snapshot the rejoiner restores, *before* that boundary's
    /// `[Tme]`/`[end]` broadcast, so the new peer receives the complete
    /// boundary sequence over a fresh sequence space.
    ///
    /// Interrupts currently buffered at this primary were broadcast
    /// while the rejoiner was dead; its restored state expects them
    /// (the snapshot predates their delivery), so they are re-forwarded
    /// as freshly sequenced `[E, Int]` messages — without this the
    /// rejoiner would miss a delivery and diverge one epoch later.
    pub fn add_peer(&mut self, peer: ReplicaId) -> Vec<Effect> {
        debug_assert!(self.is_primary, "only the acting primary admits peers");
        if !self.peers.contains(&peer) {
            self.peers.push(peer);
            self.peers.sort_unstable();
        }
        self.next_seq.insert(peer, 0);
        self.acked.insert(peer, 0);
        let mut effects = Vec::new();
        let pending: Vec<(u64, Vec<ForwardedInterrupt>)> =
            self.buffered.iter().map(|(&e, v)| (e, v.clone())).collect();
        for (epoch, fwds) in pending {
            for interrupt in fwds {
                let seq = self.next_seq.entry(peer).or_insert(0);
                *seq += 1;
                effects.push(Effect::Send {
                    to: peer,
                    msg: Message::Interrupt {
                        seq: *seq,
                        epoch,
                        interrupt,
                    },
                });
            }
        }
        effects
    }

    // -----------------------------------------------------------------
    // Interrupts (rule P1) and I/O (§4.3)
    // -----------------------------------------------------------------

    /// The epoch tag for an interrupt received now (P1's `E`):
    /// interrupts arriving while boundary processing for `E` is under
    /// way belong to `E + 1`.
    fn interrupt_epoch(&self, guest_epoch: u64) -> u64 {
        match self.phase {
            Phase::AwaitBoundaryAcks { epoch } => epoch + 1,
            _ => guest_epoch,
        }
    }

    /// Rule P1: a device interrupt was raised at the acting primary
    /// while its guest is at epoch `guest_epoch`. Buffers it locally
    /// and forwards `[E, Int]` to every live backup.
    pub fn interrupt_raised(&mut self, guest_epoch: u64, fwd: ForwardedInterrupt) -> Vec<Effect> {
        debug_assert!(self.is_primary, "interrupts are buffered at the primary");
        let epoch = self.interrupt_epoch(guest_epoch);
        self.buffered.entry(epoch).or_default().push(fwd.clone());
        let mut effects = Vec::new();
        self.broadcast(&mut effects, |seq| Message::Interrupt {
            seq,
            epoch,
            interrupt: fwd.clone(),
        });
        effects
    }

    /// §4.3: may the primary initiate an externally visible I/O right
    /// now? Under the revised protocol every coordination message must
    /// be acknowledged first — I/O is the only way VM state is revealed.
    pub fn io_requested(&mut self) -> IoGate {
        debug_assert!(self.is_primary, "only the primary performs I/O");
        if self.variant == ProtocolVariant::New && !self.peers.is_empty() && !self.all_acked() {
            self.phase = Phase::AwaitIoAcks;
            IoGate::Hold
        } else {
            IoGate::Proceed
        }
    }

    // -----------------------------------------------------------------
    // Promotion (rules P6/P7)
    // -----------------------------------------------------------------

    /// Rules P6 + P7: the failure detector fired while this backup was
    /// waiting at an epoch boundary. `vclock` is the replica's own
    /// clock snapshot, `outstanding_io` whether a device operation is
    /// still in flight, and `survivors` the remaining live backups in
    /// chain order.
    ///
    /// With no survivors (the paper's 1-fault prototype) everything
    /// buffered is delivered and outstanding I/O gets a locally
    /// synthesized uncertain interrupt. With survivors, the new primary
    /// instead *completes the failover epoch as a primary*: the
    /// uncertain interrupt is forwarded like any other so every replica
    /// retires it at the same instruction-stream point, `[Tme_p]` is
    /// re-issued only if the dead primary never sent it, and `[end, E]`
    /// closes the epoch.
    pub fn promote_at_boundary(
        &mut self,
        vclock: VClock,
        outstanding_io: bool,
        survivors: Vec<ReplicaId>,
    ) -> (Vec<Effect>, Promotion) {
        let (epoch, time_already_assigned) = match self.phase {
            Phase::AwaitTime { epoch } => (epoch, false),
            Phase::AwaitEnd { epoch } => (epoch, true),
            other => unreachable!("promotion outside a waiting state: {other:?}"),
        };
        self.is_primary = true;
        self.peers = survivors;
        let mut effects = Vec::new();
        let mut synthesized = false;
        if self.peers.is_empty() {
            // No replica is left to stay in step with: deliver the
            // boundary epoch (with its timer check), then drain every
            // other buffered epoch — holding epoch-tagged completions
            // any longer would only delay the driver.
            effects.push(Effect::DeliverTimer);
            for fwd in self.buffered.remove(&epoch).unwrap_or_default() {
                effects.push(Effect::DeliverInterrupt(fwd));
            }
            let later: Vec<u64> = self.buffered.keys().copied().collect();
            for e in later {
                for fwd in self.buffered.remove(&e).unwrap_or_default() {
                    effects.push(Effect::DeliverInterrupt(fwd));
                }
            }
            if outstanding_io {
                effects.push(Effect::SynthesizeUncertain);
                synthesized = true;
            }
            effects.push(Effect::StartEpoch);
            self.phase = Phase::Running;
        } else {
            // Survivors remain: finish epoch `E` the way the dead
            // primary would have. Every live backup received the same
            // message prefix, so `[Tme_p]` is re-sent exactly when
            // nobody has it.
            if outstanding_io {
                let fwd = ForwardedInterrupt {
                    irq_bits: irq::DISK,
                    disk: Some(DiskCompletion {
                        status: mmio::disk_status::UNCERTAIN,
                        data: None,
                    }),
                };
                self.buffered.entry(epoch).or_default().push(fwd.clone());
                self.broadcast(&mut effects, |seq| Message::Interrupt {
                    seq,
                    epoch,
                    interrupt: fwd.clone(),
                });
                synthesized = true;
            }
            if !time_already_assigned {
                effects.push(Effect::AssignClock(vclock));
                self.broadcast(&mut effects, |seq| Message::Time { seq, epoch, vclock });
            }
            self.finish_boundary(epoch, &mut effects);
        }
        (
            effects,
            Promotion {
                epoch,
                uncertain_synthesized: synthesized,
            },
        )
    }

    /// Promotion between epochs (the round-synchronous chain): the
    /// replica is not waiting at a boundary, so the role simply
    /// switches and coordination resumes at the next boundary.
    pub fn promote_running(&mut self, survivors: Vec<ReplicaId>) {
        debug_assert_eq!(self.phase, Phase::Running, "promote_running mid-boundary");
        self.is_primary = true;
        self.peers = survivors;
    }
}

/// Applies the guest-local part of an effect through the narrow
/// [`GuestCtl`] surface. Driver-specific parts — transmitting
/// [`Effect::Send`], device payloads of [`Effect::DeliverInterrupt`],
/// performing held I/O — remain the driver's job.
pub fn apply_to_guest<G: GuestCtl>(effect: &Effect, guest: &mut G) {
    match effect {
        Effect::AssignClock(vc) => guest.vclock_assign(*vc),
        Effect::DeliverTimer => {
            if guest.timer_expired() {
                guest.assert_irq(irq::TIMER);
            }
        }
        Effect::DeliverInterrupt(fwd) => guest.assert_irq(fwd.irq_bits),
        Effect::StartEpoch => guest.begin_epoch(),
        Effect::Send { .. } | Effect::SynthesizeUncertain | Effect::ResumeHeldIo => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc() -> VClock {
        VClock::new()
    }

    fn sends(effects: &[Effect]) -> Vec<(ReplicaId, &Message)> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send { to, msg } => Some((*to, msg)),
                _ => None,
            })
            .collect()
    }

    /// Routes every Send effect to its destination engine, to a
    /// fixpoint; returns the non-Send effects each engine emitted.
    fn pump(engines: &mut [ReplicaEngine], initial: Vec<(ReplicaId, Effect)>) -> Vec<Vec<Effect>> {
        let mut local: Vec<Vec<Effect>> = engines.iter().map(|_| Vec::new()).collect();
        let mut queue: Vec<(ReplicaId, ReplicaId, Message)> = Vec::new();
        for (from, e) in initial {
            match e {
                Effect::Send { to, msg } => queue.push((from, to, msg)),
                other => local[from].push(other),
            }
        }
        while !queue.is_empty() {
            let (from, to, msg) = queue.remove(0);
            for e in engines[to].message_received(from, msg) {
                match e {
                    Effect::Send { to: t2, msg } => queue.push((to, t2, msg)),
                    other => local[to].push(other),
                }
            }
        }
        local
    }

    #[test]
    fn old_protocol_full_epoch_cycle() {
        let mut p = ReplicaEngine::new_primary(0, vec![1], ProtocolVariant::Old);
        let mut b = ReplicaEngine::new_backup(1, 0, ProtocolVariant::Old);

        // Primary hits the boundary first: sends [Tme], then stalls on
        // the acknowledgment (rule P2, original protocol).
        let pe = p.boundary_reached(0, vc());
        assert_eq!(sends(&pe).len(), 1);
        assert!(matches!(sends(&pe)[0].1, Message::Time { epoch: 0, .. }));
        assert!(!p.is_running(), "P2 waits for acks before finishing");

        // Backup reaches its boundary: waits for [Tme].
        let be = b.boundary_reached(0, vc());
        assert!(be.is_empty());
        assert!(b.is_waiting_backup());

        // Deliver [Tme] to the backup: it acks and assigns.
        let [(_, time)] = sends(&pe)[..] else {
            panic!()
        };
        let be = b.message_received(0, time.clone());
        assert!(matches!(
            be[0],
            Effect::Send {
                to: 0,
                msg: Message::Ack { upto: 1 }
            }
        ));
        assert!(be.contains(&Effect::AssignClock(vc())));

        // The ack releases the primary: deliver + [end] + next epoch.
        let ack = match &be[0] {
            Effect::Send { msg, .. } => msg.clone(),
            _ => panic!(),
        };
        let pe = p.message_received(1, ack);
        assert!(pe.contains(&Effect::DeliverTimer));
        assert!(pe.contains(&Effect::StartEpoch));
        assert!(p.is_running());
        let end = sends(&pe)
            .into_iter()
            .find(|(_, m)| matches!(m, Message::EpochEnd { .. }))
            .expect("[end, 0] must be announced")
            .1
            .clone();

        // [end] lets the backup start the next epoch.
        let be = b.message_received(0, end);
        assert!(be.iter().any(|e| matches!(e, Effect::StartEpoch)));
        assert!(b.is_running());
    }

    #[test]
    fn new_protocol_gates_io_not_boundaries() {
        let mut p = ReplicaEngine::new_primary(0, vec![1], ProtocolVariant::New);
        // The boundary does not wait even though nothing is acked yet.
        let pe = p.boundary_reached(0, vc());
        assert!(p.is_running(), "§4.3 drops the boundary ack-wait");
        assert!(pe.contains(&Effect::StartEpoch));
        // But I/O is gated until the outstanding [Tme]/[end] are acked.
        assert_eq!(p.io_requested(), IoGate::Hold);
        assert!(p.holds_io());
        // The cumulative ack for both messages releases it.
        let pe = p.message_received(1, Message::Ack { upto: 2 });
        assert_eq!(pe, vec![Effect::ResumeHeldIo]);
        assert!(p.is_running());
        // With everything acked, further I/O proceeds immediately.
        assert_eq!(p.io_requested(), IoGate::Proceed);
    }

    #[test]
    fn boundary_interrupts_tag_the_next_epoch() {
        let mut p = ReplicaEngine::new_primary(0, vec![1], ProtocolVariant::Old);
        let _ = p.boundary_reached(3, vc());
        assert!(!p.is_running(), "stalled on acks");
        let fwd = ForwardedInterrupt {
            irq_bits: irq::DISK,
            disk: None,
        };
        let effects = p.interrupt_raised(3, fwd);
        match sends(&effects)[0].1 {
            Message::Interrupt { epoch, .. } => assert_eq!(
                *epoch, 4,
                "interrupts during boundary processing of E belong to E+1"
            ),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn promotion_without_survivors_flushes_everything() {
        let mut b = ReplicaEngine::new_backup(1, 0, ProtocolVariant::Old);
        // Buffer interrupts for the boundary epoch and a later epoch.
        let f0 = ForwardedInterrupt {
            irq_bits: irq::DISK,
            disk: None,
        };
        let f1 = ForwardedInterrupt {
            irq_bits: irq::TIMER,
            disk: None,
        };
        let _ = b.message_received(
            0,
            Message::Interrupt {
                seq: 1,
                epoch: 2,
                interrupt: f0.clone(),
            },
        );
        let _ = b.message_received(
            0,
            Message::Interrupt {
                seq: 2,
                epoch: 3,
                interrupt: f1.clone(),
            },
        );
        let _ = b.boundary_reached(2, vc());
        let (effects, promo) = b.promote_at_boundary(vc(), true, Vec::new());
        assert!(b.is_primary() && b.is_running());
        assert_eq!(
            promo,
            Promotion {
                epoch: 2,
                uncertain_synthesized: true
            }
        );
        // Both buffers delivered, uncertain synthesized, epoch started.
        assert!(effects.contains(&Effect::DeliverInterrupt(f0)));
        assert!(effects.contains(&Effect::DeliverInterrupt(f1)));
        assert!(effects.contains(&Effect::SynthesizeUncertain));
        assert_eq!(effects.last(), Some(&Effect::StartEpoch));
    }

    #[test]
    fn promotion_with_survivors_resends_time_only_if_missing() {
        // Case 1: promoted from AwaitTime — nobody got [Tme, E]; the new
        // primary must issue it.
        let mut b = ReplicaEngine::new_backup(1, 0, ProtocolVariant::Old);
        let _ = b.boundary_reached(5, vc());
        let (effects, promo) = b.promote_at_boundary(vc(), false, vec![2]);
        assert_eq!(promo.epoch, 5);
        let msgs: Vec<_> = sends(&effects);
        assert!(
            msgs.iter()
                .any(|(to, m)| *to == 2 && matches!(m, Message::Time { epoch: 5, .. })),
            "[Tme] re-issued to the survivor: {msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|(_, m)| matches!(m, Message::EpochEnd { epoch: 5, .. })),
            "[end, 5] closes the failover epoch"
        );
        assert!(b.is_running());

        // Case 2: promoted from AwaitEnd — [Tme, E] was already
        // broadcast by the dead primary; only [end] goes out.
        let mut c = ReplicaEngine::new_backup(1, 0, ProtocolVariant::Old);
        let _ = c.boundary_reached(7, vc());
        let _ = c.message_received(
            0,
            Message::Time {
                seq: 1,
                epoch: 7,
                vclock: vc(),
            },
        );
        assert!(c.is_waiting_backup());
        let (effects, _) = c.promote_at_boundary(vc(), false, vec![2]);
        let msgs = sends(&effects);
        assert!(
            !msgs.iter().any(|(_, m)| matches!(m, Message::Time { .. })),
            "already-assigned [Tme] must not be re-sent: {msgs:?}"
        );
        assert!(msgs
            .iter()
            .any(|(_, m)| matches!(m, Message::EpochEnd { epoch: 7, .. })));
    }

    #[test]
    fn promotion_with_survivors_forwards_the_uncertain_interrupt() {
        let mut b = ReplicaEngine::new_backup(1, 0, ProtocolVariant::New);
        let _ = b.boundary_reached(4, vc());
        let (effects, promo) = b.promote_at_boundary(vc(), true, vec![2, 3]);
        assert!(promo.uncertain_synthesized);
        // The uncertain completion travels as [E, Int] to every
        // survivor AND is delivered locally at the boundary.
        let ints: Vec<_> = sends(&effects)
            .into_iter()
            .filter(|(_, m)| matches!(m, Message::Interrupt { epoch: 4, .. }))
            .collect();
        assert_eq!(ints.len(), 2, "one copy per survivor");
        assert!(effects.iter().any(|e| matches!(
            e,
            Effect::DeliverInterrupt(f) if f.disk.as_ref().is_some_and(|d| d.status == mmio::disk_status::UNCERTAIN)
        )));
        assert!(!effects.contains(&Effect::SynthesizeUncertain));
    }

    #[test]
    fn t2_primary_needs_every_backup_ack() {
        let mut p = ReplicaEngine::new_primary(0, vec![1, 2], ProtocolVariant::Old);
        let mut b1 = ReplicaEngine::new_backup(1, 0, ProtocolVariant::Old);
        let mut b2 = ReplicaEngine::new_backup(2, 0, ProtocolVariant::Old);
        let pe = p.boundary_reached(0, vc());
        assert_eq!(sends(&pe).len(), 2, "[Tme] broadcast to both backups");
        assert!(!p.is_running());
        // One ack is not enough.
        let _ = b1.message_received(0, sends(&pe)[0].1.clone());
        let pe2 = p.message_received(1, Message::Ack { upto: 1 });
        assert!(pe2.is_empty() && !p.is_running());
        // The second releases the boundary.
        let _ = b2.message_received(0, sends(&pe)[1].1.clone());
        let pe3 = p.message_received(2, Message::Ack { upto: 1 });
        assert!(pe3.contains(&Effect::StartEpoch));
        assert!(p.is_running());
    }

    #[test]
    fn a_full_t2_epoch_round_trips_through_the_pump() {
        let mut engines = vec![
            ReplicaEngine::new_primary(0, vec![1, 2], ProtocolVariant::Old),
            ReplicaEngine::new_backup(1, 0, ProtocolVariant::Old),
            ReplicaEngine::new_backup(2, 0, ProtocolVariant::Old),
        ];
        let mut initial = Vec::new();
        for (i, engine) in engines.iter_mut().enumerate() {
            for e in engine.boundary_reached(0, vc()) {
                initial.push((i, e));
            }
        }
        let locals = pump(&mut engines, initial);
        for (i, engine) in engines.iter().enumerate() {
            assert!(engine.is_running(), "replica {i} stuck: {engine:?}");
            assert!(
                locals[i].contains(&Effect::StartEpoch),
                "replica {i} never started epoch 1: {:?}",
                locals[i]
            );
        }
    }

    #[test]
    fn duplicate_messages_reack_without_state_changes() {
        let mut b = ReplicaEngine::new_backup(1, 0, ProtocolVariant::Old);
        let int = Message::Interrupt {
            seq: 1,
            epoch: 0,
            interrupt: ForwardedInterrupt {
                irq_bits: irq::DISK,
                disk: None,
            },
        };
        let _ = b.message_received(0, int.clone());
        // The retransmitted copy must be acked but not re-buffered.
        let effects = b.message_received(0, int);
        assert_eq!(
            effects,
            vec![Effect::Send {
                to: 0,
                msg: Message::Ack { upto: 1 }
            }],
            "a duplicate produces exactly a re-ack"
        );
        let _ = b.boundary_reached(0, vc());
        let time = Message::Time {
            seq: 2,
            epoch: 0,
            vclock: vc(),
        };
        let first = b.message_received(0, time.clone());
        assert!(first.contains(&Effect::AssignClock(vc())));
        let second = b.message_received(0, time);
        assert!(
            !second.contains(&Effect::AssignClock(vc())),
            "a duplicate [Tme] must not re-assign the clock: {second:?}"
        );
        // Delivery of [end, 0] releases exactly one buffered interrupt.
        let effects = b.message_received(0, Message::EpochEnd { seq: 3, epoch: 0 });
        let delivered = effects
            .iter()
            .filter(|e| matches!(e, Effect::DeliverInterrupt(_)))
            .count();
        assert_eq!(delivered, 1, "the duplicate was not double-buffered");
    }

    #[test]
    fn backup_switches_allegiance_to_a_new_primary() {
        let mut b = ReplicaEngine::new_backup(2, 0, ProtocolVariant::Old);
        let _ = b.message_received(0, Message::EpochEnd { seq: 9, epoch: 0 });
        assert_eq!(b.highest_recv, 9);
        // Replica 1 promoted and starts its own sequence space.
        let effects = b.message_received(1, Message::EpochEnd { seq: 1, epoch: 1 });
        match &effects[0] {
            Effect::Send {
                to,
                msg: Message::Ack { upto },
            } => {
                assert_eq!(*to, 1, "acks go to the new primary");
                assert_eq!(*upto, 1, "sequence tracking restarted");
            }
            other => panic!("{other:?}"),
        }
    }
}
