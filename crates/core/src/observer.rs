//! Run-observer hooks: a uniform window onto the low-frequency protocol
//! events of every driver.
//!
//! The drivers used to grow a bespoke counter for each question anyone
//! asked of a run ("how many frames were re-sent?", "when did the
//! failover land?"). An [`Observer`] inverts that: the driver announces
//! each protocol-level event — epoch boundaries, failovers, message
//! sends/drops/retransmissions, interrupt deliveries — and whoever
//! needs a statistic accumulates it outside the driver.
//!
//! Hooks fire only on the *driver's* event paths (a few per epoch),
//! never inside the interpreter's per-instruction fast path, and each
//! site is guarded by an is-empty check on the observer list — so an
//! unobserved run does exactly the work it did before the hooks
//! existed. The interpreter's own fast path (`hvft-machine`'s
//! predecoded-block engine) is untouched; its branch-free discipline is
//! preserved by construction.
//!
//! # Examples
//!
//! ```
//! use hvft_core::observer::Observer;
//! use hvft_core::scenario::Scenario;
//! use hvft_core::system::FailoverInfo;
//! use hvft_sim::time::SimTime;
//!
//! /// Counts epoch boundaries per replica.
//! #[derive(Default)]
//! struct Boundaries(std::collections::BTreeMap<usize, u64>);
//!
//! impl Observer for Boundaries {
//!     fn epoch_boundary(&mut self, replica: usize, _epoch: u64, _at: SimTime) {
//!         *self.0.entry(replica).or_default() += 1;
//!     }
//! }
//!
//! let scenario = Scenario::builder()
//!     .workload(hvft_guest::workload::Hello::default())
//!     .build()
//!     .unwrap();
//! let mut runner = scenario.runner();
//! runner.add_observer(Box::new(Boundaries::default()));
//! let report = runner.run();
//! assert!(report.exit.is_clean_exit());
//! ```

use crate::system::FailoverInfo;
use hvft_sim::time::SimTime;

/// Hooks into a run's protocol-level events. Every method has an empty
/// default body: implement only what you care about.
///
/// Replica indices are chain positions (0 = the initial primary).
/// Message hooks see link-level traffic: payload frames, acks and
/// heartbeats alike, because that is what occupies the wire.
pub trait Observer {
    /// A replica's guest reached an epoch boundary (rule P2/P5
    /// processing follows).
    fn epoch_boundary(&mut self, _replica: usize, _epoch: u64, _at: SimTime) {}

    /// A backup promoted itself (rules P6/P7); `info` is the same
    /// record the run report carries.
    fn failover(&mut self, _info: &FailoverInfo) {}

    /// A frame was offered to the coordination medium and a delivery
    /// was scheduled. Fires for first transmissions and retransmissions
    /// alike, so `message_sent + message_dropped` is the complete wire
    /// view. (The run report's `messages_per_replica` counts frames
    /// that *occupied the medium* — which includes loss-consumed ones —
    /// so the two agree exactly on lossless runs and differ by the drop
    /// count under loss injection.)
    fn message_sent(&mut self, _from: usize, _to: usize, _bytes: usize, _at: SimTime) {}

    /// A frame was offered but never produced a delivery: loss
    /// injection consumed it (it still burned air time) or the link was
    /// severed.
    fn message_dropped(&mut self, _from: usize, _to: usize, _at: SimTime) {}

    /// A retransmit timer fired and re-sent `frames` unacknowledged
    /// frames on `from → to` (each also reported individually through
    /// [`Observer::message_sent`]/[`Observer::message_dropped`]).
    fn retransmit(&mut self, _from: usize, _to: usize, _frames: usize, _at: SimTime) {}

    /// An interrupt was delivered into a replica's guest (rule P5 at
    /// backups, the buffered delivery point at the primary, or a P7
    /// synthesized uncertain completion).
    fn interrupt_delivered(&mut self, _replica: usize, _irq_bits: u32, _at: SimTime) {}
}
