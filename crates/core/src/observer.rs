//! Run-observer hooks: a uniform window onto the low-frequency protocol
//! events of every driver.
//!
//! The drivers used to grow a bespoke counter for each question anyone
//! asked of a run ("how many frames were re-sent?", "when did the
//! failover land?"). An [`Observer`] inverts that: the driver announces
//! each protocol-level event — epoch boundaries, failovers, message
//! sends/drops/retransmissions, interrupt deliveries — and whoever
//! needs a statistic accumulates it outside the driver.
//!
//! Hooks fire only on the *driver's* event paths (a few per epoch),
//! never inside the interpreter's per-instruction fast path, and each
//! site is guarded by an is-empty check on the observer list — so an
//! unobserved run does exactly the work it did before the hooks
//! existed. The interpreter's own fast path (`hvft-machine`'s
//! predecoded-block engine) is untouched; its branch-free discipline is
//! preserved by construction.
//!
//! # Examples
//!
//! ```
//! use hvft_core::observer::Observer;
//! use hvft_core::scenario::Scenario;
//! use hvft_core::system::FailoverInfo;
//! use hvft_sim::time::SimTime;
//!
//! /// Counts epoch boundaries per replica.
//! #[derive(Default)]
//! struct Boundaries(std::collections::BTreeMap<usize, u64>);
//!
//! impl Observer for Boundaries {
//!     fn epoch_boundary(&mut self, replica: usize, _epoch: u64, _at: SimTime) {
//!         *self.0.entry(replica).or_default() += 1;
//!     }
//! }
//!
//! let scenario = Scenario::builder()
//!     .workload(hvft_guest::workload::Hello::default())
//!     .build()
//!     .unwrap();
//! let mut runner = scenario.runner();
//! runner.add_observer(Box::new(Boundaries::default()));
//! let report = runner.run();
//! assert!(report.exit.is_clean_exit());
//! ```

use crate::system::FailoverInfo;
use hvft_sim::time::SimTime;

/// Why an offered frame never produced a delivery.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// Loss injection consumed the frame. It still occupied the medium
    /// (drops burn air time), so it counts toward wire occupancy.
    Loss,
    /// The link — or one of its endpoints — was severed; the frame
    /// never touched the medium at all.
    Severed,
}

/// Hooks into a run's protocol-level events. Every method has an empty
/// default body: implement only what you care about.
///
/// Replica indices are chain positions (0 = the initial primary).
/// Message hooks see link-level traffic: payload frames, acks and
/// heartbeats alike, because that is what occupies the wire.
pub trait Observer {
    /// A replica's guest reached an epoch boundary (rule P2/P5
    /// processing follows).
    fn epoch_boundary(&mut self, _replica: usize, _epoch: u64, _at: SimTime) {}

    /// A backup promoted itself (rules P6/P7); `info` is the same
    /// record the run report carries.
    fn failover(&mut self, _info: &FailoverInfo) {}

    /// A frame was offered to the coordination medium and a delivery
    /// was scheduled. Fires for first transmissions and retransmissions
    /// alike, so `message_sent + message_dropped` is the complete wire
    /// view. (The run report's `messages_per_replica` counts frames
    /// that *occupied the medium* — which includes loss-consumed ones —
    /// so the two agree exactly on lossless runs and differ by the drop
    /// count under loss injection.)
    fn message_sent(&mut self, _from: usize, _to: usize, _bytes: usize, _at: SimTime) {}

    /// A frame was offered but never produced a delivery; `reason`
    /// distinguishes loss injection (the frame still burned air time)
    /// from a severed link (it never reached the medium).
    fn message_dropped(&mut self, _from: usize, _to: usize, _at: SimTime, _reason: DropReason) {}

    /// A retransmit timer fired and re-sent `frames` unacknowledged
    /// frames on `from → to` (each also reported individually through
    /// [`Observer::message_sent`]/[`Observer::message_dropped`]).
    fn retransmit(&mut self, _from: usize, _to: usize, _frames: usize, _at: SimTime) {}

    /// A receiver discarded a duplicate or out-of-order data frame
    /// (the reliable layer's dup/gap suppression; it still re-acked).
    fn duplicate_suppressed(&mut self, _from: usize, _to: usize, _at: SimTime) {}

    /// An interrupt was delivered into a replica's guest (rule P5 at
    /// backups, the buffered delivery point at the primary, or a P7
    /// synthesized uncertain completion).
    fn interrupt_delivered(&mut self, _replica: usize, _irq_bits: u32, _at: SimTime) {}

    /// The acting primary captured a whole-replica snapshot at the
    /// boundary of `epoch` and began streaming it to a repaired
    /// replica; `bytes` is the modelled size of the transfer.
    fn snapshot_taken(&mut self, _replica: usize, _epoch: u64, _bytes: u64, _at: SimTime) {}

    /// A repaired replica finished restoring a state transfer and
    /// rejoined the chain as a live backup at the boundary of `epoch` —
    /// the instant `t`-fault coverage is restored.
    fn replica_reintegrated(&mut self, _replica: usize, _epoch: u64, _bytes: u64, _at: SimTime) {}
}

/// The run-long statistics observer installed by default on every
/// [`crate::system::FtSystem`] run.
///
/// This is what subsumed the drivers' bespoke counter plumbing: the run
/// report's `messages_per_replica`, `frames_retransmitted` and
/// `frames_suppressed` are accumulated here, from the same hooks any
/// user [`Observer`] sees, instead of being scraped out of
/// `ChannelStats` / `SendWindow` internals after the fact. One set of
/// hooks, one accounting.
///
/// `frames_per_replica[i]` counts frames from replica `i` that
/// *occupied the medium* — accepted transmissions plus loss-consumed
/// ones (drops burn air time), but not sends into severed links, which
/// never reach the wire. That is exactly the semantics the old
/// channel-counter plumbing reported, so reports are unchanged.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Medium-occupying frames offered per replica, in chain order.
    pub frames_per_replica: Vec<u64>,
    /// Data frames re-sent by the ack/retransmission layer.
    pub frames_retransmitted: u64,
    /// Duplicate/out-of-order frames suppressed by receivers.
    pub frames_suppressed: u64,
    /// Frames consumed by loss injection.
    pub frames_lost: u64,
    /// Frames swallowed by severed links.
    pub frames_severed: u64,
    /// Epoch boundaries reached, across all replicas.
    pub epoch_boundaries: u64,
    /// Promotions (rules P6/P7).
    pub failovers: u64,
    /// Interrupts delivered into guests.
    pub interrupts_delivered: u64,
    /// Whole-replica snapshots captured for reintegration transfers.
    pub snapshots_taken: u64,
    /// Repaired replicas readmitted as live backups.
    pub reintegrations: u64,
    /// Modelled bytes of completed reintegration state transfers.
    pub state_transfer_bytes: u64,
}

impl RunStats {
    /// Zeroed statistics for a system of `replicas` replicas.
    pub fn new(replicas: usize) -> Self {
        RunStats {
            frames_per_replica: vec![0; replicas],
            ..RunStats::default()
        }
    }
}

impl Observer for RunStats {
    fn epoch_boundary(&mut self, _replica: usize, _epoch: u64, _at: SimTime) {
        self.epoch_boundaries += 1;
    }

    fn failover(&mut self, _info: &FailoverInfo) {
        self.failovers += 1;
    }

    fn message_sent(&mut self, from: usize, _to: usize, _bytes: usize, _at: SimTime) {
        self.frames_per_replica[from] += 1;
    }

    fn message_dropped(&mut self, from: usize, _to: usize, _at: SimTime, reason: DropReason) {
        match reason {
            DropReason::Loss => {
                self.frames_per_replica[from] += 1;
                self.frames_lost += 1;
            }
            DropReason::Severed => self.frames_severed += 1,
        }
    }

    fn retransmit(&mut self, _from: usize, _to: usize, frames: usize, _at: SimTime) {
        self.frames_retransmitted += frames as u64;
    }

    fn duplicate_suppressed(&mut self, _from: usize, _to: usize, _at: SimTime) {
        self.frames_suppressed += 1;
    }

    fn interrupt_delivered(&mut self, _replica: usize, _irq_bits: u32, _at: SimTime) {
        self.interrupts_delivered += 1;
    }

    fn snapshot_taken(&mut self, _replica: usize, _epoch: u64, _bytes: u64, _at: SimTime) {
        self.snapshots_taken += 1;
    }

    fn replica_reintegrated(&mut self, _replica: usize, _epoch: u64, bytes: u64, _at: SimTime) {
        self.reintegrations += 1;
        self.state_transfer_bytes += bytes;
    }
}
