//! Many fault-tolerant systems sharing one LAN: the sharded driver.
//!
//! The paper's prototype dedicates a private Ethernet to one
//! primary/backup pair. A machine room does not: many replicated
//! machines contend for the same wire. [`FtCluster`] models exactly
//! that — `N` independent [`FtSystem`] shards, each with its own guest
//! image, replica chain, disk and console, all coordinating over a
//! single shared-medium [`Lan`] so that one system's `[E, Int]` burst
//! delays every other system's epoch boundary.
//!
//! The shards never exchange protocol messages — sharding is by
//! construction total: each guest workload is pinned to one replica
//! chain. What couples them is the *medium*: bandwidth contention
//! (`Lan` serializes all transmissions), plus whatever loss or
//! severing is injected on individual links.
//!
//! Scheduling is conservative and deterministic: every step, the
//! cluster advances the shard whose [`FtSystem::next_action_time`] is
//! smallest (ties break by shard index), so cross-shard contention on
//! the medium is resolved in near-global-time order and a cluster run
//! is exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use hvft_core::cluster::FtCluster;
//! use hvft_core::config::FtConfig;
//! use hvft_core::system::RunEnd;
//! use hvft_guest::{build_image, hello_source, KernelConfig};
//! use hvft_net::link::LinkSpec;
//! use hvft_sim::time::SimDuration;
//!
//! let image = build_image(&KernelConfig::default(), &hello_source("hi\n", 1)).unwrap();
//! let mut cluster = FtCluster::new(LinkSpec::ethernet_10mbps(), 7);
//! let cfg = FtConfig {
//!     loss_prob: 0.1,
//!     retransmit: Some(SimDuration::from_millis(5)),
//!     // Detection must dominate worst-case retransmission gaps.
//!     detector_timeout: SimDuration::from_millis(300),
//!     ..FtConfig::default()
//! };
//! for _ in 0..2 {
//!     cluster.add_system(&image, cfg);
//! }
//! let results = cluster.run();
//! for r in &results {
//!     assert!(matches!(r.outcome, RunEnd::Exit { code: 42 }));
//! }
//! ```

use crate::config::FtConfig;
use crate::system::{FtRunResult, FtSystem, WireFrame};
use hvft_isa::program::Program;
use hvft_net::lan::{Lan, LanStats};
use hvft_net::link::LinkSpec;
use hvft_sim::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// `N` independent fault-tolerant systems multiplexed over one shared
/// [`Lan`], co-simulated on one conservative discrete-event schedule.
pub struct FtCluster {
    lan: Rc<RefCell<Lan<WireFrame>>>,
    systems: Vec<FtSystem>,
    results: Vec<Option<FtRunResult>>,
}

impl FtCluster {
    /// An empty cluster over a shared medium modelled by `link`;
    /// `seed` feeds the medium's per-link loss RNGs.
    pub fn new(link: LinkSpec, seed: u64) -> Self {
        FtCluster {
            lan: Rc::new(RefCell::new(Lan::new(link, seed))),
            systems: Vec::new(),
            results: Vec::new(),
        }
    }

    /// Adds one fault-tolerant system (a guest image and its
    /// `1 + cfg.backups` replicas) to the cluster; returns its shard
    /// index. The system's replicas get consecutive nodes on the
    /// shared LAN; `cfg.link` is overridden by the cluster's medium.
    pub fn add_system(&mut self, image: &Program, mut cfg: FtConfig) -> usize {
        let base = {
            let mut lan = self.lan.borrow_mut();
            let base = lan.nodes();
            for _ in 0..(1 + cfg.backups) {
                lan.add_node();
            }
            base
        };
        cfg.link = *self.lan.borrow().link();
        let sys = FtSystem::new_on_lan(image, cfg, Rc::clone(&self.lan), base);
        self.systems.push(sys);
        self.results.push(None);
        self.systems.len() - 1
    }

    /// Number of shards.
    pub fn systems(&self) -> usize {
        self.systems.len()
    }

    /// Direct access to shard `sys` (failure scheduling, disk
    /// pre-filling, tracing).
    ///
    /// # Panics
    ///
    /// Panics if `sys` is out of range.
    pub fn system_mut(&mut self, sys: usize) -> &mut FtSystem {
        &mut self.systems[sys]
    }

    /// Sets the loss probability of every link currently registered on
    /// the shared medium (per-system loss can be set via each system's
    /// [`FtConfig::loss_prob`] before [`FtCluster::add_system`]).
    ///
    /// # Panics
    ///
    /// Panics for `p > 0` if any shard's configuration cannot survive
    /// loss — retransmission disabled, or a detection timeout that
    /// does not dominate worst-case recovery. Turning loss on behind a
    /// raw-channel shard would stall its first dropped boundary and
    /// falsely promote a backup under a live primary, the exact
    /// failure the construction-time guard exists to prevent.
    pub fn set_loss_probability_all(&mut self, p: f64) {
        if p > 0.0 {
            for sys in &self.systems {
                FtSystem::assert_loss_tolerant(sys.config());
            }
        }
        self.lan.borrow_mut().set_loss_probability_all(p);
    }

    /// Medium-wide traffic counters.
    pub fn lan_stats(&self) -> LanStats {
        self.lan.borrow().stats()
    }

    /// Runs every shard to completion and returns their results in
    /// shard order.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no systems.
    pub fn run(&mut self) -> Vec<FtRunResult> {
        assert!(!self.systems.is_empty(), "empty cluster");
        loop {
            // Pick the unfinished shard that can act earliest; a shard
            // whose next_action_time is None is finished or deadlocked
            // — step it once more to collect its result.
            let mut pick: Option<(SimTime, usize)> = None;
            let mut finished = true;
            for (i, sys) in self.systems.iter().enumerate() {
                if self.results[i].is_some() {
                    continue;
                }
                finished = false;
                let t = sys.next_action_time().unwrap_or(SimTime::ZERO);
                if pick.is_none_or(|(pt, _)| t < pt) {
                    pick = Some((t, i));
                }
            }
            if finished {
                return self
                    .results
                    .iter()
                    .map(|r| r.clone().expect("all shards finished"))
                    .collect();
            }
            let (_, i) = pick.expect("unfinished shard");
            if let Some(result) = self.systems[i].step() {
                self.results[i] = Some(result);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::RunEnd;
    use hvft_guest::{build_image, dhrystone_source, hello_source, KernelConfig};
    use hvft_hypervisor::cost::CostModel;
    use hvft_sim::time::SimDuration;

    fn fast() -> FtConfig {
        FtConfig {
            cost: CostModel::functional(),
            ..FtConfig::default()
        }
    }

    #[test]
    fn three_shards_finish_with_independent_outputs() {
        let hello = build_image(&KernelConfig::default(), &hello_source("a\n", 1)).unwrap();
        let dhry = build_image(&KernelConfig::default(), &dhrystone_source(200, 0)).unwrap();
        let mut cluster = FtCluster::new(LinkSpec::ethernet_10mbps(), 1);
        cluster.add_system(&hello, fast());
        cluster.add_system(&dhry, fast());
        cluster.add_system(&hello, fast());
        let results = cluster.run();
        assert_eq!(results.len(), 3);
        assert!(matches!(results[0].outcome, RunEnd::Exit { code: 42 }));
        assert!(matches!(results[1].outcome, RunEnd::Exit { .. }));
        assert_eq!(results[0].console_output, b"a\n");
        assert_eq!(results[2].console_output, b"a\n");
        for r in &results {
            assert!(r.lockstep.is_clean());
        }
    }

    #[test]
    fn contention_slows_a_shard_down() {
        // One shard alone vs the same shard sharing the wire with two
        // chatty neighbours: the medium is the only coupling, so the
        // lone run must be at least as fast.
        let image = build_image(&KernelConfig::default(), &dhrystone_source(300, 0)).unwrap();
        let solo = {
            let mut c = FtCluster::new(LinkSpec::ethernet_10mbps(), 5);
            c.add_system(&image, fast());
            c.run()[0].completion_time
        };
        let contended = {
            let mut c = FtCluster::new(LinkSpec::ethernet_10mbps(), 5);
            c.add_system(&image, fast());
            c.add_system(&image, fast());
            c.add_system(&image, fast());
            c.run()[0].completion_time
        };
        assert!(
            contended > solo,
            "sharing the medium must cost time: solo {solo}, contended {contended}"
        );
    }

    #[test]
    #[should_panic(expected = "retransmission")]
    fn lan_loss_behind_raw_shards_is_rejected() {
        // Turning loss on after construction must face the same guard
        // as FtConfig::loss_prob: a raw-channel shard would stall its
        // first dropped boundary and falsely promote a backup.
        let image = build_image(&KernelConfig::default(), &hello_source("x", 1)).unwrap();
        let mut c = FtCluster::new(LinkSpec::ethernet_10mbps(), 1);
        c.add_system(&image, fast());
        c.set_loss_probability_all(0.2);
    }

    #[test]
    fn cluster_runs_are_deterministic() {
        let image = build_image(&KernelConfig::default(), &dhrystone_source(150, 0)).unwrap();
        let run = || {
            let mut c = FtCluster::new(LinkSpec::ethernet_10mbps(), 9);
            let cfg = FtConfig {
                loss_prob: 0.15,
                retransmit: Some(SimDuration::from_millis(5)),
                detector_timeout: SimDuration::from_millis(300),
                ..fast()
            };
            for _ in 0..3 {
                c.add_system(&image, cfg);
            }
            let rs = c.run();
            rs.iter()
                .map(|r| {
                    (
                        format!("{:?}", r.outcome),
                        r.completion_time,
                        r.messages_per_replica.clone(),
                        r.frames_retransmitted,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
