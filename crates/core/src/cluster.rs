//! Many fault-tolerant systems sharing one LAN: the sharded driver.
//!
//! The paper's prototype dedicates a private Ethernet to one
//! primary/backup pair. A machine room does not: many replicated
//! machines contend for the same wire. [`FtCluster`] models exactly
//! that — `N` independent [`FtSystem`] shards, each with its own guest
//! image, replica chain, disk and console, all coordinating over a
//! single shared-medium [`Lan`] so that one system's `[E, Int]` burst
//! delays every other system's epoch boundary.
//!
//! The shards never exchange protocol messages — sharding is by
//! construction total: each guest workload is pinned to one replica
//! chain. What couples them is the *medium*: bandwidth contention
//! (`Lan` serializes all transmissions), plus whatever loss or
//! severing is injected on individual links.
//!
//! # Scheduling
//!
//! Shards register on the shared kernel's
//! [`hvft_sim::sched::Scheduler`] — every step advances the
//! shard whose [`FtSystem::next_action_time`] is smallest (ties break
//! by shard index), so cross-shard contention on the medium is resolved
//! in near-global-time order and a cluster run is exactly reproducible.
//!
//! # Parallel execution
//!
//! [`FtCluster::run_with`] can run the shards' guest computations on
//! `N` worker threads ([`Parallelism::Threads`]) while producing
//! results **bit-identical** to the sequential schedule. The executor
//! is conservative — it never speculates and never rolls back — and
//! rests on two facts:
//!
//! 1. A shard's next scheduling decision (which host runs, with what
//!    lookahead-bounded budget) and the *content* of that guest slice
//!    depend only on the shard's own committed state: shards exchange
//!    no messages, so another shard can influence this one only through
//!    the medium's serialization clock, which is read exactly at
//!    commit (send) points, never during a slice.
//! 2. All shared-medium effects are committed on the coordinator
//!    thread in the same global `(time, shard)` order the sequential
//!    schedule uses.
//!
//! So each shard's next slice is *planned* as soon as its previous
//! action commits, executed off-thread up to its conservative horizon
//! (its own next event, or a peer replica's clock plus the link's
//! minimum latency — the lookahead), and committed strictly in global
//! order. Sequential mode runs the identical plan/commit sequence with
//! the slice executed inline, which is why the two modes cannot
//! diverge.
//!
//! # Examples
//!
//! ```
//! use hvft_core::cluster::{FtCluster, Parallelism};
//! use hvft_core::config::FtConfig;
//! use hvft_core::system::RunEnd;
//! use hvft_guest::{build_image, hello_source, KernelConfig};
//! use hvft_net::link::LinkSpec;
//! use hvft_sim::time::SimDuration;
//!
//! let image = build_image(&KernelConfig::default(), &hello_source("hi\n", 1)).unwrap();
//! let mut cluster = FtCluster::new(LinkSpec::ethernet_10mbps(), 7);
//! let cfg = FtConfig {
//!     loss_prob: 0.1,
//!     retransmit: Some(SimDuration::from_millis(5)),
//!     // Detection must dominate worst-case retransmission gaps.
//!     detector_timeout: SimDuration::from_millis(300),
//!     ..FtConfig::default()
//! };
//! for _ in 0..2 {
//!     cluster.add_system(&image, cfg);
//! }
//! let results = cluster.run_with(Parallelism::Threads(2));
//! for r in &results {
//!     assert!(matches!(r.outcome, RunEnd::Exit { code: 42 }));
//! }
//! ```

use crate::config::FtConfig;
use crate::system::{FtRunResult, FtSystem, StepPlan, WireFrame};
use hvft_hypervisor::hvguest::{HvEvent, HvGuest};
use hvft_isa::program::Program;
use hvft_net::lan::{Lan, LanStats};
use hvft_net::link::LinkSpec;
use hvft_sim::sched::Scheduler;
use hvft_sim::time::SimDuration;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

/// How a cluster run distributes its shards' guest computations.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Parallelism {
    /// One thread does everything, in exact global-time order.
    #[default]
    Sequential,
    /// Guest slices execute on this many worker threads; all
    /// shared-medium effects still commit in exact global-time order,
    /// so the results are bit-identical to [`Parallelism::Sequential`].
    /// `Threads(0)` degenerates to sequential.
    Threads(usize),
}

impl Parallelism {
    /// How many guest computations a run over `shards` shards can
    /// actually advance simultaneously in this mode: the requested
    /// thread count, clamped to the shard count (the pool never spawns
    /// idle workers — see [`FtCluster::run_with`]) and to the machine's
    /// available cores (the OS cannot run more in parallel than that).
    /// Sequential (and `Threads(0)`, its degenerate form) is 1.
    ///
    /// Bench labels record this so archived scaling rows are honest: a
    /// `Threads(2)` sweep on a one-core box is effectively sequential,
    /// and its label must say so.
    pub fn effective_workers(&self, shards: usize) -> usize {
        match *self {
            Parallelism::Sequential | Parallelism::Threads(0) => 1,
            Parallelism::Threads(n) => {
                let cores = thread::available_parallelism()
                    .map(|c| c.get())
                    .unwrap_or(1);
                n.min(shards).min(cores).max(1)
            }
        }
    }
}

/// `N` independent fault-tolerant systems multiplexed over one shared
/// [`Lan`], co-simulated on one conservative discrete-event schedule.
pub struct FtCluster {
    lan: Rc<RefCell<Lan<WireFrame>>>,
    sched: Scheduler<FtSystem>,
}

impl FtCluster {
    /// An empty cluster over a shared medium modelled by `link`;
    /// `seed` feeds the medium's per-link loss RNGs.
    pub fn new(link: LinkSpec, seed: u64) -> Self {
        FtCluster {
            lan: Rc::new(RefCell::new(Lan::new(link, seed))),
            sched: Scheduler::new(),
        }
    }

    /// Adds one fault-tolerant system (a guest image and its
    /// `1 + cfg.backups` replicas) to the cluster; returns its shard
    /// index. The system's replicas get consecutive nodes on the
    /// shared LAN; `cfg.link` is overridden by the cluster's medium.
    pub fn add_system(&mut self, image: &Program, mut cfg: FtConfig) -> usize {
        let base = {
            let mut lan = self.lan.borrow_mut();
            let base = lan.nodes();
            for _ in 0..(1 + cfg.backups) {
                lan.add_node();
            }
            base
        };
        cfg.link = *self.lan.borrow().link();
        let sys = FtSystem::new_on_lan(image, cfg, Rc::clone(&self.lan), base);
        self.sched.add(sys)
    }

    /// Number of shards.
    pub fn systems(&self) -> usize {
        self.sched.len()
    }

    /// Direct access to shard `sys` (failure scheduling, disk
    /// pre-filling, tracing).
    ///
    /// # Panics
    ///
    /// Panics if `sys` is out of range.
    pub fn system_mut(&mut self, sys: usize) -> &mut FtSystem {
        self.sched.component_mut(sys)
    }

    /// Sets the loss probability of every link currently registered on
    /// the shared medium (per-system loss can be set via each system's
    /// [`FtConfig::loss_prob`] before [`FtCluster::add_system`]).
    ///
    /// # Panics
    ///
    /// Panics for `p > 0` if any shard's configuration cannot survive
    /// loss — retransmission disabled, or a detection timeout that
    /// does not dominate worst-case recovery. Turning loss on behind a
    /// raw-channel shard would stall its first dropped boundary and
    /// falsely promote a backup under a live primary, the exact
    /// failure the construction-time guard exists to prevent.
    pub fn set_loss_probability_all(&mut self, p: f64) {
        if p > 0.0 {
            for sys in self.sched.components() {
                FtSystem::assert_loss_tolerant(sys.config());
            }
        }
        self.lan.borrow_mut().set_loss_probability_all(p);
    }

    /// Medium-wide traffic counters.
    pub fn lan_stats(&self) -> LanStats {
        self.lan.borrow().stats()
    }

    /// Runs every shard to completion sequentially and returns their
    /// results in shard order.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no systems.
    pub fn run(&mut self) -> Vec<FtRunResult> {
        self.run_with(Parallelism::Sequential)
    }

    /// Runs every shard to completion under the given [`Parallelism`]
    /// and returns their results in shard order. The results are
    /// bit-identical whichever mode is chosen (see the
    /// [module docs](self) for why).
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no systems.
    pub fn run_with(&mut self, parallelism: Parallelism) -> Vec<FtRunResult> {
        assert!(!self.sched.is_empty(), "empty cluster");
        let pool = match parallelism {
            Parallelism::Sequential | Parallelism::Threads(0) => None,
            Parallelism::Threads(n) => Some(SlicePool::new(n.min(self.sched.len()))),
        };
        self.coordinate(pool.as_ref())
    }

    /// The coordinator loop shared by both modes: plan each shard as
    /// soon as its previous action commits (shipping planned slices to
    /// the workers, if any), then commit actions strictly in the
    /// kernel's global `(time, shard)` pick order.
    fn coordinate(&mut self, pool: Option<&SlicePool>) -> Vec<FtRunResult> {
        let n = self.sched.len();
        let mut plans: Vec<Option<StepPlan>> = vec![None; n];
        // A completed off-thread slice's hypervisor event, awaiting its
        // shard's turn in the global order.
        let mut slice_events: Vec<Option<HvEvent>> = (0..n).map(|_| None).collect();
        loop {
            for (i, plan_slot) in plans.iter_mut().enumerate() {
                if plan_slot.is_some() || self.sched.is_finished(i) {
                    continue;
                }
                let plan = self.sched.component_mut(i).plan();
                if let (Some(pool), StepPlan::Slice { host, budget }) = (pool, plan) {
                    let guest = self.sched.component_mut(i).detach_guest(host);
                    pool.submit(SliceJob {
                        shard: i,
                        host,
                        guest,
                        budget,
                    });
                }
                *plan_slot = Some(plan);
            }
            let Some(i) = self.sched.pick() else {
                break;
            };
            match plans[i].take().expect("picked shard is planned") {
                StepPlan::Finished => {
                    let result = self.sched.component_mut(i).finish_run();
                    self.sched.record(i, result);
                }
                StepPlan::Event => self.sched.component_mut(i).fire_next_event(),
                StepPlan::Slice { host, budget } => {
                    let event = match pool {
                        // Conservative barrier: this shard is globally
                        // next, so nothing may commit until its slice
                        // lands. Other shards' finished slices are
                        // banked along the way.
                        Some(pool) => loop {
                            if let Some(ev) = slice_events[i].take() {
                                break ev;
                            }
                            let done = pool.recv();
                            let (guest, event) = match done.outcome {
                                Ok(ok) => ok,
                                Err(msg) => panic!(
                                    "guest slice panicked on a worker \
                                     (shard {}, host {}): {msg}",
                                    done.shard, done.host
                                ),
                            };
                            self.sched
                                .component_mut(done.shard)
                                .attach_guest(done.host, guest);
                            slice_events[done.shard] = Some(event);
                        },
                        None => self.sched.component_mut(i).run_slice(host, budget),
                    };
                    self.sched.component_mut(i).commit_slice(host, event);
                }
            }
        }
        self.sched.take_outputs()
    }
}

/// One planned guest slice, shipped to a worker.
struct SliceJob {
    shard: usize,
    host: usize,
    guest: HvGuest,
    budget: SimDuration,
}

/// A completed slice coming back from a worker. `outcome` carries the
/// guest back on success, or the panic message if the slice panicked —
/// the coordinator re-raises it instead of deadlocking on a reply that
/// will never come.
struct SliceDone {
    shard: usize,
    host: usize,
    outcome: Result<(HvGuest, HvEvent), String>,
}

/// A fixed pool of slice workers fed from one shared job queue. Only
/// guests cross threads; every protocol, device and medium effect stays
/// on the coordinator.
struct SlicePool {
    jobs: Option<mpsc::Sender<SliceJob>>,
    done: mpsc::Receiver<SliceDone>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl SlicePool {
    fn new(threads: usize) -> Self {
        let (job_tx, job_rx) = mpsc::channel::<SliceJob>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (done_tx, done_rx) = mpsc::channel();
        let workers = (0..threads.max(1))
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                let done_tx = done_tx.clone();
                thread::spawn(move || loop {
                    let job = match job_rx.lock().expect("job queue lock").recv() {
                        Ok(job) => job,
                        // Coordinator hung up: drain complete, exit.
                        Err(_) => return,
                    };
                    let SliceJob {
                        shard,
                        host,
                        mut guest,
                        budget,
                    } = job;
                    // A panicking slice must surface on the coordinator
                    // (as it would sequentially), not strand it waiting
                    // for a reply. The guest is consumed either way, so
                    // no broken state escapes the unwind boundary.
                    let outcome =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                            let event = guest.run(budget);
                            (guest, event)
                        }))
                        .map_err(|payload| {
                            payload
                                .downcast_ref::<&str>()
                                .map(|m| (*m).to_owned())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "non-string panic payload".to_owned())
                        });
                    if done_tx
                        .send(SliceDone {
                            shard,
                            host,
                            outcome,
                        })
                        .is_err()
                    {
                        return;
                    }
                })
            })
            .collect();
        SlicePool {
            jobs: Some(job_tx),
            done: done_rx,
            workers,
        }
    }

    fn submit(&self, job: SliceJob) {
        self.jobs
            .as_ref()
            .expect("pool open")
            .send(job)
            .expect("a worker is alive");
    }

    fn recv(&self) -> SliceDone {
        self.done.recv().expect("a worker must answer")
    }
}

impl Drop for SlicePool {
    fn drop(&mut self) {
        // Close the queue so idle workers see the hang-up, then join.
        self.jobs.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::RunEnd;
    use hvft_guest::{build_image, dhrystone_source, hello_source, KernelConfig};
    use hvft_hypervisor::cost::CostModel;
    use hvft_sim::time::{SimDuration, SimTime};

    fn fast() -> FtConfig {
        FtConfig {
            cost: CostModel::functional(),
            ..FtConfig::default()
        }
    }

    /// Everything a run report contains that a schedule change could
    /// possibly disturb.
    fn fingerprint(results: &[FtRunResult]) -> Vec<String> {
        results
            .iter()
            .map(|r| {
                format!(
                    "{:?}|{}|{:?}|{:?}|{:?}|{}|{}|{:?}|{}",
                    r.outcome,
                    r.completion_time,
                    r.console_output,
                    r.failovers,
                    r.messages_per_replica,
                    r.frames_retransmitted,
                    r.frames_suppressed,
                    r.op_latencies,
                    r.lockstep.compared(),
                )
            })
            .collect()
    }

    #[test]
    fn three_shards_finish_with_independent_outputs() {
        let hello = build_image(&KernelConfig::default(), &hello_source("a\n", 1)).unwrap();
        let dhry = build_image(&KernelConfig::default(), &dhrystone_source(200, 0)).unwrap();
        let mut cluster = FtCluster::new(LinkSpec::ethernet_10mbps(), 1);
        cluster.add_system(&hello, fast());
        cluster.add_system(&dhry, fast());
        cluster.add_system(&hello, fast());
        let results = cluster.run();
        assert_eq!(results.len(), 3);
        assert!(matches!(results[0].outcome, RunEnd::Exit { code: 42 }));
        assert!(matches!(results[1].outcome, RunEnd::Exit { .. }));
        assert_eq!(results[0].console_output, b"a\n");
        assert_eq!(results[2].console_output, b"a\n");
        for r in &results {
            assert!(r.lockstep.is_clean());
        }
    }

    #[test]
    fn contention_slows_a_shard_down() {
        // One shard alone vs the same shard sharing the wire with two
        // chatty neighbours: the medium is the only coupling, so the
        // lone run must be at least as fast.
        let image = build_image(&KernelConfig::default(), &dhrystone_source(300, 0)).unwrap();
        let solo = {
            let mut c = FtCluster::new(LinkSpec::ethernet_10mbps(), 5);
            c.add_system(&image, fast());
            c.run()[0].completion_time
        };
        let contended = {
            let mut c = FtCluster::new(LinkSpec::ethernet_10mbps(), 5);
            c.add_system(&image, fast());
            c.add_system(&image, fast());
            c.add_system(&image, fast());
            c.run()[0].completion_time
        };
        assert!(
            contended > solo,
            "sharing the medium must cost time: solo {solo}, contended {contended}"
        );
    }

    #[test]
    #[should_panic(expected = "retransmission")]
    fn lan_loss_behind_raw_shards_is_rejected() {
        // Turning loss on after construction must face the same guard
        // as FtConfig::loss_prob: a raw-channel shard would stall its
        // first dropped boundary and falsely promote a backup.
        let image = build_image(&KernelConfig::default(), &hello_source("x", 1)).unwrap();
        let mut c = FtCluster::new(LinkSpec::ethernet_10mbps(), 1);
        c.add_system(&image, fast());
        c.set_loss_probability_all(0.2);
    }

    #[test]
    fn cluster_runs_are_deterministic() {
        let image = build_image(&KernelConfig::default(), &dhrystone_source(150, 0)).unwrap();
        let run = || {
            let mut c = FtCluster::new(LinkSpec::ethernet_10mbps(), 9);
            let cfg = FtConfig {
                loss_prob: 0.15,
                retransmit: Some(SimDuration::from_millis(5)),
                detector_timeout: SimDuration::from_millis(300),
                ..fast()
            };
            for _ in 0..3 {
                c.add_system(&image, cfg);
            }
            fingerprint(&c.run())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        // The tentpole oracle at unit scope: loss, retransmission and a
        // mid-run primary failstop on one shard, three shards, compared
        // across Sequential / Threads(2) / Threads(8) (more threads
        // than shards exercises the idle-worker path).
        let image = build_image(&KernelConfig::default(), &dhrystone_source(250, 5)).unwrap();
        let build = || {
            let mut c = FtCluster::new(LinkSpec::ethernet_10mbps(), 11);
            let cfg = FtConfig {
                loss_prob: 0.1,
                retransmit: Some(SimDuration::from_millis(5)),
                detector_timeout: SimDuration::from_millis(300),
                backups: 2,
                ..fast()
            };
            for _ in 0..3 {
                c.add_system(&image, cfg);
            }
            c.system_mut(1)
                .schedule_failure(SimTime::from_nanos(2_000_000));
            c
        };
        let sequential = fingerprint(&build().run_with(Parallelism::Sequential));
        for threads in [1, 2, 8] {
            let parallel = fingerprint(&build().run_with(Parallelism::Threads(threads)));
            assert_eq!(
                sequential, parallel,
                "Threads({threads}) diverged from the sequential schedule"
            );
        }
    }

    #[test]
    fn threads_zero_degenerates_to_sequential() {
        let image = build_image(&KernelConfig::default(), &hello_source("z\n", 1)).unwrap();
        let run = |par| {
            let mut c = FtCluster::new(LinkSpec::ethernet_10mbps(), 3);
            c.add_system(&image, fast());
            c.add_system(&image, fast());
            fingerprint(&c.run_with(par))
        };
        assert_eq!(run(Parallelism::Threads(0)), run(Parallelism::Sequential));
    }
}
